//! Regenerates the golden serial-protocol traces in `tests/golden/`.
//!
//! The goldens pin the pre-pipeline wire protocol: whole-buffer transfers,
//! pipeline depth 1 (one subkernel in flight, shipped before the next
//! launches). `tests/pipeline_determinism.rs` asserts that the compat
//! configuration still reproduces these bytes exactly.
//!
//! Run with `cargo test --test golden_gen -- --ignored` after an
//! intentional protocol change, then review the diff.

use fluidicl::{render_lanes, render_timeline, Fluidicl, FluidiclConfig};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::all_benchmarks;

fn test_size(name: &str) -> usize {
    match name {
        "ATAX" | "BICG" | "MVT" => 256,
        "CORR" => 64,
        "GESUMMV" => 512,
        "SYRK" | "SYR2K" | "GEMM" | "2MM" => 64,
        other => panic!("unknown benchmark {other}"),
    }
}

const SEED: u64 = 0xF1D1C1;

/// The configuration whose traces the goldens pin: the legacy serial
/// protocol (whole-buffer transfers, no pipelining).
fn serial_config() -> FluidiclConfig {
    FluidiclConfig::default()
        .with_validate_protocol(true)
        .with_whole_buffer_transfers()
        .with_pipeline_depth(1)
}

fn render_run(name: &str) -> String {
    let b = all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .expect("benchmark");
    let n = test_size(name);
    let mut rt = Fluidicl::new(
        MachineConfig::paper_testbed(),
        serial_config(),
        (b.program)(n),
    );
    assert!(
        b.run_and_validate_sized(&mut rt, n, SEED).unwrap(),
        "{name} diverged from reference"
    );
    let mut out = String::new();
    for r in rt.reports() {
        out.push_str(&format!(
            "kernel {} duration {} hd {} dh {} gpu {} cpu {} merged {} subs {}\n",
            r.kernel,
            r.duration.as_nanos(),
            r.hd_bytes,
            r.dh_bytes,
            r.gpu_executed_wgs,
            r.cpu_executed_wgs,
            r.cpu_merged_wgs,
            r.subkernels
        ));
        out.push_str(&render_timeline(&r.kernel, &r.trace));
        out.push_str(&render_lanes(&r.kernel, &r.trace, 60));
    }
    out
}

#[test]
#[ignore = "regenerates tests/golden/*; run explicitly after intentional protocol changes"]
fn regenerate_golden_serial_traces() {
    let dir = format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"));
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for b in all_benchmarks() {
        let text = render_run(b.name);
        let path = format!("{dir}/serial_{}.txt", b.name.to_lowercase());
        std::fs::write(&path, text).expect("write golden");
        eprintln!("wrote {path}");
    }
}
