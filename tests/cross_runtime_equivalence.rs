//! The central correctness property of the reproduction: every runtime —
//! single-device, FluidiCL under any configuration, static partitioning at
//! any split, SOCL under any scheduler — computes **bit-identical** results
//! for every benchmark, equal to the sequential reference.
//!
//! Because kernels really execute over device memories at the instants the
//! co-execution protocol decides, any partitioning, merging, coherence or
//! version-tracking bug shows up here as wrong numbers.

use fluidicl::{Fluidicl, FluidiclConfig};
use fluidicl_baselines::{SoclRuntime, SoclScheduler, StaticPartitionRuntime};
use fluidicl_hetsim::{AbortMode, MachineConfig};
use fluidicl_polybench::{all_benchmarks, benchmarks};
use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

/// Reduced sizes for test speed; kernel structure is preserved.
fn test_size(name: &str) -> usize {
    match name {
        "ATAX" | "BICG" | "MVT" => 256,
        "CORR" => 64,
        "GESUMMV" => 512,
        "SYRK" | "SYR2K" | "GEMM" | "2MM" => 64,
        other => panic!("unknown benchmark {other}"),
    }
}

const SEED: u64 = 0xF1D1C1;

#[test]
fn single_device_runtimes_match_reference() {
    let machine = MachineConfig::paper_testbed();
    for b in all_benchmarks() {
        let n = test_size(b.name);
        for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
            let mut rt = SingleDeviceRuntime::new(machine.clone(), device, (b.program)(n));
            let ok = b.run_and_validate_sized(&mut rt, n, SEED).unwrap();
            assert!(ok, "{} on {device:?} diverged from reference", b.name);
        }
    }
}

#[test]
fn fluidicl_matches_reference_under_default_config() {
    let machine = MachineConfig::paper_testbed();
    for b in all_benchmarks() {
        let n = test_size(b.name);
        let mut rt = Fluidicl::new(machine.clone(), FluidiclConfig::default(), (b.program)(n));
        let ok = b.run_and_validate_sized(&mut rt, n, SEED).unwrap();
        assert!(ok, "{} under FluidiCL diverged from reference", b.name);
    }
}

#[test]
fn fluidicl_matches_reference_under_every_abort_mode() {
    let machine = MachineConfig::paper_testbed();
    for mode in [
        AbortMode::WorkGroupStart,
        AbortMode::InLoop,
        AbortMode::InLoopUnrolled,
    ] {
        for b in benchmarks() {
            let n = test_size(b.name);
            let config = FluidiclConfig::default().with_abort_mode(mode);
            let mut rt = Fluidicl::new(machine.clone(), config, (b.program)(n));
            let ok = b.run_and_validate_sized(&mut rt, n, SEED).unwrap();
            assert!(ok, "{} with {mode:?} diverged from reference", b.name);
        }
    }
}

#[test]
fn fluidicl_matches_reference_with_extreme_chunk_settings() {
    let machine = MachineConfig::paper_testbed();
    for (chunk, step) in [(1.0, 0.0), (1.0, 9.0), (75.0, 2.0), (100.0, 0.0)] {
        for b in benchmarks() {
            let n = test_size(b.name);
            let config = FluidiclConfig::default().with_chunk(chunk, step);
            let mut rt = Fluidicl::new(machine.clone(), config, (b.program)(n));
            let ok = b.run_and_validate_sized(&mut rt, n, SEED).unwrap();
            assert!(
                ok,
                "{} with chunk {chunk}%/{step}% diverged from reference",
                b.name
            );
        }
    }
}

#[test]
fn fluidicl_matches_reference_with_optimizations_disabled() {
    let machine = MachineConfig::paper_testbed();
    let config = FluidiclConfig::default()
        .with_wg_split(false)
        .with_buffer_pool(false)
        .with_location_tracking(false)
        .with_online_profiling(true);
    for b in benchmarks() {
        let n = test_size(b.name);
        let mut rt = Fluidicl::new(machine.clone(), config.clone(), (b.program)(n));
        let ok = b.run_and_validate_sized(&mut rt, n, SEED).unwrap();
        assert!(ok, "{} with opts disabled diverged from reference", b.name);
    }
}

#[test]
fn static_partition_matches_reference_at_every_split() {
    let machine = MachineConfig::paper_testbed();
    for b in all_benchmarks() {
        let n = test_size(b.name);
        for i in 0..=10 {
            let f = i as f64 / 10.0;
            let mut rt = StaticPartitionRuntime::new(machine.clone(), (b.program)(n), f);
            let ok = b.run_and_validate_sized(&mut rt, n, SEED).unwrap();
            assert!(ok, "{} at static split {f} diverged from reference", b.name);
        }
    }
}

#[test]
fn socl_matches_reference_under_both_schedulers() {
    let machine = MachineConfig::paper_testbed();
    for scheduler in [SoclScheduler::Eager, SoclScheduler::Dmda] {
        for b in benchmarks() {
            let n = test_size(b.name);
            let mut rt = SoclRuntime::new(machine.clone(), (b.program)(n), scheduler);
            let ok = b.run_and_validate_sized(&mut rt, n, SEED).unwrap();
            assert!(ok, "{} under SOCL {scheduler:?} diverged", b.name);
        }
    }
}

#[test]
fn results_are_seed_sensitive_but_runtime_insensitive() {
    // Different seeds must give different data (the generators are live),
    // while different runtimes with the same seed agree exactly.
    let machine = MachineConfig::paper_testbed();
    let b = benchmarks().into_iter().find(|b| b.name == "SYRK").unwrap();
    let n = test_size("SYRK");
    let run = |seed: u64| {
        let mut rt = Fluidicl::new(machine.clone(), FluidiclConfig::default(), (b.program)(n));
        (b.run)(&mut rt, n, seed).unwrap()
    };
    assert_ne!(run(1), run(2), "different seeds must change the data");
    assert_eq!(run(3), (b.reference)(n, 3), "same seed must agree");
}
