//! The dirty-range transfer gate (`with_dirty_range_transfers`):
//!
//! * **off** (the default) the protocol is byte-for-byte the historical
//!   whole-buffer one — traces carry no dirty annotations, every transfer
//!   ships full output buffers, and rendered timelines use the exact
//!   legacy line format;
//! * **on**, functional results stay bit-identical to the reference and
//!   to the gate-off run, every protocol lint (including the
//!   transfer-bytes accounting rule) passes, and the modelled H2D traffic
//!   never grows.

use fluidicl::{
    lint_report, render_timeline, Fluidicl, FluidiclConfig, TraceKind, STATUS_MSG_BYTES,
};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::all_benchmarks;

fn test_size(name: &str) -> usize {
    match name {
        "ATAX" | "BICG" | "MVT" => 256,
        "CORR" => 64,
        "GESUMMV" => 512,
        "SYRK" | "SYR2K" | "GEMM" | "2MM" => 64,
        other => panic!("unknown benchmark {other}"),
    }
}

const SEED: u64 = 0xF1D1C1;

fn run(name: &str, dirty: bool) -> Fluidicl {
    let b = all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .expect("benchmark");
    let n = test_size(name);
    let mut rt = Fluidicl::new(
        MachineConfig::paper_testbed(),
        FluidiclConfig::default()
            .with_validate_protocol(true)
            .with_dirty_range_transfers(dirty),
        (b.program)(n),
    );
    assert!(
        b.run_and_validate_sized(&mut rt, n, SEED).unwrap(),
        "{name} diverged from reference (dirty={dirty})"
    );
    rt
}

#[test]
fn gate_off_traces_use_the_legacy_whole_buffer_format() {
    for b in all_benchmarks() {
        let rt = run(b.name, false);
        for report in rt.reports() {
            for ev in &report.trace {
                if let TraceKind::HdEnqueued { dirty_bytes, .. } = &ev.kind {
                    assert_eq!(
                        *dirty_bytes, None,
                        "{}: gate-off transfers carry no dirty accounting",
                        b.name
                    );
                }
            }
            let rendered = render_timeline(&report.kernel, &report.trace);
            assert!(
                !rendered.contains("dirty"),
                "{}: gate-off timeline must render the legacy lines",
                b.name
            );
        }
    }
}

#[test]
fn gate_on_matches_gate_off_bit_for_bit_and_lints_clean() {
    for b in all_benchmarks() {
        let off = run(b.name, false);
        let on = run(b.name, true);
        // Same kernels, same work split decisions only if timings agree —
        // we only require the *functional* contract: both validated against
        // the reference above. Accounting must satisfy the lints and the
        // H2D total must never grow.
        let hd = |rt: &Fluidicl| rt.reports().iter().map(|r| r.hd_bytes).sum::<u64>();
        assert!(
            hd(&on) <= hd(&off),
            "{}: dirty-range H2D bytes grew ({} vs {})",
            b.name,
            hd(&on),
            hd(&off)
        );
        for report in on.reports() {
            assert!(
                lint_report(report).is_empty(),
                "{}: dirty-range run must pass every protocol lint",
                b.name
            );
            for ev in &report.trace {
                if let TraceKind::HdEnqueued {
                    bytes, dirty_bytes, ..
                } = &ev.kind
                {
                    let d = dirty_bytes.expect("gate-on transfers are annotated");
                    assert_eq!(
                        *bytes,
                        d + STATUS_MSG_BYTES,
                        "{}: shipped bytes must equal dirty payload + status",
                        b.name
                    );
                }
            }
        }
    }
}

#[test]
fn gate_off_runs_are_deterministic() {
    // Two independent gate-off runs produce identical reports: same
    // timings, byte counts and rendered traces. This pins the default
    // protocol against accidental dependence on the new tracking state.
    for name in ["ATAX", "SYRK", "2MM"] {
        let a = run(name, false);
        let b = run(name, false);
        assert_eq!(a.reports().len(), b.reports().len());
        for (ra, rb) in a.reports().iter().zip(b.reports()) {
            assert_eq!(ra.duration, rb.duration, "{name}: duration differs");
            assert_eq!(ra.hd_bytes, rb.hd_bytes, "{name}: hd bytes differ");
            assert_eq!(ra.dh_bytes, rb.dh_bytes, "{name}: dh bytes differ");
            assert_eq!(
                render_timeline(&ra.kernel, &ra.trace),
                render_timeline(&rb.kernel, &rb.trace),
                "{name}: rendered traces differ"
            );
        }
    }
}
