//! The dirty-range transfer gate (`with_dirty_range_transfers`):
//!
//! * **on** (the default since the pipelined-subkernel PR) every transfer
//!   ships only the subkernel's written element ranges plus the status
//!   message, traces carry dirty-byte annotations, functional results stay
//!   bit-identical to the reference, every protocol lint (including the
//!   transfer-bytes accounting rule) passes, and the modelled H2D traffic
//!   never grows relative to whole-buffer shipping;
//! * **off** (`with_whole_buffer_transfers`, the compat flag) the protocol
//!   is byte-for-byte the historical whole-buffer one — traces carry no
//!   dirty annotations, every transfer ships full output buffers, and
//!   rendered timelines use the exact legacy line format.

use fluidicl::{
    lint_report, render_timeline, Fluidicl, FluidiclConfig, TraceKind, STATUS_MSG_BYTES,
};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::all_benchmarks;

fn test_size(name: &str) -> usize {
    match name {
        "ATAX" | "BICG" | "MVT" => 256,
        "CORR" => 64,
        "GESUMMV" => 512,
        "SYRK" | "SYR2K" | "GEMM" | "2MM" => 64,
        other => panic!("unknown benchmark {other}"),
    }
}

const SEED: u64 = 0xF1D1C1;

fn run_with(name: &str, config: FluidiclConfig) -> Fluidicl {
    let b = all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .expect("benchmark");
    let n = test_size(name);
    let mut rt = Fluidicl::new(
        MachineConfig::paper_testbed(),
        config.with_validate_protocol(true),
        (b.program)(n),
    );
    assert!(
        b.run_and_validate_sized(&mut rt, n, SEED).unwrap(),
        "{name} diverged from reference"
    );
    rt
}

fn run(name: &str, dirty: bool) -> Fluidicl {
    let config = if dirty {
        FluidiclConfig::default()
    } else {
        // The full legacy protocol: whole buffers, serial subkernels.
        FluidiclConfig::default()
            .with_whole_buffer_transfers()
            .with_pipeline_depth(1)
    };
    run_with(name, config)
}

#[test]
fn dirty_range_transfers_are_the_default() {
    let config = FluidiclConfig::default();
    assert!(
        config.dirty_range_transfers,
        "dirty-range transfers must be on by default"
    );
    assert!(
        !config.with_whole_buffer_transfers().dirty_range_transfers,
        "with_whole_buffer_transfers must restore the legacy protocol"
    );
    // The default protocol annotates every H2D data transfer.
    let rt = run_with("ATAX", FluidiclConfig::default());
    let mut saw_transfer = false;
    for report in rt.reports() {
        for ev in &report.trace {
            match &ev.kind {
                TraceKind::HdEnqueued { dirty_bytes, .. }
                | TraceKind::CoalescedSend { dirty_bytes, .. } => {
                    saw_transfer = true;
                    assert!(
                        dirty_bytes.is_some(),
                        "default-config transfers carry dirty accounting"
                    );
                }
                _ => {}
            }
        }
    }
    assert!(saw_transfer, "ATAX must ship CPU results");
}

#[test]
fn whole_buffer_compat_traces_use_the_legacy_format() {
    for b in all_benchmarks() {
        let rt = run(b.name, false);
        for report in rt.reports() {
            for ev in &report.trace {
                match &ev.kind {
                    TraceKind::HdEnqueued { dirty_bytes, .. } => assert_eq!(
                        *dirty_bytes, None,
                        "{}: compat transfers carry no dirty accounting",
                        b.name
                    ),
                    TraceKind::CoalescedSend { .. } => panic!(
                        "{}: the serial compat protocol never coalesces sends",
                        b.name
                    ),
                    _ => {}
                }
            }
            let rendered = render_timeline(&report.kernel, &report.trace);
            assert!(
                !rendered.contains("dirty"),
                "{}: compat timeline must render the legacy lines",
                b.name
            );
        }
    }
}

#[test]
fn default_matches_compat_bit_for_bit_and_lints_clean() {
    for b in all_benchmarks() {
        let off = run(b.name, false);
        let on = run(b.name, true);
        // Same kernels, same work split decisions only if timings agree —
        // we only require the *functional* contract: both validated against
        // the reference above. Accounting must satisfy the lints and the
        // H2D total must never grow.
        let hd = |rt: &Fluidicl| rt.reports().iter().map(|r| r.hd_bytes).sum::<u64>();
        assert!(
            hd(&on) <= hd(&off),
            "{}: dirty-range H2D bytes grew ({} vs {})",
            b.name,
            hd(&on),
            hd(&off)
        );
        for report in on.reports() {
            assert!(
                lint_report(report).is_empty(),
                "{}: dirty-range run must pass every protocol lint",
                b.name
            );
            for ev in &report.trace {
                if let TraceKind::HdEnqueued {
                    bytes, dirty_bytes, ..
                } = &ev.kind
                {
                    let d = dirty_bytes.expect("default transfers are annotated");
                    assert_eq!(
                        *bytes,
                        d + STATUS_MSG_BYTES,
                        "{}: shipped bytes must equal dirty payload + status",
                        b.name
                    );
                }
            }
        }
    }
}

#[test]
fn both_protocols_run_deterministically() {
    // Two independent runs of either protocol produce identical reports:
    // same timings, byte counts and rendered traces. This pins both the
    // default and the compat configuration against accidental dependence
    // on hidden state.
    for dirty in [false, true] {
        for name in ["ATAX", "SYRK", "2MM"] {
            let a = run(name, dirty);
            let b = run(name, dirty);
            assert_eq!(a.reports().len(), b.reports().len());
            for (ra, rb) in a.reports().iter().zip(b.reports()) {
                assert_eq!(ra.duration, rb.duration, "{name}: duration differs");
                assert_eq!(ra.hd_bytes, rb.hd_bytes, "{name}: hd bytes differ");
                assert_eq!(ra.dh_bytes, rb.dh_bytes, "{name}: dh bytes differ");
                assert_eq!(
                    render_timeline(&ra.kernel, &ra.trace),
                    render_timeline(&rb.kernel, &rb.trace),
                    "{name}: rendered traces differ"
                );
            }
        }
    }
}
