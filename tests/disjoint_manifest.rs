//! End-to-end loop for disjoint-write proof manifests: the sweep binary
//! (`fluidicl-check --emit-disjoint`) proves kernels disjoint on real
//! launches and writes `ci/disjoint_proofs.json`; the runtime consumes it
//! via `parse_disjoint_manifest` + `Fluidicl::apply_disjoint_proofs`,
//! promoting proven kernels and unlocking intra-launch parallelism without
//! hand-editing `with_disjoint_writes` declarations.

use fluidicl::{parse_disjoint_manifest, Fluidicl, FluidiclConfig};
use fluidicl_hetsim::{KernelProfile, MachineConfig};
use fluidicl_vcl::{ArgRole, ArgSpec, ClDriver, KernelArg, KernelDef, NdRange, Program};

#[test]
fn checked_in_manifest_parses_and_covers_the_suite() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/ci/disjoint_proofs.json");
    let text = std::fs::read_to_string(path).expect("ci/disjoint_proofs.json is checked in");
    let proven = parse_disjoint_manifest(&text);
    assert!(
        proven.iter().any(|k| k == "syrk"),
        "the prover verifies SYRK on every sweep launch: {proven:?}"
    );
    assert!(proven.len() >= 9, "one kernel per benchmark at minimum");
}

/// A kernel that is disjoint in practice but does NOT declare it — the
/// situation the prover + manifest exist for.
fn undeclared_program() -> Program {
    let mut p = Program::new();
    p.register(KernelDef::new(
        "scale_undeclared",
        vec![
            ArgSpec::new("src", ArgRole::In),
            ArgSpec::new("dst", ArgRole::Out),
            ArgSpec::new("f", ArgRole::Scalar),
        ],
        KernelProfile::new("scale_undeclared")
            .flops_per_item(4.0)
            .bytes_read_per_item(4.0)
            .bytes_written_per_item(4.0),
        |item, scalars, ins, outs| {
            let i = item.global_linear();
            outs.at(0)[i] = (scalars.f32(0) * ins.get(0)[i]).sin().exp();
        },
    ));
    p
}

#[test]
fn applying_a_proof_manifest_promotes_and_stays_bit_identical() {
    let run = |apply_manifest: bool| {
        let mut rt = Fluidicl::new(
            MachineConfig::paper_testbed(),
            FluidiclConfig::default().with_validate_protocol(true),
            undeclared_program(),
        );
        if apply_manifest {
            let manifest = r#"{ "proven": ["scale_undeclared", "not_in_program"] }"#;
            let proven = parse_disjoint_manifest(manifest);
            assert_eq!(
                rt.apply_disjoint_proofs(&proven, 4),
                1,
                "one kernel promoted"
            );
            assert_eq!(
                rt.apply_disjoint_proofs(&proven, 4),
                0,
                "promotion is idempotent"
            );
        }
        let n = 4096;
        let src = rt.create_buffer(n);
        let dst = rt.create_buffer(n);
        let input: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
        rt.write_buffer(src, &input).unwrap();
        rt.enqueue_kernel(
            "scale_undeclared",
            NdRange::d1(n, 64).unwrap(),
            &[
                KernelArg::Buffer(src),
                KernelArg::Buffer(dst),
                KernelArg::F32(1.7),
            ],
        )
        .unwrap();
        (rt.read_buffer(dst).unwrap(), rt.elapsed())
    };
    let (plain, t_plain) = run(false);
    let (promoted, t_promoted) = run(true);
    assert_eq!(
        plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        promoted.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "promoted parallel execution must be byte-identical"
    );
    assert_eq!(
        t_plain, t_promoted,
        "promotion unlocks host threads, not modelled time"
    );
}
