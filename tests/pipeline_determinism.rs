//! The pipelined CPU subkernel executor is a *scheduling* change, never a
//! *functional* one:
//!
//! * at every pipeline depth (1 = serial, 2 = default, 4 = deep) each
//!   benchmark's final buffers are bit-identical to the sequential
//!   reference — and therefore to each other — and every protocol lint
//!   passes;
//! * depth 1 under whole-buffer transfers is byte-for-byte the pre-pipeline
//!   serial protocol: its rendered traces reproduce `tests/golden/` exactly;
//! * repeated runs at any depth are deterministic.

use fluidicl::{lint_report, render_lanes, render_timeline, Fluidicl, FluidiclConfig};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::all_benchmarks;

fn test_size(name: &str) -> usize {
    match name {
        "ATAX" | "BICG" | "MVT" => 256,
        "CORR" => 64,
        "GESUMMV" => 512,
        "SYRK" | "SYR2K" | "GEMM" | "2MM" => 64,
        other => panic!("unknown benchmark {other}"),
    }
}

const SEED: u64 = 0xF1D1C1;

fn run(name: &str, config: FluidiclConfig) -> Fluidicl {
    let b = all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .expect("benchmark");
    let n = test_size(name);
    let mut rt = Fluidicl::new(
        MachineConfig::paper_testbed(),
        config.with_validate_protocol(true),
        (b.program)(n),
    );
    assert!(
        b.run_and_validate_sized(&mut rt, n, SEED).unwrap(),
        "{name} diverged from reference"
    );
    rt
}

#[test]
fn every_depth_computes_identical_buffers_and_lints_clean() {
    for b in all_benchmarks() {
        for depth in [1, 2, 4] {
            // `run` validates bit-for-bit against the sequential reference,
            // so all three depths necessarily agree with each other.
            let rt = run(b.name, FluidiclConfig::default().with_pipeline_depth(depth));
            for report in rt.reports() {
                assert!(
                    lint_report(report).is_empty(),
                    "{} depth {depth}: protocol lints must pass, got {:?}",
                    b.name,
                    lint_report(report)
                );
            }
        }
    }
}

/// Renders a run exactly the way `tests/golden_gen.rs` does.
fn render_serial_run(name: &str) -> String {
    let rt = run(
        name,
        FluidiclConfig::default()
            .with_whole_buffer_transfers()
            .with_pipeline_depth(1),
    );
    let mut out = String::new();
    for r in rt.reports() {
        out.push_str(&format!(
            "kernel {} duration {} hd {} dh {} gpu {} cpu {} merged {} subs {}\n",
            r.kernel,
            r.duration.as_nanos(),
            r.hd_bytes,
            r.dh_bytes,
            r.gpu_executed_wgs,
            r.cpu_executed_wgs,
            r.cpu_merged_wgs,
            r.subkernels
        ));
        out.push_str(&render_timeline(&r.kernel, &r.trace));
        out.push_str(&render_lanes(&r.kernel, &r.trace, 60));
    }
    out
}

#[test]
fn depth_one_whole_buffer_reproduces_the_golden_serial_traces() {
    for b in all_benchmarks() {
        let golden_path = format!(
            "{}/tests/golden/serial_{}.txt",
            env!("CARGO_MANIFEST_DIR"),
            b.name.to_lowercase()
        );
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("read {golden_path}: {e}"));
        let rendered = render_serial_run(b.name);
        assert_eq!(
            rendered, golden,
            "{}: the serial compat configuration must reproduce the \
             pre-pipeline wire protocol byte-for-byte (regenerate with \
             `cargo test --test golden_gen -- --ignored` only for an \
             intentional protocol change)",
            b.name
        );
    }
}

#[test]
fn deep_pipelines_run_deterministically() {
    for name in ["ATAX", "BICG", "GESUMMV"] {
        let config = || FluidiclConfig::default().with_pipeline_depth(4);
        let a = run(name, config());
        let b = run(name, config());
        assert_eq!(a.reports().len(), b.reports().len());
        for (ra, rb) in a.reports().iter().zip(b.reports()) {
            assert_eq!(ra.duration, rb.duration, "{name}: duration differs");
            assert_eq!(
                render_timeline(&ra.kernel, &ra.trace),
                render_timeline(&rb.kernel, &rb.trace),
                "{name}: rendered traces differ"
            );
        }
    }
}
