//! Owner-failover contract on the 3-device testbed: when the acting owner
//! GPU misses its wave watchdog, a surviving peer is promoted to owner
//! under a new epoch and the kernel still completes bit-identically to the
//! sequential reference — stale old-epoch messages are rejected, the
//! promoted peer's pre-promotion contributions are rolled back and
//! recomputed exactly once, and follow-on kernels re-form co-execution on
//! every healthy survivor instead of degrading to a single device.
//!
//! The full grid runs in `fluidicl-check --faults` (the owner-failover
//! sweep families); these tests pin one hand-picked scenario per guarantee.

use fluidicl::{render_timeline, Fluidicl, FluidiclConfig, RecoveryPolicy, TraceKind};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::all_benchmarks;
use fluidicl_vcl::{ClError, ClResult, DeviceKind, FaultKind, FaultPlan};

fn test_size(name: &str) -> usize {
    match name {
        "ATAX" | "BICG" | "MVT" => 256,
        "CORR" => 64,
        "GESUMMV" => 512,
        "SYRK" | "SYR2K" | "GEMM" | "2MM" => 64,
        other => panic!("unknown benchmark {other}"),
    }
}

const SEED: u64 = 0xF1D1C1;
const SCAN: u64 = 64;

fn faulty(kind: FaultKind, plan_seed: u64) -> FluidiclConfig {
    FluidiclConfig::default()
        .with_validate_protocol(true)
        .with_faults(Some(FaultPlan::new(kind, plan_seed)))
}

/// Runs `name` on the paper testbed extended with one peer GPU (a CPU, the
/// primary owner card and one midrange peer — the smallest machine where
/// owner loss leaves two survivors).
fn run3(name: &str, config: FluidiclConfig) -> (Fluidicl, ClResult<bool>) {
    let b = all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .expect("benchmark");
    let n = test_size(name);
    let mut rt = Fluidicl::new(MachineConfig::paper_testbed_3dev(), config, (b.program)(n));
    let res = b.run_and_validate_sized(&mut rt, n, SEED);
    (rt, res)
}

fn has_event(rt: &Fluidicl, pred: impl Fn(&TraceKind) -> bool) -> bool {
    rt.reports()
        .iter()
        .any(|r| r.trace.iter().any(|e| pred(&e.kind)))
}

/// Scans plan seeds until a run matching `pred` appears — fault triggers
/// are seed-positioned, so a given scenario only materialises on some
/// seeds. Deterministic: the same seed always yields the same run.
fn scan3(
    name: &str,
    config: impl Fn(u64) -> FluidiclConfig,
    pred: impl Fn(&Fluidicl, &ClResult<bool>) -> bool,
) -> (Fluidicl, ClResult<bool>) {
    for ps in 0..SCAN {
        let (rt, res) = run3(name, config(ps));
        if pred(&rt, &res) {
            return (rt, res);
        }
    }
    panic!("no plan seed in 0..{SCAN} produced the scenario for {name}");
}

fn promoted(rt: &Fluidicl) -> bool {
    has_event(rt, |k| matches!(k, TraceKind::OwnerPromoted { .. }))
}

#[test]
fn owner_loss_promotes_a_surviving_peer_and_recovers_bit_identically() {
    let (rt, res) = scan3(
        "SYRK",
        |ps| faulty(FaultKind::GpuLost, ps),
        |rt, _| promoted(rt),
    );
    assert!(res.unwrap(), "promoted run must match the reference");
    assert!(rt.fault_fired());
    // The promotion migrates ownership under a fresh epoch (primary owner
    // is epoch 0) and the trace still records the primary card's loss.
    assert!(has_event(&rt, |k| matches!(
        k,
        TraceKind::OwnerPromoted { dev, epoch } if *dev > 0 && *epoch > 0
    )));
    assert!(has_event(&rt, |k| matches!(
        k,
        TraceKind::DeviceLost {
            device: DeviceKind::Gpu
        }
    )));
    // The roster charges the loss to the primary card only: the CPU and
    // the promoted peer stay healthy for follow-on kernels.
    assert!(!rt.roster().gpu_healthy());
    assert!(rt.roster().cpu_healthy());
    assert!(rt.roster().dead_peers().is_empty());
}

#[test]
fn promotion_rejects_stale_old_epoch_messages() {
    // ATAX's many small work-groups keep sends in flight at the instant
    // the owner dies, so some status messages arrive addressed to the dead
    // epoch. The new owner must reject them (their ranges stay below the
    // watermark and the wave walk re-covers them) and still validate.
    let (rt, res) = scan3(
        "ATAX",
        |ps| faulty(FaultKind::GpuLost, ps),
        |rt, _| promoted(rt) && has_event(rt, |k| matches!(k, TraceKind::EpochRejected { .. })),
    );
    assert!(res.unwrap(), "epoch-fenced run must match the reference");
    assert!(rt.fault_fired());
}

#[test]
fn follow_on_kernels_reform_on_cpu_and_peer_after_owner_loss() {
    // CORR enqueues four kernels. Once the owner GPU dies in an early one
    // and a peer is promoted, every later kernel must re-form two-device
    // co-execution (CPU + acting-owner peer) — never a single-device
    // degraded run — and the whole benchmark must match the reference.
    let (rt, res) = scan3(
        "CORR",
        |ps| faulty(FaultKind::GpuLost, ps),
        |rt, res| {
            if !matches!(res, Ok(true)) {
                return false;
            }
            rt.reports()
                .iter()
                .position(|r| {
                    r.trace
                        .iter()
                        .any(|e| matches!(e.kind, TraceKind::OwnerPromoted { .. }))
                })
                .is_some_and(|i| i + 1 < rt.reports().len())
        },
    );
    assert!(res.unwrap());
    assert!(!rt.roster().gpu_healthy() && rt.roster().cpu_healthy());
    let lost_at = rt
        .reports()
        .iter()
        .position(|r| {
            r.trace
                .iter()
                .any(|e| matches!(e.kind, TraceKind::OwnerPromoted { .. }))
        })
        .unwrap();
    // The kernel right after the loss re-forms with the peer as acting
    // owner and the CPU as its partner — two healthy survivors, so no
    // single-device degraded span, and both devices execute work-groups
    // in the two-device vocabulary (owner waves + CPU subkernels). Later
    // kernels may still degrade: the plan's sticky verdict keeps killing
    // GPU waves, so the acting peer can be the cascade's next victim.
    let r = &rt.reports()[lost_at + 1];
    let degraded = r.trace.iter().any(|e| {
        matches!(
            e.kind,
            TraceKind::DegradedRun { .. } | TraceKind::EpDegradedRun { .. }
        )
    });
    assert!(
        !degraded,
        "{}: the kernel after owner loss must co-execute on the survivors",
        r.kernel
    );
    let owner_ran = r
        .trace
        .iter()
        .any(|e| matches!(e.kind, TraceKind::GpuWaveStart { .. }));
    let cpu_ran = r
        .trace
        .iter()
        .any(|e| matches!(e.kind, TraceKind::CpuSubkernelStart { .. }));
    assert!(
        owner_ran && cpu_ran,
        "{}: both survivors must execute work-groups",
        r.kernel
    );
}

#[test]
fn follow_on_kernels_reform_on_owner_and_peer_after_cpu_loss() {
    // Losing the CPU in a 3-device machine leaves two healthy GPUs: later
    // kernels keep co-executing (owner waves + peer claims) instead of
    // collapsing onto the owner alone.
    let (rt, res) = scan3(
        "CORR",
        |ps| faulty(FaultKind::CpuLost, ps),
        |rt, res| {
            if !matches!(res, Ok(true)) {
                return false;
            }
            rt.reports()
                .iter()
                .position(|r| {
                    r.trace
                        .iter()
                        .any(|e| matches!(e.kind, TraceKind::NonOwnerLost { dev: 0 }))
                })
                .is_some_and(|i| i + 1 < rt.reports().len())
        },
    );
    assert!(res.unwrap());
    assert!(!rt.roster().cpu_healthy() && rt.roster().gpu_healthy());
    let lost_at = rt
        .reports()
        .iter()
        .position(|r| {
            r.trace
                .iter()
                .any(|e| matches!(e.kind, TraceKind::NonOwnerLost { dev: 0 }))
        })
        .unwrap();
    for r in &rt.reports()[lost_at + 1..] {
        let degraded = r.trace.iter().any(|e| {
            matches!(
                e.kind,
                TraceKind::DegradedRun { .. } | TraceKind::EpDegradedRun { .. }
            )
        });
        assert!(
            !degraded,
            "{}: kernels after CPU loss must co-execute on the GPUs",
            r.kernel
        );
        let owner_ran = r
            .trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::GpuWaveStart { .. }));
        let peer_ran = r
            .trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::EpSubkernelStart { dev, .. } if dev > 0));
        assert!(
            owner_ran && peer_ran,
            "{}: both surviving GPUs must execute work-groups",
            r.kernel
        );
    }
}

#[test]
fn disabling_promotion_names_the_device_that_missed_its_watchdog() {
    // Satellite regression: with promotion off, a double loss that takes
    // the owner first and a *peer GPU* last must blame the peer — the
    // typed error used to say "CPU subkernel" no matter which endpoint
    // actually missed its deadline.
    let config = |ps| {
        faulty(FaultKind::DoubleLoss, ps)
            .with_recovery(RecoveryPolicy::default().with_promote_on_owner_loss(false))
    };
    let mut saw_peer_detail = false;
    let mut saw_cpu_detail = false;
    for ps in 0..SCAN {
        let (_, res) = run3("ATAX", config(ps));
        if let Err(ClError::DeviceLost { device, detail }) = res {
            if detail.contains("missed its watchdog deadline after the GPU was already lost") {
                if detail.contains("peer GPU ep") {
                    assert_eq!(device, DeviceKind::Gpu, "a peer-blaming loss is a GPU loss");
                    saw_peer_detail = true;
                } else {
                    assert!(
                        detail.contains("CPU subkernel"),
                        "unexpected detail {detail}"
                    );
                    assert_eq!(device, DeviceKind::Cpu);
                    saw_cpu_detail = true;
                }
            }
        }
        if saw_peer_detail && saw_cpu_detail {
            return;
        }
    }
    assert!(
        saw_peer_detail,
        "no plan seed in 0..{SCAN} made a peer GPU the last watchdog victim"
    );
}

#[test]
fn promoted_runs_are_deterministic() {
    // Same plan seed, same machine: a run that promotes mid-kernel must
    // reproduce its outcome, timings and full rendered trace exactly.
    let ps = (0..SCAN)
        .find(|ps| promoted(&run3("SYRK", faulty(FaultKind::GpuLost, *ps)).0))
        .expect("some plan seed promotes");
    let (rt_a, res_a) = run3("SYRK", faulty(FaultKind::GpuLost, ps));
    let (rt_b, res_b) = run3("SYRK", faulty(FaultKind::GpuLost, ps));
    let render = |res: &ClResult<bool>| match res {
        Ok(ok) => format!("ok({ok})"),
        Err(e) => format!("err({e})"),
    };
    assert_eq!(render(&res_a), render(&res_b), "outcome differs");
    assert_eq!(rt_a.reports().len(), rt_b.reports().len());
    for (ra, rb) in rt_a.reports().iter().zip(rt_b.reports()) {
        assert_eq!(ra.duration, rb.duration, "duration differs");
        assert_eq!(
            render_timeline(&ra.kernel, &ra.trace),
            render_timeline(&rb.kernel, &rb.trace),
            "rendered traces differ"
        );
    }
}

#[test]
fn cascading_owner_losses_end_in_a_typed_error_or_a_valid_run() {
    // DoubleLoss with promotion on: the owner dies, a peer is promoted,
    // and the sticky kill verdicts keep eating survivors. Whatever the
    // interleaving, the run must end bit-identical or in a typed
    // DeviceLost — never a panic, a hang or silent corruption.
    let mut cascades = 0;
    for ps in 0..SCAN {
        let (rt, res) = run3("ATAX", faulty(FaultKind::DoubleLoss, ps));
        if promoted(&rt) {
            cascades += 1;
        }
        match res {
            Ok(ok) => assert!(ok, "plan seed {ps}: recovered run must validate"),
            Err(ClError::DeviceLost { .. }) => {}
            Err(e) => panic!("plan seed {ps}: expected DeviceLost, got {e}"),
        }
    }
    assert!(cascades > 0, "no plan seed promoted before the cascade");
}
