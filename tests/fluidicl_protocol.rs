//! Behavioural tests of the FluidiCL co-execution protocol: who finishes,
//! what gets transferred, how the runtime reacts to lopsided devices, and
//! that everything is deterministic.

use fluidicl::{Finisher, Fluidicl, FluidiclConfig};
use fluidicl_hetsim::{CpuModel, KernelProfile, MachineConfig};
use fluidicl_vcl::{ArgRole, ArgSpec, ClDriver, KernelArg, KernelDef, NdRange, Program};

/// A generic row-reduction kernel whose device balance is set by the
/// profile passed in.
fn reduction_program(profile: KernelProfile) -> Program {
    let mut p = Program::new();
    p.register(KernelDef::new(
        "reduce_rows",
        vec![
            ArgSpec::new("a", ArgRole::In),
            ArgSpec::new("out", ArgRole::Out),
            ArgSpec::new("n", ArgRole::Scalar),
        ],
        profile,
        |item, scalars, ins, outs| {
            let n = scalars.usize(0);
            let i = item.global[0];
            let a = ins.get(0);
            let mut acc = 0.0f32;
            for j in 0..n {
                acc += a[i * n + j];
            }
            outs.at(0)[i] = acc;
        },
    ));
    p
}

fn drive(rt: &mut Fluidicl, n: usize, wg: usize) -> Vec<f32> {
    let a: Vec<f32> = (0..n * n).map(|i| (i % 97) as f32).collect();
    let a_buf = rt.create_buffer(n * n);
    let out_buf = rt.create_buffer(n);
    rt.write_buffer(a_buf, &a).unwrap();
    rt.enqueue_kernel(
        "reduce_rows",
        NdRange::d1(n, wg).unwrap(),
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(out_buf),
            KernelArg::Usize(n),
        ],
    )
    .unwrap();
    rt.read_buffer(out_buf).unwrap()
}

fn expected(n: usize) -> Vec<f32> {
    let a: Vec<f32> = (0..n * n).map(|i| (i % 97) as f32).collect();
    (0..n).map(|i| a[i * n..(i + 1) * n].iter().sum()).collect()
}

fn base_profile(n: usize) -> KernelProfile {
    KernelProfile::new("reduce_rows")
        .flops_per_item(n as f64)
        .bytes_read_per_item(4.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
}

#[test]
fn cpu_finishes_all_when_gpu_is_hopeless_and_dh_is_skipped() {
    // Fully scattered + divergent: the GPU has no chance; the CPU computes
    // the entire NDRange first and the final data lives on the CPU — no
    // device-to-host transfer happens (paper §4.2, §4.4, §6.2).
    let n = 256;
    let profile = base_profile(n)
        .gpu_coalescing(0.0)
        .gpu_divergence(1.0)
        .cpu_cache_locality(1.0);
    let mut rt = Fluidicl::new(
        MachineConfig::paper_testbed(),
        FluidiclConfig::default(),
        reduction_program(profile),
    );
    let out = drive(&mut rt, n, 16);
    assert_eq!(out, expected(n));
    let r = &rt.reports()[0];
    assert_eq!(r.finished_by, Finisher::Cpu);
    assert_eq!(r.dh_bytes, 0, "CPU-finished kernels skip the DH transfer");
    assert_eq!(r.cpu_executed_wgs, r.total_wgs);
}

#[test]
fn gpu_takes_everything_when_the_cpu_cannot_help() {
    // A cache-hostile scalar CPU with enormous launch overhead: the GPU
    // should execute (almost) the whole NDRange and finish the kernel.
    let n = 256;
    let profile = base_profile(n)
        .cpu_cache_locality(0.0)
        .cpu_simd_friendliness(0.0);
    let mut machine = MachineConfig::paper_testbed();
    machine.cpu = CpuModel::xeon_w3550_like()
        .with_launch_overhead(fluidicl_des::SimDuration::from_millis(50));
    let mut rt = Fluidicl::new(
        machine,
        FluidiclConfig::default(),
        reduction_program(profile),
    );
    let out = drive(&mut rt, n, 16);
    assert_eq!(out, expected(n));
    let r = &rt.reports()[0];
    assert_eq!(r.finished_by, Finisher::Gpu);
    assert_eq!(
        r.cpu_merged_wgs, 0,
        "no CPU result should arrive before the GPU finishes"
    );
    assert_eq!(r.gpu_executed_wgs, r.total_wgs);
}

#[test]
fn balanced_devices_split_the_kernel() {
    let n = 512;
    let profile = base_profile(n)
        .gpu_coalescing(0.3)
        .cpu_cache_locality(0.9)
        .cpu_simd_friendliness(0.9);
    let mut rt = Fluidicl::new(
        MachineConfig::paper_testbed(),
        FluidiclConfig::default(),
        reduction_program(profile),
    );
    let out = drive(&mut rt, n, 8);
    assert_eq!(out, expected(n));
    let r = &rt.reports()[0];
    assert!(
        r.cpu_merged_wgs > 0 && r.cpu_merged_wgs < r.total_wgs,
        "both devices should contribute (cpu merged {} of {})",
        r.cpu_merged_wgs,
        r.total_wgs
    );
    assert!(
        r.subkernels > 1,
        "the CPU should pipeline several subkernels"
    );
    // Coverage invariant: whatever was not merged from the CPU must have
    // been executed by the GPU.
    assert!(r.gpu_executed_wgs >= r.total_wgs - r.cpu_merged_wgs);
}

#[test]
fn runs_are_bit_deterministic() {
    let n = 256;
    let run = || {
        let profile = base_profile(n).gpu_coalescing(0.4);
        let mut rt = Fluidicl::new(
            MachineConfig::paper_testbed(),
            FluidiclConfig::default(),
            reduction_program(profile),
        );
        let out = drive(&mut rt, n, 16);
        let r = rt.reports()[0].clone();
        (
            out,
            rt.elapsed(),
            r.cpu_merged_wgs,
            r.gpu_executed_wgs,
            r.subkernels,
            r.hd_bytes,
            r.dh_bytes,
        )
    };
    assert_eq!(run(), run(), "virtual-time execution must be deterministic");
}

#[test]
fn dead_link_starves_the_gpu_and_the_cpu_carries_the_kernel() {
    // A nearly-dead PCIe link: the GPU never receives its input data in
    // time, so the CPU — whose copy is host-resident — computes the whole
    // NDRange and the runtime completes on the CPU side. This is exactly
    // the "faster path wins" property the in-order data+status design
    // guarantees: a device that cannot be fed does no useful work.
    let n = 256;
    let mut machine = MachineConfig::paper_testbed();
    machine.h2d =
        fluidicl_hetsim::LinkModel::new(fluidicl_des::SimDuration::from_millis(200), 0.001);
    let profile = base_profile(n).gpu_coalescing(0.5);
    let mut rt = Fluidicl::new(
        machine,
        FluidiclConfig::default(),
        reduction_program(profile),
    );
    let out = drive(&mut rt, n, 16);
    assert_eq!(out, expected(n));
    let r = &rt.reports()[0];
    assert_eq!(r.finished_by, Finisher::Cpu);
    assert_eq!(r.cpu_executed_wgs, r.total_wgs);
    assert_eq!(r.dh_bytes, 0, "no results need to come back from the GPU");
}

#[test]
fn chained_kernels_report_increasing_ids_and_stay_coherent() {
    let n = 128;
    let profile = base_profile(n).gpu_coalescing(0.5);
    let mut p = reduction_program(profile.clone());
    // A second kernel consuming the first one's output.
    p.register(KernelDef::new(
        "scale_vec",
        vec![
            ArgSpec::new("v", ArgRole::InOut),
            ArgSpec::new("f", ArgRole::Scalar),
        ],
        KernelProfile::new("scale_vec")
            .flops_per_item(1.0)
            .bytes_read_per_item(4.0)
            .bytes_written_per_item(4.0),
        |item, scalars, _, outs| {
            let i = item.global_linear();
            outs.at(0)[i] *= scalars.f32(0);
        },
    ));
    let mut rt = Fluidicl::new(MachineConfig::paper_testbed(), FluidiclConfig::default(), p);
    let a: Vec<f32> = (0..n * n).map(|i| (i % 7) as f32).collect();
    let a_buf = rt.create_buffer(n * n);
    let out_buf = rt.create_buffer(n);
    rt.write_buffer(a_buf, &a).unwrap();
    rt.enqueue_kernel(
        "reduce_rows",
        NdRange::d1(n, 16).unwrap(),
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(out_buf),
            KernelArg::Usize(n),
        ],
    )
    .unwrap();
    rt.enqueue_kernel(
        "scale_vec",
        NdRange::d1(n, 16).unwrap(),
        &[KernelArg::Buffer(out_buf), KernelArg::F32(0.5)],
    )
    .unwrap();
    let out = rt.read_buffer(out_buf).unwrap();
    let want: Vec<f32> = (0..n)
        .map(|i| 0.5 * a[i * n..(i + 1) * n].iter().sum::<f32>())
        .collect();
    assert_eq!(out, want);
    let ids: Vec<u64> = rt.reports().iter().map(|r| r.kernel_id).collect();
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "kernel ids grow");
}

#[test]
fn work_group_splitting_helps_small_ndranges() {
    // GESUMMV-like shape: 8 giant work-groups on an 8-thread CPU where the
    // GPU is useless. Splitting spreads a partial allocation over all
    // threads (paper §6.3).
    let n = 1024;
    let profile = base_profile(n)
        .gpu_coalescing(0.0)
        .gpu_divergence(1.0)
        .cpu_cache_locality(0.95);
    let run = |split: bool| {
        let config = FluidiclConfig::default().with_wg_split(split);
        let mut rt = Fluidicl::new(
            MachineConfig::paper_testbed(),
            config,
            reduction_program(profile.clone()),
        );
        let out = drive(&mut rt, n, 256); // 4 work-groups
        assert_eq!(out, expected(n));
        rt.elapsed()
    };
    assert!(
        run(true) < run(false),
        "splitting 4 work-groups over 8 threads must help"
    );
}

#[test]
fn online_profiling_records_the_selected_version() {
    let n = 256;
    let slow = base_profile(n)
        .cpu_cache_locality(0.05)
        .cpu_simd_friendliness(0.1);
    let fast = base_profile(n)
        .cpu_cache_locality(0.95)
        .cpu_simd_friendliness(0.9);
    let mut p = Program::new();
    let body = |item: &fluidicl_vcl::WorkItem,
                scalars: &fluidicl_vcl::Scalars,
                ins: &fluidicl_vcl::Inputs<'_>,
                outs: &mut fluidicl_vcl::Outputs<'_>| {
        let n = scalars.usize(0);
        let i = item.global[0];
        let a = ins.get(0);
        let mut acc = 0.0f32;
        for j in 0..n {
            acc += a[i * n + j];
        }
        outs.at(0)[i] = acc;
    };
    p.register(
        KernelDef::new(
            "reduce_rows",
            vec![
                ArgSpec::new("a", ArgRole::In),
                ArgSpec::new("out", ArgRole::Out),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            slow,
            body,
        )
        .with_version("interchanged", fast, body),
    );
    let config = FluidiclConfig::default().with_online_profiling(true);
    let mut rt = Fluidicl::new(MachineConfig::paper_testbed(), config, p);
    let out = drive(&mut rt, n, 8);
    assert_eq!(out, expected(n));
    assert_eq!(
        rt.reports()[0].cpu_version_used,
        1,
        "profiling must pick the fast CPU version"
    );
}

#[test]
fn summary_aggregates_reports() {
    let n = 128;
    let profile = base_profile(n).gpu_coalescing(0.5);
    let mut rt = Fluidicl::new(
        MachineConfig::paper_testbed(),
        FluidiclConfig::default(),
        reduction_program(profile),
    );
    drive(&mut rt, n, 16);
    let s = rt.summary();
    assert_eq!(s.kernels, 1);
    assert_eq!(s.total_wgs, 8);
    assert!(s.cpu_share() <= 1.0);
}
