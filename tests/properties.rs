//! Property-based tests: for *arbitrary* kernel geometries, cost profiles
//! and runtime configurations, FluidiCL must compute exactly what a single
//! device computes, and its reports must satisfy the protocol invariants.

use fluidicl::{Fluidicl, FluidiclConfig};
use fluidicl_hetsim::{AbortMode, KernelProfile, MachineConfig};
use fluidicl_vcl::{
    ArgRole, ArgSpec, ClDriver, DeviceKind, KernelArg, KernelDef, NdRange, Program,
    SingleDeviceRuntime,
};
use proptest::prelude::*;

/// A position-dependent kernel: every element gets a value derived from its
/// own global index and the input, so any mis-assigned or dropped
/// work-group corrupts a detectable region.
fn program(profile: KernelProfile) -> Program {
    let mut p = Program::new();
    p.register(KernelDef::new(
        "stamp",
        vec![
            ArgSpec::new("src", ArgRole::In),
            ArgSpec::new("dst", ArgRole::Out),
            ArgSpec::new("k", ArgRole::Scalar),
        ],
        profile,
        |item, scalars, ins, outs| {
            let i = item.global_linear();
            let k = scalars.f32(0);
            outs.at(0)[i] = ins.get(0)[i] * k + (i as f32).sin();
        },
    ));
    p
}

fn arb_profile() -> impl Strategy<Value = KernelProfile> {
    (
        1.0f64..4096.0,          // flops per item
        0.0f64..4096.0,          // bytes read per item
        1u32..512,               // loop trips
        0.0f64..=1.0,            // coalescing
        0.0f64..=1.0,            // divergence
        0.0f64..=1.0,            // locality
        0.0f64..=1.0,            // simd
    )
        .prop_map(|(fl, br, trips, co, dv, lo, si)| {
            KernelProfile::new("stamp")
                .flops_per_item(fl)
                .bytes_read_per_item(br)
                .bytes_written_per_item(4.0)
                .inner_loop_trips(trips)
                .gpu_coalescing(co)
                .gpu_divergence(dv)
                .cpu_cache_locality(lo)
                .cpu_simd_friendliness(si)
        })
}

fn arb_geometry() -> impl Strategy<Value = NdRange> {
    prop_oneof![
        // 1-D: up to 2048 items in groups of 1..64.
        (1usize..64, 1usize..64).prop_map(|(groups, local)| {
            NdRange::d1(groups * local, local).expect("valid 1d range")
        }),
        // 2-D: small grids.
        (1usize..12, 1usize..12, 1usize..8, 1usize..8).prop_map(|(gx, gy, lx, ly)| {
            NdRange::d2(gx * lx, gy * ly, lx, ly).expect("valid 2d range")
        }),
        // 3-D: tiny volumes.
        (1usize..5, 1usize..5, 1usize..5, 1usize..4, 1usize..4, 1usize..4).prop_map(
            |(gx, gy, gz, lx, ly, lz)| {
                NdRange::d3(gx * lx, gy * ly, gz * lz, lx, ly, lz).expect("valid 3d range")
            }
        ),
    ]
}

fn arb_config() -> impl Strategy<Value = FluidiclConfig> {
    (
        0.5f64..100.0,
        0.0f64..10.0,
        prop_oneof![
            Just(AbortMode::WorkGroupStart),
            Just(AbortMode::InLoop),
            Just(AbortMode::InLoopUnrolled),
        ],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(chunk, step, abort, split, pool, track)| {
            FluidiclConfig::default()
                .with_chunk(chunk, step)
                .with_abort_mode(abort)
                .with_wg_split(split)
                .with_buffer_pool(pool)
                .with_location_tracking(track)
        })
}

fn run_driver(driver: &mut dyn ClDriver, nd: NdRange) -> Vec<f32> {
    let total = nd.num_items() as usize;
    let src: Vec<f32> = (0..total).map(|i| (i % 31) as f32 - 11.0).collect();
    let src_buf = driver.create_buffer(total);
    let dst_buf = driver.create_buffer(total);
    driver.write_buffer(src_buf, &src).unwrap();
    driver
        .enqueue_kernel(
            "stamp",
            nd,
            &[
                KernelArg::Buffer(src_buf),
                KernelArg::Buffer(dst_buf),
                KernelArg::F32(1.5),
            ],
        )
        .unwrap();
    driver.read_buffer(dst_buf).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FluidiCL output is bit-identical to a single device's, for any
    /// geometry, profile and configuration.
    #[test]
    fn fluidicl_equals_single_device(
        profile in arb_profile(),
        nd in arb_geometry(),
        config in arb_config(),
    ) {
        let machine = MachineConfig::paper_testbed();
        let mut single = SingleDeviceRuntime::new(
            machine.clone(),
            DeviceKind::Cpu,
            program(profile.clone()),
        );
        let want = run_driver(&mut single, nd);
        let mut fcl = Fluidicl::new(machine, config, program(profile));
        let got = run_driver(&mut fcl, nd);
        prop_assert_eq!(got, want);
    }

    /// Report invariants: coverage, monotone time, plausible counters.
    #[test]
    fn report_invariants_hold(
        profile in arb_profile(),
        nd in arb_geometry(),
        config in arb_config(),
    ) {
        let machine = MachineConfig::paper_testbed();
        let mut fcl = Fluidicl::new(machine, config, program(profile));
        let _ = run_driver(&mut fcl, nd);
        let r = &fcl.reports()[0];
        prop_assert_eq!(r.total_wgs, nd.num_groups());
        // Coverage: the GPU must have executed at least everything the CPU
        // did not deliver.
        prop_assert!(r.gpu_executed_wgs + r.cpu_merged_wgs >= r.total_wgs
            || r.cpu_executed_wgs == r.total_wgs);
        prop_assert!(r.cpu_merged_wgs <= r.cpu_executed_wgs);
        prop_assert!(r.complete_at >= r.enqueued_at);
        prop_assert!(r.subkernel_log.len() as u64 == r.subkernels);
        let logged: u64 = r.subkernel_log.iter().map(|(w, _)| *w).sum();
        prop_assert_eq!(logged, r.cpu_executed_wgs);
        prop_assert!(r.cpu_share() >= 0.0 && r.cpu_share() <= 1.0);
    }

    /// Determinism across repeated runs for arbitrary inputs.
    #[test]
    fn repeated_runs_are_identical(
        profile in arb_profile(),
        nd in arb_geometry(),
    ) {
        let machine = MachineConfig::paper_testbed();
        let once = |machine: &MachineConfig| {
            let mut fcl = Fluidicl::new(
                machine.clone(),
                FluidiclConfig::default(),
                program(profile.clone()),
            );
            let out = run_driver(&mut fcl, nd);
            (out, fcl.elapsed())
        };
        prop_assert_eq!(once(&machine), once(&machine));
    }
}
