//! Randomized property tests: for *arbitrary* kernel geometries, cost
//! profiles and runtime configurations, FluidiCL must compute exactly what
//! a single device computes, and its reports must satisfy the protocol
//! invariants. Cases come from the in-tree deterministic generator so
//! failures replay bit-for-bit.

use fluidicl::{Fluidicl, FluidiclConfig};
use fluidicl_des::SplitMix64;
use fluidicl_hetsim::{AbortMode, KernelProfile, MachineConfig};
use fluidicl_vcl::{
    ArgRole, ArgSpec, ClDriver, DeviceKind, KernelArg, KernelDef, NdRange, Program,
    SingleDeviceRuntime,
};

const CASES: u64 = 48;

/// A position-dependent kernel: every element gets a value derived from its
/// own global index and the input, so any mis-assigned or dropped
/// work-group corrupts a detectable region.
fn program(profile: KernelProfile) -> Program {
    let mut p = Program::new();
    p.register(KernelDef::new(
        "stamp",
        vec![
            ArgSpec::new("src", ArgRole::In),
            ArgSpec::new("dst", ArgRole::Out),
            ArgSpec::new("k", ArgRole::Scalar),
        ],
        profile,
        |item, scalars, ins, outs| {
            let i = item.global_linear();
            let k = scalars.f32(0);
            outs.at(0)[i] = ins.get(0)[i] * k + (i as f32).sin();
        },
    ));
    p
}

fn arb_profile(rng: &mut SplitMix64) -> KernelProfile {
    KernelProfile::new("stamp")
        .flops_per_item(rng.range_f64(1.0, 4096.0))
        .bytes_read_per_item(rng.range_f64(0.0, 4096.0))
        .bytes_written_per_item(4.0)
        .inner_loop_trips(rng.range_u64(1, 512) as u32)
        .gpu_coalescing(rng.next_f64())
        .gpu_divergence(rng.next_f64())
        .cpu_cache_locality(rng.next_f64())
        .cpu_simd_friendliness(rng.next_f64())
}

fn arb_geometry(rng: &mut SplitMix64) -> NdRange {
    match rng.range_u64(0, 3) {
        // 1-D: up to 4096 items in groups of 1..64.
        0 => {
            let groups = rng.range_usize(1, 64);
            let local = rng.range_usize(1, 64);
            NdRange::d1(groups * local, local).expect("valid 1d range")
        }
        // 2-D: small grids.
        1 => {
            let (gx, gy) = (rng.range_usize(1, 12), rng.range_usize(1, 12));
            let (lx, ly) = (rng.range_usize(1, 8), rng.range_usize(1, 8));
            NdRange::d2(gx * lx, gy * ly, lx, ly).expect("valid 2d range")
        }
        // 3-D: tiny volumes.
        _ => {
            let (gx, gy, gz) = (
                rng.range_usize(1, 5),
                rng.range_usize(1, 5),
                rng.range_usize(1, 5),
            );
            let (lx, ly, lz) = (
                rng.range_usize(1, 4),
                rng.range_usize(1, 4),
                rng.range_usize(1, 4),
            );
            NdRange::d3(gx * lx, gy * ly, gz * lz, lx, ly, lz).expect("valid 3d range")
        }
    }
}

fn arb_config(rng: &mut SplitMix64) -> FluidiclConfig {
    let abort = match rng.range_u64(0, 3) {
        0 => AbortMode::WorkGroupStart,
        1 => AbortMode::InLoop,
        _ => AbortMode::InLoopUnrolled,
    };
    FluidiclConfig::default()
        .with_chunk(rng.range_f64(0.5, 100.0), rng.range_f64(0.0, 10.0))
        .with_abort_mode(abort)
        .with_wg_split(rng.next_bool())
        .with_buffer_pool(rng.next_bool())
        .with_location_tracking(rng.next_bool())
}

fn run_driver(driver: &mut dyn ClDriver, nd: NdRange) -> Vec<f32> {
    let total = nd.num_items() as usize;
    let src: Vec<f32> = (0..total).map(|i| (i % 31) as f32 - 11.0).collect();
    let src_buf = driver.create_buffer(total);
    let dst_buf = driver.create_buffer(total);
    driver.write_buffer(src_buf, &src).unwrap();
    driver
        .enqueue_kernel(
            "stamp",
            nd,
            &[
                KernelArg::Buffer(src_buf),
                KernelArg::Buffer(dst_buf),
                KernelArg::F32(1.5),
            ],
        )
        .unwrap();
    driver.read_buffer(dst_buf).unwrap()
}

/// FluidiCL output is bit-identical to a single device's, for any geometry,
/// profile and configuration.
#[test]
fn fluidicl_equals_single_device() {
    let mut rng = SplitMix64::new(0xF151);
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let nd = arb_geometry(&mut rng);
        let config = arb_config(&mut rng);
        let machine = MachineConfig::paper_testbed();
        let mut single =
            SingleDeviceRuntime::new(machine.clone(), DeviceKind::Cpu, program(profile.clone()));
        let want = run_driver(&mut single, nd);
        let mut fcl = Fluidicl::new(machine, config, program(profile));
        let got = run_driver(&mut fcl, nd);
        assert_eq!(got, want);
    }
}

/// Report invariants: coverage, monotone time, plausible counters.
#[test]
fn report_invariants_hold() {
    let mut rng = SplitMix64::new(0xF152);
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let nd = arb_geometry(&mut rng);
        let config = arb_config(&mut rng);
        let machine = MachineConfig::paper_testbed();
        let mut fcl = Fluidicl::new(machine, config, program(profile));
        let _ = run_driver(&mut fcl, nd);
        let r = &fcl.reports()[0];
        assert_eq!(r.total_wgs, nd.num_groups());
        // Coverage: the GPU must have executed at least everything the CPU
        // did not deliver.
        assert!(
            r.gpu_executed_wgs + r.cpu_merged_wgs >= r.total_wgs
                || r.cpu_executed_wgs == r.total_wgs
        );
        assert!(r.cpu_merged_wgs <= r.cpu_executed_wgs);
        assert!(r.complete_at >= r.enqueued_at);
        assert!(r.subkernel_log.len() as u64 == r.subkernels);
        let logged: u64 = r.subkernel_log.iter().map(|(w, _)| *w).sum();
        assert_eq!(logged, r.cpu_executed_wgs);
        assert!(r.cpu_share() >= 0.0 && r.cpu_share() <= 1.0);
    }
}

/// Determinism across repeated runs for arbitrary inputs.
#[test]
fn repeated_runs_are_identical() {
    let mut rng = SplitMix64::new(0xF153);
    for _ in 0..CASES {
        let profile = arb_profile(&mut rng);
        let nd = arb_geometry(&mut rng);
        let machine = MachineConfig::paper_testbed();
        let once = |machine: &MachineConfig| {
            let mut fcl = Fluidicl::new(
                machine.clone(),
                FluidiclConfig::default(),
                program(profile.clone()),
            );
            let out = run_driver(&mut fcl, nd);
            (out, fcl.elapsed())
        };
        assert_eq!(once(&machine), once(&machine));
    }
}
