//! End-to-end wiring of the correctness tooling: the umbrella crate's
//! runtimes, the `fluidicl-check` sanitizer and the protocol linter all
//! compose over one benchmark run.

use fluidicl::{lint_report, Fluidicl, FluidiclConfig};
use fluidicl_check::AuditDriver;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::find;

const SEED: u64 = 0xF1D1C1;

#[test]
fn sanitizer_and_linter_pass_on_a_co_executed_benchmark() {
    let b = find("BICG").unwrap();
    let n = 256;

    // Access sanitizer: audit the host program's launches functionally.
    let mut audit = AuditDriver::new((b.program)(n));
    assert!(b.run_and_validate_sized(&mut audit, n, SEED).unwrap());
    assert_eq!(audit.diagnostic_count(), 0);

    // Protocol linter: co-execute with validation enabled, then re-lint
    // every report through the public API.
    let config = FluidiclConfig::default().with_validate_protocol(true);
    let mut rt = Fluidicl::new(MachineConfig::paper_testbed(), config, (b.program)(n));
    assert!(b.run_and_validate_sized(&mut rt, n, SEED).unwrap());
    assert!(!rt.reports().is_empty());
    for report in rt.reports() {
        assert!(lint_report(report).is_empty(), "kernel `{}`", report.kernel);
    }
}
