//! The fault-injection gate (`FluidiclConfig::with_faults`):
//!
//! * **off** (the default) the fault layer is inert — no watchdog events
//!   are scheduled, traces carry none of the fault/recovery event kinds,
//!   and the recovery policy is never consulted, so runs are byte-for-byte
//!   the historical protocol;
//! * **on**, recovery is exercised by `tests/fault_recovery.rs` and the
//!   `fluidicl-check --faults` sweep.

use fluidicl::{
    render_lanes, render_timeline, Fluidicl, FluidiclConfig, RecoveryPolicy, TraceKind,
};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::all_benchmarks;

fn test_size(name: &str) -> usize {
    match name {
        "ATAX" | "BICG" | "MVT" => 256,
        "CORR" => 64,
        "GESUMMV" => 512,
        "SYRK" | "SYR2K" | "GEMM" | "2MM" => 64,
        other => panic!("unknown benchmark {other}"),
    }
}

const SEED: u64 = 0xF1D1C1;

fn run(name: &str, config: FluidiclConfig) -> Fluidicl {
    let b = all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .expect("benchmark");
    let n = test_size(name);
    let mut rt = Fluidicl::new(MachineConfig::paper_testbed(), config, (b.program)(n));
    assert!(
        b.run_and_validate_sized(&mut rt, n, SEED).unwrap(),
        "{name} diverged from reference"
    );
    rt
}

fn is_fault_event(kind: &TraceKind) -> bool {
    matches!(
        kind,
        TraceKind::TransferFault { .. }
            | TraceKind::TransferRejected { .. }
            | TraceKind::TransferTimeout { .. }
            | TraceKind::DeviceLost { .. }
            | TraceKind::DegradedRun { .. }
            | TraceKind::EpTransferFault { .. }
            | TraceKind::EpTransferRejected { .. }
            | TraceKind::EpTransferTimeout { .. }
            | TraceKind::NonOwnerLost { .. }
            | TraceKind::OwnerPromoted { .. }
            | TraceKind::EpochRejected { .. }
            | TraceKind::EpDegradedRun { .. }
    )
}

#[test]
fn gate_off_traces_carry_no_fault_machinery() {
    for b in all_benchmarks() {
        let rt = run(
            b.name,
            FluidiclConfig::default().with_validate_protocol(true),
        );
        assert!(!rt.fault_fired(), "{}: no injector exists gate-off", b.name);
        assert_eq!(rt.lost_device(), None, "{}: no device can be lost", b.name);
        for report in rt.reports() {
            assert!(
                !report.trace.iter().any(|e| is_fault_event(&e.kind)),
                "{}: gate-off trace must not contain fault/recovery events",
                b.name
            );
        }
    }
}

#[test]
fn recovery_policy_is_inert_when_faults_are_off() {
    // With no fault plan, nothing consults the recovery policy: an extreme
    // policy must leave every report — timings, byte counts, rendered
    // timelines and lanes — bit-identical to the default. This pins the
    // gate-off protocol (and its traces) to the pre-fault-layer behaviour.
    let extreme = RecoveryPolicy::default()
        .with_watchdog_factor(100.0)
        .with_max_transfer_retries(0);
    for name in ["ATAX", "SYRK", "CORR", "2MM"] {
        let a = run(name, FluidiclConfig::default().with_validate_protocol(true));
        let b = run(
            name,
            FluidiclConfig::default()
                .with_validate_protocol(true)
                .with_recovery(extreme),
        );
        assert_eq!(a.reports().len(), b.reports().len());
        for (ra, rb) in a.reports().iter().zip(b.reports()) {
            assert_eq!(ra.duration, rb.duration, "{name}: duration differs");
            assert_eq!(ra.hd_bytes, rb.hd_bytes, "{name}: hd bytes differ");
            assert_eq!(ra.dh_bytes, rb.dh_bytes, "{name}: dh bytes differ");
            assert_eq!(
                render_timeline(&ra.kernel, &ra.trace),
                render_timeline(&rb.kernel, &rb.trace),
                "{name}: rendered timelines differ"
            );
            assert_eq!(
                render_lanes(&ra.kernel, &ra.trace, 60),
                render_lanes(&rb.kernel, &rb.trace, 60),
                "{name}: rendered lanes differ"
            );
        }
    }
}
