//! Recovery contract under injected faults (`FluidiclConfig::with_faults`):
//! every run either **recovers** — outputs bit-identical to the sequential
//! reference — or surfaces a **typed** error (`ClError::DeviceLost` /
//! `ClError::Timeout`). Never a panic, never a hang, never silent
//! corruption; and the same plan seed always reproduces the same schedule.
//!
//! The full 9-benchmark × 7-kind × N-seed grid runs in
//! `fluidicl-check --faults`; these tests pin one hand-picked scenario per
//! fault kind plus the pool-accounting and determinism guarantees.

use fluidicl::{render_timeline, Finisher, Fluidicl, FluidiclConfig, RecoveryPolicy, TraceKind};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::{all_benchmarks, syrk};
use fluidicl_vcl::{ClError, ClResult, DeviceKind, FaultKind, FaultPlan};

fn test_size(name: &str) -> usize {
    match name {
        "ATAX" | "BICG" | "MVT" => 256,
        "CORR" => 64,
        "GESUMMV" => 512,
        "SYRK" | "SYR2K" | "GEMM" | "2MM" => 64,
        other => panic!("unknown benchmark {other}"),
    }
}

const SEED: u64 = 0xF1D1C1;
const SCAN: u64 = 64;

fn faulty(kind: FaultKind, plan_seed: u64) -> FluidiclConfig {
    FluidiclConfig::default()
        .with_validate_protocol(true)
        .with_faults(Some(FaultPlan::new(kind, plan_seed)))
}

fn run_with(name: &str, config: FluidiclConfig) -> (Fluidicl, ClResult<bool>) {
    let b = all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .expect("benchmark");
    let n = test_size(name);
    let mut rt = Fluidicl::new(MachineConfig::paper_testbed(), config, (b.program)(n));
    let res = b.run_and_validate_sized(&mut rt, n, SEED);
    (rt, res)
}

fn has_event(rt: &Fluidicl, pred: impl Fn(&TraceKind) -> bool) -> bool {
    rt.reports()
        .iter()
        .any(|r| r.trace.iter().any(|e| pred(&e.kind)))
}

/// Scans plan seeds until a run matching `pred` appears — fault triggers
/// are seed-positioned, so a given scenario only materialises on some
/// seeds. Deterministic: the same seed always yields the same run.
fn scan(
    name: &str,
    kind: FaultKind,
    pred: impl Fn(&Fluidicl, &ClResult<bool>) -> bool,
) -> (Fluidicl, ClResult<bool>) {
    for ps in 0..SCAN {
        let (rt, res) = run_with(name, faulty(kind, ps));
        if pred(&rt, &res) {
            return (rt, res);
        }
    }
    panic!("no plan seed in 0..{SCAN} produced the scenario for {name}/{kind:?}");
}

#[test]
fn gpu_loss_recovers_bit_identically_on_the_cpu() {
    let (rt, res) = scan("SYRK", FaultKind::GpuLost, |rt, _| {
        rt.lost_device() == Some(DeviceKind::Gpu)
    });
    assert!(res.unwrap(), "survivor output must match the reference");
    assert!(rt.fault_fired());
    assert!(has_event(&rt, |k| matches!(
        k,
        TraceKind::DeviceLost {
            device: DeviceKind::Gpu
        }
    )));
    assert_eq!(rt.reports()[0].finished_by, Finisher::Cpu);
}

#[test]
fn cpu_loss_recovers_bit_identically_on_the_gpu() {
    let (rt, res) = scan("SYRK", FaultKind::CpuLost, |rt, _| {
        rt.lost_device() == Some(DeviceKind::Cpu)
    });
    assert!(res.unwrap(), "survivor output must match the reference");
    assert!(has_event(&rt, |k| matches!(
        k,
        TraceKind::DeviceLost {
            device: DeviceKind::Cpu
        }
    )));
    assert_eq!(rt.reports()[0].finished_by, Finisher::Gpu);
}

#[test]
fn transient_transfer_faults_retry_and_recover() {
    let (rt, res) = scan("SYRK", FaultKind::TransferTransient, |rt, _| {
        has_event(rt, |k| matches!(k, TraceKind::TransferFault { .. }))
    });
    assert!(res.unwrap(), "retried run must match the reference");
    assert_eq!(rt.lost_device(), None, "a transient fault loses no device");
}

#[test]
fn corrupt_payloads_are_rejected_and_resent() {
    let (rt, res) = scan("SYRK", FaultKind::CorruptPayload, |rt, _| {
        has_event(rt, |k| matches!(k, TraceKind::TransferRejected { .. }))
    });
    assert!(res.unwrap(), "resent run must match the reference");
    assert_eq!(rt.lost_device(), None);
}

#[test]
fn corrupt_statuses_are_rejected_and_resent() {
    let (rt, res) = scan("SYRK", FaultKind::CorruptStatus, |rt, _| {
        has_event(rt, |k| matches!(k, TraceKind::TransferRejected { .. }))
    });
    assert!(res.unwrap(), "resent run must match the reference");
    assert_eq!(rt.lost_device(), None);
}

#[test]
fn transfer_stalls_hit_the_watchdog_and_the_run_still_completes() {
    // GESUMMV: long enough that the GPU is still executing when the
    // transfer watchdog fires (on tiny kernels the GPU finishes first and
    // the wedged link is simply never needed again).
    let (rt, res) = scan("GESUMMV", FaultKind::TransferStall, |rt, _| {
        has_event(rt, |k| matches!(k, TraceKind::TransferTimeout { .. }))
    });
    assert!(res.unwrap(), "stalled-link run must match the reference");
    assert_eq!(rt.lost_device(), None, "a stalled link loses no device");
}

#[test]
fn double_loss_surfaces_a_typed_device_lost_error() {
    let (_, res) = scan("SYRK", FaultKind::DoubleLoss, |_, res| res.is_err());
    match res {
        Err(ClError::DeviceLost { .. }) => {}
        other => panic!("double loss must surface ClError::DeviceLost, got {other:?}"),
    }
}

#[test]
fn permanent_loss_degrades_follow_on_kernels() {
    // CORR enqueues four kernels; once the GPU dies in an early one, every
    // later kernel must run single-device on the CPU (a DegradedRun span)
    // and the whole benchmark must still match the reference.
    let (rt, res) = scan("CORR", FaultKind::GpuLost, |rt, res| {
        matches!(res, Ok(true)) && has_event(rt, |k| matches!(k, TraceKind::DegradedRun { .. }))
    });
    assert!(res.unwrap());
    assert_eq!(rt.lost_device(), Some(DeviceKind::Gpu));
    let lost_at = rt
        .reports()
        .iter()
        .position(|r| {
            r.trace.iter().any(|e| {
                matches!(
                    e.kind,
                    TraceKind::DeviceLost {
                        device: DeviceKind::Gpu
                    }
                )
            })
        })
        .expect("some report records the loss");
    for r in &rt.reports()[lost_at + 1..] {
        let degraded: Vec<_> = r
            .trace
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::DegradedRun { device, from, to } => Some((device, from, to)),
                _ => None,
            })
            .collect();
        assert!(
            !degraded.is_empty(),
            "{}: kernels after a permanent loss run degraded",
            r.kernel
        );
        assert!(
            degraded.iter().all(|(d, _, _)| *d == DeviceKind::Cpu),
            "{}: the survivor is the CPU",
            r.kernel
        );
        assert_eq!(r.finished_by, Finisher::Cpu);
    }
}

#[test]
fn same_plan_seed_reproduces_the_same_schedule() {
    for kind in FaultKind::all() {
        // Find a seed where the fault actually triggers, then re-run it
        // twice: outcome, timings and full rendered traces must agree.
        let ps = (0..SCAN)
            .find(|ps| run_with("SYRK", faulty(kind, *ps)).0.fault_fired())
            .unwrap_or_else(|| panic!("{kind:?} never fired in 0..{SCAN}"));
        let (rt_a, res_a) = run_with("SYRK", faulty(kind, ps));
        let (rt_b, res_b) = run_with("SYRK", faulty(kind, ps));
        let render = |res: &ClResult<bool>| match res {
            Ok(ok) => format!("ok({ok})"),
            Err(e) => format!("err({e})"),
        };
        assert_eq!(render(&res_a), render(&res_b), "{kind:?}: outcome differs");
        assert_eq!(rt_a.reports().len(), rt_b.reports().len());
        for (ra, rb) in rt_a.reports().iter().zip(rt_b.reports()) {
            assert_eq!(ra.duration, rb.duration, "{kind:?}: duration differs");
            assert_eq!(
                render_timeline(&ra.kernel, &ra.trace),
                render_timeline(&rb.kernel, &rb.trace),
                "{kind:?}: rendered traces differ"
            );
        }
    }
}

#[test]
fn exhausted_retries_surface_a_typed_timeout_and_pools_stay_balanced() {
    // Satellite: a launch that errors mid-flight must hand back every
    // pooled snapshot and scratch buffer it acquired — the free counts
    // after the error must equal those after a clean run — and the runtime
    // must stay usable for follow-on launches.
    let n = 64;
    let machine = MachineConfig::paper_testbed();
    let mut clean = Fluidicl::new(
        machine.clone(),
        FluidiclConfig::default().with_validate_protocol(true),
        syrk::program(n),
    );
    assert_eq!(
        syrk::run(&mut clean, n, SEED).unwrap(),
        syrk::reference(n, SEED)
    );
    let sf_ok = clean.snapshot_free_count();
    let scf_ok = clean.scratch_free_count();
    assert!(sf_ok > 0, "a clean launch cycles at least one snapshot");

    for ps in 0..SCAN {
        let config = FluidiclConfig::default()
            .with_validate_protocol(true)
            .with_faults(Some(FaultPlan::new(FaultKind::TransferTransient, ps)))
            .with_recovery(RecoveryPolicy::default().with_max_transfer_retries(0));
        let mut rt = Fluidicl::new(machine.clone(), config, syrk::program(n));
        match syrk::run(&mut rt, n, SEED) {
            Err(ClError::Timeout { .. }) => {
                assert_eq!(
                    rt.snapshot_free_count(),
                    sf_ok,
                    "snapshot pool leaked across a mid-flight error"
                );
                assert_eq!(
                    rt.scratch_free_count(),
                    scf_ok,
                    "scratch pool leaked across a mid-flight error"
                );
                // The transient trigger is consumed: a follow-on launch on
                // the same runtime succeeds and matches the reference.
                assert_eq!(
                    syrk::run(&mut rt, n, SEED).unwrap(),
                    syrk::reference(n, SEED)
                );
                return;
            }
            Ok(_) => continue, // fault never fired on this seed
            Err(e) => panic!("expected a typed timeout, got {e}"),
        }
    }
    panic!("no plan seed in 0..{SCAN} exhausted the zero-retry budget");
}

#[test]
fn chunk_shrink_on_retry_keeps_more_cpu_work_mergeable() {
    // The fault-aware shrink contract, end to end: under transient
    // transfer faults, halving the CPU chunk on retry must never launch a
    // *larger* subkernel after the fault than the no-shrink run would
    // (that post-fault batch is exactly the work a watchdog abandonment
    // strands un-merged), and must strictly shrink it somewhere in the
    // sweep — finer batches keep more of the CPU's work acknowledged and
    // mergeable on a flaky link.
    let cells = fluidicl_check::run_shrink_comparison(2);
    assert!(cells.iter().any(|c| c.fired), "no transient fault fired");
    for c in &cells {
        assert!(
            !c.is_failure(),
            "{} (plan_seed {}): shrink-on-retry launched a larger post-fault \
             subkernel ({} wgs vs {} without)",
            c.bench,
            c.plan_seed,
            c.at_risk_with_shrink,
            c.at_risk_without_shrink
        );
    }
    assert!(
        cells.iter().any(|c| c.improved()),
        "shrink-on-retry never reduced the post-fault at-risk window"
    );
}
