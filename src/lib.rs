//! # fluidicl-suite — umbrella crate for the FluidiCL reproduction
//!
//! A full reimplementation of *Fluidic Kernels: Cooperative Execution of
//! OpenCL Programs on Multiple Heterogeneous Devices* (Pandit &
//! Govindarajan, CGO 2014) in Rust, over a simulated CPU+GPU node.
//!
//! This crate re-exports the workspace members under stable paths and hosts
//! the runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). Start with [`runtime::Fluidicl`] and the `quickstart`
//! example:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release -p fluidicl-bench --bin repro all
//! ```
//!
//! Crate map:
//!
//! * [`des`] — deterministic discrete-event engine (virtual time).
//! * [`hetsim`] — CPU/GPU/link performance models of the paper's testbed.
//! * [`vcl`] — the OpenCL-style runtime (buffers, kernels, NDRanges,
//!   single-device execution).
//! * [`runtime`] — FluidiCL itself.
//! * [`polybench`] — the six benchmark applications of the evaluation.
//! * [`baselines`] — static partitioning, OracleSP and SOCL (eager/dmda).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fluidicl as runtime;
pub use fluidicl_baselines as baselines;
pub use fluidicl_des as des;
pub use fluidicl_hetsim as hetsim;
pub use fluidicl_polybench as polybench;
pub use fluidicl_vcl as vcl;

/// Convenience prelude importing the types most host programs need.
pub mod prelude {
    pub use fluidicl::{Fluidicl, FluidiclConfig};
    pub use fluidicl_hetsim::{AbortMode, KernelProfile, MachineConfig};
    pub use fluidicl_vcl::{
        ArgRole, ArgSpec, ClDriver, ClError, ClResult, DeviceKind, KernelArg, KernelDef, NdRange,
        Program, SingleDeviceRuntime,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _ = MachineConfig::paper_testbed();
        let _ = FluidiclConfig::default();
        let _ = Program::new();
    }
}
