//! Watch the adaptive chunk-size heuristic at work (paper §5.1, §9.5).
//!
//! ```bash
//! cargo run --release --example adaptive_split
//! ```
//!
//! Runs SYRK under FluidiCL with several initial-chunk/step settings and
//! prints the per-subkernel allocation trace: the CPU starts with a small
//! slice of the NDRange and grows it while the observed time-per-work-group
//! keeps improving — landing near the launch-overhead knee without any
//! prior training.

use fluidicl_suite::polybench::{find, syrk};
use fluidicl_suite::prelude::*;

fn run_with(initial_pct: f64, step_pct: f64) -> ClResult<()> {
    let bench = find("SYRK").expect("SYRK registered");
    let n = bench.default_n;
    let machine = MachineConfig::paper_testbed();
    let config = FluidiclConfig::default().with_chunk(initial_pct, step_pct);
    let mut fcl = Fluidicl::new(machine, config, syrk::program(n));
    let ok = bench.run_and_validate_sized(&mut fcl, n, 42)?;
    assert!(ok, "SYRK must match the reference");
    let report = &fcl.reports()[0];
    println!(
        "initial {initial_pct:>4.1}% step {step_pct:>3.1}%  total {}  \
         cpu share {:>5.1}%  duplicated {:>4} wgs",
        fcl.elapsed(),
        100.0 * report.cpu_share(),
        report.duplicated_wgs()
    );
    let trace: Vec<String> = report
        .subkernel_log
        .iter()
        .map(|(wgs, d)| format!("{wgs}wg/{d}"))
        .collect();
    println!("    subkernels: {}", trace.join(" -> "));
    Ok(())
}

fn main() -> ClResult<()> {
    println!(
        "SYRK ({n}x{n}, {wgs} work-groups) under different chunk policies:\n",
        n = find("SYRK").unwrap().default_n,
        wgs = syrk::workgroups(find("SYRK").unwrap().default_n)[0]
    );
    // The paper's default: small initial chunk, small steps.
    run_with(2.0, 2.0)?;
    // Frozen chunk (step 0%): no adaptation.
    run_with(2.0, 0.0)?;
    // Oversized initial chunk: the CPU over-commits and the GPU duplicates.
    run_with(50.0, 2.0)?;
    println!(
        "\nSmall adaptive chunks keep results flowing to the GPU; a 50% \
         initial chunk starves it of status updates (paper Figure 17)."
    );
    Ok(())
}
