//! Run one benchmark on every runtime the paper evaluates and compare.
//!
//! ```bash
//! cargo run --release --example runtime_shootout          # SYRK
//! cargo run --release --example runtime_shootout GESUMMV  # any benchmark
//! ```
//!
//! The identical host program drives six runtimes: CPU-only, GPU-only, the
//! best static split (OracleSP), SOCL with the eager and calibrated dmda
//! schedulers, and FluidiCL. Every run is validated against the sequential
//! reference before its time is reported.

use fluidicl_suite::baselines::{oracle_sweep, SoclRuntime, SoclScheduler, StaticPartitionRuntime};
use fluidicl_suite::polybench::find;
use fluidicl_suite::prelude::*;

fn main() -> ClResult<()> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "SYRK".to_string());
    let bench = find(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; one of ATAX BICG CORR GESUMMV SYRK SYR2K");
        std::process::exit(2);
    });
    let n = bench.default_n;
    let seed = 99;
    let machine = MachineConfig::paper_testbed();
    println!(
        "{} ({n}x{n}), total running time in virtual time:\n",
        bench.name
    );

    let mut results: Vec<(String, fluidicl_suite::des::SimDuration)> = Vec::new();

    for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
        let mut rt = SingleDeviceRuntime::new(machine.clone(), device, (bench.program)(n));
        assert!(bench.run_and_validate_sized(&mut rt, n, seed)?);
        results.push((format!("{}-only", device.name()), rt.elapsed()));
    }

    let oracle = oracle_sweep(&machine, &bench, n, seed, 10)?;
    results.push((
        format!(
            "OracleSP ({}% CPU)",
            (oracle.best_cpu_fraction * 100.0) as u32
        ),
        oracle.best_time,
    ));
    // Show one deliberately bad static split for contrast.
    let mut half = StaticPartitionRuntime::new(machine.clone(), (bench.program)(n), 0.5);
    assert!(bench.run_and_validate_sized(&mut half, n, seed)?);
    results.push(("Static 50/50".to_string(), half.elapsed()));

    let mut eager = SoclRuntime::new(machine.clone(), (bench.program)(n), SoclScheduler::Eager);
    assert!(bench.run_and_validate_sized(&mut eager, n, seed)?);
    results.push(("SOCL eager".to_string(), eager.elapsed()));

    let mut dmda = SoclRuntime::new(machine.clone(), (bench.program)(n), SoclScheduler::Dmda);
    {
        // Calibration pass (the paper runs ≥10 calibration runs; one replay
        // of the geometry suffices for our analytic models).
        let mut probe = SoclRuntime::new(machine.clone(), (bench.program)(n), SoclScheduler::Eager);
        assert!(bench.run_and_validate_sized(&mut probe, n, seed)?);
        for (kernel, nd) in probe.geometry_log() {
            dmda.calibrate(kernel, *nd)?;
        }
    }
    assert!(bench.run_and_validate_sized(&mut dmda, n, seed)?);
    results.push(("SOCL dmda (calibrated)".to_string(), dmda.elapsed()));

    let mut fcl = Fluidicl::new(machine, FluidiclConfig::default(), (bench.program)(n));
    assert!(bench.run_and_validate_sized(&mut fcl, n, seed)?);
    results.push(("FluidiCL (no tuning)".to_string(), fcl.elapsed()));

    let best = results
        .iter()
        .map(|(_, t)| *t)
        .min()
        .expect("non-empty results");
    for (label, t) in &results {
        let rel = t.as_nanos() as f64 / best.as_nanos() as f64;
        let bar = "#".repeat((rel * 20.0).min(100.0) as usize);
        println!("  {label:24} {t}  {rel:>5.2}x  {bar}");
    }
    Ok(())
}
