//! Print the co-execution protocol timeline of one kernel (trace facility).
//!
//! ```bash
//! cargo run --release --example timeline
//! ```
//!
//! Every FluidiCL kernel launch records its protocol events — GPU waves,
//! CPU subkernels, data/status transfers, aborts, the merge — with virtual
//! timestamps. This example runs a small SYRK and prints the timeline, the
//! fastest way to see the paper's Figure 6 play out.

use fluidicl::{render_lanes, render_timeline};
use fluidicl_suite::polybench::{find, syrk};
use fluidicl_suite::prelude::*;

fn main() -> ClResult<()> {
    let bench = find("SYRK").expect("SYRK registered");
    let n = 128;
    let machine = MachineConfig::paper_testbed();
    let mut fcl = Fluidicl::new(machine, FluidiclConfig::default(), syrk::program(n));
    let ok = bench.run_and_validate_sized(&mut fcl, n, 1)?;
    assert!(ok, "SYRK must match the reference");
    let report = &fcl.reports()[0];
    println!("{}", render_timeline(&report.kernel, &report.trace));
    println!("{}", render_lanes(&report.kernel, &report.trace, 72));
    println!(
        "summary: {}/{} work-groups merged from the CPU, {} duplicated, \
         finished by {:?} after {}",
        report.cpu_merged_wgs,
        report.total_wgs,
        report.duplicated_wgs(),
        report.finished_by,
        report.duration
    );
    Ok(())
}
