//! Quickstart: take a single-device OpenCL-style program and run it
//! cooperatively on the CPU *and* the GPU with FluidiCL.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The program is a SAXPY-like kernel written once against the `ClDriver`
//! API. We run it three times — CPU-only, GPU-only, and under FluidiCL —
//! and print the virtual total running times plus FluidiCL's work split.

use fluidicl_suite::prelude::*;

/// Builds a one-kernel program: an iterated SAXPY, `y[i] += a * x[i]`
/// applied `STEPS` times per item — enough arithmetic per element that
/// co-execution pays off, with an access pattern the GPU only partially
/// coalesces.
const STEPS: usize = 64;

fn saxpy_program(n: usize) -> Program {
    let mut program = Program::new();
    program.register(KernelDef::new(
        "saxpy",
        vec![
            ArgSpec::new("x", ArgRole::In),
            ArgSpec::new("y", ArgRole::InOut),
            ArgSpec::new("a", ArgRole::Scalar),
        ],
        KernelProfile::new("saxpy")
            .flops_per_item(2.0 * STEPS as f64)
            .bytes_read_per_item(8.0 * STEPS as f64)
            .bytes_written_per_item(4.0)
            .inner_loop_trips(STEPS as u32)
            .gpu_coalescing(0.35)
            .cpu_cache_locality(0.9),
        |item, scalars, ins, outs| {
            let i = item.global_linear();
            let mut acc = outs.at(0)[i];
            for _ in 0..STEPS {
                acc += scalars.f32(0) * ins.get(0)[i] / STEPS as f32;
            }
            outs.at(0)[i] = acc;
        },
    ));
    let _ = n;
    program
}

/// The host program, written once for any runtime.
fn host_program(driver: &mut dyn ClDriver, n: usize) -> ClResult<Vec<f32>> {
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y0 = vec![1.0f32; n];
    let x_buf = driver.create_buffer(n);
    let y_buf = driver.create_buffer(n);
    driver.write_buffer(x_buf, &x)?;
    driver.write_buffer(y_buf, &y0)?;
    driver.enqueue_kernel(
        "saxpy",
        NdRange::d1(n, 64)?,
        &[
            KernelArg::Buffer(x_buf),
            KernelArg::Buffer(y_buf),
            KernelArg::F32(3.0),
        ],
    )?;
    driver.read_buffer(y_buf)
}

fn main() -> ClResult<()> {
    let n = 1 << 18;
    let machine = MachineConfig::paper_testbed();

    let mut cpu = SingleDeviceRuntime::new(machine.clone(), DeviceKind::Cpu, saxpy_program(n));
    let y_cpu = host_program(&mut cpu, n)?;

    let mut gpu = SingleDeviceRuntime::new(machine.clone(), DeviceKind::Gpu, saxpy_program(n));
    let y_gpu = host_program(&mut gpu, n)?;

    let mut fcl = Fluidicl::new(machine, FluidiclConfig::default(), saxpy_program(n));
    let y_fcl = host_program(&mut fcl, n)?;

    assert_eq!(y_cpu, y_gpu, "single-device runs must agree");
    assert_eq!(y_cpu, y_fcl, "FluidiCL must compute the same result");
    // Accumulated in STEPS fractional increments; check against the CPU run.
    assert!((y_fcl[2] - (3.0 * 2.0 + 1.0)).abs() < 1e-3);

    println!("saxpy over {n} elements (virtual time):");
    println!("  CPU-only : {}", cpu.elapsed());
    println!("  GPU-only : {}", gpu.elapsed());
    println!("  FluidiCL : {}", fcl.elapsed());
    let report = &fcl.reports()[0];
    println!(
        "  FluidiCL split: {} of {} work-groups merged from the CPU \
         ({} CPU subkernels), finished by {:?}",
        report.cpu_merged_wgs, report.total_wgs, report.subkernels, report.finished_by
    );
    Ok(())
}
