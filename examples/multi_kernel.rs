//! Multi-kernel coherence: the paper's BICG scenario (§3, Table 1).
//!
//! ```bash
//! cargo run --release --example multi_kernel
//! ```
//!
//! BICG launches two kernels with opposite device preferences over shared
//! data. A fixed device choice loses on one of them; FluidiCL executes each
//! kernel cooperatively and lets the work flow to whichever device is
//! faster *per kernel*, while buffer-version tracking keeps the shared
//! matrix coherent between launches.

use fluidicl_suite::polybench::{bicg, find};
use fluidicl_suite::prelude::*;

fn main() -> ClResult<()> {
    let bench = find("BICG").expect("BICG registered");
    let n = bench.default_n;
    let seed = 7;
    let machine = MachineConfig::paper_testbed();

    println!("BICG ({n}x{n}): two kernels, opposite device preferences\n");

    // Per-kernel single-device times (the paper's Table 1).
    for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
        let mut rt = SingleDeviceRuntime::new(machine.clone(), device, bicg::program(n));
        let ok = bench.run_and_validate_sized(&mut rt, n, seed)?;
        assert!(ok, "single-device BICG must match the reference");
        println!("{}-only:", device.name());
        for (kernel, t) in rt.kernel_times() {
            println!("  {kernel:8} {t}");
        }
        println!("  total    {}\n", rt.elapsed());
    }

    // FluidiCL: one program, both devices, per-kernel fluid split.
    let mut fcl = Fluidicl::new(machine, FluidiclConfig::default(), bicg::program(n));
    let ok = bench.run_and_validate_sized(&mut fcl, n, seed)?;
    assert!(ok, "FluidiCL BICG must match the reference");
    println!("FluidiCL:");
    for report in fcl.reports() {
        println!(
            "  {:8} {}  cpu share {:>5.1}%  ({} subkernels, finished by {:?})",
            report.kernel,
            report.duration,
            100.0 * report.cpu_share(),
            report.subkernels,
            report.finished_by
        );
    }
    println!("  total    {}", fcl.elapsed());
    println!(
        "\nThe CPU-leaning kernel (bicg_s) gets a large CPU share, the \
         GPU-leaning one (bicg_q) a small one — no profiling, no tuning."
    );
    Ok(())
}
