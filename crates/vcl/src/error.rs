//! Error type for the virtual OpenCL runtime.

use std::error::Error;
use std::fmt;

use crate::DeviceKind;

/// Errors returned by the virtual OpenCL runtime and the runtimes layered on
/// top of it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClError {
    /// A buffer handle does not exist in the target context.
    InvalidBuffer(u64),
    /// A kernel name was not found in the program.
    UnknownKernel(String),
    /// The argument list does not match the kernel's declared signature.
    ArgMismatch {
        /// Kernel whose signature was violated.
        kernel: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The NDRange is malformed (zero sizes, or global not divisible by
    /// local as OpenCL 1.x requires).
    InvalidNdRange(String),
    /// A buffer was passed both as an input and as an output of the same
    /// launch (aliasing is unsupported, as in the paper's restricted API).
    AliasedBuffer(u64),
    /// A host-side read or write did not match the buffer length.
    SizeMismatch {
        /// Length the buffer actually has (in elements).
        expected: usize,
        /// Length supplied by the caller (in elements).
        got: usize,
    },
    /// The post-kernel protocol-trace linter found an invariant violation
    /// (only raised when `FluidiclConfig::validate_protocol` is enabled).
    ProtocolViolation {
        /// Kernel whose execution trace violated the protocol.
        kernel: String,
        /// First violated invariant, plus the total violation count.
        detail: String,
    },
    /// A device died and no surviving device could complete the work.
    DeviceLost {
        /// The device that was lost (for a double loss, the one whose
        /// failure made the run unrecoverable).
        device: DeviceKind,
        /// What the runtime was doing when the loss became fatal.
        detail: String,
    },
    /// An operation missed its watchdog deadline and could not be retried
    /// within the configured recovery policy.
    Timeout {
        /// The operation that timed out (e.g. `h2d transfer`).
        op: String,
        /// What exceeded the deadline, and any retry history.
        detail: String,
    },
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::InvalidBuffer(id) => write!(f, "invalid buffer handle {id}"),
            ClError::UnknownKernel(name) => write!(f, "unknown kernel `{name}`"),
            ClError::ArgMismatch { kernel, detail } => {
                write!(f, "argument mismatch for kernel `{kernel}`: {detail}")
            }
            ClError::InvalidNdRange(detail) => write!(f, "invalid ndrange: {detail}"),
            ClError::AliasedBuffer(id) => {
                write!(f, "buffer {id} passed as both input and output")
            }
            ClError::SizeMismatch { expected, got } => {
                write!(
                    f,
                    "size mismatch: buffer has {expected} elements, got {got}"
                )
            }
            ClError::ProtocolViolation { kernel, detail } => {
                write!(f, "protocol violation in kernel `{kernel}`: {detail}")
            }
            ClError::DeviceLost { device, detail } => {
                write!(f, "device lost ({}): {detail}", device.name())
            }
            ClError::Timeout { op, detail } => write!(f, "timeout in {op}: {detail}"),
        }
    }
}

impl Error for ClError {}

/// Convenience result alias for runtime operations.
pub type ClResult<T> = Result<T, ClError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<ClError> = vec![
            ClError::InvalidBuffer(3),
            ClError::UnknownKernel("foo".into()),
            ClError::ArgMismatch {
                kernel: "k".into(),
                detail: "expected buffer".into(),
            },
            ClError::InvalidNdRange("zero local size".into()),
            ClError::AliasedBuffer(7),
            ClError::SizeMismatch {
                expected: 10,
                got: 4,
            },
            ClError::ProtocolViolation {
                kernel: "k".into(),
                detail: "watermark increased".into(),
            },
            ClError::DeviceLost {
                device: DeviceKind::Gpu,
                detail: "wave 2 missed its watchdog deadline".into(),
            },
            ClError::Timeout {
                op: "h2d transfer".into(),
                detail: "3 retries exhausted".into(),
            },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error text should start lowercase: {msg}"
            );
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClError>();
    }
}
