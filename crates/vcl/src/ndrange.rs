//! NDRange geometry: work-items, work-groups, and flattened work-group IDs.
//!
//! FluidiCL's unit of work distribution is the OpenCL work-group, addressed
//! by a *flattened* one-dimensional ID (paper §4, Figure 5): dimension 0
//! varies fastest, so for a 2-D range of `ng0 × ng1` groups the group at
//! coordinates `(g0, g1)` has flattened ID `g1 * ng0 + g0`. The GPU executes
//! flattened IDs from 0 upward while CPU subkernels take them from the top
//! downward, so the two devices work on non-overlapping ends of the range.

use crate::{ClError, ClResult};

/// An OpenCL index space: up to three dimensions of work-items grouped into
/// work-groups.
///
/// # Examples
///
/// ```
/// use fluidicl_vcl::NdRange;
///
/// let nd = NdRange::d2(1024, 512, 16, 16).unwrap();
/// assert_eq!(nd.num_groups(), 64 * 32);
/// assert_eq!(nd.items_per_group(), 256);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NdRange {
    global: [usize; 3],
    local: [usize; 3],
    dims: u8,
}

impl NdRange {
    /// Creates a one-dimensional NDRange.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidNdRange`] if any size is zero or `global`
    /// is not a multiple of `local`.
    pub fn d1(global: usize, local: usize) -> ClResult<Self> {
        Self::new([global, 1, 1], [local, 1, 1], 1)
    }

    /// Creates a two-dimensional NDRange.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidNdRange`] if any size is zero or a global
    /// size is not a multiple of the corresponding local size.
    pub fn d2(gx: usize, gy: usize, lx: usize, ly: usize) -> ClResult<Self> {
        Self::new([gx, gy, 1], [lx, ly, 1], 2)
    }

    /// Creates a three-dimensional NDRange.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidNdRange`] if any size is zero or a global
    /// size is not a multiple of the corresponding local size.
    pub fn d3(gx: usize, gy: usize, gz: usize, lx: usize, ly: usize, lz: usize) -> ClResult<Self> {
        Self::new([gx, gy, gz], [lx, ly, lz], 3)
    }

    fn new(global: [usize; 3], local: [usize; 3], dims: u8) -> ClResult<Self> {
        for d in 0..3 {
            if global[d] == 0 || local[d] == 0 {
                return Err(ClError::InvalidNdRange(format!(
                    "dimension {d} has zero size (global={global:?}, local={local:?})"
                )));
            }
            if !global[d].is_multiple_of(local[d]) {
                return Err(ClError::InvalidNdRange(format!(
                    "global size {} not divisible by local size {} in dimension {d}",
                    global[d], local[d]
                )));
            }
        }
        Ok(NdRange {
            global,
            local,
            dims,
        })
    }

    /// Number of dimensions (1–3).
    pub fn dims(&self) -> u8 {
        self.dims
    }

    /// Global work-item count per dimension.
    pub fn global(&self) -> [usize; 3] {
        self.global
    }

    /// Local (work-group) size per dimension.
    pub fn local(&self) -> [usize; 3] {
        self.local
    }

    /// Number of work-groups per dimension.
    pub fn groups(&self) -> [usize; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    /// Total number of work-groups across all dimensions.
    pub fn num_groups(&self) -> u64 {
        let g = self.groups();
        (g[0] as u64) * (g[1] as u64) * (g[2] as u64)
    }

    /// Work-items in one work-group.
    pub fn items_per_group(&self) -> u64 {
        (self.local[0] as u64) * (self.local[1] as u64) * (self.local[2] as u64)
    }

    /// Total work-items in the NDRange.
    pub fn num_items(&self) -> u64 {
        self.num_groups() * self.items_per_group()
    }

    /// Flattens work-group coordinates to a 1-D ID (dimension 0 fastest;
    /// paper Figure 5).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `coords` is out of range.
    pub fn flatten_group(&self, coords: [usize; 3]) -> u64 {
        let g = self.groups();
        debug_assert!(
            coords[0] < g[0] && coords[1] < g[1] && coords[2] < g[2],
            "group coords {coords:?} out of range {g:?}"
        );
        (coords[2] as u64) * (g[0] as u64) * (g[1] as u64)
            + (coords[1] as u64) * (g[0] as u64)
            + (coords[0] as u64)
    }

    /// Inverse of [`NdRange::flatten_group`].
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn unflatten_group(&self, flat: u64) -> [usize; 3] {
        let g = self.groups();
        assert!(flat < self.num_groups(), "flattened id {flat} out of range");
        let plane = (g[0] as u64) * (g[1] as u64);
        let z = flat / plane;
        let rem = flat % plane;
        let y = rem / g[0] as u64;
        let x = rem % g[0] as u64;
        [x as usize, y as usize, z as usize]
    }

    /// The rectangular work-group slice the CPU scheduler launches to cover
    /// the flattened range `[start, end)` (paper §5.2 and Figure 10): the
    /// smallest whole-row/plane-aligned region containing the range. The
    /// subkernel then skips groups outside `[start, end)` by comparing
    /// flattened IDs.
    ///
    /// Returns `(group_offset, group_count)` in group coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn covering_slice(&self, start: u64, end: u64) -> ([usize; 3], [usize; 3]) {
        assert!(
            start < end && end <= self.num_groups(),
            "bad range {start}..{end}"
        );
        let g = self.groups();
        match self.dims {
            1 => ([start as usize, 0, 0], [(end - start) as usize, 1, 1]),
            2 => {
                // Whole rows between the rows containing start and end-1.
                let row0 = (start / g[0] as u64) as usize;
                let row1 = ((end - 1) / g[0] as u64) as usize;
                ([0, row0, 0], [g[0], row1 - row0 + 1, 1])
            }
            _ => {
                let plane = (g[0] as u64) * (g[1] as u64);
                let z0 = (start / plane) as usize;
                let z1 = ((end - 1) / plane) as usize;
                ([0, 0, z0], [g[0], g[1], z1 - z0 + 1])
            }
        }
    }
}

/// Identity of one work-item during functional kernel execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// Global work-item coordinates.
    pub global: [usize; 3],
    /// Coordinates within the work-group.
    pub local: [usize; 3],
    /// Work-group coordinates.
    pub group: [usize; 3],
    /// Work-group size.
    pub local_size: [usize; 3],
    /// Global size.
    pub global_size: [usize; 3],
}

impl WorkItem {
    /// Global linear index with dimension 0 fastest (matches OpenCL's
    /// `get_global_id(0)`-major layouts used by the Polybench kernels).
    pub fn global_linear(&self) -> usize {
        (self.global[2] * self.global_size[1] + self.global[1]) * self.global_size[0]
            + self.global[0]
    }
}

/// Iterates every work-item of one work-group, invoking `f`.
pub(crate) fn for_each_item_in_group(
    nd: &NdRange,
    group: [usize; 3],
    mut f: impl FnMut(&WorkItem),
) {
    let local = nd.local();
    let global = nd.global();
    for lz in 0..local[2] {
        for ly in 0..local[1] {
            for lx in 0..local[0] {
                let item = WorkItem {
                    global: [
                        group[0] * local[0] + lx,
                        group[1] * local[1] + ly,
                        group[2] * local[2] + lz,
                    ],
                    local: [lx, ly, lz],
                    group,
                    local_size: local,
                    global_size: global,
                };
                f(&item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d2_matches_paper_figure5() {
        // Figure 5: 25 groups in 5 rows × 5 columns; group (row=x, col=y) —
        // in our convention dimension 0 fastest — has flattened id x + 5*y.
        let nd = NdRange::d2(5, 5, 1, 1).unwrap();
        assert_eq!(nd.num_groups(), 25);
        assert_eq!(nd.flatten_group([0, 0, 0]), 0);
        assert_eq!(nd.flatten_group([4, 0, 0]), 4);
        assert_eq!(nd.flatten_group([0, 1, 0]), 5);
        assert_eq!(nd.flatten_group([4, 4, 0]), 24);
    }

    #[test]
    fn flatten_unflatten_roundtrip_3d() {
        let nd = NdRange::d3(8, 6, 4, 2, 3, 2).unwrap();
        for flat in 0..nd.num_groups() {
            assert_eq!(nd.flatten_group(nd.unflatten_group(flat)), flat);
        }
    }

    #[test]
    fn rejects_indivisible_sizes() {
        assert!(matches!(
            NdRange::d1(10, 3),
            Err(ClError::InvalidNdRange(_))
        ));
        assert!(matches!(NdRange::d1(0, 1), Err(ClError::InvalidNdRange(_))));
    }

    #[test]
    fn counts_are_consistent() {
        let nd = NdRange::d2(64, 32, 8, 4).unwrap();
        assert_eq!(nd.groups(), [8, 8, 1]);
        assert_eq!(nd.num_groups(), 64);
        assert_eq!(nd.items_per_group(), 32);
        assert_eq!(nd.num_items(), 64 * 32);
    }

    #[test]
    fn covering_slice_1d_is_exact() {
        let nd = NdRange::d1(100, 10).unwrap();
        assert_eq!(nd.covering_slice(3, 7), ([3, 0, 0], [4, 1, 1]));
    }

    #[test]
    fn covering_slice_2d_rounds_to_rows() {
        let nd = NdRange::d2(50, 40, 10, 10).unwrap(); // 5 x 4 groups
                                                       // Range 7..12 spans the end of row 1 and start of row 2.
        let (off, cnt) = nd.covering_slice(7, 12);
        assert_eq!(off, [0, 1, 0]);
        assert_eq!(cnt, [5, 2, 1]);
        // The covering slice contains the requested flattened range.
        let mut covered = Vec::new();
        for y in off[1]..off[1] + cnt[1] {
            for x in off[0]..off[0] + cnt[0] {
                covered.push(nd.flatten_group([x, y, 0]));
            }
        }
        for flat in 7..12 {
            assert!(covered.contains(&flat));
        }
    }

    #[test]
    fn covering_slice_3d_rounds_to_planes() {
        let nd = NdRange::d3(4, 4, 8, 2, 2, 2).unwrap(); // 2x2x4 groups
        let (off, cnt) = nd.covering_slice(5, 6);
        assert_eq!(off, [0, 0, 1]);
        assert_eq!(cnt, [2, 2, 1]);
    }

    #[test]
    fn work_item_enumeration_is_complete() {
        let nd = NdRange::d2(4, 4, 2, 2).unwrap();
        let mut seen = Vec::new();
        for_each_item_in_group(&nd, [1, 1, 0], |it| {
            seen.push(it.global);
            assert_eq!(it.group, [1, 1, 0]);
            assert_eq!(it.local_size, [2, 2, 1]);
        });
        assert_eq!(seen.len(), 4);
        assert!(seen.contains(&[2, 2, 0]));
        assert!(seen.contains(&[3, 3, 0]));
    }

    #[test]
    fn global_linear_is_dim0_fastest() {
        let nd = NdRange::d2(4, 4, 2, 2).unwrap();
        let mut linears = Vec::new();
        for_each_item_in_group(&nd, [0, 0, 0], |it| linears.push(it.global_linear()));
        assert_eq!(linears, vec![0, 1, 4, 5]);
        let _ = nd;
    }
}
