//! In-order command queues and events.
//!
//! OpenCL's execution model (paper §2) revolves around *command queues*:
//! data transfers and kernel launches are enqueued and executed in order,
//! each producing an event marking its completion. FluidiCL's design leans
//! on this ordering — its hd queue sends computed data *then* the status
//! message, so a status can never arrive before the results it announces
//! (paper §4.2, §5.4).
//!
//! [`CommandQueue`] owns one device's address space and timeline: every
//! enqueue executes functionally right away and advances the queue's
//! virtual tail by the command's modeled duration, returning an [`Event`]
//! with the completion instant. Cross-queue dependencies are expressed with
//! [`CommandQueue::wait_for`].

use fluidicl_des::{SimDuration, SimTime};
use fluidicl_hetsim::{AbortMode, MachineConfig};

use crate::exec::{execute_all, Launch};
use crate::fault::{FaultInjector, TransferFate};
use crate::{BufferId, ClError, ClResult, DeviceKind, Memory};

/// Completion marker of one enqueued command.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    id: u64,
    complete_at: SimTime,
}

impl Event {
    /// Virtual instant at which the command completes.
    pub fn complete_at(&self) -> SimTime {
        self.complete_at
    }

    /// Queue-local sequence number (monotone per queue).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// An in-order command queue bound to one device.
///
/// # Examples
///
/// ```
/// use fluidicl_hetsim::MachineConfig;
/// use fluidicl_vcl::{CommandQueue, DeviceKind};
///
/// let mut q = CommandQueue::new(MachineConfig::paper_testbed(), DeviceKind::Gpu);
/// let buf = q.create_buffer(1024);
/// let e1 = q.enqueue_write(buf, &vec![1.0; 1024]).unwrap();
/// let (data, e2) = q.enqueue_read(buf).unwrap();
/// assert_eq!(data[0], 1.0);
/// assert!(e2.complete_at() > e1.complete_at(), "in-order execution");
/// ```
#[derive(Debug)]
pub struct CommandQueue {
    machine: MachineConfig,
    device: DeviceKind,
    memory: Memory,
    tail: SimTime,
    next_buffer: u64,
    next_event: u64,
    commands: u64,
    injector: Option<FaultInjector>,
}

impl CommandQueue {
    /// Creates a queue for `device` on `machine`, with an empty address
    /// space and its clock at zero.
    pub fn new(machine: MachineConfig, device: DeviceKind) -> Self {
        CommandQueue {
            machine,
            device,
            memory: Memory::new(),
            tail: SimTime::ZERO,
            next_buffer: 0,
            next_event: 0,
            commands: 0,
            injector: None,
        }
    }

    /// Attaches a fault injector: subsequent commands consult it and surface
    /// injected device loss and stalls as typed errors. A single-device
    /// queue has no cooperating peer, so transient failures are retried in
    /// place (at zero modeled cost) and corrupt deliveries are re-read from
    /// host memory — only unrecoverable faults reach the caller.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Kill/health check at the kernel-launch points: a launch on a lost
    /// device fails with [`ClError::DeviceLost`].
    fn check_device(&mut self) -> ClResult<()> {
        let device = self.device;
        if let Some(inj) = self.injector.as_mut() {
            let dead = match device {
                DeviceKind::Gpu => inj.kill_gpu_wave(),
                DeviceKind::Cpu => inj.kill_cpu_subkernel(),
            };
            if dead {
                return Err(ClError::DeviceLost {
                    device,
                    detail: "kernel launch on a lost device".into(),
                });
            }
        }
        Ok(())
    }

    /// Fault check at the transfer points: stalls surface as
    /// [`ClError::Timeout`], a lost device as [`ClError::DeviceLost`];
    /// transient and corrupt fates are consumed and recovered in place.
    fn check_transfer(&mut self, op: &str) -> ClResult<()> {
        let device = self.device;
        if let Some(inj) = self.injector.as_mut() {
            if inj.device_lost(device) {
                return Err(ClError::DeviceLost {
                    device,
                    detail: format!("{op} on a lost device"),
                });
            }
            let mut attempt = 1;
            loop {
                match inj.transfer_fate(attempt) {
                    TransferFate::Stall => {
                        return Err(ClError::Timeout {
                            op: op.into(),
                            detail: "transfer stalled past its watchdog deadline".into(),
                        })
                    }
                    TransferFate::TransientFail
                    | TransferFate::CorruptPayload
                    | TransferFate::CorruptStatus => {
                        // Retry/re-read; the injector bounds consecutive
                        // failures, so this terminates.
                        attempt += 1;
                    }
                    TransferFate::Deliver => return Ok(()),
                }
            }
        }
        Ok(())
    }

    /// The device this queue feeds.
    pub fn device(&self) -> DeviceKind {
        self.device
    }

    /// Current queue tail: the instant the last enqueued command completes.
    pub fn tail(&self) -> SimTime {
        self.tail
    }

    /// Number of commands enqueued so far.
    pub fn command_count(&self) -> u64 {
        self.commands
    }

    /// Direct access to the device's address space (for setup and
    /// inspection; timing-free).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Read access to the device's address space.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Allocates a buffer of `len` elements, charging the device's
    /// allocation cost on the queue timeline (GPU only; CPU-device buffers
    /// are host memory).
    pub fn create_buffer(&mut self, len: usize) -> BufferId {
        let id = BufferId(self.next_buffer);
        self.next_buffer += 1;
        self.memory.alloc(id, len);
        if self.device == DeviceKind::Gpu {
            let d = self.machine.gpu.buffer_create_time(len as u64 * 4);
            self.push(d);
        }
        id
    }

    /// Blocks this queue until `other` has completed: subsequent commands
    /// start no earlier (an event-wait across queues).
    pub fn wait_for(&mut self, other: Event) {
        self.tail = self.tail.max(other.complete_at());
    }

    fn push(&mut self, duration: SimDuration) -> Event {
        self.tail += duration;
        self.commands += 1;
        let ev = Event {
            id: self.next_event,
            complete_at: self.tail,
        };
        self.next_event += 1;
        ev
    }

    fn transfer_in_time(&self, bytes: u64) -> SimDuration {
        match self.device {
            DeviceKind::Gpu => self.machine.h2d.transfer_time(bytes),
            DeviceKind::Cpu => self.machine.host.copy_time(bytes),
        }
    }

    fn transfer_out_time(&self, bytes: u64) -> SimDuration {
        match self.device {
            DeviceKind::Gpu => self.machine.d2h.transfer_time(bytes),
            DeviceKind::Cpu => self.machine.host.copy_time(bytes),
        }
    }

    /// Enqueues a host→device write (`clEnqueueWriteBuffer`).
    ///
    /// # Errors
    ///
    /// Fails if the buffer is unknown or the size differs.
    pub fn enqueue_write(&mut self, id: BufferId, data: &[f32]) -> ClResult<Event> {
        self.check_transfer("enqueue_write")?;
        self.memory.write(id, data)?;
        let d = self.transfer_in_time(data.len() as u64 * 4);
        Ok(self.push(d))
    }

    /// Enqueues several host→device writes as **one** queue command — the
    /// coalesced-send primitive behind the pipelined protocol's batched
    /// result shipping. The payloads land atomically from the queue's point
    /// of view: a waiter on the returned event observes either none or all
    /// of them, and the queue charges a single in-order slot for the whole
    /// batch instead of one per buffer.
    ///
    /// # Errors
    ///
    /// Fails if any buffer is unknown or any size differs; no payload is
    /// written unless all of them validate.
    pub fn enqueue_write_batch(&mut self, writes: &[(BufferId, &[f32])]) -> ClResult<Event> {
        self.check_transfer("enqueue_write_batch")?;
        // Validate the whole batch before writing anything, so a bad entry
        // cannot leave the batch half-applied.
        for (id, data) in writes {
            let dst = self.memory.get(*id)?;
            if dst.len() != data.len() {
                return Err(ClError::SizeMismatch {
                    expected: dst.len(),
                    got: data.len(),
                });
            }
        }
        let mut bytes = 0u64;
        for (id, data) in writes {
            self.memory.write(*id, data)?;
            bytes += data.len() as u64 * 4;
        }
        let d = self.transfer_in_time(bytes);
        Ok(self.push(d))
    }

    /// Enqueues a device→host read (`clEnqueueReadBuffer`), returning the
    /// data and its completion event.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is unknown.
    pub fn enqueue_read(&mut self, id: BufferId) -> ClResult<(Vec<f32>, Event)> {
        self.check_transfer("enqueue_read")?;
        let data = self.memory.get(id)?.to_vec();
        let d = self.transfer_out_time(data.len() as u64 * 4);
        let ev = self.push(d);
        Ok((data, ev))
    }

    /// Enqueues a device-side buffer copy (`clEnqueueCopyBuffer`).
    ///
    /// # Errors
    ///
    /// Fails if either buffer is unknown or sizes differ.
    pub fn enqueue_copy(&mut self, src: BufferId, dst: BufferId) -> ClResult<Event> {
        self.check_transfer("enqueue_copy")?;
        let data = self.memory.get(src)?.to_vec();
        self.memory.write(dst, &data)?;
        let bytes = data.len() as u64 * 4;
        let d = match self.device {
            // Read + write on the device's memory bus.
            DeviceKind::Gpu => SimDuration::from_nanos(
                (2.0 * bytes as f64 / self.machine.gpu.peak_mem_bytes_per_ns()) as u64,
            ),
            DeviceKind::Cpu => self.machine.host.copy_time(bytes * 2),
        };
        Ok(self.push(d))
    }

    /// Enqueues a kernel over its full NDRange
    /// (`clEnqueueNDRangeKernel`), executing it functionally against this
    /// queue's memory and charging the device model's duration.
    ///
    /// # Errors
    ///
    /// Fails on signature mismatches or missing buffers.
    pub fn enqueue_ndrange(&mut self, launch: &Launch) -> ClResult<Event> {
        self.check_device()?;
        execute_all(launch, &mut self.memory)?;
        let version = launch
            .kernel
            .versions()
            .get(launch.version)
            .unwrap_or_else(|| launch.kernel.default_version());
        let profile = &version.profile;
        let items = launch.ndrange.items_per_group();
        let groups = launch.ndrange.num_groups();
        let d = match self.device {
            DeviceKind::Gpu => {
                self.machine.gpu.launch_overhead()
                    + self
                        .machine
                        .gpu
                        .range_time(profile, items, groups, AbortMode::None)
            }
            DeviceKind::Cpu => self
                .machine
                .cpu
                .subkernel_time(profile, items, groups, false),
        };
        Ok(self.push(d))
    }

    /// Enqueues a zero-duration marker (`clEnqueueMarker`).
    pub fn enqueue_marker(&mut self) -> Event {
        self.push(SimDuration::ZERO)
    }

    /// Blocks until every enqueued command has completed, returning that
    /// instant (`clFinish`).
    pub fn finish(&mut self) -> SimTime {
        self.tail
    }
}

/// The top of the OpenCL object hierarchy (paper Figure 1): a machine
/// exposes its devices, and queues are created per device.
///
/// # Examples
///
/// ```
/// use fluidicl_hetsim::MachineConfig;
/// use fluidicl_vcl::{DeviceKind, Platform};
///
/// let platform = Platform::new(MachineConfig::paper_testbed());
/// assert_eq!(platform.devices(), vec![DeviceKind::Cpu, DeviceKind::Gpu]);
/// let mut q = platform.create_queue(DeviceKind::Cpu);
/// assert_eq!(q.device(), DeviceKind::Cpu);
/// let _ = q.enqueue_marker();
/// ```
#[derive(Clone, Debug)]
pub struct Platform {
    machine: MachineConfig,
}

impl Platform {
    /// Creates a platform over a machine configuration.
    pub fn new(machine: MachineConfig) -> Self {
        Platform { machine }
    }

    /// The devices this platform exposes.
    pub fn devices(&self) -> Vec<DeviceKind> {
        vec![DeviceKind::Cpu, DeviceKind::Gpu]
    }

    /// The machine configuration backing the platform.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Creates an in-order command queue for `device`
    /// (`clCreateCommandQueue`).
    pub fn create_queue(&self, device: DeviceKind) -> CommandQueue {
        CommandQueue::new(self.machine.clone(), device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArgRole, ArgSpec, KernelDef};
    use crate::KernelArg;
    use fluidicl_hetsim::KernelProfile;
    use std::sync::Arc;

    fn scale_launch(src: BufferId, dst: BufferId, n: usize) -> Launch {
        let kernel = Arc::new(KernelDef::new(
            "scale",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
            ],
            KernelProfile::new("scale")
                .flops_per_item(1.0)
                .bytes_read_per_item(4.0)
                .bytes_written_per_item(4.0),
            |item, _, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[i] = 2.0 * ins.get(0)[i];
            },
        ));
        Launch::new(
            kernel,
            crate::NdRange::d1(n, 16).expect("valid range"),
            vec![KernelArg::Buffer(src), KernelArg::Buffer(dst)],
        )
    }

    #[test]
    fn commands_execute_in_order() {
        let mut q = CommandQueue::new(MachineConfig::paper_testbed(), DeviceKind::Gpu);
        let src = q.create_buffer(64);
        let dst = q.create_buffer(64);
        let e_alloc = q.tail();
        let e1 = q.enqueue_write(src, &vec![3.0; 64]).unwrap();
        let e2 = q.enqueue_ndrange(&scale_launch(src, dst, 64)).unwrap();
        let (data, e3) = q.enqueue_read(dst).unwrap();
        assert_eq!(data, vec![6.0; 64]);
        assert!(e_alloc < e1.complete_at());
        assert!(e1.complete_at() < e2.complete_at());
        assert!(e2.complete_at() < e3.complete_at());
        assert_eq!(q.finish(), e3.complete_at());
        assert_eq!(q.command_count(), 5, "2 allocs + write + kernel + read");
    }

    #[test]
    fn batched_writes_are_one_command_with_summed_payload_time() {
        let machine = MachineConfig::paper_testbed();
        let mut batched = CommandQueue::new(machine.clone(), DeviceKind::Gpu);
        let a = batched.create_buffer(1024);
        let b = batched.create_buffer(2048);
        let before = (batched.tail(), batched.command_count());
        let va = vec![1.0; 1024];
        let vb = vec![2.0; 2048];
        let e = batched.enqueue_write_batch(&[(a, &va), (b, &vb)]).unwrap();
        assert_eq!(batched.command_count(), before.1 + 1, "one queue slot");
        assert_eq!(batched.memory().get(a).unwrap(), &va[..]);
        assert_eq!(batched.memory().get(b).unwrap(), &vb[..]);
        // The batch occupies the link exactly as long as one transfer of
        // the combined payload.
        let expected = before.0 + machine.h2d.transfer_time((1024 + 2048) * 4);
        assert_eq!(e.complete_at(), expected);
    }

    #[test]
    fn a_bad_batch_entry_applies_nothing() {
        let mut q = CommandQueue::new(MachineConfig::paper_testbed(), DeviceKind::Gpu);
        let a = q.create_buffer(64);
        let b = q.create_buffer(64);
        q.enqueue_write(a, &vec![0.0; 64]).unwrap();
        q.enqueue_write(b, &vec![0.0; 64]).unwrap();
        let tail = q.tail();
        let good = vec![5.0; 64];
        let short = vec![5.0; 32];
        let err = q.enqueue_write_batch(&[(a, &good), (b, &short)]);
        assert!(matches!(err, Err(ClError::SizeMismatch { .. })));
        assert_eq!(q.memory().get(a).unwrap(), &[0.0; 64][..], "atomic batch");
        assert_eq!(q.tail(), tail, "a rejected batch charges no time");
    }

    #[test]
    fn markers_are_free_but_ordered() {
        let mut q = CommandQueue::new(MachineConfig::paper_testbed(), DeviceKind::Cpu);
        let before = q.tail();
        let m = q.enqueue_marker();
        assert_eq!(m.complete_at(), before);
        assert_eq!(q.command_count(), 1);
    }

    #[test]
    fn wait_for_orders_across_queues() {
        let platform = Platform::new(MachineConfig::paper_testbed());
        let mut gpu = platform.create_queue(DeviceKind::Gpu);
        let mut cpu = platform.create_queue(DeviceKind::Cpu);
        let b = gpu.create_buffer(1 << 16);
        let e = gpu.enqueue_write(b, &vec![1.0; 1 << 16]).unwrap();
        cpu.wait_for(e);
        let m = cpu.enqueue_marker();
        assert!(m.complete_at() >= e.complete_at());
    }

    #[test]
    fn copy_moves_data_and_costs_time() {
        let mut q = CommandQueue::new(MachineConfig::paper_testbed(), DeviceKind::Gpu);
        let a = q.create_buffer(128);
        let b = q.create_buffer(128);
        q.enqueue_write(a, &vec![7.0; 128]).unwrap();
        let before = q.tail();
        let e = q.enqueue_copy(a, b).unwrap();
        assert!(e.complete_at() > before);
        assert_eq!(q.memory().get(b).unwrap(), &[7.0; 128][..]);
    }

    #[test]
    fn cpu_and_gpu_queues_cost_differently() {
        let platform = Platform::new(MachineConfig::paper_testbed());
        let run = |device| {
            let mut q = platform.create_queue(device);
            let src = q.create_buffer(4096);
            let dst = q.create_buffer(4096);
            q.enqueue_write(src, &vec![1.0; 4096]).unwrap();
            q.enqueue_ndrange(&scale_launch(src, dst, 4096)).unwrap();
            q.finish()
        };
        assert_ne!(run(DeviceKind::Cpu), run(DeviceKind::Gpu));
    }

    #[test]
    fn event_ids_are_monotone() {
        let mut q = CommandQueue::new(MachineConfig::paper_testbed(), DeviceKind::Cpu);
        let a = q.enqueue_marker();
        let b = q.enqueue_marker();
        assert!(b.id() > a.id());
    }

    #[test]
    fn injected_gpu_loss_fails_launches_permanently() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan};
        let mut q = CommandQueue::new(MachineConfig::paper_testbed(), DeviceKind::Gpu);
        q.set_fault_injector(FaultInjector::new(FaultPlan::new(FaultKind::GpuLost, 42)));
        let src = q.create_buffer(64);
        let dst = q.create_buffer(64);
        q.enqueue_write(src, &vec![1.0; 64]).unwrap();
        let launch = scale_launch(src, dst, 64);
        let results: Vec<_> = (0..4).map(|_| q.enqueue_ndrange(&launch)).collect();
        let first_err = results
            .iter()
            .position(Result::is_err)
            .expect("loss fires within 3 launches");
        assert!(first_err < 3);
        for r in &results[first_err..] {
            assert!(
                matches!(
                    r,
                    Err(ClError::DeviceLost {
                        device: DeviceKind::Gpu,
                        ..
                    })
                ),
                "loss is permanent and typed: {r:?}"
            );
        }
        // Transfers on the dead device fail too.
        assert!(matches!(
            q.enqueue_write(src, &vec![2.0; 64]),
            Err(ClError::DeviceLost { .. })
        ));
    }

    #[test]
    fn injected_stall_surfaces_as_timeout() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan};
        let mut q = CommandQueue::new(MachineConfig::paper_testbed(), DeviceKind::Gpu);
        q.set_fault_injector(FaultInjector::new(FaultPlan::new(
            FaultKind::TransferStall,
            5,
        )));
        let b = q.create_buffer(16);
        let results: Vec<_> = (0..4).map(|_| q.enqueue_write(b, &[0.5; 16])).collect();
        let stalled = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(stalled, 1, "exactly one transfer stalls: {results:?}");
        let err = results.iter().find(|r| r.is_err()).unwrap();
        assert!(matches!(err, Err(ClError::Timeout { .. })));
    }

    #[test]
    fn transient_and_corrupt_faults_recover_in_place() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan};
        for kind in [
            FaultKind::TransferTransient,
            FaultKind::CorruptPayload,
            FaultKind::CorruptStatus,
        ] {
            let mut q = CommandQueue::new(MachineConfig::paper_testbed(), DeviceKind::Gpu);
            q.set_fault_injector(FaultInjector::new(FaultPlan::new(kind, 9)));
            let b = q.create_buffer(16);
            for i in 0..4 {
                q.enqueue_write(b, &[i as f32; 16])
                    .unwrap_or_else(|e| panic!("{} attempt {i} must recover: {e}", kind.name()));
            }
            assert_eq!(q.memory().get(b).unwrap(), &[3.0; 16][..]);
        }
    }
}
