//! Device and host memory.
//!
//! The paper's devices have *discrete* address spaces: a buffer created by
//! the application exists once per device plus once on the host, and keeping
//! those copies coherent is FluidiCL's job. [`Memory`] is one address space:
//! a map from [`BufferId`] to an `f32` array (every Polybench buffer is an
//! `f32` array; the paper's byte-granularity merge is modelled at element
//! granularity, which it reduces to for 4-byte base types — paper §4.3).

use std::collections::HashMap;

use crate::dirty::{DirtyRanges, DirtyTracker, PageMap, PAGE_ELEMS};
use crate::simd;
use crate::{ClError, ClResult};

/// Handle identifying a logical buffer across address spaces.
///
/// The same `BufferId` refers to the host copy, the CPU-device copy and the
/// GPU-device copy of one application buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u64);

/// One address space: buffer storage for a single device (or the host).
#[derive(Clone, Debug, Default)]
pub struct Memory {
    buffers: HashMap<BufferId, Vec<f32>>,
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates (or reallocates) `id` with `len` zeroed elements.
    ///
    /// Re-allocating an existing buffer reuses its heap allocation: the
    /// content is zero-filled in place and the vector only grows when
    /// `len` exceeds the existing capacity.
    pub fn alloc(&mut self, id: BufferId, len: usize) {
        if let Some(buf) = self.buffers.get_mut(&id) {
            buf.clear();
            buf.resize(len, 0.0);
        } else {
            self.buffers.insert(id, vec![0.0; len]);
        }
    }

    /// Installs `data` as the content of `id`, allocating if needed.
    pub fn install(&mut self, id: BufferId, data: Vec<f32>) {
        self.buffers.insert(id, data);
    }

    /// Immutable view of a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn get(&self, id: BufferId) -> ClResult<&[f32]> {
        self.buffers
            .get(&id)
            .map(Vec::as_slice)
            .ok_or(ClError::InvalidBuffer(id.0))
    }

    /// Mutable view of a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn get_mut(&mut self, id: BufferId) -> ClResult<&mut [f32]> {
        self.buffers
            .get_mut(&id)
            .map(Vec::as_mut_slice)
            .ok_or(ClError::InvalidBuffer(id.0))
    }

    /// Removes and returns a buffer (used by the executor to split borrows
    /// between input and output buffers of one launch).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn take(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        self.buffers.remove(&id).ok_or(ClError::InvalidBuffer(id.0))
    }

    /// Overwrites a buffer with `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if absent or
    /// [`ClError::SizeMismatch`] if lengths differ.
    pub fn write(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        let buf = self
            .buffers
            .get_mut(&id)
            .ok_or(ClError::InvalidBuffer(id.0))?;
        if buf.len() != data.len() {
            return Err(ClError::SizeMismatch {
                expected: buf.len(),
                got: data.len(),
            });
        }
        buf.copy_from_slice(data);
        Ok(())
    }

    /// Copies the content of `id` into `dst`, reusing `dst`'s allocation.
    ///
    /// This is the allocation-free snapshot primitive: callers keep a pool
    /// of `Vec<f32>`s and refresh them per kernel instead of cloning the
    /// buffer (`get(id)?.to_vec()`) on every launch.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn copy_into(&self, id: BufferId, dst: &mut Vec<f32>) -> ClResult<()> {
        let src = self.get(id)?;
        dst.clear();
        dst.extend_from_slice(src);
        Ok(())
    }

    /// Ranged variant of [`copy_into`](Self::copy_into): refreshes only
    /// the given dirty ranges when `dst` already mirrors the buffer (same
    /// length), and falls back to a full copy otherwise — e.g. when `dst`
    /// is a freshly acquired (empty) pool vector.
    ///
    /// This is the partial `orig_snapshot` refresh primitive: a snapshot
    /// that is stale only in known ranges is brought current without
    /// re-copying the clean elements.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated
    /// here, or [`ClError::SizeMismatch`] if a range exceeds the buffer.
    pub fn copy_into_ranged(
        &self,
        id: BufferId,
        dst: &mut Vec<f32>,
        ranges: &DirtyRanges,
    ) -> ClResult<()> {
        let src = self.get(id)?;
        if ranges.bound() > src.len() {
            return Err(ClError::SizeMismatch {
                expected: src.len(),
                got: ranges.bound(),
            });
        }
        if dst.len() != src.len() {
            dst.clear();
            dst.extend_from_slice(src);
        } else {
            ranges.copy_ranges(src, dst);
        }
        Ok(())
    }

    /// Length in elements of a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn len_of(&self, id: BufferId) -> ClResult<usize> {
        self.get(id).map(<[f32]>::len)
    }

    /// Size in bytes of a buffer (for transfer costing).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn bytes_of(&self, id: BufferId) -> ClResult<u64> {
        Ok(self.len_of(id)? as u64 * 4)
    }

    /// Whether `id` exists in this address space.
    pub fn contains(&self, id: BufferId) -> bool {
        self.buffers.contains_key(&id)
    }

    /// Number of buffers resident.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }
}

/// Element-wise diff-merge, the device-side coherence step of paper §4.3:
/// wherever the CPU-computed copy differs from the pristine original, the
/// CPU value overwrites the destination (the GPU buffer).
///
/// Comparison is on bit patterns so `NaN`s and signed zeros behave like the
/// byte comparison the paper performs. This is the `ranges == full` special
/// case of [`diff_merge_ranged`], sharing its blockwise compare.
///
/// The walk is page-at-a-time ([`PAGE_ELEMS`] elements): each page is
/// screened with an early-exit blockwise compare (SIMD when the `simd`
/// feature is active and the CPU supports AVX2) and only pages that
/// actually differ enter the merge kernel, so huge mostly-clean buffers
/// cost one streaming compare pass and no stores.
///
/// # Panics
///
/// Panics if the three slices have different lengths.
pub fn diff_merge(dst_gpu: &mut [f32], cpu: &[f32], original: &[f32]) {
    assert!(
        dst_gpu.len() == cpu.len() && cpu.len() == original.len(),
        "diff_merge requires equally sized buffers"
    );
    let mut s = 0usize;
    while s < cpu.len() {
        let e = (s + PAGE_ELEMS).min(cpu.len());
        if simd::span_differs(&cpu[s..e], &original[s..e]) {
            simd::merge_span(&mut dst_gpu[s..e], &cpu[s..e], &original[s..e]);
        }
        s = e;
    }
}

/// Ranged diff-merge: like [`diff_merge`] but walks only the given dirty
/// ranges, skipping elements known to be clean entirely. With
/// `ranges == DirtyRanges::full(len)` it is exactly the full merge.
///
/// # Errors
///
/// Returns [`ClError::SizeMismatch`] if the three slices differ in length
/// or a range exceeds them (the fallible twin of [`diff_merge`]'s panic,
/// for callers mid-simulation that must surface a proper error).
pub fn diff_merge_ranged(
    dst_gpu: &mut [f32],
    cpu: &[f32],
    original: &[f32],
    ranges: &DirtyRanges,
) -> ClResult<()> {
    if dst_gpu.len() != cpu.len() || cpu.len() != original.len() {
        let got = if cpu.len() != dst_gpu.len() {
            cpu.len()
        } else {
            original.len()
        };
        return Err(ClError::SizeMismatch {
            expected: dst_gpu.len(),
            got,
        });
    }
    if ranges.bound() > dst_gpu.len() {
        return Err(ClError::SizeMismatch {
            expected: dst_gpu.len(),
            got: ranges.bound(),
        });
    }
    for (s, e) in ranges.iter() {
        simd::merge_span(&mut dst_gpu[s..e], &cpu[s..e], &original[s..e]);
    }
    Ok(())
}

/// Page-map diff-merge: merges exactly the pages a [`PageMap`] marked
/// dirty, skipping clean pages without reading them at all. This is the
/// transfer-side consumer of paged dirty capture: the map already knows
/// which pages can differ, so the merge touches nothing else.
///
/// Elements of a dirty page the CPU did not write are bitwise equal to
/// the original and the merge leaves them alone — page granularity never
/// changes the merged result, only how much is scanned.
///
/// # Errors
///
/// Returns [`ClError::SizeMismatch`] if the three slices differ in length
/// or the map tracks a different buffer length.
pub fn diff_merge_paged(
    dst_gpu: &mut [f32],
    cpu: &[f32],
    original: &[f32],
    pages: &PageMap,
) -> ClResult<()> {
    if dst_gpu.len() != cpu.len() || cpu.len() != original.len() {
        let got = if cpu.len() != dst_gpu.len() {
            cpu.len()
        } else {
            original.len()
        };
        return Err(ClError::SizeMismatch {
            expected: dst_gpu.len(),
            got,
        });
    }
    if pages.len() != dst_gpu.len() {
        return Err(ClError::SizeMismatch {
            expected: dst_gpu.len(),
            got: pages.len(),
        });
    }
    for (s, e) in pages.dirty_spans() {
        simd::merge_span(&mut dst_gpu[s..e], &cpu[s..e], &original[s..e]);
    }
    Ok(())
}

/// Tracker-dispatched diff-merge: exact trackers take the
/// [`diff_merge_ranged`] path, paged trackers take [`diff_merge_paged`].
/// Both produce bit-identical results to the full [`diff_merge`] whenever
/// the tracker covers every written element (which captures via
/// [`DirtyTracker::from_diff`] guarantee).
///
/// # Errors
///
/// Returns [`ClError::SizeMismatch`] as the underlying path does.
pub fn diff_merge_tracked(
    dst_gpu: &mut [f32],
    cpu: &[f32],
    original: &[f32],
    tracker: &DirtyTracker,
) -> ClResult<()> {
    if let Some(pm) = tracker.as_paged() {
        diff_merge_paged(dst_gpu, cpu, original, pm)
    } else {
        let ranges = tracker
            .as_exact()
            .expect("tracker is either exact or paged");
        diff_merge_ranged(dst_gpu, cpu, original, ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirty::PAGED_MIN_LEN;

    #[test]
    fn alloc_and_rw_roundtrip() {
        let mut m = Memory::new();
        let id = BufferId(1);
        m.alloc(id, 4);
        assert_eq!(m.get(id).unwrap(), &[0.0; 4]);
        m.write(id, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(id).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.len_of(id).unwrap(), 4);
        assert_eq!(m.bytes_of(id).unwrap(), 16);
    }

    #[test]
    fn alloc_reuses_the_existing_allocation() {
        let mut m = Memory::new();
        let id = BufferId(1);
        m.alloc(id, 4);
        m.write(id, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let ptr_before = m.get(id).unwrap().as_ptr();
        // Same length: zero-filled in place, no new allocation.
        m.alloc(id, 4);
        assert_eq!(m.get(id).unwrap(), &[0.0; 4]);
        assert_eq!(m.get(id).unwrap().as_ptr(), ptr_before);
        // Shrinking also reuses the allocation.
        m.write(id, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        m.alloc(id, 2);
        assert_eq!(m.get(id).unwrap(), &[0.0; 2]);
        assert_eq!(m.get(id).unwrap().as_ptr(), ptr_before);
    }

    #[test]
    fn copy_into_refreshes_and_reuses_dst() {
        let mut m = Memory::new();
        let id = BufferId(1);
        m.install(id, vec![1.0, 2.0, 3.0]);
        let mut dst = Vec::with_capacity(8);
        let ptr_before = dst.as_ptr();
        m.copy_into(id, &mut dst).unwrap();
        assert_eq!(dst, vec![1.0, 2.0, 3.0]);
        assert_eq!(dst.as_ptr(), ptr_before, "capacity is reused");
        assert_eq!(
            m.copy_into(BufferId(9), &mut dst),
            Err(ClError::InvalidBuffer(9))
        );
    }

    #[test]
    fn missing_buffer_is_an_error() {
        let m = Memory::new();
        assert_eq!(m.get(BufferId(9)), Err(ClError::InvalidBuffer(9)));
    }

    #[test]
    fn write_checks_length() {
        let mut m = Memory::new();
        m.alloc(BufferId(1), 2);
        assert_eq!(
            m.write(BufferId(1), &[1.0]),
            Err(ClError::SizeMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn take_and_install_move_buffers() {
        let mut m = Memory::new();
        m.install(BufferId(1), vec![5.0, 6.0]);
        let v = m.take(BufferId(1)).unwrap();
        assert!(!m.contains(BufferId(1)));
        m.install(BufferId(1), v);
        assert_eq!(m.get(BufferId(1)).unwrap(), &[5.0, 6.0]);
    }

    #[test]
    fn diff_merge_takes_changed_elements_only() {
        let original = [1.0, 2.0, 3.0, 4.0];
        let cpu = [1.0, 9.0, 3.0, 8.0]; // CPU computed elements 1 and 3
        let mut gpu = [7.0, 2.0, 6.0, 4.0]; // GPU computed elements 0 and 2
        diff_merge(&mut gpu, &cpu, &original);
        assert_eq!(gpu, [7.0, 9.0, 6.0, 8.0]);
    }

    #[test]
    fn diff_merge_distinguishes_nan_patterns() {
        let original = [f32::NAN, 0.0];
        let cpu = [f32::NAN, -0.0]; // same NaN bits, -0.0 differs from 0.0
        let mut gpu = [1.0, 1.0];
        diff_merge(&mut gpu, &cpu, &original);
        assert_eq!(gpu[0], 1.0, "identical NaN bits are not a diff");
        assert_eq!(gpu[1].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn diff_merge_documents_paper_caveat() {
        // The paper's diff-based merge cannot see a CPU-computed value that
        // happens to equal the original. This is harmless in FluidiCL
        // because any work-group result the merge "misses" was either also
        // computed by the GPU (identical value) or left untouched on the
        // GPU, whose buffer still holds the original — the same value.
        let original = [5.0];
        let cpu = [5.0]; // CPU computed 5.0, identical to the original
        let mut gpu = [5.0]; // GPU buffer holds the original
        diff_merge(&mut gpu, &cpu, &original);
        assert_eq!(gpu, [5.0]); // correct final value either way
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn diff_merge_rejects_mismatched_lengths() {
        let mut d = [0.0f32; 2];
        diff_merge(&mut d, &[0.0; 2], &[0.0; 3]);
    }

    #[test]
    fn diff_merge_ranged_full_matches_diff_merge() {
        let len = 37; // exercises blocks and the scalar tail
        let original: Vec<f32> = (0..len).map(|i| i as f32).collect();
        let mut cpu = original.clone();
        for i in (0..len).step_by(3) {
            cpu[i] = -(i as f32) - 0.5;
        }
        let mut full = original.clone();
        diff_merge(&mut full, &cpu, &original);
        let mut ranged = original.clone();
        diff_merge_ranged(&mut ranged, &cpu, &original, &DirtyRanges::full(len)).unwrap();
        assert_eq!(full, ranged);
    }

    #[test]
    fn diff_merge_ranged_touches_dirty_ranges_only() {
        let original = [0.0f32; 8];
        let cpu = [1.0f32; 8]; // every element differs from the original
        let mut gpu = [9.0f32; 8];
        let ranges = DirtyRanges::from_ranges([(2, 4), (6, 7)]);
        diff_merge_ranged(&mut gpu, &cpu, &original, &ranges).unwrap();
        assert_eq!(gpu, [9.0, 9.0, 1.0, 1.0, 9.0, 9.0, 1.0, 9.0]);
    }

    #[test]
    fn diff_merge_ranged_reports_size_mismatches() {
        let mut d = [0.0f32; 2];
        assert_eq!(
            diff_merge_ranged(&mut d, &[0.0; 2], &[0.0; 3], &DirtyRanges::empty()),
            Err(ClError::SizeMismatch {
                expected: 2,
                got: 3
            })
        );
        assert_eq!(
            diff_merge_ranged(&mut d, &[0.0; 2], &[0.0; 2], &DirtyRanges::full(4)),
            Err(ClError::SizeMismatch {
                expected: 2,
                got: 4
            })
        );
    }

    #[test]
    fn diff_merge_paged_merges_dirty_pages_only() {
        let len = 2 * PAGE_ELEMS + 11;
        let original = vec![0.0f32; len];
        let mut cpu = original.clone();
        cpu[3] = 1.0; // page 0 — but we won't mark it
        cpu[PAGE_ELEMS + 5] = 2.0; // page 1
        cpu[len - 1] = 3.0; // partial page 2
        let mut pm = PageMap::new(len);
        pm.mark(PAGE_ELEMS + 5);
        pm.mark(len - 1);
        let mut gpu = original.clone();
        diff_merge_paged(&mut gpu, &cpu, &original, &pm).unwrap();
        assert_eq!(gpu[3], 0.0, "unmarked page is skipped entirely");
        assert_eq!(gpu[PAGE_ELEMS + 5], 2.0);
        assert_eq!(gpu[len - 1], 3.0);
        // Size and tracked-length mismatches are typed errors.
        assert!(diff_merge_paged(&mut gpu, &cpu[..1], &original, &pm).is_err());
        let wrong = PageMap::new(len + 1);
        assert_eq!(
            diff_merge_paged(&mut gpu, &cpu, &original, &wrong),
            Err(ClError::SizeMismatch {
                expected: len,
                got: len + 1
            })
        );
    }

    #[test]
    fn diff_merge_tracked_matches_full_merge_on_both_reprs() {
        let len = 3 * PAGE_ELEMS + 7;
        let original: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
        let mut cpu = original.clone();
        for i in (0..len).step_by(97) {
            cpu[i] = f32::from_bits(cpu[i].to_bits() ^ 0x8000_0001);
        }
        let mut expect = original.clone();
        diff_merge(&mut expect, &cpu, &original);
        // Exact tracker (len < PAGED_MIN_LEN ⇒ from_diff stays exact).
        let t = DirtyTracker::from_diff(&cpu, &original);
        assert!(!t.is_paged());
        let mut got = original.clone();
        diff_merge_tracked(&mut got, &cpu, &original, &t).unwrap();
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Paged tracker over the same writes (marked page-granular, a
        // superset of the exact set — the merge result is identical).
        let mut tp = DirtyTracker::new(PAGED_MIN_LEN);
        assert!(tp.is_paged());
        let mut big_cpu = vec![1.0f32; PAGED_MIN_LEN];
        let big_orig = vec![1.0f32; PAGED_MIN_LEN];
        big_cpu[123] = 7.0;
        big_cpu[PAGED_MIN_LEN - 1] = f32::NAN;
        tp.mark_range(123, 124);
        tp.mark_range(PAGED_MIN_LEN - 1, PAGED_MIN_LEN);
        let mut big_expect = big_orig.clone();
        diff_merge(&mut big_expect, &big_cpu, &big_orig);
        let mut big_got = big_orig.clone();
        diff_merge_tracked(&mut big_got, &big_cpu, &big_orig, &tp).unwrap();
        assert_eq!(
            big_got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            big_expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn copy_into_ranged_refreshes_stale_spans() {
        let mut m = Memory::new();
        let id = BufferId(1);
        m.install(id, vec![1.0, 2.0, 3.0, 4.0]);
        // Same length: only the dirty span is refreshed.
        let mut snap = vec![9.0; 4];
        m.copy_into_ranged(id, &mut snap, &DirtyRanges::from_ranges([(1, 3)]))
            .unwrap();
        assert_eq!(snap, vec![9.0, 2.0, 3.0, 9.0]);
        // Length mismatch (fresh pool vec): falls back to a full copy.
        let mut fresh = Vec::new();
        m.copy_into_ranged(id, &mut fresh, &DirtyRanges::empty())
            .unwrap();
        assert_eq!(fresh, vec![1.0, 2.0, 3.0, 4.0]);
        // Out-of-bounds range is an error.
        assert_eq!(
            m.copy_into_ranged(id, &mut snap, &DirtyRanges::full(9)),
            Err(ClError::SizeMismatch {
                expected: 4,
                got: 9
            })
        );
    }
}
