//! Device and host memory.
//!
//! The paper's devices have *discrete* address spaces: a buffer created by
//! the application exists once per device plus once on the host, and keeping
//! those copies coherent is FluidiCL's job. [`Memory`] is one address space:
//! a map from [`BufferId`] to an `f32` array (every Polybench buffer is an
//! `f32` array; the paper's byte-granularity merge is modelled at element
//! granularity, which it reduces to for 4-byte base types — paper §4.3).

use std::collections::HashMap;

use crate::{ClError, ClResult};

/// Handle identifying a logical buffer across address spaces.
///
/// The same `BufferId` refers to the host copy, the CPU-device copy and the
/// GPU-device copy of one application buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u64);

/// One address space: buffer storage for a single device (or the host).
#[derive(Clone, Debug, Default)]
pub struct Memory {
    buffers: HashMap<BufferId, Vec<f32>>,
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates (or reallocates) `id` with `len` zeroed elements.
    ///
    /// Re-allocating an existing buffer reuses its heap allocation: the
    /// content is zero-filled in place and the vector only grows when
    /// `len` exceeds the existing capacity.
    pub fn alloc(&mut self, id: BufferId, len: usize) {
        if let Some(buf) = self.buffers.get_mut(&id) {
            buf.clear();
            buf.resize(len, 0.0);
        } else {
            self.buffers.insert(id, vec![0.0; len]);
        }
    }

    /// Installs `data` as the content of `id`, allocating if needed.
    pub fn install(&mut self, id: BufferId, data: Vec<f32>) {
        self.buffers.insert(id, data);
    }

    /// Immutable view of a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn get(&self, id: BufferId) -> ClResult<&[f32]> {
        self.buffers
            .get(&id)
            .map(Vec::as_slice)
            .ok_or(ClError::InvalidBuffer(id.0))
    }

    /// Mutable view of a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn get_mut(&mut self, id: BufferId) -> ClResult<&mut [f32]> {
        self.buffers
            .get_mut(&id)
            .map(Vec::as_mut_slice)
            .ok_or(ClError::InvalidBuffer(id.0))
    }

    /// Removes and returns a buffer (used by the executor to split borrows
    /// between input and output buffers of one launch).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn take(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        self.buffers.remove(&id).ok_or(ClError::InvalidBuffer(id.0))
    }

    /// Overwrites a buffer with `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if absent or
    /// [`ClError::SizeMismatch`] if lengths differ.
    pub fn write(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        let buf = self
            .buffers
            .get_mut(&id)
            .ok_or(ClError::InvalidBuffer(id.0))?;
        if buf.len() != data.len() {
            return Err(ClError::SizeMismatch {
                expected: buf.len(),
                got: data.len(),
            });
        }
        buf.copy_from_slice(data);
        Ok(())
    }

    /// Copies the content of `id` into `dst`, reusing `dst`'s allocation.
    ///
    /// This is the allocation-free snapshot primitive: callers keep a pool
    /// of `Vec<f32>`s and refresh them per kernel instead of cloning the
    /// buffer (`get(id)?.to_vec()`) on every launch.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn copy_into(&self, id: BufferId, dst: &mut Vec<f32>) -> ClResult<()> {
        let src = self.get(id)?;
        dst.clear();
        dst.extend_from_slice(src);
        Ok(())
    }

    /// Length in elements of a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn len_of(&self, id: BufferId) -> ClResult<usize> {
        self.get(id).map(<[f32]>::len)
    }

    /// Size in bytes of a buffer (for transfer costing).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if `id` was never allocated here.
    pub fn bytes_of(&self, id: BufferId) -> ClResult<u64> {
        Ok(self.len_of(id)? as u64 * 4)
    }

    /// Whether `id` exists in this address space.
    pub fn contains(&self, id: BufferId) -> bool {
        self.buffers.contains_key(&id)
    }

    /// Number of buffers resident.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }
}

/// Element-wise diff-merge, the device-side coherence step of paper §4.3:
/// wherever the CPU-computed copy differs from the pristine original, the
/// CPU value overwrites the destination (the GPU buffer).
///
/// Comparison is on bit patterns so `NaN`s and signed zeros behave like the
/// byte comparison the paper performs.
///
/// # Panics
///
/// Panics if the three slices have different lengths.
pub fn diff_merge(dst_gpu: &mut [f32], cpu: &[f32], original: &[f32]) {
    assert!(
        dst_gpu.len() == cpu.len() && cpu.len() == original.len(),
        "diff_merge requires equally sized buffers"
    );
    for ((d, &c), &o) in dst_gpu.iter_mut().zip(cpu).zip(original) {
        if c.to_bits() != o.to_bits() {
            *d = c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_roundtrip() {
        let mut m = Memory::new();
        let id = BufferId(1);
        m.alloc(id, 4);
        assert_eq!(m.get(id).unwrap(), &[0.0; 4]);
        m.write(id, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(id).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.len_of(id).unwrap(), 4);
        assert_eq!(m.bytes_of(id).unwrap(), 16);
    }

    #[test]
    fn alloc_reuses_the_existing_allocation() {
        let mut m = Memory::new();
        let id = BufferId(1);
        m.alloc(id, 4);
        m.write(id, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let ptr_before = m.get(id).unwrap().as_ptr();
        // Same length: zero-filled in place, no new allocation.
        m.alloc(id, 4);
        assert_eq!(m.get(id).unwrap(), &[0.0; 4]);
        assert_eq!(m.get(id).unwrap().as_ptr(), ptr_before);
        // Shrinking also reuses the allocation.
        m.write(id, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        m.alloc(id, 2);
        assert_eq!(m.get(id).unwrap(), &[0.0; 2]);
        assert_eq!(m.get(id).unwrap().as_ptr(), ptr_before);
    }

    #[test]
    fn copy_into_refreshes_and_reuses_dst() {
        let mut m = Memory::new();
        let id = BufferId(1);
        m.install(id, vec![1.0, 2.0, 3.0]);
        let mut dst = Vec::with_capacity(8);
        let ptr_before = dst.as_ptr();
        m.copy_into(id, &mut dst).unwrap();
        assert_eq!(dst, vec![1.0, 2.0, 3.0]);
        assert_eq!(dst.as_ptr(), ptr_before, "capacity is reused");
        assert_eq!(
            m.copy_into(BufferId(9), &mut dst),
            Err(ClError::InvalidBuffer(9))
        );
    }

    #[test]
    fn missing_buffer_is_an_error() {
        let m = Memory::new();
        assert_eq!(m.get(BufferId(9)), Err(ClError::InvalidBuffer(9)));
    }

    #[test]
    fn write_checks_length() {
        let mut m = Memory::new();
        m.alloc(BufferId(1), 2);
        assert_eq!(
            m.write(BufferId(1), &[1.0]),
            Err(ClError::SizeMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn take_and_install_move_buffers() {
        let mut m = Memory::new();
        m.install(BufferId(1), vec![5.0, 6.0]);
        let v = m.take(BufferId(1)).unwrap();
        assert!(!m.contains(BufferId(1)));
        m.install(BufferId(1), v);
        assert_eq!(m.get(BufferId(1)).unwrap(), &[5.0, 6.0]);
    }

    #[test]
    fn diff_merge_takes_changed_elements_only() {
        let original = [1.0, 2.0, 3.0, 4.0];
        let cpu = [1.0, 9.0, 3.0, 8.0]; // CPU computed elements 1 and 3
        let mut gpu = [7.0, 2.0, 6.0, 4.0]; // GPU computed elements 0 and 2
        diff_merge(&mut gpu, &cpu, &original);
        assert_eq!(gpu, [7.0, 9.0, 6.0, 8.0]);
    }

    #[test]
    fn diff_merge_distinguishes_nan_patterns() {
        let original = [f32::NAN, 0.0];
        let cpu = [f32::NAN, -0.0]; // same NaN bits, -0.0 differs from 0.0
        let mut gpu = [1.0, 1.0];
        diff_merge(&mut gpu, &cpu, &original);
        assert_eq!(gpu[0], 1.0, "identical NaN bits are not a diff");
        assert_eq!(gpu[1].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn diff_merge_documents_paper_caveat() {
        // The paper's diff-based merge cannot see a CPU-computed value that
        // happens to equal the original. This is harmless in FluidiCL
        // because any work-group result the merge "misses" was either also
        // computed by the GPU (identical value) or left untouched on the
        // GPU, whose buffer still holds the original — the same value.
        let original = [5.0];
        let cpu = [5.0]; // CPU computed 5.0, identical to the original
        let mut gpu = [5.0]; // GPU buffer holds the original
        diff_merge(&mut gpu, &cpu, &original);
        assert_eq!(gpu, [5.0]); // correct final value either way
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn diff_merge_rejects_mismatched_lengths() {
        let mut d = [0.0f32; 2];
        diff_merge(&mut d, &[0.0; 2], &[0.0; 3]);
    }
}
