//! # fluidicl-vcl — a virtual OpenCL runtime
//!
//! A from-scratch implementation of the OpenCL subset the FluidiCL paper
//! builds on (paper §2, §7), running over the simulated heterogeneous
//! machine from [`fluidicl_hetsim`]:
//!
//! * [`NdRange`] — 1–3-D index spaces with work-group flattening (paper
//!   Figure 5) and the covering-slice offset computation of paper §5.2;
//! * [`Memory`] / [`BufferId`] — discrete per-device address spaces and the
//!   [`diff_merge`] coherence primitive of paper §4.3;
//! * [`KernelDef`] / [`Program`] — kernels as per-work-item Rust closures
//!   with declared `in`/`out`/`inout` signatures, cost profiles, and
//!   alternate versions for online profiling (paper §6.6);
//! * [`exec`] — the functional executor that really computes kernel results
//!   for any flattened work-group range, so partitioning bugs corrupt real
//!   data;
//! * [`access`] — a shadow-memory layer over the executor recording
//!   per-work-group read/write sets for the `fluidicl-check` sanitizer;
//! * [`CommandQueue`] / [`Event`] / [`Platform`] — in-order command queues
//!   with completion events and cross-queue waits (paper §2, §5.4);
//! * [`ClDriver`] — the driver trait every runtime (single-device, FluidiCL,
//!   static partition, SOCL) implements, letting one host program run on all
//!   of them;
//! * [`SingleDeviceRuntime`] — the vendor-runtime stand-in used for the
//!   paper's CPU-only and GPU-only baselines.

// Unsafe is forbidden everywhere except the one AVX2 intrinsics module
// the `simd` feature compiles in (crate::simd::avx2, which carries its
// own targeted `allow`); `deny` keeps any other unsafe a hard error.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod access;
pub mod dirty;
mod driver;
mod error;
pub mod exec;
pub mod fault;
pub mod footprint;
mod kernel;
mod memory;
mod ndrange;
mod queue;
pub mod simd;
mod single;

pub use access::{execute_groups_shadowed, AccessRecord, WriteMap};
pub use dirty::{DirtyRanges, DirtyTracker, PageMap, PAGED_MIN_LEN, PAGE_ELEMS};
pub use driver::{ClDriver, DeviceKind};
pub use error::{ClError, ClResult};
pub use exec::{
    execute_groups_injected, execute_groups_par, execute_groups_par_capped, Launch, LaunchPlan,
};
pub use fault::{payload_checksum, FaultInjector, FaultKind, FaultPlan, TransferFate};
pub use footprint::{AccessPattern, RangeFn};
pub use kernel::{
    ArgRole, ArgSpec, Inputs, KernelArg, KernelBody, KernelDef, KernelVersion, Outputs, Program,
    Scalars,
};
pub use memory::{
    diff_merge, diff_merge_paged, diff_merge_ranged, diff_merge_tracked, BufferId, Memory,
};
pub use ndrange::{NdRange, WorkItem};
pub use queue::{CommandQueue, Event, Platform};
pub use simd::{set_simd_enabled, simd_active};
pub use single::SingleDeviceRuntime;
