//! Dirty element ranges.
//!
//! FluidiCL only needs to ship the elements a CPU subkernel actually
//! wrote (paper §4.2): everything else is bit-identical to the pristine
//! original on both devices. [`DirtyRanges`] is the repo-wide currency
//! for "which elements changed": a sorted, coalesced set of half-open
//! element ranges, cheap to union/intersect and to turn into a byte
//! count for transfer costing. Ranges come from three sources — the
//! sanitizer's per-group [`WriteMap`]s, explicit index streams, and
//! blockwise buffer diffs ([`DirtyRanges::from_diff`]).

use crate::access::WriteMap;

/// A sorted, coalesced set of half-open `[start, end)` element ranges.
///
/// Invariants: ranges are sorted by start, non-empty, non-overlapping
/// and non-adjacent (touching ranges are merged on construction), so
/// equality of two `DirtyRanges` is equality of the element sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirtyRanges {
    ranges: Vec<(usize, usize)>,
}

impl DirtyRanges {
    /// The empty set: nothing dirty.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The full buffer `[0, len)` (empty when `len == 0`).
    pub fn full(len: usize) -> Self {
        if len == 0 {
            Self::empty()
        } else {
            Self {
                ranges: vec![(0, len)],
            }
        }
    }

    /// Builds from arbitrary `(start, end)` ranges in any order; empty,
    /// overlapping and adjacent input ranges are normalised away.
    pub fn from_ranges(iter: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut v: Vec<(usize, usize)> = iter.into_iter().filter(|(s, e)| s < e).collect();
        v.sort_unstable();
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(v.len());
        for (s, e) in v {
            match ranges.last_mut() {
                Some((_, last_end)) if s <= *last_end => *last_end = (*last_end).max(e),
                _ => ranges.push((s, e)),
            }
        }
        Self { ranges }
    }

    /// Builds from single element indices in any order (duplicates fine).
    pub fn from_indices(iter: impl IntoIterator<Item = usize>) -> Self {
        Self::from_ranges(iter.into_iter().map(|i| (i, i + 1)))
    }

    /// Builds from a sanitizer write map (element index → written bits).
    ///
    /// `BTreeMap` keys are already sorted, so this is a single coalescing
    /// pass over the map.
    pub fn from_write_map(map: &WriteMap) -> Self {
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for &i in map.keys() {
            match ranges.last_mut() {
                Some((_, end)) if *end == i => *end += 1,
                _ => ranges.push((i, i + 1)),
            }
        }
        Self { ranges }
    }

    /// The ranges where `a` and `b` differ bitwise.
    ///
    /// This is the capture primitive coexec uses to learn what a CPU
    /// subkernel wrote: diff the device copy against the pristine
    /// original. The scan compares eight `f32`s at a time as `u32` bit
    /// blocks (clean blocks are skipped without per-element branches)
    /// with a scalar tail, mirroring [`diff_merge_ranged`]'s walk.
    ///
    /// [`diff_merge_ranged`]: crate::memory::diff_merge_ranged
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_diff(a: &[f32], b: &[f32]) -> Self {
        assert_eq!(a.len(), b.len(), "from_diff requires equally sized buffers");
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let push = |ranges: &mut Vec<(usize, usize)>, i: usize| match ranges.last_mut() {
            Some((_, end)) if *end == i => *end += 1,
            _ => ranges.push((i, i + 1)),
        };
        let mut ac = a.chunks_exact(8);
        let mut bc = b.chunks_exact(8);
        let mut base = 0usize;
        for (ab, bb) in (&mut ac).zip(&mut bc) {
            let mut diff = 0u32;
            for (x, y) in ab.iter().zip(bb) {
                diff |= x.to_bits() ^ y.to_bits();
            }
            if diff != 0 {
                for (k, (x, y)) in ab.iter().zip(bb).enumerate() {
                    if x.to_bits() != y.to_bits() {
                        push(&mut ranges, base + k);
                    }
                }
            }
            base += 8;
        }
        for (k, (x, y)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
            if x.to_bits() != y.to_bits() {
                push(&mut ranges, base + k);
            }
        }
        Self { ranges }
    }

    /// Adds `[start, end)` to the set (no-op when `start >= end`).
    pub fn insert(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        *self = self.union(&Self {
            ranges: vec![(start, end)],
        });
    }

    /// Set union, preserving the coalesced invariants.
    pub fn union(&self, other: &Self) -> Self {
        Self::from_ranges(
            self.ranges
                .iter()
                .chain(other.ranges.iter())
                .copied()
                .collect::<Vec<_>>(),
        )
    }

    /// Set intersection (two-pointer walk over both sorted lists).
    pub fn intersect(&self, other: &Self) -> Self {
        let mut ranges = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (as_, ae) = self.ranges[i];
            let (bs, be) = other.ranges[j];
            let s = as_.max(bs);
            let e = ae.min(be);
            if s < e {
                ranges.push((s, e));
            }
            if ae <= be {
                i += 1;
            } else {
                j += 1;
            }
        }
        Self { ranges }
    }

    /// Total number of dirty elements.
    pub fn element_count(&self) -> usize {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Total dirty bytes (`f32` elements, 4 bytes each) — the transfer
    /// payload a partial CPU→GPU shipment of this set would move.
    pub fn byte_count(&self) -> u64 {
        self.element_count() as u64 * 4
    }

    /// Whether no element is dirty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether the set is exactly `[0, len)`.
    pub fn is_full(&self, len: usize) -> bool {
        *self == Self::full(len)
    }

    /// One past the highest dirty index (0 when empty).
    pub fn bound(&self) -> usize {
        self.ranges.last().map_or(0, |&(_, e)| e)
    }

    /// Number of coalesced ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Whether `idx` is dirty.
    pub fn contains(&self, idx: usize) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if idx < s {
                    std::cmp::Ordering::Greater
                } else if idx >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Iterates the coalesced `(start, end)` ranges in order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ranges.iter().copied()
    }

    /// The coalesced ranges as a slice.
    pub fn as_slice(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Copies `src[s..e]` into `dst[s..e]` for every dirty range — the
    /// partial-mirror primitive for refreshing a stale copy without
    /// touching clean elements.
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` differ in length or a range exceeds it.
    pub fn copy_ranges(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(
            src.len(),
            dst.len(),
            "copy_ranges requires equally sized buffers"
        );
        for &(s, e) in &self.ranges {
            dst[s..e].copy_from_slice(&src[s..e]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_coalesces_any_order() {
        let a = DirtyRanges::from_ranges([(4, 6), (0, 2), (2, 4), (10, 12)]);
        assert_eq!(a.as_slice(), &[(0, 6), (10, 12)]);
        let b = DirtyRanges::from_ranges([(10, 12), (0, 6)]);
        assert_eq!(a, b, "order-independent");
        assert_eq!(a.union(&a), a, "idempotent");
        assert_eq!(a.element_count(), 8);
        assert_eq!(a.byte_count(), 32);
        assert_eq!(a.bound(), 12);
    }

    #[test]
    fn from_indices_merges_adjacent_and_duplicates() {
        let r = DirtyRanges::from_indices([3, 1, 2, 2, 7]);
        assert_eq!(r.as_slice(), &[(1, 4), (7, 8)]);
        assert!(r.contains(3));
        assert!(!r.contains(4));
        assert!(!r.contains(0));
    }

    #[test]
    fn full_and_empty() {
        assert!(DirtyRanges::empty().is_empty());
        assert!(DirtyRanges::full(0).is_empty());
        let f = DirtyRanges::full(5);
        assert!(f.is_full(5));
        assert!(!f.is_full(6));
        assert_eq!(f.element_count(), 5);
    }

    #[test]
    fn union_and_intersect() {
        let a = DirtyRanges::from_ranges([(0, 4), (8, 12)]);
        let b = DirtyRanges::from_ranges([(2, 9), (20, 22)]);
        assert_eq!(a.union(&b).as_slice(), &[(0, 12), (20, 22)]);
        assert_eq!(a.intersect(&b).as_slice(), &[(2, 4), (8, 9)]);
        assert_eq!(a.intersect(&DirtyRanges::empty()), DirtyRanges::empty());
        assert_eq!(a.union(&DirtyRanges::empty()), a);
    }

    #[test]
    fn insert_extends_in_place() {
        let mut r = DirtyRanges::empty();
        r.insert(4, 6);
        r.insert(0, 2);
        r.insert(2, 4); // bridges the gap
        r.insert(9, 9); // empty: no-op
        assert_eq!(r.as_slice(), &[(0, 6)]);
    }

    #[test]
    fn from_write_map_coalesces_sorted_keys() {
        let mut map = WriteMap::new();
        for i in [5usize, 6, 7, 12] {
            map.insert(i, 1.0f32.to_bits());
        }
        let r = DirtyRanges::from_write_map(&map);
        assert_eq!(r.as_slice(), &[(5, 8), (12, 13)]);
    }

    #[test]
    fn from_diff_finds_bitwise_differences() {
        let a: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let mut b = a.clone();
        b[3] = -3.0;
        b[4] = -4.0;
        b[17] = 0.5; // in the scalar tail
        let r = DirtyRanges::from_diff(&a, &b);
        assert_eq!(r.as_slice(), &[(3, 5), (17, 18)]);
        assert_eq!(DirtyRanges::from_diff(&a, &a), DirtyRanges::empty());
        // -0.0 vs 0.0 and distinct NaN payloads are bitwise diffs.
        let r2 = DirtyRanges::from_diff(&[0.0], &[-0.0]);
        assert_eq!(r2.as_slice(), &[(0, 1)]);
    }

    #[test]
    fn copy_ranges_mirrors_only_dirty_spans() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut dst = [0.0; 5];
        DirtyRanges::from_ranges([(1, 3), (4, 5)]).copy_ranges(&src, &mut dst);
        assert_eq!(dst, [0.0, 2.0, 3.0, 0.0, 5.0]);
    }
}
