//! Dirty element tracking.
//!
//! FluidiCL only needs to ship the elements a CPU subkernel actually
//! wrote (paper §4.2): everything else is bit-identical to the pristine
//! original on both devices. Two representations track "which elements
//! changed":
//!
//! * [`DirtyRanges`] — the exact currency: a sorted, coalesced set of
//!   half-open element ranges, cheap to union/intersect and to turn into
//!   a byte count for transfer costing. Exact byte counts, but insert
//!   and capture costs grow with the number of distinct ranges.
//! * [`PageMap`] — softmmu-style page-granular tracking for huge
//!   buffers: one bit per [`PAGE_ELEMS`]-element page in a fixed-size
//!   bitmap, O(1) to mark, with coalesced [`DirtyRanges`] synthesized
//!   lazily only when a transfer or lint needs them. Byte counts are a
//!   page-granular over-approximation (never an undercount of the real
//!   write set).
//!
//! [`DirtyTracker`] unifies both behind one interface and auto-selects
//! the representation by buffer size (and, for incrementally marked
//! trackers, by write density): small regular kernels keep today's exact
//! ranges and byte counts bit-for-bit, while scattered writes over
//! 10M–100M-element buffers mark dirt in O(1) instead of degrading to
//! quadratic range maintenance.

use crate::access::WriteMap;
use crate::simd;
use crate::{ClError, ClResult};

/// Elements per dirty-tracking page (16 KiB of `f32`s) — the granularity
/// of [`PageMap`] and the span the per-page diff-merge walks at a time.
pub const PAGE_ELEMS: usize = 4096;

/// Buffer length (elements) at which [`DirtyTracker`] auto-selects the
/// paged representation: 4M elements (16 MiB). Every Polybench workload
/// in the repo sits far below this, so all existing traces and byte
/// counts keep the exact representation bit-for-bit.
pub const PAGED_MIN_LEN: usize = 1 << 22;

/// Exact range count past which an incrementally marked [`DirtyTracker`]
/// on a paged-eligible buffer promotes itself to a [`PageMap`] — the
/// write-density half of representation auto-selection.
const MAX_EXACT_RANGES: usize = 4096;

/// A sorted, coalesced set of half-open `[start, end)` element ranges.
///
/// Invariants: ranges are sorted by start, non-empty, non-overlapping
/// and non-adjacent (touching ranges are merged on construction), so
/// equality of two `DirtyRanges` is equality of the element sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirtyRanges {
    ranges: Vec<(usize, usize)>,
}

impl DirtyRanges {
    /// The empty set: nothing dirty.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The full buffer `[0, len)` (empty when `len == 0`).
    pub fn full(len: usize) -> Self {
        if len == 0 {
            Self::empty()
        } else {
            Self {
                ranges: vec![(0, len)],
            }
        }
    }

    /// Builds from arbitrary `(start, end)` ranges in any order; empty,
    /// overlapping and adjacent input ranges are normalised away.
    pub fn from_ranges(iter: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut v: Vec<(usize, usize)> = iter.into_iter().filter(|(s, e)| s < e).collect();
        v.sort_unstable();
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(v.len());
        for (s, e) in v {
            match ranges.last_mut() {
                Some((_, last_end)) if s <= *last_end => *last_end = (*last_end).max(e),
                _ => ranges.push((s, e)),
            }
        }
        Self { ranges }
    }

    /// Builds from single element indices in any order (duplicates fine).
    ///
    /// Bulk construction sorts the raw index stream once and coalesces in
    /// a single pass — O(n log n) regardless of how scattered the indices
    /// are, where repeated [`DirtyRanges::insert`] calls would pay a
    /// range-list splice per index.
    pub fn from_indices(iter: impl IntoIterator<Item = usize>) -> Self {
        let mut v: Vec<usize> = iter.into_iter().collect();
        v.sort_unstable();
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for i in v {
            match ranges.last_mut() {
                Some((_, end)) if i < *end => {} // duplicate
                Some((_, end)) if i == *end => *end += 1,
                _ => ranges.push((i, i + 1)),
            }
        }
        Self { ranges }
    }

    /// Builds from a sanitizer write map (element index → written bits).
    ///
    /// `BTreeMap` keys are already sorted, so this is a single coalescing
    /// pass over the map — the bulk sibling of [`DirtyRanges::from_indices`],
    /// with the sort already paid by the map.
    pub fn from_write_map(map: &WriteMap) -> Self {
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for &i in map.keys() {
            match ranges.last_mut() {
                Some((_, end)) if *end == i => *end += 1,
                _ => ranges.push((i, i + 1)),
            }
        }
        Self { ranges }
    }

    /// The ranges where `a` and `b` differ bitwise.
    ///
    /// This is the capture primitive coexec uses to learn what a CPU
    /// subkernel wrote: diff the device copy against the pristine
    /// original. The scan compares eight `f32`s at a time as `u32` bit
    /// blocks (clean blocks are skipped without per-element branches)
    /// with a scalar tail, mirroring [`diff_merge_ranged`]'s walk.
    ///
    /// [`diff_merge_ranged`]: crate::memory::diff_merge_ranged
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths. See
    /// [`DirtyRanges::try_from_diff`] for the fallible twin.
    pub fn from_diff(a: &[f32], b: &[f32]) -> Self {
        assert_eq!(a.len(), b.len(), "from_diff requires equally sized buffers");
        Self::diff_scan(a, b)
    }

    /// Fallible twin of [`DirtyRanges::from_diff`] for callers fed by
    /// untrusted data (e.g. replaying a recorded trace): a length
    /// mismatch surfaces as [`ClError::ProtocolViolation`] instead of a
    /// panic. The error's `kernel` field carries the primitive name,
    /// since the violation happens outside any kernel context.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::ProtocolViolation`] if the slices differ in
    /// length.
    pub fn try_from_diff(a: &[f32], b: &[f32]) -> ClResult<Self> {
        if a.len() != b.len() {
            return Err(ClError::ProtocolViolation {
                kernel: "from_diff".to_string(),
                detail: format!(
                    "diff over unequal buffers: {} vs {} elements",
                    a.len(),
                    b.len()
                ),
            });
        }
        Ok(Self::diff_scan(a, b))
    }

    fn diff_scan(a: &[f32], b: &[f32]) -> Self {
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let push = |ranges: &mut Vec<(usize, usize)>, i: usize| match ranges.last_mut() {
            Some((_, end)) if *end == i => *end += 1,
            _ => ranges.push((i, i + 1)),
        };
        let mut ac = a.chunks_exact(8);
        let mut bc = b.chunks_exact(8);
        let mut base = 0usize;
        for (ab, bb) in (&mut ac).zip(&mut bc) {
            let mut diff = 0u32;
            for (x, y) in ab.iter().zip(bb) {
                diff |= x.to_bits() ^ y.to_bits();
            }
            if diff != 0 {
                for (k, (x, y)) in ab.iter().zip(bb).enumerate() {
                    if x.to_bits() != y.to_bits() {
                        push(&mut ranges, base + k);
                    }
                }
            }
            base += 8;
        }
        for (k, (x, y)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
            if x.to_bits() != y.to_bits() {
                push(&mut ranges, base + k);
            }
        }
        Self { ranges }
    }

    /// Adds `[start, end)` to the set (no-op when `start >= end`).
    ///
    /// Binary-searches the splice window and patches the list in place —
    /// O(log n) plus the shift — instead of rebuilding the whole range
    /// vector per call, which made scattered insert streams quadratic.
    /// For bulk index streams prefer [`DirtyRanges::from_indices`], which
    /// sorts once and coalesces in a single pass.
    pub fn insert(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        // First range that could merge with the insertion (its end reaches
        // `start`), and first range strictly beyond it (its start is past
        // `end`); adjacency in either direction coalesces.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.ranges.insert(lo, (start, end));
            return;
        }
        let merged = (start.min(self.ranges[lo].0), end.max(self.ranges[hi - 1].1));
        self.ranges[lo] = merged;
        self.ranges.drain(lo + 1..hi);
    }

    /// Set union, preserving the coalesced invariants.
    pub fn union(&self, other: &Self) -> Self {
        Self::from_ranges(
            self.ranges
                .iter()
                .chain(other.ranges.iter())
                .copied()
                .collect::<Vec<_>>(),
        )
    }

    /// Set intersection (two-pointer walk over both sorted lists).
    pub fn intersect(&self, other: &Self) -> Self {
        let mut ranges = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (as_, ae) = self.ranges[i];
            let (bs, be) = other.ranges[j];
            let s = as_.max(bs);
            let e = ae.min(be);
            if s < e {
                ranges.push((s, e));
            }
            if ae <= be {
                i += 1;
            } else {
                j += 1;
            }
        }
        Self { ranges }
    }

    /// Set difference `self \ other`: the elements of `self` not in
    /// `other` (the uncovered-remainder primitive the race detector's
    /// coverage rules are built on).
    pub fn subtract(&self, other: &Self) -> Self {
        let mut out = Vec::new();
        for &(mut s, e) in &self.ranges {
            for &(bs, be) in &other.ranges {
                if be <= s {
                    continue;
                }
                if bs >= e {
                    break;
                }
                if bs > s {
                    out.push((s, bs));
                }
                s = s.max(be);
                if s >= e {
                    break;
                }
            }
            if s < e {
                out.push((s, e));
            }
        }
        Self::from_ranges(out)
    }

    /// Total number of dirty elements.
    pub fn element_count(&self) -> usize {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Total dirty bytes (`f32` elements, 4 bytes each) — the transfer
    /// payload a partial CPU→GPU shipment of this set would move.
    pub fn byte_count(&self) -> u64 {
        self.element_count() as u64 * 4
    }

    /// Whether no element is dirty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether the set is exactly `[0, len)`.
    pub fn is_full(&self, len: usize) -> bool {
        *self == Self::full(len)
    }

    /// One past the highest dirty index (0 when empty).
    pub fn bound(&self) -> usize {
        self.ranges.last().map_or(0, |&(_, e)| e)
    }

    /// Number of coalesced ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Whether `idx` is dirty.
    pub fn contains(&self, idx: usize) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if idx < s {
                    std::cmp::Ordering::Greater
                } else if idx >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Iterates the coalesced `(start, end)` ranges in order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ranges.iter().copied()
    }

    /// The coalesced ranges as a slice.
    pub fn as_slice(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Copies `src[s..e]` into `dst[s..e]` for every dirty range — the
    /// partial-mirror primitive for refreshing a stale copy without
    /// touching clean elements.
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` differ in length or a range exceeds it.
    /// See [`DirtyRanges::try_copy_ranges`] for the fallible twin.
    pub fn copy_ranges(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(
            src.len(),
            dst.len(),
            "copy_ranges requires equally sized buffers"
        );
        for &(s, e) in &self.ranges {
            dst[s..e].copy_from_slice(&src[s..e]);
        }
    }

    /// Fallible twin of [`DirtyRanges::copy_ranges`]: mismatched buffer
    /// lengths or an out-of-bounds range — what a corrupted trace's
    /// recorded ranges look like — surface as
    /// [`ClError::ProtocolViolation`] instead of a panic. The error's
    /// `kernel` field carries the primitive name, since the violation
    /// happens outside any kernel context.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::ProtocolViolation`] if `dst` and `src` differ
    /// in length or a range exceeds the buffers.
    pub fn try_copy_ranges(&self, src: &[f32], dst: &mut [f32]) -> ClResult<()> {
        if src.len() != dst.len() {
            return Err(ClError::ProtocolViolation {
                kernel: "copy_ranges".to_string(),
                detail: format!(
                    "copy over unequal buffers: {} vs {} elements",
                    src.len(),
                    dst.len()
                ),
            });
        }
        if self.bound() > src.len() {
            return Err(ClError::ProtocolViolation {
                kernel: "copy_ranges".to_string(),
                detail: format!(
                    "range bound {} exceeds the {}-element buffer",
                    self.bound(),
                    src.len()
                ),
            });
        }
        for &(s, e) in &self.ranges {
            dst[s..e].copy_from_slice(&src[s..e]);
        }
        Ok(())
    }
}

/// Softmmu-style page-granular dirty bitmap: one bit per
/// [`PAGE_ELEMS`]-element page of a fixed-length buffer.
///
/// Marking is O(1) per page regardless of how scattered the writes are;
/// coalesced [`DirtyRanges`] are synthesized lazily via
/// [`PageMap::synthesize`] only when a transfer or lint needs them. A
/// page map never *misses* a write it was told about — synthesized
/// ranges are a superset of the exact write set, rounded out to page
/// boundaries (and clipped to the buffer length).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageMap {
    /// Buffer length in elements.
    len: usize,
    /// Fixed-size bitmap: bit `p` of word `p / 64` is page `p`.
    words: Vec<u64>,
}

impl PageMap {
    /// A clean map for a `len`-element buffer.
    pub fn new(len: usize) -> Self {
        let pages = len.div_ceil(PAGE_ELEMS);
        Self {
            len,
            words: vec![0; pages.div_ceil(64)],
        }
    }

    /// Builds a map with every page containing an element of `ranges`
    /// marked — the exact→paged promotion conversion.
    pub fn from_ranges(len: usize, ranges: &DirtyRanges) -> Self {
        let mut pm = Self::new(len);
        for (s, e) in ranges.iter() {
            pm.mark_range(s, e);
        }
        pm
    }

    /// Marks every page overlapping a bitwise difference between `a` and
    /// `b`. The scan runs page-at-a-time through the blockwise (SIMD
    /// when available) compare and stops at the first differing block of
    /// each page, so heavily written pages cost a few cache lines, not a
    /// full page scan.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_diff(a: &[f32], b: &[f32]) -> Self {
        assert_eq!(a.len(), b.len(), "from_diff requires equally sized buffers");
        let mut pm = Self::new(a.len());
        let mut s = 0usize;
        while s < a.len() {
            let e = (s + PAGE_ELEMS).min(a.len());
            if simd::span_differs(&a[s..e], &b[s..e]) {
                pm.mark(s);
            }
            s = e;
        }
        pm
    }

    /// Buffer length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no page is dirty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of pages the buffer spans.
    pub fn page_count(&self) -> usize {
        self.len.div_ceil(PAGE_ELEMS)
    }

    /// Number of dirty pages.
    pub fn dirty_page_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether page `p` is dirty (false for pages past the buffer).
    pub fn page_is_dirty(&self, p: usize) -> bool {
        self.words
            .get(p / 64)
            .is_some_and(|w| w & (1u64 << (p % 64)) != 0)
    }

    /// Marks the page containing element `idx` dirty — O(1). Indices past
    /// the buffer are ignored.
    pub fn mark(&mut self, idx: usize) {
        if idx < self.len {
            let p = idx / PAGE_ELEMS;
            self.words[p / 64] |= 1u64 << (p % 64);
        }
    }

    /// Marks every page overlapping `[start, end)` dirty, word-filling
    /// interior runs. Clipped to the buffer; a no-op when empty.
    pub fn mark_range(&mut self, start: usize, end: usize) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let p0 = start / PAGE_ELEMS;
        let p1 = (end - 1) / PAGE_ELEMS;
        let (w0, b0) = (p0 / 64, (p0 % 64) as u32);
        let (w1, b1) = (p1 / 64, (p1 % 64) as u32);
        if w0 == w1 {
            self.words[w0] |= (!0u64 << b0) & (!0u64 >> (63 - b1));
        } else {
            self.words[w0] |= !0u64 << b0;
            for w in &mut self.words[w0 + 1..w1] {
                *w = !0;
            }
            self.words[w1] |= !0u64 >> (63 - b1);
        }
    }

    /// Bitwise union with another map of the same buffer.
    ///
    /// # Panics
    ///
    /// Panics if the maps track different buffer lengths.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "union over differently sized maps");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Iterates maximal runs of dirty pages as half-open element spans,
    /// clipped to the buffer length.
    pub fn dirty_spans(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let pages = self.page_count();
        let mut p = 0usize;
        std::iter::from_fn(move || {
            while p < pages && !self.page_is_dirty(p) {
                p += 1;
            }
            if p >= pages {
                return None;
            }
            let start = p;
            while p < pages && self.page_is_dirty(p) {
                p += 1;
            }
            Some((start * PAGE_ELEMS, (p * PAGE_ELEMS).min(self.len)))
        })
    }

    /// Synthesizes the coalesced page-granular [`DirtyRanges`] — the lazy
    /// conversion a transfer or lint calls when it needs real ranges.
    /// Runs of adjacent dirty pages become one range; runs are separated
    /// by at least one clean page, so the result satisfies the
    /// [`DirtyRanges`] invariants by construction.
    pub fn synthesize(&self) -> DirtyRanges {
        DirtyRanges {
            ranges: self.dirty_spans().collect(),
        }
    }

    /// Whether every element of `ranges` lies in a dirty page — the
    /// "synthesized ⊇ exact" coverage check.
    pub fn covers(&self, ranges: &DirtyRanges) -> bool {
        ranges.iter().all(|(s, e)| {
            e <= self.len && (s / PAGE_ELEMS..=(e - 1) / PAGE_ELEMS).all(|p| self.page_is_dirty(p))
        })
    }

    /// Dirty elements at page granularity: full pages, with a dirty final
    /// partial page counted only up to the buffer length.
    pub fn element_count(&self) -> usize {
        let mut n = self.dirty_page_count() * PAGE_ELEMS;
        let pages = self.page_count();
        if pages > 0 && self.page_is_dirty(pages - 1) {
            n -= pages * PAGE_ELEMS - self.len;
        }
        n
    }

    /// Dirty bytes at page granularity (`f32` elements, 4 bytes each).
    pub fn byte_count(&self) -> u64 {
        self.element_count() as u64 * 4
    }
}

/// Unified dirty tracker: exact ranges for small buffers, a page-granular
/// bitmap for huge ones, auto-selected so existing workloads keep exact
/// byte counts while 10M+-element buffers with scattered writes mark
/// dirt in O(1).
///
/// Selection happens on two axes:
///
/// * **size** — [`DirtyTracker::new`] and [`DirtyTracker::from_diff`]
///   pick the paged representation when the buffer has at least
///   [`PAGED_MIN_LEN`] elements;
/// * **write density** — an exact tracker on a paged-eligible buffer
///   promotes itself to a [`PageMap`] once incremental marking fragments
///   it past `MAX_EXACT_RANGES` coalesced ranges.
///
/// Equality is representation-sensitive (an exact and a paged tracker
/// never compare equal), which is what the byte-identical gates want:
/// a representation switch is a real behavioural change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirtyTracker {
    len: usize,
    repr: Repr,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Repr {
    Exact(DirtyRanges),
    Paged(PageMap),
}

impl DirtyTracker {
    /// A clean tracker for a `len`-element buffer, representation chosen
    /// by size.
    pub fn new(len: usize) -> Self {
        let repr = if len >= PAGED_MIN_LEN {
            Repr::Paged(PageMap::new(len))
        } else {
            Repr::Exact(DirtyRanges::empty())
        };
        Self { len, repr }
    }

    /// An exact tracker seeded with `ranges`, regardless of buffer size
    /// (it may still promote itself under later incremental marking).
    pub fn exact(len: usize, ranges: DirtyRanges) -> Self {
        Self {
            len,
            repr: Repr::Exact(ranges),
        }
    }

    /// Captures the bitwise difference of two equally sized buffers:
    /// exact ranges below [`PAGED_MIN_LEN`], a page map at or above it.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths. See
    /// [`DirtyTracker::try_from_diff`] for the fallible twin.
    pub fn from_diff(a: &[f32], b: &[f32]) -> Self {
        assert_eq!(a.len(), b.len(), "from_diff requires equally sized buffers");
        let len = a.len();
        let repr = if len >= PAGED_MIN_LEN {
            Repr::Paged(PageMap::from_diff(a, b))
        } else {
            Repr::Exact(DirtyRanges::from_diff(a, b))
        };
        Self { len, repr }
    }

    /// Fallible twin of [`DirtyTracker::from_diff`].
    ///
    /// # Errors
    ///
    /// Returns [`ClError::ProtocolViolation`] if the slices differ in
    /// length.
    pub fn try_from_diff(a: &[f32], b: &[f32]) -> ClResult<Self> {
        if a.len() != b.len() {
            return Err(ClError::ProtocolViolation {
                kernel: "from_diff".to_string(),
                detail: format!(
                    "diff over unequal buffers: {} vs {} elements",
                    a.len(),
                    b.len()
                ),
            });
        }
        Ok(Self::from_diff(a, b))
    }

    /// Buffer length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is dirty.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Exact(r) => r.is_empty(),
            Repr::Paged(pm) => pm.is_empty(),
        }
    }

    /// Whether the tracker currently uses the paged representation.
    pub fn is_paged(&self) -> bool {
        matches!(self.repr, Repr::Paged(_))
    }

    /// The exact ranges, when the tracker holds them.
    pub fn as_exact(&self) -> Option<&DirtyRanges> {
        match &self.repr {
            Repr::Exact(r) => Some(r),
            Repr::Paged(_) => None,
        }
    }

    /// The page map, when the tracker holds one.
    pub fn as_paged(&self) -> Option<&PageMap> {
        match &self.repr {
            Repr::Exact(_) => None,
            Repr::Paged(pm) => Some(pm),
        }
    }

    /// Marks `[start, end)` dirty (clipped to the buffer). O(1) on the
    /// paged representation; on the exact one, a range-list splice plus
    /// the density check that promotes a fragmented tracker on a
    /// paged-eligible buffer to a page map.
    pub fn mark_range(&mut self, start: usize, end: usize) {
        let end = end.min(self.len);
        match &mut self.repr {
            Repr::Exact(r) => {
                r.insert(start, end);
                if self.len >= PAGED_MIN_LEN && r.range_count() > MAX_EXACT_RANGES {
                    self.repr = Repr::Paged(PageMap::from_ranges(self.len, r));
                }
            }
            Repr::Paged(pm) => pm.mark_range(start, end),
        }
    }

    /// Synthesizes coalesced [`DirtyRanges`]: the exact set as-is, or the
    /// page map's lazy page-granular ranges. On every workload that stays
    /// exact this equals today's ranges bit-for-bit.
    pub fn synthesize(&self) -> DirtyRanges {
        match &self.repr {
            Repr::Exact(r) => r.clone(),
            Repr::Paged(pm) => pm.synthesize(),
        }
    }

    /// Dirty elements: exact, or the page-granular over-approximation.
    pub fn element_count(&self) -> usize {
        match &self.repr {
            Repr::Exact(r) => r.element_count(),
            Repr::Paged(pm) => pm.element_count(),
        }
    }

    /// Dirty bytes (`f32` elements, 4 bytes each).
    pub fn byte_count(&self) -> u64 {
        match &self.repr {
            Repr::Exact(r) => r.byte_count(),
            Repr::Paged(pm) => pm.byte_count(),
        }
    }

    /// Copies the dirty spans of `src` into `dst`: exact ranges, or whole
    /// dirty pages (a superset — the extra elements are bitwise identical
    /// whenever the tracker was captured from these buffers' diff).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::ProtocolViolation`] if the buffers differ in
    /// length or disagree with the tracked length.
    pub fn copy_ranges(&self, src: &[f32], dst: &mut [f32]) -> ClResult<()> {
        if src.len() != self.len {
            return Err(ClError::ProtocolViolation {
                kernel: "copy_ranges".to_string(),
                detail: format!(
                    "tracker for {} elements applied to a {}-element buffer",
                    self.len,
                    src.len()
                ),
            });
        }
        match &self.repr {
            Repr::Exact(r) => r.try_copy_ranges(src, dst),
            Repr::Paged(pm) => {
                if src.len() != dst.len() || src.len() != pm.len() {
                    return Err(ClError::ProtocolViolation {
                        kernel: "copy_ranges".to_string(),
                        detail: format!(
                            "paged copy over mismatched buffers: {} vs {} elements (tracking {})",
                            src.len(),
                            dst.len(),
                            pm.len()
                        ),
                    });
                }
                for (s, e) in pm.dirty_spans() {
                    dst[s..e].copy_from_slice(&src[s..e]);
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_coalesces_any_order() {
        let a = DirtyRanges::from_ranges([(4, 6), (0, 2), (2, 4), (10, 12)]);
        assert_eq!(a.as_slice(), &[(0, 6), (10, 12)]);
        let b = DirtyRanges::from_ranges([(10, 12), (0, 6)]);
        assert_eq!(a, b, "order-independent");
        assert_eq!(a.union(&a), a, "idempotent");
        assert_eq!(a.element_count(), 8);
        assert_eq!(a.byte_count(), 32);
        assert_eq!(a.bound(), 12);
    }

    #[test]
    fn from_indices_merges_adjacent_and_duplicates() {
        let r = DirtyRanges::from_indices([3, 1, 2, 2, 7]);
        assert_eq!(r.as_slice(), &[(1, 4), (7, 8)]);
        assert!(r.contains(3));
        assert!(!r.contains(4));
        assert!(!r.contains(0));
    }

    #[test]
    fn full_and_empty() {
        assert!(DirtyRanges::empty().is_empty());
        assert!(DirtyRanges::full(0).is_empty());
        let f = DirtyRanges::full(5);
        assert!(f.is_full(5));
        assert!(!f.is_full(6));
        assert_eq!(f.element_count(), 5);
    }

    #[test]
    fn union_and_intersect() {
        let a = DirtyRanges::from_ranges([(0, 4), (8, 12)]);
        let b = DirtyRanges::from_ranges([(2, 9), (20, 22)]);
        assert_eq!(a.union(&b).as_slice(), &[(0, 12), (20, 22)]);
        assert_eq!(a.intersect(&b).as_slice(), &[(2, 4), (8, 9)]);
        assert_eq!(a.intersect(&DirtyRanges::empty()), DirtyRanges::empty());
        assert_eq!(a.union(&DirtyRanges::empty()), a);
    }

    #[test]
    fn subtract_splits_and_clips() {
        let a = DirtyRanges::from_ranges([(0, 10), (20, 30)]);
        let b = DirtyRanges::from_ranges([(3, 5), (8, 22), (28, 40)]);
        assert_eq!(a.subtract(&b).as_slice(), &[(0, 3), (5, 8), (22, 28)]);
        assert!(a.subtract(&a).is_empty());
        assert_eq!(a.subtract(&DirtyRanges::empty()), a);
        assert_eq!(DirtyRanges::empty().subtract(&a), DirtyRanges::empty());
    }

    #[test]
    fn insert_extends_in_place() {
        let mut r = DirtyRanges::empty();
        r.insert(4, 6);
        r.insert(0, 2);
        r.insert(2, 4); // bridges the gap
        r.insert(9, 9); // empty: no-op
        assert_eq!(r.as_slice(), &[(0, 6)]);
    }

    #[test]
    fn insert_splices_every_window_shape() {
        // Disjoint before, after and between existing ranges.
        let mut r = DirtyRanges::from_ranges([(10, 12), (20, 22)]);
        r.insert(0, 2);
        r.insert(30, 32);
        r.insert(15, 17);
        assert_eq!(
            r.as_slice(),
            &[(0, 2), (10, 12), (15, 17), (20, 22), (30, 32)]
        );
        // Overlapping several ranges collapses the whole window.
        r.insert(11, 21);
        assert_eq!(r.as_slice(), &[(0, 2), (10, 22), (30, 32)]);
        // Contained insert is a no-op; adjacency coalesces on both sides.
        r.insert(12, 18);
        assert_eq!(r.as_slice(), &[(0, 2), (10, 22), (30, 32)]);
        r.insert(2, 10);
        assert_eq!(r.as_slice(), &[(0, 22), (30, 32)]);
        // Equivalent to from_ranges over the same inputs.
        let mut s = DirtyRanges::empty();
        for (a, b) in [(5usize, 7usize), (0, 2), (6, 10), (3, 5), (2, 3)] {
            s.insert(a, b);
        }
        assert_eq!(s, DirtyRanges::from_ranges([(0, 10)]));
    }

    #[test]
    fn from_write_map_coalesces_sorted_keys() {
        let mut map = WriteMap::new();
        for i in [5usize, 6, 7, 12] {
            map.insert(i, 1.0f32.to_bits());
        }
        let r = DirtyRanges::from_write_map(&map);
        assert_eq!(r.as_slice(), &[(5, 8), (12, 13)]);
    }

    #[test]
    fn from_diff_finds_bitwise_differences() {
        let a: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let mut b = a.clone();
        b[3] = -3.0;
        b[4] = -4.0;
        b[17] = 0.5; // in the scalar tail
        let r = DirtyRanges::from_diff(&a, &b);
        assert_eq!(r.as_slice(), &[(3, 5), (17, 18)]);
        assert_eq!(DirtyRanges::from_diff(&a, &a), DirtyRanges::empty());
        // -0.0 vs 0.0 and distinct NaN payloads are bitwise diffs.
        let r2 = DirtyRanges::from_diff(&[0.0], &[-0.0]);
        assert_eq!(r2.as_slice(), &[(0, 1)]);
    }

    #[test]
    fn fallible_twins_report_instead_of_panicking() {
        assert_eq!(
            DirtyRanges::try_from_diff(&[0.0; 2], &[0.0; 3]),
            Err(ClError::ProtocolViolation {
                kernel: "from_diff".to_string(),
                detail: "diff over unequal buffers: 2 vs 3 elements".to_string(),
            })
        );
        assert_eq!(
            DirtyRanges::try_from_diff(&[0.0, 1.5], &[0.0, 2.5]),
            Ok(DirtyRanges::from_ranges([(1, 2)]))
        );
        let mut dst = [0.0f32; 2];
        assert!(matches!(
            DirtyRanges::full(2).try_copy_ranges(&[0.0; 3], &mut dst),
            Err(ClError::ProtocolViolation { kernel, .. }) if kernel == "copy_ranges"
        ));
        // An out-of-bounds range from a corrupted trace is a typed error.
        assert!(matches!(
            DirtyRanges::full(9).try_copy_ranges(&[1.0; 2], &mut dst),
            Err(ClError::ProtocolViolation { kernel, .. }) if kernel == "copy_ranges"
        ));
        DirtyRanges::from_ranges([(1, 2)])
            .try_copy_ranges(&[3.0, 4.0], &mut dst)
            .unwrap();
        assert_eq!(dst, [0.0, 4.0]);
    }

    #[test]
    fn copy_ranges_mirrors_only_dirty_spans() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut dst = [0.0; 5];
        DirtyRanges::from_ranges([(1, 3), (4, 5)]).copy_ranges(&src, &mut dst);
        assert_eq!(dst, [0.0, 2.0, 3.0, 0.0, 5.0]);
    }

    #[test]
    fn page_map_marks_and_synthesizes() {
        let len = 3 * PAGE_ELEMS + 100; // 4 pages, the last partial
        let mut pm = PageMap::new(len);
        assert_eq!(pm.page_count(), 4);
        assert!(pm.is_empty());
        assert!(pm.synthesize().is_empty());
        pm.mark(0);
        pm.mark(PAGE_ELEMS); // page 1: adjacent to page 0, one run
        pm.mark(3 * PAGE_ELEMS + 50); // partial last page
        assert_eq!(pm.dirty_page_count(), 3);
        assert!(pm.page_is_dirty(1));
        assert!(!pm.page_is_dirty(2));
        assert_eq!(
            pm.synthesize().as_slice(),
            &[(0, 2 * PAGE_ELEMS), (3 * PAGE_ELEMS, len)]
        );
        assert_eq!(pm.element_count(), 2 * PAGE_ELEMS + 100);
        // Out-of-buffer marks are ignored.
        pm.mark(len + 5);
        assert_eq!(pm.dirty_page_count(), 3);
    }

    #[test]
    fn page_map_mark_range_word_fills() {
        // A range spanning >64 pages exercises the interior word fill.
        let pages = 200;
        let len = pages * PAGE_ELEMS;
        let mut pm = PageMap::new(len);
        pm.mark_range(3 * PAGE_ELEMS + 1, 190 * PAGE_ELEMS + 1);
        assert_eq!(pm.dirty_page_count(), 188); // pages 3..=190
        assert!(pm.page_is_dirty(3));
        assert!(pm.page_is_dirty(190));
        assert!(!pm.page_is_dirty(2));
        assert!(!pm.page_is_dirty(191));
        assert_eq!(
            pm.synthesize().as_slice(),
            &[(3 * PAGE_ELEMS, 191 * PAGE_ELEMS)]
        );
        // Clipped and empty ranges.
        let mut pm2 = PageMap::new(PAGE_ELEMS);
        pm2.mark_range(5, 5);
        assert!(pm2.is_empty());
        pm2.mark_range(0, usize::MAX);
        assert_eq!(pm2.dirty_page_count(), 1);
    }

    #[test]
    fn page_map_from_diff_and_covers() {
        let len = 2 * PAGE_ELEMS + 7;
        let a: Vec<f32> = vec![1.0; len];
        let mut b = a.clone();
        b[PAGE_ELEMS + 3] = 2.0; // page 1
        b[len - 1] = 3.0; // partial page 2
        let pm = PageMap::from_diff(&a, &b);
        let exact = DirtyRanges::from_diff(&a, &b);
        assert!(!pm.page_is_dirty(0));
        assert!(pm.page_is_dirty(1));
        assert!(pm.page_is_dirty(2));
        assert!(pm.covers(&exact), "page map covers every exact write");
        assert!(
            !pm.covers(&DirtyRanges::from_ranges([(0, 1)])),
            "clean pages are not covered"
        );
        assert!(
            !pm.covers(&DirtyRanges::from_ranges([(len, len + 4)])),
            "ranges past the buffer are never covered"
        );
        assert!(PageMap::from_diff(&a, &a).is_empty());
    }

    #[test]
    fn page_map_union_accumulates() {
        let len = 4 * PAGE_ELEMS;
        let mut a = PageMap::new(len);
        a.mark(0);
        let mut b = PageMap::new(len);
        b.mark(2 * PAGE_ELEMS);
        a.union_with(&b);
        assert_eq!(a.dirty_page_count(), 2);
        assert!(a.page_is_dirty(0) && a.page_is_dirty(2));
    }

    #[test]
    fn tracker_selects_representation_by_size() {
        assert!(!DirtyTracker::new(1024).is_paged());
        assert!(DirtyTracker::new(PAGED_MIN_LEN).is_paged());
        let small: Vec<f32> = vec![0.0; 64];
        let mut small2 = small.clone();
        small2[5] = 1.0;
        let t = DirtyTracker::from_diff(&small, &small2);
        assert!(!t.is_paged());
        assert_eq!(t.synthesize().as_slice(), &[(5, 6)]);
        assert_eq!(t.element_count(), 1);
        assert_eq!(t.byte_count(), 4);
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn tracker_promotes_on_write_density() {
        // A paged-eligible buffer marked scattered: the exact repr
        // fragments past MAX_EXACT_RANGES and flips to the page map.
        let mut t = DirtyTracker::exact(PAGED_MIN_LEN, DirtyRanges::empty());
        assert!(!t.is_paged());
        for i in 0..(MAX_EXACT_RANGES + 2) {
            t.mark_range(i * 3, i * 3 + 1); // non-adjacent single elements
        }
        assert!(t.is_paged(), "density promotion kicked in");
        // Every marked element is still covered after promotion.
        let exact =
            DirtyRanges::from_ranges((0..(MAX_EXACT_RANGES + 2)).map(|i| (i * 3, i * 3 + 1)));
        assert!(t.as_paged().unwrap().covers(&exact));
        // Small buffers never promote, however fragmented.
        let mut small = DirtyTracker::new(100_000);
        for i in 0..(MAX_EXACT_RANGES + 2) {
            small.mark_range(i * 2, i * 2 + 1);
        }
        assert!(!small.is_paged());
    }

    #[test]
    fn tracker_copy_ranges_exact_and_paged() {
        // Exact: surgical copy.
        let t = DirtyTracker::exact(5, DirtyRanges::from_ranges([(1, 3)]));
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut dst = [0.0f32; 5];
        t.copy_ranges(&src, &mut dst).unwrap();
        assert_eq!(dst, [0.0, 2.0, 3.0, 0.0, 0.0]);
        // Paged: whole dirty pages come across.
        let len = 2 * PAGE_ELEMS;
        let mut big_src = vec![0.0f32; len];
        big_src[PAGE_ELEMS + 9] = 9.0;
        // len sits below PAGED_MIN_LEN, so build the paged variant by hand.
        let mut pm = PageMap::new(len);
        pm.mark(PAGE_ELEMS + 9);
        let tp = DirtyTracker {
            len,
            repr: Repr::Paged(pm),
        };
        let mut big_dst = vec![1.0f32; len];
        tp.copy_ranges(&big_src, &mut big_dst).unwrap();
        assert_eq!(big_dst[PAGE_ELEMS + 9], 9.0);
        assert_eq!(big_dst[0], 1.0, "clean page untouched");
        assert_eq!(big_dst[PAGE_ELEMS], 0.0, "dirty page fully mirrored");
        // Mismatched lengths surface as typed errors on both reprs.
        assert!(tp.copy_ranges(&big_src, &mut dst[..]).is_err());
        assert!(t.copy_ranges(&src[..3], &mut dst[..3]).is_err());
    }

    #[test]
    fn tracker_try_from_diff_reports_mismatch() {
        assert!(matches!(
            DirtyTracker::try_from_diff(&[0.0; 2], &[0.0; 3]),
            Err(ClError::ProtocolViolation { .. })
        ));
        assert!(DirtyTracker::try_from_diff(&[0.0; 2], &[0.0; 2])
            .unwrap()
            .is_empty());
    }
}
