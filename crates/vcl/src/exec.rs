//! Functional kernel execution.
//!
//! The executor actually *computes* kernel results over device memory: when
//! FluidiCL assigns flattened work-groups `[a, b)` to one device, this module
//! runs exactly those work-items against that device's buffers. Partitioning
//! or merging bugs therefore corrupt real output and are caught by the
//! benchmark validation against sequential references — the timing models
//! only decide *when* things happen, never *what* is computed.

use std::sync::{Arc, OnceLock};

use crate::kernel::{Inputs, KernelBody, KernelDef, Outputs, Scalars};
use crate::memory::diff_merge;
use crate::ndrange::for_each_item_in_group;
use crate::{BufferId, ClError, ClResult, KernelArg, Memory, NdRange};

/// The launch-wide execution plan: the argument classification that every
/// wave and subkernel of one launch shares.
///
/// Deriving it means validating the argument list against the kernel
/// signature and building three vectors; re-deriving it on every
/// [`execute_groups`] call made it the per-launch constant most frequently
/// recomputed in the hot loop. The plan is computed once per [`Launch`] and
/// cached (cloned launches share it through an [`Arc`]).
#[derive(Clone, Debug)]
pub struct LaunchPlan {
    /// `In`-role buffers, in signature order.
    pub ins: Vec<BufferId>,
    /// `Out`/`InOut`-role buffers, in signature order.
    pub outs: Vec<BufferId>,
    /// Scalar arguments of the launch.
    pub scalars: Scalars,
}

/// A fully specified kernel launch (kernel + version + geometry + arguments).
#[derive(Clone, Debug)]
pub struct Launch {
    /// The kernel to run.
    pub kernel: Arc<KernelDef>,
    /// Which implementation to use (index into [`KernelDef::versions`]).
    pub version: usize,
    /// Index space.
    pub ndrange: NdRange,
    /// Argument values matching the kernel signature.
    ///
    /// Mutating the arguments after the launch has executed is unsupported:
    /// the classification is cached on first use (see [`Launch::plan`]).
    pub args: Vec<KernelArg>,
    plan: OnceLock<Arc<LaunchPlan>>,
}

impl Launch {
    /// Creates a launch of the default kernel version.
    pub fn new(kernel: Arc<KernelDef>, ndrange: NdRange, args: Vec<KernelArg>) -> Self {
        Launch {
            kernel,
            version: 0,
            ndrange,
            args,
            plan: OnceLock::new(),
        }
    }

    /// The cached argument classification of this launch.
    ///
    /// The first call validates the arguments against the kernel signature
    /// and memoizes the result; later calls (every wave and subkernel of a
    /// co-execution) return the cached plan. Classification *errors* are
    /// not cached — they abort the launch before any hot loop runs.
    ///
    /// # Errors
    ///
    /// Propagates signature validation errors from
    /// [`KernelDef::classify_args`].
    pub fn plan(&self) -> ClResult<&LaunchPlan> {
        if let Some(plan) = self.plan.get() {
            return Ok(plan);
        }
        let (ins, outs, scalars) = self.kernel.classify_args(&self.args)?;
        let _ = self.plan.set(Arc::new(LaunchPlan { ins, outs, scalars }));
        Ok(self.plan.get().expect("plan just initialized"))
    }

    /// The kernel version this launch resolves to (falling back to the
    /// default implementation for an out-of-range index).
    pub fn resolved_version(&self) -> &crate::kernel::KernelVersion {
        self.kernel
            .versions()
            .get(self.version)
            .unwrap_or_else(|| self.kernel.default_version())
    }

    /// Buffers the launch may modify (`Out`/`InOut`), in signature order.
    ///
    /// # Errors
    ///
    /// Propagates signature validation errors.
    pub fn output_buffers(&self) -> ClResult<Vec<BufferId>> {
        Ok(self.plan()?.outs.clone())
    }

    /// Buffers the launch reads (`In`), in signature order.
    ///
    /// # Errors
    ///
    /// Propagates signature validation errors.
    pub fn input_buffers(&self) -> ClResult<Vec<BufferId>> {
        Ok(self.plan()?.ins.clone())
    }
}

/// Executes flattened work-groups `[from, to)` of `launch` against `mem`.
///
/// # Errors
///
/// Returns an error if the arguments do not match the kernel signature, a
/// buffer is missing from `mem`, or the range is out of bounds.
pub fn execute_groups(launch: &Launch, mem: &mut Memory, from: u64, to: u64) -> ClResult<()> {
    let total = launch.ndrange.num_groups();
    if from > to || to > total {
        return Err(ClError::InvalidNdRange(format!(
            "group range {from}..{to} exceeds {total} groups"
        )));
    }
    let plan = launch.plan()?;
    let version = launch.resolved_version();

    // Split borrows: move output buffers out of the memory map, then borrow
    // inputs immutably from what remains.
    let mut taken = take_outputs(mem, &plan.outs)?;
    let result = (|| -> ClResult<()> {
        let mut in_slices = Vec::with_capacity(plan.ins.len());
        for id in &plan.ins {
            in_slices.push(mem.get(*id)?);
        }
        let ins = Inputs::new(in_slices);
        let mut out_slices: Vec<&mut [f32]> =
            taken.iter_mut().map(|(_, v)| v.as_mut_slice()).collect();
        let mut outs = Outputs::new(std::mem::take(&mut out_slices));
        run_range(
            &version.body,
            &launch.ndrange,
            &plan.scalars,
            &ins,
            &mut outs,
            from,
            to,
        );
        Ok(())
    })();
    for (id, v) in taken {
        mem.install(id, v);
    }
    result
}

/// Removes the output buffers from `mem` in signature order, restoring any
/// already-taken buffers if one is missing.
fn take_outputs(mem: &mut Memory, out_ids: &[BufferId]) -> ClResult<Vec<(BufferId, Vec<f32>)>> {
    let mut taken: Vec<(BufferId, Vec<f32>)> = Vec::with_capacity(out_ids.len());
    for id in out_ids {
        match mem.take(*id) {
            Ok(v) => taken.push((*id, v)),
            Err(e) => {
                for (id, v) in taken {
                    mem.install(id, v);
                }
                return Err(e);
            }
        }
    }
    Ok(taken)
}

/// Runs work-groups `[from, to)` of `ndrange` through `body`.
fn run_range(
    body: &Arc<KernelBody>,
    ndrange: &NdRange,
    scalars: &Scalars,
    ins: &Inputs<'_>,
    outs: &mut Outputs<'_>,
    from: u64,
    to: u64,
) {
    for flat in from..to {
        let group = ndrange.unflatten_group(flat);
        for_each_item_in_group(ndrange, group, |item| {
            body(item, scalars, ins, outs);
        });
    }
}

/// Executes flattened work-groups `[from, to)` of `launch` against `mem`,
/// splitting the range across up to `jobs` threads when it is provably safe.
///
/// The parallel path is taken only when the kernel declares
/// [`KernelDef::disjoint_writes`] — the contract (verified per benchmark by
/// the `fluidicl-check` sanitizer's write-maps) that distinct work-groups
/// never write the same output element and never read another group's output
/// writes. Under that contract each thread runs its contiguous chunk of
/// groups against a private copy of the output buffers, and the chunks are
/// [`diff_merge`]d back **in chunk order**, which is byte-identical to the
/// sequential execution. Without the declaration — or when `jobs <= 1`, the
/// range holds fewer than two groups, or the caller is already a pool worker
/// — this falls back to [`execute_groups`].
///
/// # Errors
///
/// Same as [`execute_groups`].
pub fn execute_groups_par(
    launch: &Launch,
    mem: &mut Memory,
    from: u64,
    to: u64,
    jobs: usize,
) -> ClResult<()> {
    execute_groups_par_capped(
        launch,
        mem,
        from,
        to,
        jobs,
        fluidicl_par::hardware_parallelism(),
    )
}

/// [`execute_groups_par`] with an explicit hardware-thread cap.
///
/// `jobs` is clamped to `hw` before the dispatch decision: with one
/// effective job (a 1-cpu runner, however large the requested fan-out) the
/// parallel machinery — private output copies, chunk merges, pool threads
/// time-slicing a single core — costs strictly more than the sequential
/// path it would emulate, so the call degrades to [`execute_groups`].
/// `execute_groups_par` passes [`fluidicl_par::hardware_parallelism`];
/// tests pin the degradation by passing `hw` directly.
///
/// # Errors
///
/// Same as [`execute_groups`].
pub fn execute_groups_par_capped(
    launch: &Launch,
    mem: &mut Memory,
    from: u64,
    to: u64,
    jobs: usize,
    hw: usize,
) -> ClResult<()> {
    let jobs = jobs.min(hw.max(1));
    let span = to.saturating_sub(from);
    if jobs <= 1 || span < 2 || !launch.kernel.disjoint_writes() || fluidicl_par::in_pool() {
        return execute_groups(launch, mem, from, to);
    }
    let total = launch.ndrange.num_groups();
    if from > to || to > total {
        return Err(ClError::InvalidNdRange(format!(
            "group range {from}..{to} exceeds {total} groups"
        )));
    }
    let plan = launch.plan()?;
    let version = launch.resolved_version();

    let mut taken = take_outputs(mem, &plan.outs)?;
    let result = (|| -> ClResult<()> {
        let mut in_slices: Vec<&[f32]> = Vec::with_capacity(plan.ins.len());
        for id in &plan.ins {
            in_slices.push(mem.get(*id)?);
        }
        // Pristine originals: the diff-merge baseline for every chunk.
        let orig: Vec<Vec<f32>> = taken.iter().map(|(_, v)| v.clone()).collect();

        // Contiguous chunks in range order.
        let workers = (jobs as u64).min(span);
        let chunk = span.div_ceil(workers);
        let ranges: Vec<(u64, u64)> = (0..workers)
            .map(|w| {
                let a = from + w * chunk;
                (a, (a + chunk).min(to))
            })
            .filter(|(a, b)| a < b)
            .collect();

        let body = &version.body;
        let ndrange = &launch.ndrange;
        let scalars = &plan.scalars;
        let locals: Vec<Vec<Vec<f32>>> =
            fluidicl_par::par_map_jobs(ranges.clone(), jobs, |(a, b)| {
                let mut bufs: Vec<Vec<f32>> = orig.clone();
                // `Inputs` carries interior mutability (read-tracking flags), so
                // each worker builds its own view over the shared slices.
                let ins = Inputs::new(in_slices.clone());
                let mut out_slices: Vec<&mut [f32]> =
                    bufs.iter_mut().map(Vec::as_mut_slice).collect();
                let mut outs = Outputs::new(std::mem::take(&mut out_slices));
                run_range(body, ndrange, scalars, &ins, &mut outs, a, b);
                bufs
            });

        // Merge chunk results back in range order: with disjoint writes each
        // element is changed by at most one chunk, so order is irrelevant to
        // the value — but merging in order keeps the procedure deterministic.
        for local in &locals {
            for ((dst, l), o) in taken.iter_mut().zip(local).zip(&orig) {
                diff_merge(&mut dst.1, l, o);
            }
        }
        Ok(())
    })();
    for (id, v) in taken {
        mem.install(id, v);
    }
    result
}

/// Fault-aware variant of [`execute_groups_par`]: consults `injector` (when
/// present) before touching `mem`, so an execution attributed to a lost
/// `device` fails with [`ClError::DeviceLost`] instead of computing results
/// a dead device could never have produced. Used by the degraded
/// (single-survivor) path of the cooperative runtime.
///
/// # Errors
///
/// [`ClError::DeviceLost`] when `device` is dead, otherwise the same as
/// [`execute_groups`].
pub fn execute_groups_injected(
    launch: &Launch,
    mem: &mut Memory,
    from: u64,
    to: u64,
    jobs: usize,
    injector: Option<&crate::fault::FaultInjector>,
    device: crate::DeviceKind,
) -> ClResult<()> {
    if let Some(inj) = injector {
        if inj.device_lost(device) {
            return Err(ClError::DeviceLost {
                device,
                detail: format!("cannot execute groups {from}..{to} on a lost device"),
            });
        }
    }
    execute_groups_par(launch, mem, from, to, jobs)
}

/// Executes the entire NDRange of `launch` against `mem`.
///
/// # Errors
///
/// Same as [`execute_groups`].
pub fn execute_all(launch: &Launch, mem: &mut Memory) -> ClResult<()> {
    let total = launch.ndrange.num_groups();
    execute_groups(launch, mem, 0, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArgRole, ArgSpec, KernelDef};
    use fluidicl_hetsim::KernelProfile;

    fn scale_kernel() -> Arc<KernelDef> {
        Arc::new(KernelDef::new(
            "scale",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
                ArgSpec::new("factor", ArgRole::Scalar),
            ],
            KernelProfile::new("scale"),
            |item, scalars, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[i] = ins.get(0)[i] * scalars.f32(0);
            },
        ))
    }

    fn setup(n: usize) -> (Memory, Arc<KernelDef>) {
        let mut mem = Memory::new();
        mem.install(BufferId(0), (0..n).map(|i| i as f32).collect());
        mem.alloc(BufferId(1), n);
        (mem, scale_kernel())
    }

    #[test]
    fn executes_full_range() {
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(2.0),
            ],
        );
        execute_all(&launch, &mut mem).unwrap();
        let out = mem.get(BufferId(1)).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2.0 * i as f32);
        }
    }

    #[test]
    fn executes_partial_range_only() {
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(2.0),
            ],
        );
        // Only groups 2 and 3 → items 8..16.
        execute_groups(&launch, &mut mem, 2, 4).unwrap();
        let out = mem.get(BufferId(1)).unwrap();
        for (i, &v) in out.iter().enumerate() {
            if i < 8 {
                assert_eq!(v, 0.0, "untouched region must stay zero");
            } else {
                assert_eq!(v, 2.0 * i as f32);
            }
        }
    }

    #[test]
    fn disjoint_ranges_compose_to_full_result() {
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(3.0),
            ],
        );
        execute_groups(&launch, &mut mem, 0, 2).unwrap();
        execute_groups(&launch, &mut mem, 2, 4).unwrap();
        let out = mem.get(BufferId(1)).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 3.0 * i as f32);
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(1.0),
            ],
        );
        assert!(matches!(
            execute_groups(&launch, &mut mem, 0, 5),
            Err(ClError::InvalidNdRange(_))
        ));
    }

    #[test]
    fn missing_buffer_restores_memory() {
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(99)), // missing output
                KernelArg::F32(1.0),
            ],
        );
        assert!(execute_all(&launch, &mut mem).is_err());
        assert!(mem.contains(BufferId(0)), "inputs must survive failure");
    }

    #[test]
    fn inout_buffers_read_their_previous_content() {
        let k = Arc::new(KernelDef::new(
            "incr",
            vec![ArgSpec::new("data", ArgRole::InOut)],
            KernelProfile::new("incr"),
            |item, _, _, outs| {
                let i = item.global_linear();
                outs.at(0)[i] += 1.0;
            },
        ));
        let mut mem = Memory::new();
        mem.install(BufferId(5), vec![10.0, 20.0]);
        let launch = Launch::new(
            k,
            NdRange::d1(2, 1).unwrap(),
            vec![KernelArg::Buffer(BufferId(5))],
        );
        execute_all(&launch, &mut mem).unwrap();
        assert_eq!(mem.get(BufferId(5)).unwrap(), &[11.0, 21.0]);
    }

    #[test]
    fn plan_is_cached_across_calls() {
        let (_, k) = setup(4);
        let launch = Launch::new(
            k,
            NdRange::d1(4, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(1.0),
            ],
        );
        let first: *const LaunchPlan = launch.plan().unwrap();
        let second: *const LaunchPlan = launch.plan().unwrap();
        assert_eq!(first, second, "second call must return the cached plan");
    }

    #[test]
    fn plan_errors_are_not_cached() {
        let (_, k) = setup(4);
        let launch = Launch::new(k, NdRange::d1(4, 4).unwrap(), vec![]);
        assert!(launch.plan().is_err());
        assert!(launch.plan().is_err(), "error repeats, no stale cache");
    }

    fn scale_kernel_disjoint() -> Arc<KernelDef> {
        Arc::new(
            KernelDef::new(
                "scale",
                vec![
                    ArgSpec::new("src", ArgRole::In),
                    ArgSpec::new("dst", ArgRole::Out),
                    ArgSpec::new("factor", ArgRole::Scalar),
                ],
                KernelProfile::new("scale"),
                |item, scalars, ins, outs| {
                    let i = item.global_linear();
                    outs.at(0)[i] = ins.get(0)[i] * scalars.f32(0);
                },
            )
            .with_disjoint_writes(),
        )
    }

    #[test]
    fn one_hardware_thread_degrades_to_sequential() {
        // The kernel body records whether it ran on a pool worker: with the
        // hardware cap at 1 the parallel entry point must not spawn at all,
        // however large the requested fan-out.
        let probe_kernel = || {
            Arc::new(
                KernelDef::new(
                    "probe",
                    vec![ArgSpec::new("dst", ArgRole::Out)],
                    KernelProfile::new("probe"),
                    |item, _, _, outs| {
                        let i = item.global_linear();
                        outs.at(0)[i] = fluidicl_par::in_pool() as i32 as f32;
                    },
                )
                .with_disjoint_writes(),
            )
        };
        let n = 64;
        let nd = NdRange::d1(n, 4).unwrap();
        let args = vec![KernelArg::Buffer(BufferId(0))];

        let mut mem = Memory::new();
        mem.alloc(BufferId(0), n);
        let launch = Launch::new(probe_kernel(), nd, args.clone());
        execute_groups_par_capped(&launch, &mut mem, 0, 16, 8, 1).unwrap();
        assert_eq!(
            mem.get(BufferId(0)).unwrap(),
            &vec![0.0; n][..],
            "hw=1 runs every group on the calling thread"
        );

        let mut mem = Memory::new();
        mem.alloc(BufferId(0), n);
        let launch = Launch::new(probe_kernel(), nd, args);
        execute_groups_par_capped(&launch, &mut mem, 0, 16, 8, 64).unwrap();
        assert!(
            mem.get(BufferId(0)).unwrap().contains(&1.0),
            "an uncapped fan-out reaches the pool"
        );
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let n = 64;
        let args = vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
            KernelArg::F32(2.5),
        ];
        let mut seq_mem = Memory::new();
        seq_mem.install(BufferId(0), (0..n).map(|i| i as f32).collect());
        seq_mem.alloc(BufferId(1), n);
        let mut par_mem = seq_mem.clone();

        let k = scale_kernel_disjoint();
        let nd = NdRange::d1(n, 4).unwrap();
        let seq_launch = Launch::new(Arc::clone(&k), nd, args.clone());
        let par_launch = Launch::new(k, nd, args);

        execute_groups(&seq_launch, &mut seq_mem, 0, 16).unwrap();
        execute_groups_par(&par_launch, &mut par_mem, 0, 16, 4).unwrap();
        assert_eq!(
            seq_mem.get(BufferId(1)).unwrap(),
            par_mem.get(BufferId(1)).unwrap()
        );
    }

    #[test]
    fn parallel_execution_respects_partial_ranges() {
        let n = 64;
        let mut mem = Memory::new();
        mem.install(BufferId(0), (0..n).map(|i| i as f32).collect());
        mem.alloc(BufferId(1), n);
        let launch = Launch::new(
            scale_kernel_disjoint(),
            NdRange::d1(n, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(3.0),
            ],
        );
        // Groups 4..12 → items 16..48; 3 jobs over 8 groups exercises the
        // uneven chunk split.
        execute_groups_par(&launch, &mut mem, 4, 12, 3).unwrap();
        let out = mem.get(BufferId(1)).unwrap();
        for (i, &v) in out.iter().enumerate() {
            if (16..48).contains(&i) {
                assert_eq!(v, 3.0 * i as f32);
            } else {
                assert_eq!(v, 0.0, "groups outside the range must stay zero");
            }
        }
    }

    #[test]
    fn undeclared_kernels_fall_back_to_sequential() {
        // The plain scale kernel never declares disjoint writes, so the
        // parallel entry point must still produce the sequential result.
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(2.0),
            ],
        );
        execute_groups_par(&launch, &mut mem, 0, 4, 8).unwrap();
        let out = mem.get(BufferId(1)).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2.0 * i as f32);
        }
    }

    #[test]
    fn parallel_inout_kernel_matches_sequential() {
        let body = |item: &crate::WorkItem, _: &Scalars, _: &Inputs<'_>, outs: &mut Outputs<'_>| {
            let i = item.global_linear();
            outs.at(0)[i] += (i as f32) + 1.0;
        };
        let mk = || {
            Arc::new(
                KernelDef::new(
                    "incr",
                    vec![ArgSpec::new("data", ArgRole::InOut)],
                    KernelProfile::new("incr"),
                    body,
                )
                .with_disjoint_writes(),
            )
        };
        let mut seq_mem = Memory::new();
        seq_mem.install(BufferId(3), vec![10.0; 32]);
        let mut par_mem = seq_mem.clone();
        let nd = NdRange::d1(32, 4).unwrap();
        let args = vec![KernelArg::Buffer(BufferId(3))];
        execute_groups(&Launch::new(mk(), nd, args.clone()), &mut seq_mem, 0, 8).unwrap();
        execute_groups_par(&Launch::new(mk(), nd, args), &mut par_mem, 0, 8, 4).unwrap();
        assert_eq!(
            seq_mem.get(BufferId(3)).unwrap(),
            par_mem.get(BufferId(3)).unwrap()
        );
    }

    #[test]
    fn parallel_out_of_range_is_rejected() {
        let (mut mem, _) = setup(16);
        let launch = Launch::new(
            scale_kernel_disjoint(),
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(1.0),
            ],
        );
        assert!(matches!(
            execute_groups_par(&launch, &mut mem, 0, 5, 4),
            Err(ClError::InvalidNdRange(_))
        ));
    }

    #[test]
    fn injected_execution_refuses_a_lost_device() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan};
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(2.0),
            ],
        );
        let mut inj = FaultInjector::new(FaultPlan::new(FaultKind::GpuLost, 1));
        while !inj.kill_gpu_wave() {}
        assert!(matches!(
            execute_groups_injected(
                &launch,
                &mut mem,
                0,
                4,
                1,
                Some(&inj),
                crate::DeviceKind::Gpu
            ),
            Err(ClError::DeviceLost { .. })
        ));
        // The surviving device still executes.
        execute_groups_injected(
            &launch,
            &mut mem,
            0,
            4,
            1,
            Some(&inj),
            crate::DeviceKind::Cpu,
        )
        .unwrap();
        assert_eq!(mem.get(BufferId(1)).unwrap()[8], 16.0);
    }

    #[test]
    fn launch_exposes_buffer_classification() {
        let (_, k) = setup(4);
        let launch = Launch::new(
            k,
            NdRange::d1(4, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(1.0),
            ],
        );
        assert_eq!(launch.input_buffers().unwrap(), vec![BufferId(0)]);
        assert_eq!(launch.output_buffers().unwrap(), vec![BufferId(1)]);
    }
}
