//! Functional kernel execution.
//!
//! The executor actually *computes* kernel results over device memory: when
//! FluidiCL assigns flattened work-groups `[a, b)` to one device, this module
//! runs exactly those work-items against that device's buffers. Partitioning
//! or merging bugs therefore corrupt real output and are caught by the
//! benchmark validation against sequential references — the timing models
//! only decide *when* things happen, never *what* is computed.

use std::sync::Arc;

use crate::kernel::{Inputs, KernelDef, Outputs};
use crate::ndrange::for_each_item_in_group;
use crate::{BufferId, ClError, ClResult, KernelArg, Memory, NdRange};

/// A fully specified kernel launch (kernel + version + geometry + arguments).
#[derive(Clone, Debug)]
pub struct Launch {
    /// The kernel to run.
    pub kernel: Arc<KernelDef>,
    /// Which implementation to use (index into [`KernelDef::versions`]).
    pub version: usize,
    /// Index space.
    pub ndrange: NdRange,
    /// Argument values matching the kernel signature.
    pub args: Vec<KernelArg>,
}

impl Launch {
    /// Creates a launch of the default kernel version.
    pub fn new(kernel: Arc<KernelDef>, ndrange: NdRange, args: Vec<KernelArg>) -> Self {
        Launch {
            kernel,
            version: 0,
            ndrange,
            args,
        }
    }

    /// Buffers the launch may modify (`Out`/`InOut`), in signature order.
    ///
    /// # Errors
    ///
    /// Propagates signature validation errors.
    pub fn output_buffers(&self) -> ClResult<Vec<BufferId>> {
        Ok(self.kernel.classify_args(&self.args)?.1)
    }

    /// Buffers the launch reads (`In`), in signature order.
    ///
    /// # Errors
    ///
    /// Propagates signature validation errors.
    pub fn input_buffers(&self) -> ClResult<Vec<BufferId>> {
        Ok(self.kernel.classify_args(&self.args)?.0)
    }
}

/// Executes flattened work-groups `[from, to)` of `launch` against `mem`.
///
/// # Errors
///
/// Returns an error if the arguments do not match the kernel signature, a
/// buffer is missing from `mem`, or the range is out of bounds.
pub fn execute_groups(launch: &Launch, mem: &mut Memory, from: u64, to: u64) -> ClResult<()> {
    let total = launch.ndrange.num_groups();
    if from > to || to > total {
        return Err(ClError::InvalidNdRange(format!(
            "group range {from}..{to} exceeds {total} groups"
        )));
    }
    let (in_ids, out_ids, scalars) = launch.kernel.classify_args(&launch.args)?;
    let version = launch
        .kernel
        .versions()
        .get(launch.version)
        .unwrap_or_else(|| launch.kernel.default_version());

    // Split borrows: move output buffers out of the memory map, then borrow
    // inputs immutably from what remains.
    let mut taken: Vec<(BufferId, Vec<f32>)> = Vec::with_capacity(out_ids.len());
    for id in &out_ids {
        match mem.take(*id) {
            Ok(v) => taken.push((*id, v)),
            Err(e) => {
                // Restore anything already taken before bailing out.
                for (id, v) in taken {
                    mem.install(id, v);
                }
                return Err(e);
            }
        }
    }
    let result = (|| -> ClResult<()> {
        let mut in_slices = Vec::with_capacity(in_ids.len());
        for id in &in_ids {
            in_slices.push(mem.get(*id)?);
        }
        let ins = Inputs::new(in_slices);
        let mut out_slices: Vec<&mut [f32]> =
            taken.iter_mut().map(|(_, v)| v.as_mut_slice()).collect();
        let mut outs = Outputs::new(std::mem::take(&mut out_slices));
        let body = &version.body;
        for flat in from..to {
            let group = launch.ndrange.unflatten_group(flat);
            for_each_item_in_group(&launch.ndrange, group, |item| {
                body(item, &scalars, &ins, &mut outs);
            });
        }
        Ok(())
    })();
    for (id, v) in taken {
        mem.install(id, v);
    }
    result
}

/// Executes the entire NDRange of `launch` against `mem`.
///
/// # Errors
///
/// Same as [`execute_groups`].
pub fn execute_all(launch: &Launch, mem: &mut Memory) -> ClResult<()> {
    let total = launch.ndrange.num_groups();
    execute_groups(launch, mem, 0, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArgRole, ArgSpec, KernelDef};
    use fluidicl_hetsim::KernelProfile;

    fn scale_kernel() -> Arc<KernelDef> {
        Arc::new(KernelDef::new(
            "scale",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
                ArgSpec::new("factor", ArgRole::Scalar),
            ],
            KernelProfile::new("scale"),
            |item, scalars, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[i] = ins.get(0)[i] * scalars.f32(0);
            },
        ))
    }

    fn setup(n: usize) -> (Memory, Arc<KernelDef>) {
        let mut mem = Memory::new();
        mem.install(BufferId(0), (0..n).map(|i| i as f32).collect());
        mem.alloc(BufferId(1), n);
        (mem, scale_kernel())
    }

    #[test]
    fn executes_full_range() {
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(2.0),
            ],
        );
        execute_all(&launch, &mut mem).unwrap();
        let out = mem.get(BufferId(1)).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2.0 * i as f32);
        }
    }

    #[test]
    fn executes_partial_range_only() {
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(2.0),
            ],
        );
        // Only groups 2 and 3 → items 8..16.
        execute_groups(&launch, &mut mem, 2, 4).unwrap();
        let out = mem.get(BufferId(1)).unwrap();
        for (i, &v) in out.iter().enumerate() {
            if i < 8 {
                assert_eq!(v, 0.0, "untouched region must stay zero");
            } else {
                assert_eq!(v, 2.0 * i as f32);
            }
        }
    }

    #[test]
    fn disjoint_ranges_compose_to_full_result() {
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(3.0),
            ],
        );
        execute_groups(&launch, &mut mem, 0, 2).unwrap();
        execute_groups(&launch, &mut mem, 2, 4).unwrap();
        let out = mem.get(BufferId(1)).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 3.0 * i as f32);
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(1.0),
            ],
        );
        assert!(matches!(
            execute_groups(&launch, &mut mem, 0, 5),
            Err(ClError::InvalidNdRange(_))
        ));
    }

    #[test]
    fn missing_buffer_restores_memory() {
        let (mut mem, k) = setup(16);
        let launch = Launch::new(
            k,
            NdRange::d1(16, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(99)), // missing output
                KernelArg::F32(1.0),
            ],
        );
        assert!(execute_all(&launch, &mut mem).is_err());
        assert!(mem.contains(BufferId(0)), "inputs must survive failure");
    }

    #[test]
    fn inout_buffers_read_their_previous_content() {
        let k = Arc::new(KernelDef::new(
            "incr",
            vec![ArgSpec::new("data", ArgRole::InOut)],
            KernelProfile::new("incr"),
            |item, _, _, outs| {
                let i = item.global_linear();
                outs.at(0)[i] += 1.0;
            },
        ));
        let mut mem = Memory::new();
        mem.install(BufferId(5), vec![10.0, 20.0]);
        let launch = Launch::new(
            k,
            NdRange::d1(2, 1).unwrap(),
            vec![KernelArg::Buffer(BufferId(5))],
        );
        execute_all(&launch, &mut mem).unwrap();
        assert_eq!(mem.get(BufferId(5)).unwrap(), &[11.0, 21.0]);
    }

    #[test]
    fn launch_exposes_buffer_classification() {
        let (_, k) = setup(4);
        let launch = Launch::new(
            k,
            NdRange::d1(4, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::F32(1.0),
            ],
        );
        assert_eq!(launch.input_buffers().unwrap(), vec![BufferId(0)]);
        assert_eq!(launch.output_buffers().unwrap(), vec![BufferId(1)]);
    }
}
