//! SIMD kernels for the diff-merge hot path.
//!
//! The diff-merge and dirty-capture scans compare buffers as `u32` bit
//! blocks. The portable kernels here process eight lanes per step (the
//! shape the compiler autovectorizes well everywhere); with the `simd`
//! cargo feature the same operations run through explicit AVX2
//! intrinsics at sixteen `u32` lanes per step, selected at runtime via
//! CPUID so a `simd` build still runs (on the portable path) on machines
//! without AVX2. Both paths are bit-identical by construction: the AVX2
//! merge is a pure bitwise blend (`cpu != original ? cpu : dst`), never
//! an arithmetic operation, so `NaN` payloads and signed zeros survive
//! exactly as in the portable loop.

/// Whether the explicit AVX2 kernels are compiled in *and* usable on this
/// machine (CPUID detected, not force-disabled). Always `false` without
/// the `simd` feature.
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        avx2::active()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Force-disables (or re-enables) the AVX2 kernels at runtime — the
/// bench/test hook behind the SIMD-on vs SIMD-off comparisons. A no-op
/// without the `simd` feature; never *enables* SIMD on a machine whose
/// CPUID does not report AVX2.
pub fn set_simd_enabled(on: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    avx2::set_enabled(on);
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = on;
}

/// Blockwise merge over one span: `dst[i] = cpu[i]` wherever `cpu[i]`
/// differs bitwise from `original[i]`. Callers guarantee equal lengths.
pub(crate) fn merge_span(dst: &mut [f32], cpu: &[f32], original: &[f32]) {
    debug_assert!(dst.len() == cpu.len() && cpu.len() == original.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2::active() {
        avx2::merge_span(dst, cpu, original);
        return;
    }
    merge_span_portable(dst, cpu, original);
}

/// Whether any element of `a` differs bitwise from `b`, returning at the
/// first differing block — the clean-page check of the paged capture
/// path. Callers guarantee equal lengths.
pub(crate) fn span_differs(a: &[f32], b: &[f32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2::active() {
        return avx2::span_differs(a, b);
    }
    span_differs_portable(a, b)
}

/// Portable merge: eight `f32`s at a time as `u32` bit blocks (OR-reduced
/// XOR), descending to per-element copies only inside blocks that
/// actually differ, with a scalar tail.
pub(crate) fn merge_span_portable(dst: &mut [f32], cpu: &[f32], original: &[f32]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut c = cpu.chunks_exact(8);
    let mut o = original.chunks_exact(8);
    for ((db, cb), ob) in (&mut d).zip(&mut c).zip(&mut o) {
        let mut diff = 0u32;
        for (cv, ov) in cb.iter().zip(ob) {
            diff |= cv.to_bits() ^ ov.to_bits();
        }
        if diff != 0 {
            for ((dv, cv), ov) in db.iter_mut().zip(cb).zip(ob) {
                if cv.to_bits() != ov.to_bits() {
                    *dv = *cv;
                }
            }
        }
    }
    for ((dv, cv), ov) in d
        .into_remainder()
        .iter_mut()
        .zip(c.remainder())
        .zip(o.remainder())
    {
        if cv.to_bits() != ov.to_bits() {
            *dv = *cv;
        }
    }
}

/// Portable compare with per-block early exit.
pub(crate) fn span_differs_portable(a: &[f32], b: &[f32]) -> bool {
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for (ab, bb) in (&mut ac).zip(&mut bc) {
        let mut diff = 0u32;
        for (x, y) in ab.iter().zip(bb) {
            diff |= x.to_bits() ^ y.to_bits();
        }
        if diff != 0 {
            return true;
        }
    }
    ac.remainder()
        .iter()
        .zip(bc.remainder())
        .any(|(x, y)| x.to_bits() != y.to_bits())
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    //! Explicit AVX2 kernels: sixteen `u32` lanes (two 256-bit registers)
    //! per step. The only `unsafe` in the crate lives here, bounded by
    //! the runtime CPUID check in [`active`].
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m256i, _mm256_blendv_ps, _mm256_castps_si256, _mm256_castsi256_ps, _mm256_cmpeq_epi32,
        _mm256_loadu_si256, _mm256_or_si256, _mm256_storeu_si256, _mm256_testz_si256,
        _mm256_xor_si256,
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::OnceLock;

    /// Bench/test override: when `true`, [`active`] reports `false` even
    /// on AVX2 hardware, forcing the portable path.
    static FORCE_OFF: AtomicBool = AtomicBool::new(false);

    fn detected() -> bool {
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    pub(super) fn active() -> bool {
        detected() && !FORCE_OFF.load(Ordering::Relaxed)
    }

    pub(super) fn set_enabled(on: bool) {
        FORCE_OFF.store(!on, Ordering::Relaxed);
    }

    pub(super) fn merge_span(dst: &mut [f32], cpu: &[f32], original: &[f32]) {
        // SAFETY: `active()` gated this call on a runtime AVX2 CPUID check.
        unsafe { merge_span_avx2(dst, cpu, original) }
    }

    pub(super) fn span_differs(a: &[f32], b: &[f32]) -> bool {
        // SAFETY: `active()` gated this call on a runtime AVX2 CPUID check.
        unsafe { span_differs_avx2(a, b) }
    }

    /// Widened merge: per 16-lane step, one OR-reduced XOR decides whether
    /// the step touches `dst` at all; a differing step blends bitwise
    /// (`cpu != original ? cpu : dst`) — no arithmetic, so the result is
    /// bit-identical to the portable loop.
    #[target_feature(enable = "avx2")]
    unsafe fn merge_span_avx2(dst: &mut [f32], cpu: &[f32], original: &[f32]) {
        let n = dst.len();
        let mut i = 0usize;
        while i + 16 <= n {
            // SAFETY: `i + 16 <= n` bounds all unaligned 8-lane loads, and
            // the caller guarantees the three slices share the length.
            unsafe {
                let c0 = _mm256_loadu_si256(cpu.as_ptr().add(i).cast::<__m256i>());
                let o0 = _mm256_loadu_si256(original.as_ptr().add(i).cast::<__m256i>());
                let c1 = _mm256_loadu_si256(cpu.as_ptr().add(i + 8).cast::<__m256i>());
                let o1 = _mm256_loadu_si256(original.as_ptr().add(i + 8).cast::<__m256i>());
                let x = _mm256_or_si256(_mm256_xor_si256(c0, o0), _mm256_xor_si256(c1, o1));
                if _mm256_testz_si256(x, x) == 0 {
                    let d0 = _mm256_loadu_si256(dst.as_ptr().add(i).cast::<__m256i>());
                    let d1 = _mm256_loadu_si256(dst.as_ptr().add(i + 8).cast::<__m256i>());
                    // cmpeq yields all-ones lanes where cpu == original;
                    // blendv picks `dst` there and `cpu` elsewhere.
                    let e0 = _mm256_castsi256_ps(_mm256_cmpeq_epi32(c0, o0));
                    let e1 = _mm256_castsi256_ps(_mm256_cmpeq_epi32(c1, o1));
                    let m0 = _mm256_blendv_ps(_mm256_castsi256_ps(c0), _mm256_castsi256_ps(d0), e0);
                    let m1 = _mm256_blendv_ps(_mm256_castsi256_ps(c1), _mm256_castsi256_ps(d1), e1);
                    _mm256_storeu_si256(
                        dst.as_mut_ptr().add(i).cast::<__m256i>(),
                        _mm256_castps_si256(m0),
                    );
                    _mm256_storeu_si256(
                        dst.as_mut_ptr().add(i + 8).cast::<__m256i>(),
                        _mm256_castps_si256(m1),
                    );
                }
            }
            i += 16;
        }
        super::merge_span_portable(&mut dst[i..], &cpu[i..], &original[i..]);
    }

    /// Widened compare with per-16-lane early exit.
    #[target_feature(enable = "avx2")]
    unsafe fn span_differs_avx2(a: &[f32], b: &[f32]) -> bool {
        let n = a.len();
        let mut i = 0usize;
        while i + 16 <= n {
            // SAFETY: `i + 16 <= n` bounds the unaligned loads; the caller
            // guarantees equal slice lengths.
            unsafe {
                let a0 = _mm256_loadu_si256(a.as_ptr().add(i).cast::<__m256i>());
                let b0 = _mm256_loadu_si256(b.as_ptr().add(i).cast::<__m256i>());
                let a1 = _mm256_loadu_si256(a.as_ptr().add(i + 8).cast::<__m256i>());
                let b1 = _mm256_loadu_si256(b.as_ptr().add(i + 8).cast::<__m256i>());
                let x = _mm256_or_si256(_mm256_xor_si256(a0, b0), _mm256_xor_si256(a1, b1));
                if _mm256_testz_si256(x, x) == 0 {
                    return true;
                }
            }
            i += 16;
        }
        super::span_differs_portable(&a[i..], &b[i..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that flip the global SIMD toggle.
    #[cfg(feature = "simd")]
    static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn portable_compare_and_merge_agree() {
        let len = 67; // blocks plus a scalar tail
        let original: Vec<f32> = (0..len).map(|i| i as f32).collect();
        let mut cpu = original.clone();
        cpu[0] = f32::NAN;
        cpu[33] = -0.0;
        cpu[66] = 9.5;
        assert!(span_differs_portable(&cpu, &original));
        assert!(!span_differs_portable(&original, &original));
        let mut dst = vec![7.0f32; len];
        merge_span_portable(&mut dst, &cpu, &original);
        assert!(dst[0].is_nan());
        assert_eq!(dst[33].to_bits(), (-0.0f32).to_bits());
        assert_eq!(dst[66], 9.5);
        assert_eq!(dst[1], 7.0, "clean elements keep the dst value");
    }

    #[cfg(feature = "simd")]
    #[test]
    fn simd_toggle_is_observable() {
        let _guard = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // On AVX2 hardware the toggle flips dispatch; elsewhere both
        // states report inactive. Either way the API holds its contract:
        // set_simd_enabled(false) always forces the portable path.
        set_simd_enabled(false);
        assert!(!simd_active());
        set_simd_enabled(true);
        let _ = simd_active(); // true iff the CPU has AVX2
    }

    #[cfg(feature = "simd")]
    #[test]
    fn simd_and_portable_merges_are_bit_identical() {
        let _guard = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_simd_enabled(true);
        if !simd_active() {
            return; // no AVX2 on this machine: nothing to compare
        }
        let len = 4096 + 13;
        let mut rng = 0x5EEDu64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            f32::from_bits((rng >> 32) as u32)
        };
        let original: Vec<f32> = (0..len).map(|_| next()).collect();
        let mut cpu = original.clone();
        for i in (0..len).step_by(7) {
            cpu[i] = next(); // arbitrary bit patterns incl. NaNs/infinities
        }
        let dst0: Vec<f32> = (0..len).map(|_| next()).collect();

        let mut simd_dst = dst0.clone();
        merge_span(&mut simd_dst, &cpu, &original);
        assert!(span_differs(&cpu, &original));

        set_simd_enabled(false);
        let mut portable_dst = dst0.clone();
        merge_span(&mut portable_dst, &cpu, &original);
        assert!(span_differs(&cpu, &original));
        set_simd_enabled(true);

        let a: Vec<u32> = simd_dst.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = portable_dst.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "AVX2 and portable merges must agree bit-for-bit");
    }
}
