//! The vanilla single-device runtime: what an application gets from a vendor
//! OpenCL stack when it targets just the CPU or just the GPU. This is the
//! baseline FluidiCL is measured against ("CPU-only" and "GPU-only" in every
//! figure of the paper).

use fluidicl_des::{SimDuration, SimTime};
use fluidicl_hetsim::{AbortMode, MachineConfig};

use crate::exec::Launch;
use crate::queue::CommandQueue;
use crate::{BufferId, ClDriver, ClResult, DeviceKind, KernelArg, NdRange, Program};

/// A single-device OpenCL-style runtime over the simulated machine.
///
/// Kernels run unmodified (no abort checks) on the one chosen device; host
/// writes/reads cross the PCIe link for the GPU and are memcpys for the CPU
/// device (whose OpenCL buffers live in host RAM).
///
/// # Examples
///
/// ```
/// use fluidicl_hetsim::{KernelProfile, MachineConfig};
/// use fluidicl_vcl::{
///     ArgRole, ArgSpec, ClDriver, DeviceKind, KernelArg, KernelDef, NdRange, Program,
///     SingleDeviceRuntime,
/// };
///
/// let mut program = Program::new();
/// program.register(KernelDef::new(
///     "double",
///     vec![ArgSpec::new("x", ArgRole::InOut)],
///     KernelProfile::new("double"),
///     |item, _, _, outs| {
///         let i = item.global_linear();
///         outs.at(0)[i] *= 2.0;
///     },
/// ));
/// let mut rt = SingleDeviceRuntime::new(MachineConfig::paper_testbed(), DeviceKind::Gpu, program);
/// let buf = rt.create_buffer(8);
/// rt.write_buffer(buf, &[1.0; 8])?;
/// rt.enqueue_kernel("double", NdRange::d1(8, 4)?, &[KernelArg::Buffer(buf)])?;
/// assert_eq!(rt.read_buffer(buf)?, vec![2.0; 8]);
/// assert!(!rt.elapsed().is_zero());
/// # Ok::<(), fluidicl_vcl::ClError>(())
/// ```
#[derive(Debug)]
pub struct SingleDeviceRuntime {
    machine: MachineConfig,
    program: Program,
    queue: CommandQueue,
    kernel_log: Vec<(String, SimDuration)>,
}

impl SingleDeviceRuntime {
    /// Creates a runtime targeting `device` on `machine` with `program`.
    pub fn new(machine: MachineConfig, device: DeviceKind, program: Program) -> Self {
        let queue = CommandQueue::new(machine.clone(), device);
        SingleDeviceRuntime {
            machine,
            program,
            queue,
            kernel_log: Vec::new(),
        }
    }

    /// The device this runtime targets.
    pub fn device(&self) -> DeviceKind {
        self.queue.device()
    }

    /// Virtual duration of one full kernel launch on this device (including
    /// launch overhead), without executing it. Exposed for schedulers that
    /// need estimates (OracleSP sweeps, SOCL calibration).
    pub fn kernel_duration(&self, kernel: &str, ndrange: NdRange) -> ClResult<SimDuration> {
        let def = self.program.kernel(kernel)?;
        let profile = &def.default_version().profile;
        let items = ndrange.items_per_group();
        let groups = ndrange.num_groups();
        Ok(match self.device() {
            DeviceKind::Gpu => {
                self.machine.gpu.launch_overhead()
                    + self
                        .machine
                        .gpu
                        .range_time(profile, items, groups, AbortMode::None)
            }
            DeviceKind::Cpu => self
                .machine
                .cpu
                .subkernel_time(profile, items, groups, false),
        })
    }
}

impl ClDriver for SingleDeviceRuntime {
    fn create_buffer(&mut self, len: usize) -> BufferId {
        self.queue.create_buffer(len)
    }

    fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        self.queue.enqueue_write(id, data)?;
        Ok(())
    }

    fn enqueue_kernel(
        &mut self,
        kernel: &str,
        ndrange: NdRange,
        args: &[KernelArg],
    ) -> ClResult<()> {
        let def = self.program.kernel(kernel)?;
        let launch = Launch::new(def, ndrange, args.to_vec());
        let before = self.queue.tail();
        let ev = self.queue.enqueue_ndrange(&launch)?;
        self.kernel_log.push((
            kernel.to_string(),
            ev.complete_at().saturating_since(before),
        ));
        Ok(())
    }

    fn read_buffer(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        let (data, _) = self.queue.enqueue_read(id)?;
        Ok(data)
    }

    fn elapsed(&self) -> SimDuration {
        self.queue.tail().saturating_since(SimTime::ZERO)
    }

    fn kernel_times(&self) -> Vec<(String, SimDuration)> {
        self.kernel_log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArgRole, ArgSpec, KernelDef};
    use fluidicl_hetsim::KernelProfile;

    fn test_program() -> Program {
        let mut p = Program::new();
        p.register(KernelDef::new(
            "axpy",
            vec![
                ArgSpec::new("x", ArgRole::In),
                ArgSpec::new("y", ArgRole::InOut),
                ArgSpec::new("a", ArgRole::Scalar),
            ],
            KernelProfile::new("axpy")
                .flops_per_item(2.0)
                .bytes_read_per_item(8.0)
                .bytes_written_per_item(4.0),
            |item, scalars, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[i] += scalars.f32(0) * ins.get(0)[i];
            },
        ));
        p
    }

    fn run_on(device: DeviceKind) -> (Vec<f32>, SimDuration) {
        let mut rt =
            SingleDeviceRuntime::new(MachineConfig::paper_testbed(), device, test_program());
        let x = rt.create_buffer(64);
        let y = rt.create_buffer(64);
        rt.write_buffer(x, &vec![1.0; 64]).unwrap();
        rt.write_buffer(y, &vec![2.0; 64]).unwrap();
        rt.enqueue_kernel(
            "axpy",
            NdRange::d1(64, 8).unwrap(),
            &[
                KernelArg::Buffer(x),
                KernelArg::Buffer(y),
                KernelArg::F32(3.0),
            ],
        )
        .unwrap();
        (rt.read_buffer(y).unwrap(), rt.elapsed())
    }

    #[test]
    fn both_devices_compute_identical_results() {
        let (cpu, _) = run_on(DeviceKind::Cpu);
        let (gpu, _) = run_on(DeviceKind::Gpu);
        assert_eq!(cpu, gpu);
        assert_eq!(cpu, vec![5.0; 64]);
    }

    #[test]
    fn elapsed_time_is_positive_and_device_dependent() {
        let (_, cpu_t) = run_on(DeviceKind::Cpu);
        let (_, gpu_t) = run_on(DeviceKind::Gpu);
        assert!(!cpu_t.is_zero());
        assert!(!gpu_t.is_zero());
        assert_ne!(cpu_t, gpu_t, "devices have different cost structures");
    }

    #[test]
    fn kernel_log_records_launches() {
        let mut rt = SingleDeviceRuntime::new(
            MachineConfig::paper_testbed(),
            DeviceKind::Cpu,
            test_program(),
        );
        let x = rt.create_buffer(8);
        let y = rt.create_buffer(8);
        rt.write_buffer(x, &[0.0; 8]).unwrap();
        rt.write_buffer(y, &[0.0; 8]).unwrap();
        for _ in 0..3 {
            rt.enqueue_kernel(
                "axpy",
                NdRange::d1(8, 8).unwrap(),
                &[
                    KernelArg::Buffer(x),
                    KernelArg::Buffer(y),
                    KernelArg::F32(1.0),
                ],
            )
            .unwrap();
        }
        let log = rt.kernel_times();
        assert_eq!(log.len(), 3);
        assert!(log.iter().all(|(name, t)| name == "axpy" && !t.is_zero()));
    }

    #[test]
    fn unknown_kernel_is_an_error() {
        let mut rt = SingleDeviceRuntime::new(
            MachineConfig::paper_testbed(),
            DeviceKind::Cpu,
            test_program(),
        );
        assert!(rt
            .enqueue_kernel("nope", NdRange::d1(8, 8).unwrap(), &[])
            .is_err());
    }

    #[test]
    fn gpu_pays_buffer_creation() {
        let mut gpu = SingleDeviceRuntime::new(
            MachineConfig::paper_testbed(),
            DeviceKind::Gpu,
            test_program(),
        );
        let mut cpu = SingleDeviceRuntime::new(
            MachineConfig::paper_testbed(),
            DeviceKind::Cpu,
            test_program(),
        );
        gpu.create_buffer(1 << 20);
        cpu.create_buffer(1 << 20);
        assert!(gpu.elapsed() > cpu.elapsed());
    }
}
