//! Kernel definitions, arguments and programs.
//!
//! A kernel in this runtime is a Rust closure executed once per work-item,
//! plus a [`KernelProfile`] describing its cost and an argument signature
//! separating input buffers, output buffers and scalars. The signature is
//! what FluidiCL's "simple compiler analysis at the whole variable level"
//! (paper §4.1) provides in the original system: it tells the runtime which
//! buffers a kernel modifies (`out`/`inout`) and therefore which buffers
//! need extra copies, merging and device-to-host transfers.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use fluidicl_hetsim::KernelProfile;

use crate::footprint::AccessPattern;
use crate::{BufferId, ClError, ClResult, WorkItem};

/// Role of one kernel argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArgRole {
    /// Buffer read by the kernel.
    In,
    /// Buffer written (fully overwritten per work-item) by the kernel.
    Out,
    /// Buffer both read and written by the kernel.
    InOut,
    /// Scalar value.
    Scalar,
}

impl ArgRole {
    /// Whether the argument is a buffer the kernel may modify.
    pub fn is_output(self) -> bool {
        matches!(self, ArgRole::Out | ArgRole::InOut)
    }

    /// Whether the argument is a buffer (of any role).
    pub fn is_buffer(self) -> bool {
        !matches!(self, ArgRole::Scalar)
    }
}

/// Declared signature entry of a kernel argument.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgSpec {
    /// Argument name, for diagnostics.
    pub name: String,
    /// Argument role.
    pub role: ArgRole,
    /// Declared per-item element-access shape (reads for `In`, writes for
    /// `Out`, both for `InOut`); `None` means no static footprint is
    /// available for this argument.
    pub access: Option<AccessPattern>,
}

impl ArgSpec {
    /// Creates a signature entry with no access declaration.
    pub fn new(name: impl Into<String>, role: ArgRole) -> Self {
        ArgSpec {
            name: name.into(),
            role,
            access: None,
        }
    }

    /// Declares the per-item [`AccessPattern`] of this argument, enabling
    /// symbolic footprints ([`KernelDef::write_footprints`]) for launches
    /// of the kernel.
    #[must_use]
    pub fn with_access(mut self, pattern: AccessPattern) -> Self {
        self.access = Some(pattern);
        self
    }
}

/// Actual argument value supplied at launch time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelArg {
    /// A buffer handle.
    Buffer(BufferId),
    /// A 32-bit signed integer scalar.
    I32(i32),
    /// A 32-bit float scalar.
    F32(f32),
    /// A pointer-sized scalar (problem sizes).
    Usize(usize),
}

/// Scalar arguments of one launch, accessible from the kernel body.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Scalars {
    values: Vec<KernelArg>,
    /// Kernel name and declared scalar-argument names, carried so a
    /// mistyped or missing scalar access panics with a message that points
    /// at the offending kernel rather than a bare index.
    kernel: String,
    names: Vec<String>,
}

impl Scalars {
    pub(crate) fn from_args(kernel: &str, args: &[KernelArg], spec: &[ArgSpec]) -> Self {
        let mut values = Vec::new();
        let mut names = Vec::new();
        for (s, a) in spec.iter().zip(args) {
            if s.role == ArgRole::Scalar {
                values.push(*a);
                names.push(s.name.clone());
            }
        }
        Scalars {
            values,
            kernel: kernel.to_string(),
            names,
        }
    }

    /// The `idx`-th scalar and its declared name.
    ///
    /// # Panics
    ///
    /// Panics with the kernel and argument context if `idx` is out of
    /// range.
    fn get(&self, idx: usize, want: &str) -> (KernelArg, &str) {
        match self.values.get(idx) {
            Some(v) => (*v, self.names.get(idx).map_or("?", String::as_str)),
            None => panic!(
                "kernel `{}`: scalar index {idx} out of range ({} scalar arg(s) declared), \
                 wanted {want}",
                self.kernel,
                self.values.len()
            ),
        }
    }

    /// The `idx`-th scalar argument as `i32`.
    ///
    /// # Panics
    ///
    /// Panics — naming the kernel and the declared argument — if the
    /// argument is absent or not an `I32`.
    pub fn i32(&self, idx: usize) -> i32 {
        match self.get(idx, "i32") {
            (KernelArg::I32(v), _) => v,
            (other, name) => panic!(
                "kernel `{}`: scalar arg `{name}` (index {idx}) is {other:?}, not i32",
                self.kernel
            ),
        }
    }

    /// The `idx`-th scalar argument as `f32`.
    ///
    /// # Panics
    ///
    /// Panics — naming the kernel and the declared argument — if the
    /// argument is absent or not an `F32`.
    pub fn f32(&self, idx: usize) -> f32 {
        match self.get(idx, "f32") {
            (KernelArg::F32(v), _) => v,
            (other, name) => panic!(
                "kernel `{}`: scalar arg `{name}` (index {idx}) is {other:?}, not f32",
                self.kernel
            ),
        }
    }

    /// The `idx`-th scalar argument as `usize`.
    ///
    /// # Panics
    ///
    /// Panics — naming the kernel and the declared argument — if the
    /// argument is absent or not a `Usize`.
    pub fn usize(&self, idx: usize) -> usize {
        match self.get(idx, "usize") {
            (KernelArg::Usize(v), _) => v,
            (other, name) => panic!(
                "kernel `{}`: scalar arg `{name}` (index {idx}) is {other:?}, not usize",
                self.kernel
            ),
        }
    }

    /// Number of scalar arguments.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no scalar arguments.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Read-only buffers of one launch, in signature order among `In` arguments.
pub struct Inputs<'a> {
    slices: Vec<&'a [f32]>,
    /// When present, `get` marks which input buffers the kernel actually
    /// touched — the access sanitizer uses this to flag declared-but-unread
    /// `In` arguments. `None` in normal execution, so the fast path pays
    /// nothing.
    read_flags: Option<std::cell::RefCell<Vec<bool>>>,
}

impl<'a> Inputs<'a> {
    pub(crate) fn new(slices: Vec<&'a [f32]>) -> Self {
        Inputs {
            slices,
            read_flags: None,
        }
    }

    pub(crate) fn with_read_tracking(slices: Vec<&'a [f32]>) -> Self {
        let flags = vec![false; slices.len()];
        Inputs {
            slices,
            read_flags: Some(std::cell::RefCell::new(flags)),
        }
    }

    pub(crate) fn reads(&self) -> Option<Vec<bool>> {
        self.read_flags.as_ref().map(|f| f.borrow().clone())
    }

    /// The `idx`-th input buffer.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> &[f32] {
        if let Some(flags) = &self.read_flags {
            flags.borrow_mut()[idx] = true;
        }
        self.slices[idx]
    }

    /// Number of input buffers.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether there are no input buffers.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }
}

/// Writable buffers of one launch (`Out` and `InOut`), in signature order.
pub struct Outputs<'a> {
    slices: Vec<&'a mut [f32]>,
}

impl<'a> Outputs<'a> {
    pub(crate) fn new(slices: Vec<&'a mut [f32]>) -> Self {
        Outputs { slices }
    }

    /// Mutable access to the `idx`-th output buffer. `InOut` buffers can be
    /// read through the same slice.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn at(&mut self, idx: usize) -> &mut [f32] {
        self.slices[idx]
    }

    /// Read-only access to the `idx`-th output buffer (for `InOut` reads).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn read(&self, idx: usize) -> &[f32] {
        self.slices[idx]
    }

    /// Number of output buffers.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether there are no output buffers.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }
}

/// Per-work-item kernel function.
pub type KernelBody = dyn Fn(&WorkItem, &Scalars, &Inputs<'_>, &mut Outputs<'_>) + Send + Sync;

/// One implementation of a kernel: a body plus its cost profile.
///
/// FluidiCL's online profiling (paper §6.6) selects among several versions
/// with identical signatures and semantics but different device affinities —
/// e.g. a loop-interchanged CPU version with better cache locality.
#[derive(Clone)]
pub struct KernelVersion {
    /// Human-readable label ("baseline", "loop-interchanged", ...).
    pub label: String,
    /// Per-work-item function.
    pub body: Arc<KernelBody>,
    /// Cost profile of this implementation.
    pub profile: KernelProfile,
}

impl fmt::Debug for KernelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelVersion")
            .field("label", &self.label)
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

/// A named kernel: signature plus one or more implementations.
#[derive(Clone, Debug)]
pub struct KernelDef {
    name: String,
    args: Vec<ArgSpec>,
    versions: Vec<KernelVersion>,
    disjoint_writes: bool,
}

impl KernelDef {
    /// Creates a kernel with its default implementation (version 0).
    pub fn new(
        name: impl Into<String>,
        args: Vec<ArgSpec>,
        profile: KernelProfile,
        body: impl Fn(&WorkItem, &Scalars, &Inputs<'_>, &mut Outputs<'_>) + Send + Sync + 'static,
    ) -> Self {
        KernelDef {
            name: name.into(),
            args,
            versions: vec![KernelVersion {
                label: "baseline".to_string(),
                body: Arc::new(body),
                profile,
            }],
            disjoint_writes: false,
        }
    }

    /// Declares that distinct work-groups of this kernel write disjoint
    /// output elements and never read output elements written by another
    /// work-group (each group reads only launch inputs plus its own
    /// `InOut` cells).
    ///
    /// This is the evidence the intra-launch parallel executor
    /// ([`execute_groups_par`](crate::exec::execute_groups_par)) requires
    /// to split one group range across host threads: with disjoint writes,
    /// merging per-thread results in any order is byte-identical to
    /// sequential execution. The access sanitizer's shadow-memory write
    /// maps verify the claim — a kernel with a write conflict or an
    /// out-read-before-write is flagged by `fluidicl-check`, and such a
    /// kernel must not carry this marker.
    #[must_use]
    pub fn with_disjoint_writes(mut self) -> Self {
        self.disjoint_writes = true;
        self
    }

    /// Whether [`with_disjoint_writes`](Self::with_disjoint_writes) was
    /// declared. Without it, the executor always runs group ranges
    /// sequentially.
    pub fn disjoint_writes(&self) -> bool {
        self.disjoint_writes
    }

    /// Adds an alternate implementation (same signature and semantics) for
    /// online profiling to choose from (paper §6.6).
    #[must_use]
    pub fn with_version(
        mut self,
        label: impl Into<String>,
        profile: KernelProfile,
        body: impl Fn(&WorkItem, &Scalars, &Inputs<'_>, &mut Outputs<'_>) + Send + Sync + 'static,
    ) -> Self {
        self.versions.push(KernelVersion {
            label: label.into(),
            body: Arc::new(body),
            profile,
        });
        self
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared argument signature.
    pub fn args(&self) -> &[ArgSpec] {
        &self.args
    }

    /// All implementations; index 0 is the default.
    pub fn versions(&self) -> &[KernelVersion] {
        &self.versions
    }

    /// The default implementation.
    pub fn default_version(&self) -> &KernelVersion {
        &self.versions[0]
    }

    /// Validates a launch argument list against the signature and resolves
    /// the buffer classification: `(inputs, outputs, scalars)` where
    /// `outputs` contains `Out` and `InOut` buffers in signature order.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::ArgMismatch`] if the list does not match the
    /// signature, or [`ClError::AliasedBuffer`] if one buffer appears both
    /// as an input and an output (or twice as an output).
    pub fn classify_args(
        &self,
        args: &[KernelArg],
    ) -> ClResult<(Vec<BufferId>, Vec<BufferId>, Scalars)> {
        if args.len() != self.args.len() {
            return Err(ClError::ArgMismatch {
                kernel: self.name.clone(),
                detail: format!("expected {} args, got {}", self.args.len(), args.len()),
            });
        }
        let mut ins = Vec::new();
        let mut outs = Vec::new();
        for (spec, arg) in self.args.iter().zip(args) {
            match (spec.role, arg) {
                (ArgRole::In, KernelArg::Buffer(id)) => ins.push(*id),
                (ArgRole::Out | ArgRole::InOut, KernelArg::Buffer(id)) => outs.push(*id),
                (ArgRole::Scalar, KernelArg::Buffer(_)) => {
                    return Err(ClError::ArgMismatch {
                        kernel: self.name.clone(),
                        detail: format!("arg `{}` should be a scalar", spec.name),
                    });
                }
                (ArgRole::Scalar, _) => {}
                (_, other) => {
                    return Err(ClError::ArgMismatch {
                        kernel: self.name.clone(),
                        detail: format!("arg `{}` should be a buffer, got {other:?}", spec.name),
                    });
                }
            }
        }
        for (i, out) in outs.iter().enumerate() {
            if ins.contains(out) {
                return Err(ClError::AliasedBuffer(out.0));
            }
            if outs[..i].contains(out) {
                return Err(ClError::AliasedBuffer(out.0));
            }
        }
        Ok((ins, outs, Scalars::from_args(&self.name, args, &self.args)))
    }
}

/// A compiled program: a registry of kernels, shared by every device
/// (`clBuildProgram` in FluidiCL compiles for both devices — paper §4.1).
#[derive(Clone, Debug, Default)]
pub struct Program {
    kernels: HashMap<String, Arc<KernelDef>>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a kernel, replacing any previous kernel of the same name.
    pub fn register(&mut self, kernel: KernelDef) {
        self.kernels
            .insert(kernel.name().to_string(), Arc::new(kernel));
    }

    /// Looks up a kernel by name.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::UnknownKernel`] if absent.
    pub fn kernel(&self, name: &str) -> ClResult<Arc<KernelDef>> {
        self.kernels
            .get(name)
            .cloned()
            .ok_or_else(|| ClError::UnknownKernel(name.to_string()))
    }

    /// Iterates over registered kernel names.
    pub fn kernel_names(&self) -> impl Iterator<Item = &str> {
        self.kernels.keys().map(String::as_str)
    }

    /// Marks kernel `name` as having disjoint per-group writes, as
    /// [`KernelDef::with_disjoint_writes`] would at registration. Returns
    /// whether anything changed (`false` if the kernel is unknown or was
    /// already declared disjoint). This is the consumption side of a
    /// machine-checked disjointness proof: an external prover that verified
    /// every launch can promote the kernel without touching its source
    /// registration.
    pub fn promote_disjoint(&mut self, name: &str) -> bool {
        match self.kernels.get_mut(name) {
            Some(def) if !def.disjoint_writes() => {
                Arc::make_mut(def).disjoint_writes = true;
                true
            }
            _ => false,
        }
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the program has no kernels.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn copy_kernel() -> KernelDef {
        KernelDef::new(
            "copy",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            KernelProfile::new("copy"),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let i = item.global[0];
                if i < n {
                    outs.at(0)[i] = ins.get(0)[i];
                }
            },
        )
    }

    #[test]
    fn classify_separates_roles() {
        let k = copy_kernel();
        let (ins, outs, scalars) = k
            .classify_args(&[
                KernelArg::Buffer(BufferId(1)),
                KernelArg::Buffer(BufferId(2)),
                KernelArg::Usize(8),
            ])
            .unwrap();
        assert_eq!(ins, vec![BufferId(1)]);
        assert_eq!(outs, vec![BufferId(2)]);
        assert_eq!(scalars.usize(0), 8);
    }

    #[test]
    fn promote_disjoint_flips_the_flag_once() {
        let mut p = Program::new();
        p.register(copy_kernel());
        // A lookup taken before the promotion keeps the old declaration
        // (promotion copy-on-writes the shared definition).
        let before = p.kernel("copy").unwrap();
        assert!(!before.disjoint_writes());
        assert!(p.promote_disjoint("copy"), "first promotion applies");
        assert!(!p.promote_disjoint("copy"), "second is a no-op");
        assert!(!p.promote_disjoint("missing"), "unknown kernels are no-ops");
        assert!(p.kernel("copy").unwrap().disjoint_writes());
        assert!(!before.disjoint_writes(), "old handles are unaffected");
    }

    #[test]
    fn classify_rejects_wrong_arity() {
        let k = copy_kernel();
        let err = k.classify_args(&[KernelArg::Usize(8)]).unwrap_err();
        assert!(matches!(err, ClError::ArgMismatch { .. }));
    }

    #[test]
    fn classify_rejects_scalar_for_buffer() {
        let k = copy_kernel();
        let err = k
            .classify_args(&[
                KernelArg::I32(0),
                KernelArg::Buffer(BufferId(2)),
                KernelArg::Usize(8),
            ])
            .unwrap_err();
        assert!(matches!(err, ClError::ArgMismatch { .. }));
    }

    #[test]
    fn classify_rejects_buffer_for_scalar() {
        let k = copy_kernel();
        let err = k
            .classify_args(&[
                KernelArg::Buffer(BufferId(1)),
                KernelArg::Buffer(BufferId(2)),
                KernelArg::Buffer(BufferId(3)),
            ])
            .unwrap_err();
        assert!(matches!(err, ClError::ArgMismatch { .. }));
    }

    #[test]
    fn classify_rejects_aliasing() {
        let k = copy_kernel();
        let err = k
            .classify_args(&[
                KernelArg::Buffer(BufferId(1)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::Usize(8),
            ])
            .unwrap_err();
        assert_eq!(err, ClError::AliasedBuffer(1));
    }

    #[test]
    fn disjoint_writes_defaults_off_and_is_declarable() {
        let k = copy_kernel();
        assert!(!k.disjoint_writes());
        let k = k.with_disjoint_writes();
        assert!(k.disjoint_writes());
    }

    #[test]
    fn versions_accumulate() {
        let k = copy_kernel().with_version(
            "alt",
            KernelProfile::new("copy-alt").cpu_cache_locality(0.9),
            |_, _, _, _| {},
        );
        assert_eq!(k.versions().len(), 2);
        assert_eq!(k.default_version().label, "baseline");
        assert_eq!(k.versions()[1].label, "alt");
    }

    #[test]
    fn program_registry_lookups() {
        let mut p = Program::new();
        assert!(p.is_empty());
        p.register(copy_kernel());
        assert_eq!(p.len(), 1);
        assert!(p.kernel("copy").is_ok());
        assert_eq!(
            p.kernel("nope").unwrap_err(),
            ClError::UnknownKernel("nope".to_string())
        );
        assert_eq!(p.kernel_names().collect::<Vec<_>>(), vec!["copy"]);
    }

    #[test]
    #[should_panic(expected = "kernel `copy`: scalar arg `x` (index 0) is I32(1), not f32")]
    fn scalar_type_mismatch_panics_with_kernel_and_arg_name() {
        let s = Scalars::from_args(
            "copy",
            &[KernelArg::I32(1)],
            &[ArgSpec::new("x", ArgRole::Scalar)],
        );
        let _ = s.f32(0);
    }

    #[test]
    #[should_panic(expected = "kernel `copy`: scalar index 1 out of range (1 scalar arg(s)")]
    fn scalar_index_out_of_range_panics_with_kernel_name() {
        let s = Scalars::from_args(
            "copy",
            &[KernelArg::Usize(4)],
            &[ArgSpec::new("n", ArgRole::Scalar)],
        );
        let _ = s.usize(1);
    }
}
