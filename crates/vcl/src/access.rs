//! Shadow-memory access recording for the kernel sanitizer.
//!
//! [`execute_groups_shadowed`] runs a launch exactly like
//! [`execute_groups`](crate::exec::execute_groups) but one work-group at a
//! time, diffing every output buffer against a pre-group snapshot. The result
//! is, per work-group, the exact set of elements it wrote (index → bit
//! pattern) plus, per `In` argument, whether the kernel body ever read it.
//! `fluidicl-check` compares these records across sentinel-poisoned runs to
//! detect `ArgRole` misdeclarations and cross-work-group write conflicts.
//!
//! Like the diff-merge of paper §4.3, the snapshot diff cannot see a write
//! that stores the value already present. The sanitizer compensates by
//! poisoning `Out` buffers with sentinels no kernel computes, which makes
//! every genuine write visible.

use std::collections::BTreeMap;

use crate::exec::Launch;
use crate::kernel::{Inputs, Outputs};
use crate::ndrange::for_each_item_in_group;
use crate::{BufferId, ClError, ClResult, Memory};

/// Elements one work-group wrote to one output buffer: index → stored bit
/// pattern (`f32::to_bits`, so `NaN`s and signed zeros compare exactly).
pub type WriteMap = BTreeMap<usize, u32>;

/// Access record of one executed work-group range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// Per executed work-group: its flattened id and, per output argument
    /// (in signature order among `Out`/`InOut` arguments), the elements it
    /// wrote.
    pub groups: Vec<(u64, Vec<WriteMap>)>,
    /// Per `In` argument (signature order): whether any work-item read it.
    pub inputs_read: Vec<bool>,
}

impl AccessRecord {
    /// Union of all per-group write maps for output argument `out_idx`.
    pub fn total_writes(&self, out_idx: usize) -> WriteMap {
        let mut all = WriteMap::new();
        for (_, maps) in &self.groups {
            all.extend(maps[out_idx].iter().map(|(&i, &b)| (i, b)));
        }
        all
    }
}

/// Executes flattened work-groups `[from, to)` of `launch` against `mem`,
/// recording per-group write sets and input-read flags.
///
/// Semantically identical to `execute_groups` (the same values end up in
/// `mem`), just slower: every group pays a snapshot + diff over the output
/// buffers, so this is a debugging/verification tool, not an execution path.
///
/// # Errors
///
/// Same conditions as `execute_groups`: signature mismatch, missing buffer,
/// or an out-of-bounds range.
pub fn execute_groups_shadowed(
    launch: &Launch,
    mem: &mut Memory,
    from: u64,
    to: u64,
) -> ClResult<AccessRecord> {
    let total = launch.ndrange.num_groups();
    if from > to || to > total {
        return Err(ClError::InvalidNdRange(format!(
            "group range {from}..{to} exceeds {total} groups"
        )));
    }
    let (in_ids, out_ids, scalars) = launch.kernel.classify_args(&launch.args)?;
    let version = launch
        .kernel
        .versions()
        .get(launch.version)
        .unwrap_or_else(|| launch.kernel.default_version());

    let mut taken: Vec<(BufferId, Vec<f32>)> = Vec::with_capacity(out_ids.len());
    for id in &out_ids {
        match mem.take(*id) {
            Ok(v) => taken.push((*id, v)),
            Err(e) => {
                for (id, v) in taken {
                    mem.install(id, v);
                }
                return Err(e);
            }
        }
    }
    let result = (|| -> ClResult<AccessRecord> {
        let mut in_slices = Vec::with_capacity(in_ids.len());
        for id in &in_ids {
            in_slices.push(mem.get(*id)?);
        }
        let ins = Inputs::with_read_tracking(in_slices);
        let mut out_slices: Vec<&mut [f32]> =
            taken.iter_mut().map(|(_, v)| v.as_mut_slice()).collect();
        let mut outs = Outputs::new(std::mem::take(&mut out_slices));
        let body = &version.body;
        let mut shadow = ShadowMemory::capture(&outs);
        let mut groups = Vec::with_capacity((to - from) as usize);
        for flat in from..to {
            let group = launch.ndrange.unflatten_group(flat);
            for_each_item_in_group(&launch.ndrange, group, |item| {
                body(item, &scalars, &ins, &mut outs);
            });
            groups.push((flat, shadow.diff_and_advance(&outs)));
        }
        Ok(AccessRecord {
            groups,
            inputs_read: ins.reads().expect("tracking inputs carry flags"),
        })
    })();
    for (id, v) in taken {
        mem.install(id, v);
    }
    result
}

/// Snapshot of every output buffer, advanced group by group so each diff
/// isolates exactly one work-group's writes.
struct ShadowMemory {
    baselines: Vec<Vec<u32>>,
}

impl ShadowMemory {
    fn capture(outs: &Outputs<'_>) -> Self {
        let baselines = (0..outs.len())
            .map(|i| outs.read(i).iter().map(|v| v.to_bits()).collect())
            .collect();
        ShadowMemory { baselines }
    }

    /// Bit-level diff of each output buffer against the baseline, then
    /// folds the new content into the baseline for the next group.
    fn diff_and_advance(&mut self, outs: &Outputs<'_>) -> Vec<WriteMap> {
        self.baselines
            .iter_mut()
            .enumerate()
            .map(|(o, base)| {
                let mut writes = WriteMap::new();
                for (i, v) in outs.read(o).iter().enumerate() {
                    let bits = v.to_bits();
                    if bits != base[i] {
                        writes.insert(i, bits);
                        base[i] = bits;
                    }
                }
                writes
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::exec::execute_groups;
    use crate::kernel::{ArgRole, ArgSpec, KernelDef};
    use crate::{KernelArg, NdRange};
    use fluidicl_hetsim::KernelProfile;

    fn scale_kernel() -> Arc<KernelDef> {
        Arc::new(KernelDef::new(
            "scale",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("unused", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
            ],
            KernelProfile::new("scale"),
            |item, _, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[i] = ins.get(0)[i] * 2.0;
            },
        ))
    }

    fn setup(n: usize) -> (Memory, Launch) {
        let mut mem = Memory::new();
        mem.install(BufferId(0), (1..=n).map(|i| i as f32).collect());
        mem.install(BufferId(1), vec![0.5; n]);
        mem.alloc(BufferId(2), n);
        let launch = Launch::new(
            scale_kernel(),
            NdRange::d1(n, 4).unwrap(),
            vec![
                KernelArg::Buffer(BufferId(0)),
                KernelArg::Buffer(BufferId(1)),
                KernelArg::Buffer(BufferId(2)),
            ],
        );
        (mem, launch)
    }

    #[test]
    fn shadowed_execution_matches_plain_execution() {
        let (mut shadowed, launch) = setup(16);
        let (mut plain, _) = setup(16);
        execute_groups_shadowed(&launch, &mut shadowed, 0, 4).unwrap();
        execute_groups(&launch, &mut plain, 0, 4).unwrap();
        assert_eq!(
            shadowed.get(BufferId(2)).unwrap(),
            plain.get(BufferId(2)).unwrap()
        );
    }

    #[test]
    fn records_per_group_write_footprints() {
        let (mut mem, launch) = setup(16);
        let rec = execute_groups_shadowed(&launch, &mut mem, 1, 3).unwrap();
        assert_eq!(rec.groups.len(), 2);
        let (flat, maps) = &rec.groups[0];
        assert_eq!(*flat, 1);
        // Group 1 covers items 4..8 of the single output buffer.
        assert_eq!(
            maps[0].keys().copied().collect::<Vec<_>>(),
            vec![4, 5, 6, 7]
        );
        assert_eq!(maps[0][&4], 10.0f32.to_bits());
        assert_eq!(rec.total_writes(0).len(), 8);
    }

    #[test]
    fn tracks_which_inputs_were_read() {
        let (mut mem, launch) = setup(8);
        let rec = execute_groups_shadowed(&launch, &mut mem, 0, 2).unwrap();
        assert_eq!(rec.inputs_read, vec![true, false]);
    }

    #[test]
    fn rewriting_the_same_value_is_invisible() {
        // Documented caveat: the shadow diff, like diff-merge, cannot see a
        // write that stores the existing value. Sentinel poisoning in
        // fluidicl-check is what makes real kernels' writes visible.
        let k = Arc::new(KernelDef::new(
            "noopwrite",
            vec![ArgSpec::new("dst", ArgRole::InOut)],
            KernelProfile::new("noopwrite"),
            |item, _, _, outs| {
                let i = item.global_linear();
                let v = outs.read(0)[i];
                outs.at(0)[i] = v;
            },
        ));
        let mut mem = Memory::new();
        mem.install(BufferId(0), vec![3.0; 4]);
        let launch = Launch::new(
            k,
            NdRange::d1(4, 4).unwrap(),
            vec![KernelArg::Buffer(BufferId(0))],
        );
        let rec = execute_groups_shadowed(&launch, &mut mem, 0, 1).unwrap();
        assert!(rec.groups[0].1[0].is_empty());
    }

    #[test]
    fn out_of_range_is_rejected() {
        let (mut mem, launch) = setup(16);
        assert!(matches!(
            execute_groups_shadowed(&launch, &mut mem, 0, 9),
            Err(ClError::InvalidNdRange(_))
        ));
    }
}
