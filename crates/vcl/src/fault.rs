//! Seeded, deterministic fault injection.
//!
//! FluidiCL's in-order data-before-status protocol makes mid-kernel recovery
//! possible: the status watermark proves exactly which work-groups have
//! durable results on which device. This module supplies the *faults* that
//! recovery machinery is tested against — device loss, queue stalls,
//! transient transfer failures and corrupted messages — derived entirely
//! from a seed, so the same [`FaultPlan`] always produces the same fault at
//! the same operation index and every failure is replayable bit-for-bit.
//!
//! The injector is a passive oracle: the runtimes *ask* it what happens to
//! each operation ([`FaultInjector::kill_gpu_wave`],
//! [`FaultInjector::transfer_fate`], …) and implement the consequences
//! themselves. Payload integrity is checked with [`payload_checksum`], a
//! FNV-1a hash over the transferred bit patterns.

use fluidicl_des::SplitMix64;

use crate::DeviceKind;

/// The fault classes the injector can produce, one per plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The GPU dies mid-kernel: a launched wave never completes.
    GpuLost,
    /// The CPU dies mid-kernel: a launched subkernel never completes.
    CpuLost,
    /// An enqueued host-to-device transfer never completes (queue stall).
    TransferStall,
    /// A transfer fails transiently and succeeds when retried.
    TransferTransient,
    /// A transfer's payload is delivered with flipped bits.
    CorruptPayload,
    /// A transfer's status message is delivered corrupted.
    CorruptStatus,
    /// Both devices die (unrecoverable): GPU and CPU kill points both fire.
    DoubleLoss,
}

impl FaultKind {
    /// Every fault kind, in sweep order.
    pub fn all() -> [FaultKind; 7] {
        [
            FaultKind::GpuLost,
            FaultKind::CpuLost,
            FaultKind::TransferStall,
            FaultKind::TransferTransient,
            FaultKind::CorruptPayload,
            FaultKind::CorruptStatus,
            FaultKind::DoubleLoss,
        ]
    }

    /// Stable lowercase name (used in sweep reports and JSON summaries).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::GpuLost => "gpu-lost",
            FaultKind::CpuLost => "cpu-lost",
            FaultKind::TransferStall => "transfer-stall",
            FaultKind::TransferTransient => "transfer-transient",
            FaultKind::CorruptPayload => "corrupt-payload",
            FaultKind::CorruptStatus => "corrupt-status",
            FaultKind::DoubleLoss => "double-loss",
        }
    }
}

/// A seeded fault scenario: one fault kind plus the seed that fixes *where*
/// it strikes. Equal plans reproduce identical fault schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Seed fixing the operation index (and corruption site) of the fault.
    pub seed: u64,
}

impl FaultPlan {
    /// Creates a plan.
    pub fn new(kind: FaultKind, seed: u64) -> Self {
        FaultPlan { kind, seed }
    }
}

/// What the injector decides for one host↔device transfer attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferFate {
    /// The transfer completes normally.
    Deliver,
    /// The transfer never completes; only a watchdog deadline detects it.
    Stall,
    /// The transfer fails and is worth retrying after a backoff.
    TransientFail,
    /// Delivered, but the payload has flipped bits (checksum mismatch).
    CorruptPayload,
    /// Delivered, but the status message is corrupt (checksum mismatch).
    CorruptStatus,
}

/// Deterministic fault oracle for one run.
///
/// The injector counts the operations it is consulted about (GPU waves, CPU
/// subkernels, first-attempt transfers) and fires its fault when the counter
/// for the plan's kind reaches a seed-derived trigger index. Device-loss
/// verdicts are sticky: once a device is declared dead every later operation
/// on it fails too, exactly like real hardware.
///
/// # Examples
///
/// ```
/// use fluidicl_vcl::{FaultInjector, FaultKind, FaultPlan, TransferFate};
///
/// let mut a = FaultInjector::new(FaultPlan::new(FaultKind::TransferStall, 7));
/// let mut b = FaultInjector::new(FaultPlan::new(FaultKind::TransferStall, 7));
/// let fates: Vec<TransferFate> = (0..4).map(|_| a.transfer_fate(1)).collect();
/// assert_eq!(fates, (0..4).map(|_| b.transfer_fate(1)).collect::<Vec<_>>());
/// assert!(fates.contains(&TransferFate::Stall));
/// ```
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Operation index (within the kind's own counter) at which the fault
    /// fires.
    trigger: u64,
    /// How many consecutive attempts of the triggered transfer fail before a
    /// retry succeeds (transient faults only).
    transient_failures: u32,
    /// Seed material for picking the corruption site and bit flip.
    corrupt_salt: u64,
    gpu_ops: u64,
    cpu_ops: u64,
    transfer_ops: u64,
    gpu_dead: bool,
    cpu_dead: bool,
    fired: bool,
}

impl FaultInjector {
    /// Derives the full fault schedule from the plan's seed.
    pub fn new(plan: FaultPlan) -> Self {
        let mut rng = SplitMix64::new(plan.seed ^ 0xFA17_5EED_0000_0001);
        let trigger = rng.range_u64(0, 3);
        let transient_failures = 1 + rng.range_u64(0, 2) as u32;
        let corrupt_salt = rng.next_u64();
        FaultInjector {
            plan,
            trigger,
            transient_failures,
            corrupt_salt,
            gpu_ops: 0,
            cpu_ops: 0,
            transfer_ops: 0,
            gpu_dead: false,
            cpu_dead: false,
            fired: false,
        }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Whether the planned fault has fired yet.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Whether `device` has been declared dead by an earlier verdict.
    pub fn device_lost(&self, device: DeviceKind) -> bool {
        match device {
            DeviceKind::Gpu => self.gpu_dead,
            DeviceKind::Cpu => self.cpu_dead,
        }
    }

    /// Consulted once per launched GPU wave: `true` means the wave (and the
    /// GPU with it) dies — it will never report completion.
    pub fn kill_gpu_wave(&mut self) -> bool {
        if !matches!(self.plan.kind, FaultKind::GpuLost | FaultKind::DoubleLoss) {
            return false;
        }
        if self.gpu_dead {
            return true;
        }
        let op = self.gpu_ops;
        self.gpu_ops += 1;
        if op == self.trigger {
            self.gpu_dead = true;
            self.fired = true;
        }
        self.gpu_dead
    }

    /// Consulted once per launched CPU subkernel: `true` means the subkernel
    /// (and the CPU with it) dies — it will never report completion.
    pub fn kill_cpu_subkernel(&mut self) -> bool {
        if !matches!(self.plan.kind, FaultKind::CpuLost | FaultKind::DoubleLoss) {
            return false;
        }
        if self.cpu_dead {
            return true;
        }
        let op = self.cpu_ops;
        self.cpu_ops += 1;
        if op == self.trigger {
            self.cpu_dead = true;
            self.fired = true;
        }
        self.cpu_dead
    }

    /// Consulted once per transfer attempt. `attempt` is 1-based: attempt 1
    /// advances the first-attempt counter (and may trigger the fault);
    /// attempts > 1 are retries/resends of the *triggered* transfer — a
    /// transient fault keeps failing until `attempt` exceeds its seed-derived
    /// failure count, while corrupt messages always deliver cleanly when
    /// resent.
    pub fn transfer_fate(&mut self, attempt: u32) -> TransferFate {
        if !matches!(
            self.plan.kind,
            FaultKind::TransferStall
                | FaultKind::TransferTransient
                | FaultKind::CorruptPayload
                | FaultKind::CorruptStatus
        ) {
            return TransferFate::Deliver;
        }
        if attempt > 1 {
            if self.plan.kind == FaultKind::TransferTransient && attempt <= self.transient_failures
            {
                return TransferFate::TransientFail;
            }
            return TransferFate::Deliver;
        }
        let op = self.transfer_ops;
        self.transfer_ops += 1;
        if op != self.trigger {
            return TransferFate::Deliver;
        }
        self.fired = true;
        match self.plan.kind {
            FaultKind::TransferStall => TransferFate::Stall,
            FaultKind::TransferTransient => TransferFate::TransientFail,
            FaultKind::CorruptPayload => TransferFate::CorruptPayload,
            FaultKind::CorruptStatus => TransferFate::CorruptStatus,
            _ => TransferFate::Deliver,
        }
    }

    /// Element index the corruption hits in a payload of `len` elements.
    pub fn corrupt_index(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (self.corrupt_salt as usize) % len
    }

    /// Nonzero bit mask XORed into the corrupted element's bit pattern.
    pub fn flip_mask(&self) -> u32 {
        1u32 << ((self.corrupt_salt >> 32) % 32)
    }
}

/// FNV-1a 64 checksum over the bit patterns of a payload — the per-transfer
/// integrity check that detects corrupted messages.
pub fn payload_checksum(data: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_same_schedule() {
        for kind in FaultKind::all() {
            let mut a = FaultInjector::new(FaultPlan::new(kind, 99));
            let mut b = FaultInjector::new(FaultPlan::new(kind, 99));
            for _ in 0..6 {
                assert_eq!(a.kill_gpu_wave(), b.kill_gpu_wave());
                assert_eq!(a.kill_cpu_subkernel(), b.kill_cpu_subkernel());
                assert_eq!(a.transfer_fate(1), b.transfer_fate(1));
            }
            assert_eq!(a.fired(), b.fired());
        }
    }

    #[test]
    fn gpu_loss_is_sticky_and_fires_within_the_trigger_window() {
        let mut inj = FaultInjector::new(FaultPlan::new(FaultKind::GpuLost, 3));
        let verdicts: Vec<bool> = (0..6).map(|_| inj.kill_gpu_wave()).collect();
        let first = verdicts
            .iter()
            .position(|&v| v)
            .expect("fault fires within 3 waves");
        assert!(first < 3);
        assert!(verdicts[first..].iter().all(|&v| v), "loss is permanent");
        assert!(inj.device_lost(DeviceKind::Gpu));
        assert!(!inj.device_lost(DeviceKind::Cpu));
        // A GPU-loss plan never touches CPU subkernels or transfers.
        assert!(!inj.kill_cpu_subkernel());
        assert_eq!(inj.transfer_fate(1), TransferFate::Deliver);
    }

    #[test]
    fn double_loss_kills_both_devices() {
        let mut inj = FaultInjector::new(FaultPlan::new(FaultKind::DoubleLoss, 17));
        for _ in 0..4 {
            inj.kill_gpu_wave();
            inj.kill_cpu_subkernel();
        }
        assert!(inj.device_lost(DeviceKind::Gpu));
        assert!(inj.device_lost(DeviceKind::Cpu));
    }

    #[test]
    fn transient_fault_recovers_within_bounded_retries() {
        let mut inj = FaultInjector::new(FaultPlan::new(FaultKind::TransferTransient, 5));
        // Drive first attempts until the fault fires.
        let mut fate = TransferFate::Deliver;
        for _ in 0..4 {
            fate = inj.transfer_fate(1);
            if fate != TransferFate::Deliver {
                break;
            }
        }
        assert_eq!(fate, TransferFate::TransientFail);
        // Retries: fails at most once more (failure count is 1..=2), then
        // delivers.
        let mut attempt = 2;
        while inj.transfer_fate(attempt) == TransferFate::TransientFail {
            attempt += 1;
            assert!(attempt <= 3, "transient fault must clear by attempt 3");
        }
        assert_eq!(inj.transfer_fate(attempt), TransferFate::Deliver);
    }

    #[test]
    fn corrupt_payload_delivers_cleanly_on_resend() {
        let mut inj = FaultInjector::new(FaultPlan::new(FaultKind::CorruptPayload, 11));
        let mut fate = TransferFate::Deliver;
        for _ in 0..4 {
            fate = inj.transfer_fate(1);
            if fate != TransferFate::Deliver {
                break;
            }
        }
        assert_eq!(fate, TransferFate::CorruptPayload);
        assert_eq!(inj.transfer_fate(2), TransferFate::Deliver);
    }

    #[test]
    fn checksum_detects_a_single_bit_flip() {
        let inj = FaultInjector::new(FaultPlan::new(FaultKind::CorruptPayload, 23));
        let payload: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        let clean = payload_checksum(&payload);
        let mut corrupted = payload.clone();
        let i = inj.corrupt_index(corrupted.len());
        corrupted[i] = f32::from_bits(corrupted[i].to_bits() ^ inj.flip_mask());
        assert_ne!(clean, payload_checksum(&corrupted));
        assert_eq!(clean, payload_checksum(&payload), "checksum is pure");
    }

    #[test]
    fn corruption_site_is_in_bounds_and_mask_nonzero() {
        for seed in 0..32 {
            let inj = FaultInjector::new(FaultPlan::new(FaultKind::CorruptStatus, seed));
            assert!(inj.corrupt_index(7) < 7);
            assert_eq!(inj.corrupt_index(0), 0, "empty payloads degrade to 0");
            assert_ne!(inj.flip_mask(), 0);
        }
    }
}
