//! The host-program driver interface.
//!
//! Every runtime in this reproduction — single-device OpenCL, FluidiCL,
//! static partitioning, SOCL — exposes the same small API subset the paper's
//! applications use (`clCreateBuffer`, `clEnqueueWriteBuffer`,
//! `clEnqueueNDRangeKernel`, `clEnqueueReadBuffer`; paper §7). Host programs
//! in `fluidicl-polybench` are written once against [`ClDriver`] and run
//! unmodified on every runtime, mirroring how FluidiCL swaps in for a vendor
//! runtime via find-and-replace (paper §5).

use fluidicl_des::SimDuration;

use crate::{BufferId, ClResult, KernelArg, NdRange};

/// Which physical device a single-device context targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    /// The multicore CPU OpenCL device.
    Cpu,
    /// The discrete GPU.
    Gpu,
}

impl DeviceKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Cpu => "CPU",
            DeviceKind::Gpu => "GPU",
        }
    }

    /// The other device of the pair — the survivor when this one is lost.
    pub fn other(self) -> DeviceKind {
        match self {
            DeviceKind::Cpu => DeviceKind::Gpu,
            DeviceKind::Gpu => DeviceKind::Cpu,
        }
    }
}

/// The OpenCL-subset driver interface host programs are written against.
///
/// All operations are *blocking* in virtual time, matching FluidiCL's
/// current implementation (paper §7); internally a runtime is free to
/// overlap work on its own timeline, and `elapsed` reports the final virtual
/// clock.
pub trait ClDriver {
    /// Creates a buffer of `len` `f32` elements in every address space this
    /// runtime manages, returning a handle valid across them.
    fn create_buffer(&mut self, len: usize) -> BufferId;

    /// Writes host data into the buffer (on every device the runtime
    /// manages — FluidiCL duplicates `clEnqueueWriteBuffer` to both devices,
    /// paper §4.1).
    ///
    /// # Errors
    ///
    /// Fails if the handle is unknown or the length differs.
    fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> ClResult<()>;

    /// Launches a kernel over `ndrange` with `args`.
    ///
    /// # Errors
    ///
    /// Fails if the kernel is unknown or the arguments mismatch.
    fn enqueue_kernel(
        &mut self,
        kernel: &str,
        ndrange: NdRange,
        args: &[KernelArg],
    ) -> ClResult<()>;

    /// Reads the up-to-date content of a buffer back to the host.
    ///
    /// # Errors
    ///
    /// Fails if the handle is unknown.
    fn read_buffer(&mut self, id: BufferId) -> ClResult<Vec<f32>>;

    /// Total virtual time consumed so far (the paper's "total running time",
    /// which includes all data-transfer overheads).
    fn elapsed(&self) -> SimDuration;

    /// Virtual durations of the kernel launches issued so far, in order
    /// (used by per-kernel tables such as the paper's Table 1).
    fn kernel_times(&self) -> Vec<(String, SimDuration)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_kind_names() {
        assert_eq!(DeviceKind::Cpu.name(), "CPU");
        assert_eq!(DeviceKind::Gpu.name(), "GPU");
        assert!(DeviceKind::Cpu < DeviceKind::Gpu);
    }

    #[test]
    fn other_is_an_involution() {
        assert_eq!(DeviceKind::Cpu.other(), DeviceKind::Gpu);
        assert_eq!(DeviceKind::Gpu.other(), DeviceKind::Cpu);
        for d in [DeviceKind::Cpu, DeviceKind::Gpu] {
            assert_eq!(d.other().other(), d);
        }
    }
}
