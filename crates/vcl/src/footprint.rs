//! Static access-footprint analysis.
//!
//! FluidiCL's correctness tooling needs to know *which elements* a
//! work-group range reads and writes without replaying the kernel body —
//! the race detector in `fluidicl-check` consults footprints for every
//! wave, subkernel and merge of a trace, and the kernel-graph scheduler
//! on the roadmap will consume them as buffer read/write-set DAG edges.
//! An [`AccessPattern`] declared on an [`ArgSpec`](crate::ArgSpec) maps a
//! work-item's coordinates to the element ranges it touches; the
//! footprint of a flattened work-group range is the union of its items'
//! ranges, computed purely from the launch geometry (the kernel body
//! never runs). The sanitizer's shadow write-maps
//! ([`execute_groups_shadowed`](crate::execute_groups_shadowed)) are the
//! ground truth these declarations are validated against: a declared
//! footprint must equal — or conservatively contain — the observed one.

use std::fmt;
use std::sync::Arc;

use crate::dirty::DirtyRanges;
use crate::kernel::{ArgRole, KernelDef, Scalars};
use crate::ndrange::{for_each_item_in_group, NdRange, WorkItem};

/// Per-item range function of a [`AccessPattern::Custom`] declaration:
/// given one work-item, the launch scalars and the buffer length, the
/// half-open element ranges the item touches.
pub type RangeFn = dyn Fn(&WorkItem, &Scalars, usize) -> Vec<(usize, usize)> + Send + Sync;

/// Declared element-access shape of one buffer argument, per work-item.
///
/// Patterns describe *writes* for `Out` arguments, *reads* for `In`
/// arguments and both for `InOut` (each item reads and writes the same
/// elements). Declarations may be conservative: a superset of the real
/// footprint is sound (it only widens what the race detector considers
/// touched), a subset is a bug the footprint validation sweep catches.
#[derive(Clone)]
pub enum AccessPattern {
    /// One element at the work-item's flattened global id
    /// ([`WorkItem::global_linear`]).
    Element,
    /// Row `global[dim]` of a row-major matrix whose row width is scalar
    /// argument `width_scalar`: elements `[g*w, (g+1)*w)`.
    Row {
        /// Global-id dimension selecting the row.
        dim: usize,
        /// Scalar-argument index holding the row width.
        width_scalar: usize,
    },
    /// Column `global[dim]` of a row-major matrix whose row width is
    /// scalar argument `width_scalar`: elements `g + k*w` for every row
    /// `k` of the buffer.
    Col {
        /// Global-id dimension selecting the column.
        dim: usize,
        /// Scalar-argument index holding the row width.
        width_scalar: usize,
    },
    /// Every element of the buffer (the conservative catch-all for
    /// gather-style reads).
    WholeBuffer,
    /// Arbitrary per-item ranges for shapes the fixed vocabulary cannot
    /// express (e.g. CORR's triangular row+column write).
    Custom(Arc<RangeFn>),
}

impl AccessPattern {
    /// Builds a [`AccessPattern::Custom`] from a per-item range closure.
    pub fn custom(
        f: impl Fn(&WorkItem, &Scalars, usize) -> Vec<(usize, usize)> + Send + Sync + 'static,
    ) -> Self {
        AccessPattern::Custom(Arc::new(f))
    }

    /// Short stable label for machine-readable kernel summaries.
    pub fn label(&self) -> &'static str {
        match self {
            AccessPattern::Element => "element",
            AccessPattern::Row { .. } => "row",
            AccessPattern::Col { .. } => "col",
            AccessPattern::WholeBuffer => "whole-buffer",
            AccessPattern::Custom(_) => "custom",
        }
    }

    /// The element footprint of flattened work-groups `[from, to)` of a
    /// launch with geometry `nd` and scalar arguments `scalars`, for a
    /// buffer of `buf_len` elements. Ranges are clipped to the buffer.
    ///
    /// The computation is symbolic in the sense that the kernel body is
    /// never executed: only the launch geometry is walked.
    ///
    /// # Panics
    ///
    /// Panics if `[from, to)` exceeds the group count, or if a
    /// `Row`/`Col` pattern names a scalar index that is absent or not a
    /// `usize` (the same contract as the kernel body reading it).
    pub fn footprint(
        &self,
        nd: &NdRange,
        scalars: &Scalars,
        buf_len: usize,
        from: u64,
        to: u64,
    ) -> DirtyRanges {
        if from >= to || buf_len == 0 {
            return DirtyRanges::empty();
        }
        if let AccessPattern::WholeBuffer = self {
            return DirtyRanges::full(buf_len);
        }
        // Row/Col footprints depend only on the *set* of distinct index
        // values along their dimension, not on the per-item multiplicity:
        // dedup the keys first, so a 2-D launch emits one range per
        // distinct row/column instead of one per work item (a Col pattern
        // otherwise pushes `buf_len / w` singletons for every item, which
        // made whole-launch footprints quadratic in the matrix edge).
        if let AccessPattern::Row { dim, width_scalar } | AccessPattern::Col { dim, width_scalar } =
            self
        {
            let w = scalars.usize(*width_scalar);
            let mut keys: Vec<usize> = Vec::new();
            for flat in from..to {
                let group = nd.unflatten_group(flat);
                for_each_item_in_group(nd, group, |item| keys.push(item.global[*dim]));
            }
            keys.sort_unstable();
            keys.dedup();
            let mut ranges: Vec<(usize, usize)> = Vec::new();
            let mut push = |s: usize, e: usize| {
                let e = e.min(buf_len);
                if s < e {
                    ranges.push((s, e));
                }
            };
            for key in keys {
                match self {
                    AccessPattern::Row { .. } => push(key * w, (key + 1) * w),
                    AccessPattern::Col { .. } => {
                        if w > 0 {
                            for k in 0..buf_len.div_ceil(w) {
                                push(key + k * w, key + k * w + 1);
                            }
                        }
                    }
                    _ => unreachable!("matched Row/Col above"),
                }
            }
            return DirtyRanges::from_ranges(ranges);
        }
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut push = |s: usize, e: usize| {
            let e = e.min(buf_len);
            if s < e {
                ranges.push((s, e));
            }
        };
        for flat in from..to {
            let group = nd.unflatten_group(flat);
            for_each_item_in_group(nd, group, |item| match self {
                AccessPattern::Element => {
                    let i = item.global_linear();
                    push(i, i + 1);
                }
                AccessPattern::Custom(f) => {
                    for (s, e) in f(item, scalars, buf_len) {
                        push(s, e);
                    }
                }
                AccessPattern::Row { .. } | AccessPattern::Col { .. } => {
                    unreachable!("handled above")
                }
                AccessPattern::WholeBuffer => unreachable!("handled above"),
            });
        }
        DirtyRanges::from_ranges(ranges)
    }
}

impl fmt::Debug for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPattern::Element => write!(f, "Element"),
            AccessPattern::Row { dim, width_scalar } => f
                .debug_struct("Row")
                .field("dim", dim)
                .field("width_scalar", width_scalar)
                .finish(),
            AccessPattern::Col { dim, width_scalar } => f
                .debug_struct("Col")
                .field("dim", dim)
                .field("width_scalar", width_scalar)
                .finish(),
            AccessPattern::WholeBuffer => write!(f, "WholeBuffer"),
            AccessPattern::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl PartialEq for AccessPattern {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AccessPattern::Element, AccessPattern::Element)
            | (AccessPattern::WholeBuffer, AccessPattern::WholeBuffer) => true,
            (
                AccessPattern::Row {
                    dim: a,
                    width_scalar: b,
                },
                AccessPattern::Row {
                    dim: c,
                    width_scalar: d,
                },
            )
            | (
                AccessPattern::Col {
                    dim: a,
                    width_scalar: b,
                },
                AccessPattern::Col {
                    dim: c,
                    width_scalar: d,
                },
            ) => a == c && b == d,
            // Closures have no structural equality; pointer identity is the
            // honest approximation (reflexive, symmetric, transitive).
            (AccessPattern::Custom(a), AccessPattern::Custom(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for AccessPattern {}

impl KernelDef {
    /// Whether every output (`Out`/`InOut`) argument declares an
    /// [`AccessPattern`] — the precondition for symbolic write footprints.
    pub fn has_write_footprints(&self) -> bool {
        self.args()
            .iter()
            .filter(|a| a.role.is_output())
            .all(|a| a.access.is_some())
    }

    /// Symbolic *write* footprints of flattened work-groups `[from, to)`:
    /// one [`DirtyRanges`] per output argument, in signature order among
    /// `Out`/`InOut` arguments, against buffer lengths `out_lens`.
    ///
    /// Returns `None` if any output argument lacks a declaration.
    pub fn write_footprints(
        &self,
        nd: &NdRange,
        scalars: &Scalars,
        out_lens: &[usize],
        from: u64,
        to: u64,
    ) -> Option<Vec<DirtyRanges>> {
        let outs: Vec<&crate::kernel::ArgSpec> =
            self.args().iter().filter(|a| a.role.is_output()).collect();
        debug_assert_eq!(outs.len(), out_lens.len(), "one length per output arg");
        outs.iter()
            .zip(out_lens)
            .map(|(a, &len)| {
                a.access
                    .as_ref()
                    .map(|p| p.footprint(nd, scalars, len, from, to))
            })
            .collect()
    }

    /// Symbolic *read* footprints of flattened work-groups `[from, to)`:
    /// one [`DirtyRanges`] per `In` argument, in signature order, against
    /// buffer lengths `in_lens`. `InOut` reads are covered by
    /// [`KernelDef::write_footprints`] (each item reads what it writes).
    ///
    /// Returns `None` if any `In` argument lacks a declaration.
    pub fn read_footprints(
        &self,
        nd: &NdRange,
        scalars: &Scalars,
        in_lens: &[usize],
        from: u64,
        to: u64,
    ) -> Option<Vec<DirtyRanges>> {
        let ins: Vec<&crate::kernel::ArgSpec> = self
            .args()
            .iter()
            .filter(|a| a.role == ArgRole::In)
            .collect();
        debug_assert_eq!(ins.len(), in_lens.len(), "one length per input arg");
        ins.iter()
            .zip(in_lens)
            .map(|(a, &len)| {
                a.access
                    .as_ref()
                    .map(|p| p.footprint(nd, scalars, len, from, to))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArgSpec, KernelArg, KernelDef};
    use fluidicl_hetsim::KernelProfile;

    fn scalars_n(n: usize) -> Scalars {
        Scalars::from_args(
            "test",
            &[KernelArg::Usize(n)],
            &[ArgSpec::new("n", ArgRole::Scalar)],
        )
    }

    #[test]
    fn element_footprint_is_the_item_range() {
        let nd = NdRange::d1(16, 4).unwrap();
        let fp = AccessPattern::Element.footprint(&nd, &Scalars::default(), 16, 1, 3);
        assert_eq!(fp.as_slice(), &[(4, 12)]);
        assert!(AccessPattern::Element
            .footprint(&nd, &Scalars::default(), 16, 2, 2)
            .is_empty());
    }

    #[test]
    fn element_footprint_2d_follows_global_linear() {
        // 4x4 items in 2x2 groups: group 1 covers globals (2..4, 0..2),
        // i.e. linear elements {2, 3, 6, 7}.
        let nd = NdRange::d2(4, 4, 2, 2).unwrap();
        let fp = AccessPattern::Element.footprint(&nd, &Scalars::default(), 16, 1, 2);
        assert_eq!(fp.as_slice(), &[(2, 4), (6, 8)]);
    }

    #[test]
    fn row_and_col_footprints() {
        let nd = NdRange::d1(8, 2).unwrap();
        let s = scalars_n(8);
        let row = AccessPattern::Row {
            dim: 0,
            width_scalar: 0,
        };
        // Groups [1, 2): items 2..4 -> rows 2..4 -> elements 16..32.
        assert_eq!(row.footprint(&nd, &s, 64, 1, 2).as_slice(), &[(16, 32)]);
        let col = AccessPattern::Col {
            dim: 0,
            width_scalar: 0,
        };
        // Columns 2 and 3 of an 8x8 matrix: {2,3} + 8k.
        let fp = col.footprint(&nd, &s, 64, 1, 2);
        assert_eq!(fp.element_count(), 16);
        assert!(fp.contains(2) && fp.contains(3) && fp.contains(10));
        assert!(!fp.contains(4));
    }

    #[test]
    fn whole_buffer_and_clipping() {
        let nd = NdRange::d1(8, 2).unwrap();
        let s = scalars_n(8);
        let fp = AccessPattern::WholeBuffer.footprint(&nd, &s, 10, 0, 1);
        assert!(fp.is_full(10));
        // A row pattern over a short buffer clips to the buffer.
        let row = AccessPattern::Row {
            dim: 0,
            width_scalar: 0,
        };
        assert_eq!(row.footprint(&nd, &s, 20, 1, 2).as_slice(), &[(16, 20)]);
        assert!(row.footprint(&nd, &s, 0, 0, 4).is_empty());
    }

    #[test]
    fn custom_footprint_runs_the_range_fn() {
        let nd = NdRange::d1(4, 2).unwrap();
        let p = AccessPattern::custom(|item, _, len| {
            let i = item.global[0];
            vec![(i, i + 1), (len - 1 - i, len - i)]
        });
        let fp = p.footprint(&nd, &Scalars::default(), 10, 0, 1);
        assert_eq!(fp.as_slice(), &[(0, 2), (8, 10)]);
    }

    #[test]
    fn pattern_equality_and_labels() {
        assert_eq!(AccessPattern::Element, AccessPattern::Element);
        assert_ne!(AccessPattern::Element, AccessPattern::WholeBuffer);
        assert_eq!(
            AccessPattern::Row {
                dim: 0,
                width_scalar: 1
            },
            AccessPattern::Row {
                dim: 0,
                width_scalar: 1
            }
        );
        assert_ne!(
            AccessPattern::Row {
                dim: 0,
                width_scalar: 1
            },
            AccessPattern::Col {
                dim: 0,
                width_scalar: 1
            }
        );
        let c = AccessPattern::custom(|_, _, _| vec![]);
        assert_eq!(c, c.clone(), "custom compares by pointer identity");
        assert_ne!(c, AccessPattern::custom(|_, _, _| vec![]));
        assert_eq!(c.label(), "custom");
        assert_eq!(AccessPattern::WholeBuffer.label(), "whole-buffer");
    }

    #[test]
    fn kernel_footprints_by_signature_order() {
        let k = KernelDef::new(
            "k",
            vec![
                ArgSpec::new("src", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("dst", ArgRole::Out).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            KernelProfile::new("k"),
            |_, _, _, _| {},
        );
        assert!(k.has_write_footprints());
        let nd = NdRange::d1(8, 2).unwrap();
        let s = scalars_n(8);
        let w = k.write_footprints(&nd, &s, &[8], 0, 2).unwrap();
        assert_eq!(w[0].as_slice(), &[(0, 4)]);
        let r = k.read_footprints(&nd, &s, &[8], 0, 4).unwrap();
        assert!(r[0].is_full(8));
    }

    #[test]
    fn missing_declaration_yields_none() {
        let k = KernelDef::new(
            "k",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
            ],
            KernelProfile::new("k"),
            |_, _, _, _| {},
        );
        assert!(!k.has_write_footprints());
        let nd = NdRange::d1(8, 2).unwrap();
        assert!(k
            .write_footprints(&nd, &Scalars::default(), &[8], 0, 2)
            .is_none());
        assert!(k
            .read_footprints(&nd, &Scalars::default(), &[8], 0, 2)
            .is_none());
    }
}
