//! Randomized property tests of the virtual OpenCL substrate: geometry
//! round-trips, covering slices, diff-merge algebra, and the partitioning
//! property the whole FluidiCL design rests on — executing disjoint
//! work-group ranges composes to the full-kernel result. Cases come from
//! the in-tree deterministic generator so failures replay bit-for-bit.

use std::sync::Arc;

use fluidicl_des::SplitMix64;
use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::exec::{execute_all, execute_groups, Launch};
use fluidicl_vcl::{diff_merge, ArgRole, ArgSpec, BufferId, KernelArg, KernelDef, Memory, NdRange};

const CASES: u64 = 64;

fn arb_ndrange(rng: &mut SplitMix64) -> NdRange {
    match rng.range_u64(0, 3) {
        0 => {
            let g = rng.range_usize(1, 40);
            let l = rng.range_usize(1, 16);
            NdRange::d1(g * l, l).expect("valid 1d")
        }
        1 => {
            let (gx, gy) = (rng.range_usize(1, 8), rng.range_usize(1, 8));
            let (lx, ly) = (rng.range_usize(1, 6), rng.range_usize(1, 6));
            NdRange::d2(gx * lx, gy * ly, lx, ly).expect("valid 2d")
        }
        _ => {
            let (gx, gy, gz) = (
                rng.range_usize(1, 4),
                rng.range_usize(1, 4),
                rng.range_usize(1, 4),
            );
            let (lx, ly, lz) = (
                rng.range_usize(1, 3),
                rng.range_usize(1, 3),
                rng.range_usize(1, 3),
            );
            NdRange::d3(gx * lx, gy * ly, gz * lz, lx, ly, lz).expect("valid 3d")
        }
    }
}

fn stamp_kernel() -> Arc<KernelDef> {
    Arc::new(KernelDef::new(
        "stamp",
        vec![
            ArgSpec::new("src", ArgRole::In),
            ArgSpec::new("dst", ArgRole::Out),
        ],
        KernelProfile::new("stamp"),
        |item, _, ins, outs| {
            let i = item.global_linear();
            outs.at(0)[i] = ins.get(0)[i] * 2.0 + i as f32;
        },
    ))
}

/// Flatten/unflatten is a bijection over the whole group space.
#[test]
fn flatten_roundtrip() {
    let mut rng = SplitMix64::new(0x7C51);
    for _ in 0..CASES {
        let nd = arb_ndrange(&mut rng);
        for flat in 0..nd.num_groups() {
            let coords = nd.unflatten_group(flat);
            assert_eq!(nd.flatten_group(coords), flat);
            let g = nd.groups();
            assert!(coords[0] < g[0] && coords[1] < g[1] && coords[2] < g[2]);
        }
    }
}

/// Flattening is dense: ids are exactly 0..num_groups.
#[test]
fn flattening_is_dense() {
    let mut rng = SplitMix64::new(0x7C52);
    for _ in 0..CASES {
        let nd = arb_ndrange(&mut rng);
        let g = nd.groups();
        let mut seen = vec![false; nd.num_groups() as usize];
        for z in 0..g[2] {
            for y in 0..g[1] {
                for x in 0..g[0] {
                    let flat = nd.flatten_group([x, y, z]) as usize;
                    assert!(!seen[flat], "duplicate flattened id");
                    seen[flat] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}

/// The §5.2 covering slice contains every requested flattened id.
#[test]
fn covering_slice_contains_range() {
    let mut rng = SplitMix64::new(0x7C53);
    for _ in 0..CASES {
        let nd = arb_ndrange(&mut rng);
        let split = rng.next_f64();
        let width = rng.next_f64();
        let total = nd.num_groups();
        let start = ((total - 1) as f64 * split) as u64;
        let len = (((total - start) as f64 * width) as u64).max(1);
        let end = (start + len).min(total);
        let (off, cnt) = nd.covering_slice(start, end);
        let mut covered = std::collections::HashSet::new();
        for z in off[2]..off[2] + cnt[2] {
            for y in off[1]..off[1] + cnt[1] {
                for x in off[0]..off[0] + cnt[0] {
                    covered.insert(nd.flatten_group([x, y, z]));
                }
            }
        }
        for flat in start..end {
            assert!(covered.contains(&flat), "id {flat} not covered");
        }
        // The slice is itself contiguous in flattened space.
        let min = covered.iter().min().copied().expect("non-empty");
        let max = covered.iter().max().copied().expect("non-empty");
        assert_eq!(covered.len() as u64, max - min + 1);
    }
}

/// FluidiCL's partitioning axiom: executing [0, k) on one memory and
/// [k, N) on another, then diff-merging against the original, equals
/// executing everything on one device.
#[test]
fn partitioned_execution_plus_merge_equals_whole() {
    let mut rng = SplitMix64::new(0x7C54);
    for _ in 0..CASES {
        let nd = arb_ndrange(&mut rng);
        let frac = rng.next_f64();
        let items = nd.num_items() as usize;
        let src: Vec<f32> = (0..items).map(|i| (i % 13) as f32 - 6.0).collect();
        let kernel = stamp_kernel();
        let args = vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
        ];
        let launch = Launch::new(kernel, nd, args);

        // Whole-kernel reference.
        let mut whole = Memory::new();
        whole.install(BufferId(0), src.clone());
        whole.alloc(BufferId(1), items);
        execute_all(&launch, &mut whole).expect("whole run");
        let want = whole.get(BufferId(1)).expect("dst").to_vec();

        // Partitioned: GPU memory takes [0, k), CPU memory takes [k, N).
        let total = nd.num_groups();
        let k = ((total as f64) * frac).round() as u64;
        let mut gpu = Memory::new();
        gpu.install(BufferId(0), src.clone());
        gpu.alloc(BufferId(1), items);
        let mut cpu = Memory::new();
        cpu.install(BufferId(0), src);
        cpu.alloc(BufferId(1), items);
        let orig = gpu.get(BufferId(1)).expect("dst").to_vec();
        execute_groups(&launch, &mut gpu, 0, k).expect("gpu part");
        execute_groups(&launch, &mut cpu, k, total).expect("cpu part");
        let cpu_data = cpu.get(BufferId(1)).expect("dst").to_vec();
        diff_merge(gpu.get_mut(BufferId(1)).expect("dst"), &cpu_data, &orig);
        assert_eq!(gpu.get(BufferId(1)).expect("dst"), want.as_slice());
    }
}

/// Overlapping (duplicated) execution is harmless: both sides compute
/// identical values, so merging after overlap still matches.
#[test]
fn overlapping_execution_is_idempotent() {
    let mut rng = SplitMix64::new(0x7C55);
    for _ in 0..CASES {
        let nd = arb_ndrange(&mut rng);
        let lo = rng.next_f64();
        let hi = rng.next_f64();
        let total = nd.num_groups();
        let a = ((total as f64) * lo.min(hi)).round() as u64;
        let b = ((total as f64) * lo.max(hi)).round() as u64;
        let items = nd.num_items() as usize;
        let src: Vec<f32> = (0..items).map(|i| (i % 7) as f32).collect();
        let kernel = stamp_kernel();
        let args = vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
        ];
        let launch = Launch::new(kernel, nd, args);

        let mut whole = Memory::new();
        whole.install(BufferId(0), src.clone());
        whole.alloc(BufferId(1), items);
        execute_all(&launch, &mut whole).expect("whole run");
        let want = whole.get(BufferId(1)).expect("dst").to_vec();

        // GPU computes [0, b) and CPU computes [a, N): overlap is [a, b).
        let mut gpu = Memory::new();
        gpu.install(BufferId(0), src.clone());
        gpu.alloc(BufferId(1), items);
        let mut cpu = Memory::new();
        cpu.install(BufferId(0), src);
        cpu.alloc(BufferId(1), items);
        let orig = gpu.get(BufferId(1)).expect("dst").to_vec();
        execute_groups(&launch, &mut gpu, 0, b).expect("gpu part");
        execute_groups(&launch, &mut cpu, a, total).expect("cpu part");
        let cpu_data = cpu.get(BufferId(1)).expect("dst").to_vec();
        diff_merge(gpu.get_mut(BufferId(1)).expect("dst"), &cpu_data, &orig);
        assert_eq!(gpu.get(BufferId(1)).expect("dst"), want.as_slice());
    }
}

/// diff-merge algebra: merging an unmodified copy is the identity, and
/// merging is idempotent.
#[test]
fn diff_merge_identity_and_idempotence() {
    let mut rng = SplitMix64::new(0x7C56);
    for _ in 0..CASES {
        let len = rng.range_usize(1, 200);
        let data: Vec<f32> = (0..len).map(|_| rng.range_f32(-100.0, 100.0)).collect();
        let changes: Vec<bool> = (0..len).map(|_| rng.next_bool()).collect();
        let orig = data.clone();
        let mut gpu: Vec<f32> = data.iter().map(|v| v + 1.0).collect();
        // Identity: cpu == orig changes nothing.
        let before = gpu.clone();
        diff_merge(&mut gpu, &orig, &orig);
        assert_eq!(&gpu, &before);
        // Idempotence: applying the same merge twice equals once.
        let cpu: Vec<f32> = data
            .iter()
            .zip(changes.iter())
            .map(|(v, &c)| if c { v * 3.0 + 1.0 } else { *v })
            .collect();
        diff_merge(&mut gpu, &cpu, &orig);
        let once = gpu.clone();
        diff_merge(&mut gpu, &cpu, &orig);
        assert_eq!(gpu, once);
    }
}

/// Ranged merge over any superset of the true dirty set equals the full
/// merge bit-for-bit — the equivalence the dirty-range protocol rests on.
#[test]
fn ranged_merge_over_covering_ranges_equals_full_merge() {
    use fluidicl_vcl::{diff_merge_ranged, DirtyRanges};
    let mut rng = SplitMix64::new(0x7C57);
    for _ in 0..CASES {
        let len = rng.range_usize(1, 300);
        let orig: Vec<f32> = (0..len).map(|_| rng.range_f32(-50.0, 50.0)).collect();
        let cpu: Vec<f32> = orig
            .iter()
            .map(|v| if rng.next_bool() { v * 1.5 + 0.25 } else { *v })
            .collect();
        let gpu0: Vec<f32> = orig.iter().map(|v| v - 2.0).collect();

        let mut full = gpu0.clone();
        diff_merge(&mut full, &cpu, &orig);
        let want: Vec<u32> = full.iter().map(|v| v.to_bits()).collect();

        // The exact dirty set suffices...
        let exact = DirtyRanges::from_diff(&cpu, &orig);
        let mut ranged = gpu0.clone();
        diff_merge_ranged(&mut ranged, &cpu, &orig, &exact).expect("exact");
        assert_eq!(ranged.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), want);

        // ...and so does any superset (extra clean ranges merge nothing).
        let extra = DirtyRanges::from_ranges((0..rng.range_usize(1, 5)).filter_map(|_| {
            let s = rng.range_usize(0, len);
            let e = (s + rng.range_usize(1, 24)).min(len);
            (s < e).then_some((s, e))
        }));
        let superset = exact.union(&extra);
        let mut ranged = gpu0.clone();
        diff_merge_ranged(&mut ranged, &cpu, &orig, &superset).expect("superset");
        assert_eq!(ranged.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), want);
    }
}

/// Coalescing algebra: building from ranges is order-independent,
/// idempotent, and agrees with building from the individual indices.
#[test]
fn dirty_range_coalescing_is_canonical() {
    use fluidicl_vcl::DirtyRanges;
    let mut rng = SplitMix64::new(0x7C58);
    for _ in 0..CASES {
        let len = rng.range_usize(8, 400);
        let raw: Vec<(usize, usize)> = (0..rng.range_usize(1, 12))
            .filter_map(|_| {
                let s = rng.range_usize(0, len);
                let e = (s + rng.range_usize(1, 40)).min(len);
                (s < e).then_some((s, e))
            })
            .collect();
        let forward = DirtyRanges::from_ranges(raw.iter().copied());
        let backward = DirtyRanges::from_ranges(raw.iter().rev().copied());
        assert_eq!(forward, backward, "order must not matter");
        let again = DirtyRanges::from_ranges(forward.iter());
        assert_eq!(forward, again, "coalescing is idempotent");
        let from_idx = DirtyRanges::from_indices(raw.iter().flat_map(|&(s, e)| s..e));
        assert_eq!(forward, from_idx, "ranges and their indices agree");
        // Canonical form: sorted, non-overlapping, non-adjacent.
        let v: Vec<_> = forward.iter().collect();
        for w in v.windows(2) {
            assert!(w[0].1 < w[1].0, "ranges stay separated: {v:?}");
        }
        assert_eq!(
            forward.element_count(),
            v.iter().map(|(s, e)| e - s).sum::<usize>()
        );
    }
}
