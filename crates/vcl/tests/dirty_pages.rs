//! Randomized property tests of the paged dirty tracker: under seeded
//! random write patterns (arbitrary bit patterns, including NaN payloads
//! and signed zeros) the page map must never miss a write the exact
//! ranges see, and every merge path — full, exact-ranged, page-walked,
//! tracker-dispatched — must produce bit-identical results. Cases come
//! from the in-tree deterministic generator so failures replay
//! bit-for-bit.

use std::time::Instant;

use fluidicl_des::SplitMix64;
use fluidicl_vcl::{
    diff_merge, diff_merge_paged, diff_merge_ranged, diff_merge_tracked, DirtyRanges, DirtyTracker,
    PageMap, PAGE_ELEMS,
};

const CASES: u64 = 64;

/// Arbitrary `f32` bit patterns: NaNs with random payloads, infinities,
/// denormals and signed zeros all occur.
fn arb_bits(rng: &mut SplitMix64) -> f32 {
    f32::from_bits((rng.next_u64() >> 32) as u32)
}

/// A buffer and a randomly written copy of it, sized to span several
/// pages (with a partial final page most of the time).
fn arb_write_case(rng: &mut SplitMix64) -> (Vec<f32>, Vec<f32>) {
    let len = rng.range_usize(1, 4 * PAGE_ELEMS + 37);
    let original: Vec<f32> = (0..len).map(|_| arb_bits(rng)).collect();
    let mut written = original.clone();
    // A mix of scattered single writes and short runs.
    let writes = rng.range_usize(0, 65);
    for _ in 0..writes {
        let at = rng.range_usize(0, len);
        let run = rng.range_usize(1, 9).min(len - at);
        for v in &mut written[at..at + run] {
            *v = arb_bits(rng);
        }
    }
    (original, written)
}

/// The page map is a superset of the exact write set: it covers every
/// written element, and its synthesized ranges contain the exact ranges.
#[test]
fn page_map_never_misses_a_write() {
    let mut rng = SplitMix64::new(0xD1E7_0001);
    for case in 0..CASES {
        let (original, written) = arb_write_case(&mut rng);
        let exact = DirtyRanges::from_diff(&written, &original);
        let pm = PageMap::from_diff(&written, &original);
        assert!(
            pm.covers(&exact),
            "case {case}: page map missed a write; exact {:?}",
            exact.as_slice()
        );
        let synth = pm.synthesize();
        assert_eq!(
            synth.union(&exact),
            synth,
            "case {case}: synthesized ranges must contain the exact ranges"
        );
        assert_eq!(
            synth.intersect(&exact),
            exact,
            "case {case}: intersection with the superset is the exact set"
        );
        // Byte accounting is an over-approximation, never an undercount.
        assert!(pm.byte_count() >= exact.byte_count());
        // The tracker's capture agrees with whichever representation it
        // picked (these lens stay exact — PAGED_MIN_LEN is far larger).
        let t = DirtyTracker::from_diff(&written, &original);
        assert_eq!(t.synthesize(), exact, "case {case}");
    }
}

/// Every merge path produces bit-identical output: full diff-merge,
/// exact-ranged, page-walked and tracker-dispatched.
#[test]
fn all_merge_paths_agree_bit_exactly() {
    let mut rng = SplitMix64::new(0xD1E7_0002);
    for case in 0..CASES {
        let (original, cpu) = arb_write_case(&mut rng);
        let len = original.len();
        let dst0: Vec<f32> = (0..len).map(|_| arb_bits(&mut rng)).collect();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();

        let mut full = dst0.clone();
        diff_merge(&mut full, &cpu, &original);
        let expect = bits(&full);

        let exact = DirtyRanges::from_diff(&cpu, &original);
        let mut ranged = dst0.clone();
        diff_merge_ranged(&mut ranged, &cpu, &original, &exact).unwrap();
        assert_eq!(bits(&ranged), expect, "case {case}: ranged path diverged");

        let pm = PageMap::from_diff(&cpu, &original);
        let mut paged = dst0.clone();
        diff_merge_paged(&mut paged, &cpu, &original, &pm).unwrap();
        assert_eq!(bits(&paged), expect, "case {case}: paged path diverged");

        let t = DirtyTracker::from_diff(&cpu, &original);
        let mut tracked = dst0.clone();
        diff_merge_tracked(&mut tracked, &cpu, &original, &t).unwrap();
        assert_eq!(bits(&tracked), expect, "case {case}: tracked path diverged");
    }
}

/// Marking through a paged tracker covers exactly what ranged marking
/// covers, page-rounded: a `mark_range` stream replayed into both
/// representations yields a paged superset of the exact set.
#[test]
fn tracker_marking_is_a_page_rounded_superset() {
    let mut rng = SplitMix64::new(0xD1E7_0003);
    for case in 0..CASES {
        let len = rng.range_usize(1, 6 * PAGE_ELEMS);
        let mut exact = DirtyRanges::empty();
        let mut pm = PageMap::new(len);
        for _ in 0..rng.range_usize(0, 50) {
            let s = rng.range_usize(0, len);
            let e = (s + rng.range_usize(1, 2 * PAGE_ELEMS)).min(len);
            exact.insert(s, e);
            pm.mark_range(s, e);
        }
        assert!(pm.covers(&exact), "case {case}");
        assert_eq!(pm.synthesize().intersect(&exact), exact, "case {case}");
    }
}

/// Bulk construction from 1M scattered indices stays linearithmic: the
/// sort-then-coalesce path finishes in interactive time where repeated
/// range-list splicing would degrade quadratically (minutes). The bound
/// is deliberately generous — it pins the complexity class, not the
/// constant factor.
#[test]
fn from_indices_handles_1m_scattered_indices() {
    let mut rng = SplitMix64::new(0xD1E7_0004);
    const N: usize = 1_000_000;
    const SPACE: usize = 16 * 1024 * 1024;
    let indices: Vec<usize> = (0..N).map(|_| rng.range_usize(0, SPACE)).collect();
    let start = Instant::now();
    let ranges = DirtyRanges::from_indices(indices.iter().copied());
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "1M scattered indices took {elapsed:?}; the bulk path must be sort-then-coalesce"
    );
    // Cross-check against an independent dedup count.
    let mut sorted = indices;
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(ranges.element_count(), sorted.len());
    assert!(ranges.contains(sorted[0]));
    assert!(ranges.contains(*sorted.last().unwrap()));
}

/// The splice-based `insert` agrees with bulk construction under random
/// interleavings of overlapping, adjacent and disjoint ranges.
#[test]
fn insert_agrees_with_bulk_construction() {
    let mut rng = SplitMix64::new(0xD1E7_0005);
    for case in 0..CASES {
        let mut incremental = DirtyRanges::empty();
        let mut all: Vec<(usize, usize)> = Vec::new();
        for _ in 0..rng.range_usize(0, 60) {
            let s = rng.range_usize(0, 10_000);
            let e = s + rng.range_usize(1, 300);
            incremental.insert(s, e);
            all.push((s, e));
        }
        assert_eq!(
            incremental,
            DirtyRanges::from_ranges(all.iter().copied()),
            "case {case}"
        );
    }
}
