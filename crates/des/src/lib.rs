//! # fluidicl-des — deterministic discrete-event simulation engine
//!
//! Virtual-time substrate for the FluidiCL reproduction. The paper's runtime
//! coordinates a CPU and a GPU with asynchronous data transfers; everything
//! schedule-dependent in that protocol (when a status message reaches the
//! GPU, whether the GPU wave had already started, which device finishes a
//! kernel first) is a question about *event ordering in time*. This crate
//! provides the timeline:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`Simulation`] — a generic event queue with deterministic total
//!   ordering `(timestamp, scheduling sequence)`, lazy cancellation, and a
//!   caller-owned dispatch loop.
//! * [`Channel`] — an in-order, single-occupancy resource timeline (a
//!   transfer link, a staging-copy engine) that serializes timed operations.
//! * [`DurationSeries`], [`Counter`], [`geomean`] — the statistics helpers
//!   shared by the runtime's adaptive heuristics and the experiment harness.
//!
//! The engine is intentionally synchronous and single-threaded: determinism
//! is a feature. Two runs of the same experiment produce bit-identical
//! timelines, which makes the paper's figures reproducible artifacts rather
//! than noisy measurements.
//!
//! # Example
//!
//! ```
//! use fluidicl_des::{SimDuration, Simulation};
//!
//! #[derive(Debug)]
//! enum Ev {
//!     TransferDone,
//!     KernelDone,
//! }
//!
//! let mut sim = Simulation::new();
//! sim.schedule_in(SimDuration::from_micros(10), Ev::TransferDone);
//! sim.schedule_in(SimDuration::from_micros(25), Ev::KernelDone);
//! let end = sim.run(|_sim, _t, _ev| { /* react */ });
//! assert_eq!(end, fluidicl_des::SimTime::from_nanos(25_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod rng;
mod sim;
mod stats;
mod time;

pub use channel::{Channel, ChannelBank};
pub use rng::SplitMix64;
pub use sim::{EventToken, Simulation};
pub use stats::{geomean, Counter, DurationSeries};
pub use time::{SimDuration, SimTime};
