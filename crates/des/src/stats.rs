//! Lightweight statistics collection for simulated runs.
//!
//! The experiment harness needs averages, geomeans and min/max over virtual
//! durations; the runtime needs running averages for the adaptive chunk-size
//! heuristic. Both live here so every crate shares one tested implementation.

use std::fmt;

use crate::SimDuration;

/// Running summary of a stream of virtual durations.
///
/// # Examples
///
/// ```
/// use fluidicl_des::{DurationSeries, SimDuration};
///
/// let mut s = DurationSeries::new();
/// s.record(SimDuration::from_nanos(10));
/// s.record(SimDuration::from_nanos(30));
/// assert_eq!(s.mean(), Some(SimDuration::from_nanos(20)));
/// assert_eq!(s.min(), Some(SimDuration::from_nanos(10)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DurationSeries {
    count: u64,
    total: SimDuration,
    min: Option<SimDuration>,
    max: Option<SimDuration>,
    last: Option<SimDuration>,
}

impl DurationSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, d: SimDuration) {
        self.count += 1;
        self.total += d;
        self.min = Some(self.min.map_or(d, |m| m.min(d)));
        self.max = Some(self.max.map_or(d, |m| m.max(d)));
        self.last = Some(d);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn total(&self) -> SimDuration {
        self.total
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| self.total.div_count(self.count))
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<SimDuration> {
        self.min
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<SimDuration> {
        self.max
    }

    /// Most recent observation, or `None` if empty.
    pub fn last(&self) -> Option<SimDuration> {
        self.last
    }
}

impl fmt::Display for DurationSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} mean={} min={} max={}",
                self.count,
                mean,
                self.min.unwrap_or(SimDuration::ZERO),
                self.max.unwrap_or(SimDuration::ZERO)
            ),
            None => write!(f, "n=0"),
        }
    }
}

/// Geometric mean of positive ratios (speedups, normalized times).
///
/// Returns `None` for an empty input. Non-positive entries are rejected with
/// a panic since a geomean over them is meaningless.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
///
/// # Examples
///
/// ```
/// use fluidicl_des::geomean;
///
/// let g = geomean(&[2.0, 8.0]).unwrap();
/// assert!((g - 4.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(
                v > 0.0,
                "geomean requires strictly positive values, got {v}"
            );
            v.ln()
        })
        .sum();
    Some((log_sum / values.len() as f64).exp())
}

/// A named monotonically increasing counter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_tracks_summary() {
        let mut s = DurationSeries::new();
        assert_eq!(s.mean(), None);
        for n in [5u64, 1, 9] {
            s.record(SimDuration::from_nanos(n));
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.total(), SimDuration::from_nanos(15));
        assert_eq!(s.mean(), Some(SimDuration::from_nanos(5)));
        assert_eq!(s.min(), Some(SimDuration::from_nanos(1)));
        assert_eq!(s.max(), Some(SimDuration::from_nanos(9)));
        assert_eq!(s.last(), Some(SimDuration::from_nanos(9)));
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), None);
        assert!((geomean(&[3.0]).unwrap() - 3.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn series_display_nonempty() {
        let mut s = DurationSeries::new();
        assert_eq!(s.to_string(), "n=0");
        s.record(SimDuration::from_nanos(3));
        assert!(s.to_string().contains("n=1"));
    }
}
