//! Deterministic pseudo-random numbers.
//!
//! The whole reproduction is built around bit-exact replayability: inputs,
//! fuzzed machine models and randomized test cases must all be derivable
//! from a seed with no platform- or crate-version-dependence. `SplitMix64`
//! (Steele, Lea & Flood, OOPSLA 2014) is small, fast and statistically
//! adequate for workload generation — and owning the implementation keeps
//! the generated streams stable forever.

/// A 64-bit SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use fluidicl_des::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 random bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[0, 1)` (24 random bits).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A derived generator, decorrelated from this one; useful for giving
    /// each sub-task its own stream.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_are_half_open() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!((-1.0..1.0).contains(&r.range_f32(-1.0, 1.0)));
            let v = r.range_u64(3, 9);
            assert!((3..9).contains(&v));
            let v = r.range_usize(0, 2);
            assert!(v < 2);
        }
    }

    #[test]
    fn fork_departs_from_parent() {
        let mut a = SplitMix64::new(11);
        let mut child = a.fork();
        assert_ne!(a.next_u64(), child.next_u64());
    }
}
