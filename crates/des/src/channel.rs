//! In-order, single-occupancy resource timeline: the availability model
//! behind the protocol's host-to-device link and the host staging-copy
//! engine.
//!
//! A [`Channel`] is the smallest useful abstraction of an in-order queue on
//! a virtual timeline: operations occupy it back-to-back, an operation
//! submitted while the channel is busy starts when the previous one
//! finishes, and nothing ever runs out of order. The co-execution engine
//! uses one channel per physical resource it pipelines over, which is what
//! lets compute overlap with in-flight transfers without the bookkeeping
//! drifting from the timeline.

use crate::time::{SimDuration, SimTime};

/// An in-order resource that serializes timed operations on the virtual
/// timeline.
///
/// # Examples
///
/// ```
/// use fluidicl_des::{Channel, SimDuration, SimTime};
///
/// let mut ch = Channel::new(SimTime::ZERO);
/// let t0 = SimTime::from_nanos(100);
/// // First op starts immediately.
/// let done_a = ch.enqueue(t0, SimDuration::from_nanos(50));
/// assert_eq!(done_a, SimTime::from_nanos(150));
/// // Second op, submitted while the first is in flight, queues behind it.
/// let done_b = ch.enqueue(t0, SimDuration::from_nanos(25));
/// assert_eq!(done_b, SimTime::from_nanos(175));
/// assert!(!ch.idle_at(SimTime::from_nanos(160)));
/// assert!(ch.idle_at(SimTime::from_nanos(175)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Channel {
    free: SimTime,
}

impl Channel {
    /// A channel that is idle from `at` onward.
    pub fn new(at: SimTime) -> Self {
        Channel { free: at }
    }

    /// Submits an operation of length `duration` at time `now`; it starts
    /// when the channel frees up (or immediately if idle) and the channel
    /// stays occupied until the returned completion time.
    pub fn enqueue(&mut self, now: SimTime, duration: SimDuration) -> SimTime {
        let done = self.free.max(now) + duration;
        self.free = done;
        done
    }

    /// Whether the channel has no operation in flight at `now`.
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.free <= now
    }

    /// Earliest time a newly submitted operation could start.
    pub fn free_at(&self) -> SimTime {
        self.free
    }

    /// Forces the channel free no earlier than `at` — used when an
    /// abandoned operation is torn off the queue by recovery.
    pub fn release_at(&mut self, at: SimTime) {
        self.free = self.free.max(at);
    }
}

/// An indexed set of independent [`Channel`]s, one per device endpoint.
///
/// The N-way co-execution engine pipelines one staging-copy engine and one
/// upstream link per non-owner device; a bank keeps those per-device
/// timelines together without the caller juggling a `Vec<Channel>` by hand.
///
/// # Examples
///
/// ```
/// use fluidicl_des::{ChannelBank, SimDuration, SimTime};
///
/// let mut bank = ChannelBank::new(2, SimTime::ZERO);
/// let a = bank.get_mut(0).enqueue(SimTime::ZERO, SimDuration::from_nanos(50));
/// let b = bank.get_mut(1).enqueue(SimTime::ZERO, SimDuration::from_nanos(10));
/// // Channels are independent: device 1's op does not queue behind device 0's.
/// assert_eq!(a, SimTime::from_nanos(50));
/// assert_eq!(b, SimTime::from_nanos(10));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelBank {
    channels: Vec<Channel>,
}

impl ChannelBank {
    /// A bank of `n` channels, all idle from `at` onward.
    pub fn new(n: usize, at: SimTime) -> Self {
        ChannelBank {
            channels: vec![Channel::new(at); n],
        }
    }

    /// Number of channels in the bank.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the bank holds no channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The channel for device `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> &Channel {
        &self.channels[idx]
    }

    /// Mutable access to the channel for device `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get_mut(&mut self, idx: usize) -> &mut Channel {
        &mut self.channels[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn idle_channel_starts_ops_immediately() {
        let mut ch = Channel::new(SimTime::ZERO);
        assert_eq!(ch.enqueue(t(10), d(5)), t(15));
        assert_eq!(ch.free_at(), t(15));
    }

    #[test]
    fn busy_channel_serializes_back_to_back() {
        let mut ch = Channel::new(SimTime::ZERO);
        ch.enqueue(t(0), d(100));
        // Submitted mid-flight: starts at 100, not at 40.
        assert_eq!(ch.enqueue(t(40), d(10)), t(110));
        // Submitted after the backlog drains: starts at `now`.
        assert_eq!(ch.enqueue(t(500), d(10)), t(510));
    }

    #[test]
    fn idle_at_tracks_occupancy() {
        let mut ch = Channel::new(t(20));
        assert!(!ch.idle_at(t(10)));
        assert!(ch.idle_at(t(20)));
        ch.enqueue(t(20), d(30));
        assert!(!ch.idle_at(t(49)));
        assert!(ch.idle_at(t(50)));
    }

    #[test]
    fn release_never_moves_the_timeline_backwards() {
        let mut ch = Channel::new(SimTime::ZERO);
        ch.enqueue(t(0), d(100));
        ch.release_at(t(40));
        assert_eq!(ch.free_at(), t(100), "release cannot undo a booked op");
        ch.release_at(t(130));
        assert_eq!(ch.free_at(), t(130));
    }

    #[test]
    fn zero_length_ops_do_not_occupy_the_channel() {
        let mut ch = Channel::new(SimTime::ZERO);
        assert_eq!(ch.enqueue(t(10), d(0)), t(10));
        assert!(ch.idle_at(t(10)));
    }

    #[test]
    fn bank_channels_are_independent() {
        let mut bank = ChannelBank::new(3, t(5));
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
        bank.get_mut(0).enqueue(t(5), d(100));
        assert_eq!(bank.get_mut(1).enqueue(t(5), d(10)), t(15));
        assert_eq!(bank.get(0).free_at(), t(105));
        assert_eq!(bank.get(2).free_at(), t(5));
    }

    #[test]
    fn empty_bank_is_empty() {
        assert!(ChannelBank::new(0, SimTime::ZERO).is_empty());
    }
}
