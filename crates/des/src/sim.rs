//! The event queue and simulation driver.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::{SimDuration, SimTime};

/// Token identifying a scheduled event, usable for cancellation.
///
/// Tokens are unique within one [`Simulation`] instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventToken(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    cancelled: bool,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. The sequence number breaks ties deterministically in
        // scheduling order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulation queue.
///
/// Events are arbitrary payloads of type `E` scheduled at virtual instants.
/// [`Simulation::pop`] delivers them in nondecreasing time order, breaking
/// ties by scheduling order, and advances the clock to each event's
/// timestamp. The driver loop lives with the caller, which keeps this engine
/// free of any trait gymnastics:
///
/// ```
/// use fluidicl_des::{SimDuration, Simulation};
///
/// #[derive(Debug)]
/// enum Ev { Ping, Pong }
///
/// let mut sim = Simulation::new();
/// sim.schedule_in(SimDuration::from_nanos(5), Ev::Ping);
/// let mut log = Vec::new();
/// while let Some((t, ev)) = sim.pop() {
///     match ev {
///         Ev::Ping => {
///             log.push((t, "ping"));
///             sim.schedule_in(SimDuration::from_nanos(3), Ev::Pong);
///         }
///         Ev::Pong => log.push((t, "pong")),
///     }
/// }
/// assert_eq!(log.len(), 2);
/// assert_eq!(sim.now().as_nanos(), 8);
/// ```
pub struct Simulation<E> {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Scheduled<E>>,
    cancelled: Vec<u64>,
    delivered: u64,
    scheduled: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::starting_at(SimTime::ZERO)
    }

    /// Creates an empty simulation with the clock at `start`.
    ///
    /// The FluidiCL runtime seeds per-kernel simulations with the global
    /// virtual clock so that consecutive kernels share one timeline.
    pub fn starting_at(start: SimTime) -> Self {
        Simulation {
            now: start,
            next_seq: 0,
            queue: BinaryHeap::new(),
            cancelled: Vec::new(),
            delivered: 0,
            scheduled: 0,
        }
    }

    /// The current virtual time (timestamp of the most recently popped event,
    /// or the start time if none has been popped).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events ever scheduled (including cancelled ones).
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Number of events currently pending (scheduled, not yet delivered or
    /// cancelled).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock: delivering into the
    /// past would break causality.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            cancelled: false,
            payload,
        });
        EventToken(seq)
    }

    /// Schedules `payload` at `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventToken {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending, `false` if it had already been delivered or cancelled.
    ///
    /// Cancellation is lazy: the slot stays in the heap and is skipped when
    /// popped, which keeps cancellation O(log n) amortised.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq || self.cancelled.contains(&token.0) {
            return false;
        }
        // We cannot look inside the heap cheaply, so remember the sequence
        // number and filter on pop. Delivered events have strictly smaller
        // seq than anything pending *only* in FIFO workloads, so track
        // explicitly instead.
        let pending = self.queue.iter().any(|s| s.seq == token.0 && !s.cancelled);
        if pending {
            self.cancelled.push(token.0);
        }
        pending
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty (cancelled events are skipped
    /// silently).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.queue.pop() {
            if let Some(idx) = self.cancelled.iter().position(|&c| c == s.seq) {
                self.cancelled.swap_remove(idx);
                continue;
            }
            debug_assert!(s.at >= self.now, "event queue delivered out of order");
            self.now = s.at;
            self.delivered += 1;
            return Some((s.at, s.payload));
        }
        None
    }

    /// Peeks at the timestamp of the next pending event without delivering it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The heap may have cancelled entries at the top; scan for the
        // earliest live one.
        self.queue
            .iter()
            .filter(|s| !self.cancelled.contains(&s.seq))
            .map(|s| s.at)
            .min()
    }

    /// Runs the event loop to completion, calling `handler` for every event.
    ///
    /// The handler receives the simulation (to schedule follow-up events) and
    /// the event. Returns the final clock value.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Simulation<E>, SimTime, E)) -> SimTime {
        while let Some((t, ev)) = self.pop() {
            handler(self, t, ev);
        }
        self.now
    }

    /// Advances the clock manually to `t` (used when external bookkeeping
    /// knows time passed without an event, e.g. a blocking host call).
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past or earlier than a pending event: jumping
    /// over pending events would deliver them late.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot move the clock backwards");
        if let Some(next) = self.peek_time() {
            assert!(
                t <= next,
                "cannot jump past a pending event at {next:?} (target {t:?})"
            );
        }
        self.now = t;
    }
}

impl<E> fmt::Debug for Simulation<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("delivered", &self.delivered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(30), "c");
        sim.schedule_at(SimTime::from_nanos(10), "a");
        sim.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| sim.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut sim = Simulation::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            sim.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| sim.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut sim = Simulation::new();
        sim.schedule_in(SimDuration::from_nanos(7), ());
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.pop();
        assert_eq!(sim.now(), SimTime::from_nanos(7));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut sim = Simulation::new();
        sim.schedule_in(SimDuration::from_nanos(5), 1);
        sim.pop();
        sim.schedule_in(SimDuration::from_nanos(5), 2);
        let (t, _) = sim.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(10), ());
        sim.pop();
        sim.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let mut sim = Simulation::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), "a");
        sim.schedule_at(SimTime::from_nanos(2), "b");
        assert!(sim.cancel(a));
        assert!(!sim.cancel(a), "double cancel reports false");
        let order: Vec<_> = std::iter::from_fn(|| sim.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b"]);
    }

    #[test]
    fn cancel_after_delivery_is_false() {
        let mut sim = Simulation::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), ());
        sim.pop();
        assert!(!sim.cancel(a));
    }

    #[test]
    fn pending_counts_live_events() {
        let mut sim = Simulation::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), ());
        sim.schedule_at(SimTime::from_nanos(2), ());
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
        sim.pop();
        assert_eq!(sim.pending(), 0);
        assert!(sim.is_idle());
    }

    #[test]
    fn run_drains_queue() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(1), 3u64);
        let mut acc = 0u64;
        let end = sim.run(|sim, _, v| {
            acc += v;
            if v > 1 {
                sim.schedule_in(SimDuration::from_nanos(1), v - 1);
            }
        });
        assert_eq!(acc, 3 + 2 + 1);
        assert_eq!(end, SimTime::from_nanos(3));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim = Simulation::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), ());
        sim.schedule_at(SimTime::from_nanos(2), ());
        sim.cancel(a);
        assert_eq!(sim.peek_time(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn advance_to_respects_pending_events() {
        let mut sim = Simulation::<()>::new();
        sim.advance_to(SimTime::from_nanos(4));
        assert_eq!(sim.now(), SimTime::from_nanos(4));
    }

    #[test]
    #[should_panic(expected = "cannot jump past a pending event")]
    fn advance_past_pending_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(2), ());
        sim.advance_to(SimTime::from_nanos(3));
    }

    #[test]
    fn starting_at_offsets_timeline() {
        let mut sim = Simulation::starting_at(SimTime::from_nanos(100));
        sim.schedule_in(SimDuration::from_nanos(5), ());
        let (t, _) = sim.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(105));
    }

    #[test]
    fn counters_track_activity() {
        let mut sim = Simulation::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), ());
        sim.schedule_at(SimTime::from_nanos(2), ());
        sim.cancel(a);
        while sim.pop().is_some() {}
        assert_eq!(sim.scheduled(), 2);
        assert_eq!(sim.delivered(), 1);
    }
}
