//! Virtual time types.
//!
//! All of the FluidiCL reproduction runs in *virtual time*: device models and
//! transfer models charge durations, and the [`crate::Simulation`] event queue
//! orders everything on a single nanosecond-resolution timeline. Keeping time
//! in a newtype (rather than raw `u64`) prevents accidentally mixing instants
//! with durations or with byte counts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Instants can
/// be shifted by a [`SimDuration`] and subtracted from one another to recover
/// a duration.
///
/// # Examples
///
/// ```
/// use fluidicl_des::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_micros(3);
/// assert_eq!(t1 - t0, SimDuration::from_nanos(3_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use fluidicl_des::SimDuration;
///
/// let d = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinitely far away"
    /// sentinel for busy-until bookkeeping.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of `self` and `other`.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of `self` and `other`.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration from `earlier` to `self`, saturating to zero if `earlier` is
    /// actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at zero for negative inputs.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(if secs <= 0.0 {
            0
        } else {
            (secs * 1e9).round() as u64
        })
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Scales the duration by a non-negative float factor, rounding to the
    /// nearest nanosecond.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration scale factor must be >= 0");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Divides the duration by a positive integer count (for averages).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn div_count(self, count: u64) -> SimDuration {
        assert!(count > 0, "cannot divide a duration by zero");
        SimDuration(self.0 / count)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}ns)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({}ns)", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_nanos(), 140);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn from_secs_f64_rounds_and_saturates() {
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_nanos(1500));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn min_max_behave() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_nanos(5);
        let db = SimDuration::from_nanos(9);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }

    #[test]
    fn div_count_truncates() {
        assert_eq!(
            SimDuration::from_nanos(10).div_count(3),
            SimDuration::from_nanos(3)
        );
    }

    #[test]
    #[should_panic(expected = "divide a duration by zero")]
    fn div_count_zero_panics() {
        let _ = SimDuration::from_nanos(10).div_count(0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }
}
