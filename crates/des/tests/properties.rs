//! Randomized property tests for the DES engine invariants the FluidiCL
//! co-execution protocol relies on. Cases are drawn from the in-tree
//! deterministic generator so failures replay bit-for-bit.

use fluidicl_des::{SimDuration, SimTime, Simulation, SplitMix64};

const CASES: u64 = 64;

fn arb_times(rng: &mut SplitMix64, max_len: usize, max_t: u64) -> Vec<u64> {
    let len = rng.range_usize(1, max_len);
    (0..len).map(|_| rng.range_u64(0, max_t)).collect()
}

/// Events are always delivered in nondecreasing time order regardless of
/// scheduling order.
#[test]
fn delivery_is_time_ordered() {
    let mut rng = SplitMix64::new(0xDE51);
    for _ in 0..CASES {
        let times = arb_times(&mut rng, 200, 1_000_000);
        let mut sim = Simulation::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = sim.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(sim.delivered(), times.len() as u64);
    }
}

/// Same-timestamp events preserve scheduling order (FIFO tie-break).
#[test]
fn ties_are_fifo() {
    let mut rng = SplitMix64::new(0xDE52);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 100);
        let t = rng.range_u64(0, 1000);
        let mut sim = Simulation::new();
        for i in 0..n {
            sim.schedule_at(SimTime::from_nanos(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| sim.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..n).collect::<Vec<_>>());
    }
}

/// Two identical schedules produce identical delivery sequences
/// (determinism).
#[test]
fn runs_are_deterministic() {
    let mut rng = SplitMix64::new(0xDE53);
    for _ in 0..CASES {
        let times = arb_times(&mut rng, 100, 10_000);
        let run = |times: &[u64]| {
            let mut sim = Simulation::new();
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(t), i);
            }
            std::iter::from_fn(move || sim.pop()).collect::<Vec<_>>()
        };
        assert_eq!(run(&times), run(&times));
    }
}

/// Cancelling an arbitrary subset removes exactly that subset.
#[test]
fn cancellation_is_exact() {
    let mut rng = SplitMix64::new(0xDE54);
    for _ in 0..CASES {
        let times = arb_times(&mut rng, 100, 10_000);
        let cancel_mask: Vec<bool> = times.iter().map(|_| rng.next_bool()).collect();
        let mut sim = Simulation::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, sim.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, tok) in &tokens {
            if cancel_mask[*i] {
                assert!(sim.cancel(*tok));
            } else {
                expect.push(*i);
            }
        }
        let mut got: Vec<usize> = std::iter::from_fn(|| sim.pop()).map(|(_, e)| e).collect();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

/// The clock equals the timestamp of the last delivered event.
#[test]
fn clock_tracks_last_event() {
    let mut rng = SplitMix64::new(0xDE55);
    for _ in 0..CASES {
        let times: Vec<u64> = arb_times(&mut rng, 50, 1_000_000)
            .into_iter()
            .map(|t| t + 1)
            .collect();
        let mut sim = Simulation::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), ());
        }
        let mut max = 0;
        while let Some((t, ())) = sim.pop() {
            max = max.max(t.as_nanos());
            assert_eq!(sim.now(), t);
        }
        assert_eq!(sim.now().as_nanos(), max);
    }
}

/// Relative scheduling composes: a chain of `schedule_in` calls lands at
/// the prefix sums of the delays.
#[test]
fn relative_chains_accumulate() {
    let mut rng = SplitMix64::new(0xDE56);
    for _ in 0..CASES {
        let delays = arb_times(&mut rng, 50, 1000);
        let mut sim = Simulation::new();
        sim.schedule_in(SimDuration::from_nanos(delays[0]), 0usize);
        let mut stamps = Vec::new();
        while let Some((t, i)) = sim.pop() {
            stamps.push(t.as_nanos());
            let next = i + 1;
            if next < delays.len() {
                sim.schedule_in(SimDuration::from_nanos(delays[next]), next);
            }
        }
        let mut acc = 0u64;
        let expect: Vec<u64> = delays
            .iter()
            .map(|&d| {
                acc += d;
                acc
            })
            .collect();
        assert_eq!(stamps, expect);
    }
}
