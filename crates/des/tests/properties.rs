//! Property-based tests for the DES engine invariants the FluidiCL
//! co-execution protocol relies on.

use fluidicl_des::{SimDuration, SimTime, Simulation};
use proptest::prelude::*;

proptest! {
    /// Events are always delivered in nondecreasing time order regardless of
    /// scheduling order.
    #[test]
    fn delivery_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = sim.pop() {
            prop_assert!(t >= last);
            last = t;
        }
        prop_assert_eq!(sim.delivered(), times.len() as u64);
    }

    /// Same-timestamp events preserve scheduling order (FIFO tie-break).
    #[test]
    fn ties_are_fifo(n in 1usize..100, t in 0u64..1000) {
        let mut sim = Simulation::new();
        for i in 0..n {
            sim.schedule_at(SimTime::from_nanos(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| sim.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Two identical schedules produce identical delivery sequences
    /// (determinism).
    #[test]
    fn runs_are_deterministic(times in proptest::collection::vec(0u64..10_000, 0..100)) {
        let run = |times: &[u64]| {
            let mut sim = Simulation::new();
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(t), i);
            }
            std::iter::from_fn(move || sim.pop()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&times), run(&times));
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Simulation::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, sim.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, tok) in &tokens {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                prop_assert!(sim.cancel(*tok));
            } else {
                expect.push(*i);
            }
        }
        let mut got: Vec<usize> = std::iter::from_fn(|| sim.pop()).map(|(_, e)| e).collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// The clock equals the timestamp of the last delivered event.
    #[test]
    fn clock_tracks_last_event(times in proptest::collection::vec(1u64..1_000_000, 1..50)) {
        let mut sim = Simulation::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), ());
        }
        let mut max = 0;
        while let Some((t, ())) = sim.pop() {
            max = max.max(t.as_nanos());
            prop_assert_eq!(sim.now(), t);
        }
        prop_assert_eq!(sim.now().as_nanos(), max);
    }

    /// Relative scheduling composes: a chain of `schedule_in` calls lands at
    /// the prefix sums of the delays.
    #[test]
    fn relative_chains_accumulate(delays in proptest::collection::vec(0u64..1000, 1..50)) {
        let mut sim = Simulation::new();
        sim.schedule_in(SimDuration::from_nanos(delays[0]), 0usize);
        let mut stamps = Vec::new();
        while let Some((t, i)) = sim.pop() {
            stamps.push(t.as_nanos());
            let next = i + 1;
            if next < delays.len() {
                sim.schedule_in(SimDuration::from_nanos(delays[next]), next);
            }
        }
        let mut acc = 0u64;
        let expect: Vec<u64> = delays.iter().map(|&d| { acc += d; acc }).collect();
        prop_assert_eq!(stamps, expect);
    }
}
