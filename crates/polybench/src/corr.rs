//! CORR: Pearson correlation matrix — four kernels of very different
//! shapes (tiny column reductions, an element-wise normalisation, and a
//! heavy triangular correlation kernel).
//!
//! CORR is the paper's online-profiling showcase (Table 3): the baseline
//! correlation kernel is GPU-oriented and cache-hostile on the CPU; a
//! loop-interchanged alternative makes the CPU competitive, and FluidiCL's
//! online profiling (§6.6) finds it without user intervention.

use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::{
    AccessPattern, ArgRole, ArgSpec, ClDriver, ClResult, KernelArg, KernelDef, NdRange, Program,
    Scalars, WorkItem,
};

use crate::data::gen_positive;

/// Default (scaled) problem size (paper: 2048²).
pub const DEFAULT_N: usize = 576;
/// Work-group size of the 1-D reduction kernels.
pub const WG_1D: usize = 32;
/// Work-group edge of the 2-D centering kernel.
pub const WG_2D: usize = 16;
/// Work-group size of the triangular correlation kernel.
pub const WG_CORR: usize = 2;

const EPS: f32 = 0.005;

fn profile_mean(n: usize) -> KernelProfile {
    KernelProfile::new("corr_mean")
        .flops_per_item(n as f64 + 1.0)
        .bytes_read_per_item(4.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.95)
        .cpu_cache_locality(0.3)
        .cpu_simd_friendliness(0.5)
}

fn profile_std(n: usize) -> KernelProfile {
    KernelProfile::new("corr_std")
        .flops_per_item(3.0 * n as f64 + 4.0)
        .bytes_read_per_item(4.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.95)
        .cpu_cache_locality(0.3)
        .cpu_simd_friendliness(0.5)
}

fn profile_center(_n: usize) -> KernelProfile {
    KernelProfile::new("corr_center")
        .flops_per_item(3.0)
        .bytes_read_per_item(12.0)
        .bytes_written_per_item(4.0)
        .gpu_coalescing(1.0)
        .cpu_cache_locality(0.95)
        .cpu_simd_friendliness(0.95)
}

fn profile_corr_base(n: usize) -> KernelProfile {
    // Naive GPU-oriented version: the k-loop walks columns, which the GPU
    // coalesces across the warp but the CPU cache hates.
    KernelProfile::new("corr_corr")
        .flops_per_item((n as f64) * (n as f64))
        .bytes_read_per_item(4.0 * (n as f64) * (n as f64))
        .bytes_written_per_item(4.0 * n as f64)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.8)
        .gpu_divergence(0.3)
        .cpu_cache_locality(0.05)
        .cpu_simd_friendliness(0.1)
}

fn profile_corr_interchanged(n: usize) -> KernelProfile {
    // The hand-written CPU alternative of paper Table 3: loops interchanged
    // for cache locality. Identical semantics, far better CPU behaviour.
    KernelProfile::new("corr_corr_interchanged")
        .flops_per_item((n as f64) * (n as f64))
        // Loop interchange enables cache blocking: each matrix element is
        // loaded once per block instead of once per j2, cutting DRAM
        // traffic by ~4x on top of the improved access pattern.
        .bytes_read_per_item((n as f64) * (n as f64))
        .bytes_written_per_item(4.0 * n as f64)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.2)
        .gpu_divergence(0.3)
        .cpu_cache_locality(0.95)
        .cpu_simd_friendliness(0.9)
}

fn corr_body(
    item: &WorkItem,
    scalars: &Scalars,
    ins: &fluidicl_vcl::Inputs<'_>,
    outs: &mut fluidicl_vcl::Outputs<'_>,
) {
    let n = scalars.usize(0);
    let j1 = item.global[0];
    let data = ins.get(0);
    let symmat = outs.at(0);
    symmat[j1 * n + j1] = 1.0;
    for j2 in (j1 + 1)..n {
        let mut acc = 0.0f32;
        for k in 0..n {
            acc += data[k * n + j1] * data[k * n + j2];
        }
        symmat[j1 * n + j2] = acc;
        symmat[j2 * n + j1] = acc;
    }
}

/// Builds the CORR program for problem size `n`. The correlation kernel
/// carries the loop-interchanged alternate version for online profiling.
pub fn program(n: usize) -> Program {
    let mut p = Program::new();
    p.register(
        KernelDef::new(
            "corr_mean",
            vec![
                ArgSpec::new("data", ArgRole::In).with_access(AccessPattern::Col {
                    dim: 0,
                    width_scalar: 0,
                }),
                ArgSpec::new("mean", ArgRole::Out).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile_mean(n),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let j = item.global[0];
                let data = ins.get(0);
                let mut acc = 0.0f32;
                for i in 0..n {
                    acc += data[i * n + j];
                }
                outs.at(0)[j] = acc / n as f32;
            },
        )
        .with_disjoint_writes(),
    );
    p.register(
        KernelDef::new(
            "corr_std",
            vec![
                ArgSpec::new("data", ArgRole::In).with_access(AccessPattern::Col {
                    dim: 0,
                    width_scalar: 0,
                }),
                ArgSpec::new("mean", ArgRole::In).with_access(AccessPattern::Element),
                ArgSpec::new("std", ArgRole::Out).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile_std(n),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let j = item.global[0];
                let data = ins.get(0);
                let mean = ins.get(1);
                let mut acc = 0.0f32;
                for i in 0..n {
                    let d = data[i * n + j] - mean[j];
                    acc += d * d;
                }
                let sd = (acc / n as f32).sqrt();
                outs.at(0)[j] = if sd <= EPS { 1.0 } else { sd };
            },
        )
        .with_disjoint_writes(),
    );
    p.register(
        KernelDef::new(
            "corr_center",
            vec![
                ArgSpec::new("mean", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("std", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("data", ArgRole::InOut).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile_center(n),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let j = item.global[0];
                let i = item.global[1];
                let mean = ins.get(0);
                let std = ins.get(1);
                let data = outs.at(0);
                data[i * n + j] = (data[i * n + j] - mean[j]) / ((n as f32).sqrt() * std[j]);
            },
        )
        .with_disjoint_writes(),
    );
    p.register(
        KernelDef::new(
            "corr_corr",
            vec![
                ArgSpec::new("data", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                // Item j1 owns the tail of row j1 (the diagonal onward) plus
                // the mirrored cells symmat[j2][j1] below it — exactly what
                // `corr_body` writes.
                ArgSpec::new("symmat", ArgRole::Out).with_access(AccessPattern::custom(
                    |item, scalars, _len| {
                        let n = scalars.usize(0);
                        let j1 = item.global[0];
                        let mut ranges = vec![(j1 * n + j1, j1 * n + n)];
                        for j2 in (j1 + 1)..n {
                            ranges.push((j2 * n + j1, j2 * n + j1 + 1));
                        }
                        ranges
                    },
                )),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile_corr_base(n),
            corr_body,
        )
        .with_version("loop-interchanged", profile_corr_interchanged(n), corr_body)
        // Every symmat element has a unique writer (the work-item with the
        // smaller of its two indices), so per-group writes are disjoint.
        .with_disjoint_writes(),
    );
    p
}

/// Runs CORR on `driver`, returning `[symmat]`.
///
/// # Errors
///
/// Propagates driver errors.
pub fn run(driver: &mut dyn ClDriver, n: usize, seed: u64) -> ClResult<Vec<Vec<f32>>> {
    let data = gen_positive(n * n, seed);
    let data_buf = driver.create_buffer(n * n);
    let mean_buf = driver.create_buffer(n);
    let std_buf = driver.create_buffer(n);
    let symmat_buf = driver.create_buffer(n * n);
    driver.write_buffer(data_buf, &data)?;
    let nd1 = NdRange::d1(n, WG_1D)?;
    driver.enqueue_kernel(
        "corr_mean",
        nd1,
        &[
            KernelArg::Buffer(data_buf),
            KernelArg::Buffer(mean_buf),
            KernelArg::Usize(n),
        ],
    )?;
    driver.enqueue_kernel(
        "corr_std",
        nd1,
        &[
            KernelArg::Buffer(data_buf),
            KernelArg::Buffer(mean_buf),
            KernelArg::Buffer(std_buf),
            KernelArg::Usize(n),
        ],
    )?;
    driver.enqueue_kernel(
        "corr_center",
        NdRange::d2(n, n, WG_2D, WG_2D)?,
        &[
            KernelArg::Buffer(mean_buf),
            KernelArg::Buffer(std_buf),
            KernelArg::Buffer(data_buf),
            KernelArg::Usize(n),
        ],
    )?;
    driver.enqueue_kernel(
        "corr_corr",
        NdRange::d1(n, WG_CORR)?,
        &[
            KernelArg::Buffer(data_buf),
            KernelArg::Buffer(symmat_buf),
            KernelArg::Usize(n),
        ],
    )?;
    Ok(vec![driver.read_buffer(symmat_buf)?])
}

/// Sequential reference.
pub fn reference(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut data = gen_positive(n * n, seed);
    let nf = n as f32;
    let mut mean = vec![0.0f32; n];
    for (j, m) in mean.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for i in 0..n {
            acc += data[i * n + j];
        }
        *m = acc / nf;
    }
    let mut std = vec![0.0f32; n];
    for (j, s) in std.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for i in 0..n {
            let d = data[i * n + j] - mean[j];
            acc += d * d;
        }
        let sd = (acc / nf).sqrt();
        *s = if sd <= EPS { 1.0 } else { sd };
    }
    for i in 0..n {
        for j in 0..n {
            data[i * n + j] = (data[i * n + j] - mean[j]) / (nf.sqrt() * std[j]);
        }
    }
    let mut symmat = vec![0.0f32; n * n];
    for j1 in 0..n {
        symmat[j1 * n + j1] = 1.0;
        for j2 in (j1 + 1)..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += data[k * n + j1] * data[k * n + j2];
            }
            symmat[j1 * n + j2] = acc;
            symmat[j2 * n + j1] = acc;
        }
    }
    vec![symmat]
}

/// Work-group counts per kernel.
pub fn workgroups(n: usize) -> Vec<u64> {
    vec![
        (n / WG_1D) as u64,
        (n / WG_1D) as u64,
        ((n / WG_2D) * (n / WG_2D)) as u64,
        (n / WG_CORR) as u64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::MachineConfig;
    use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

    #[test]
    fn matches_reference_on_both_devices() {
        let n = 64;
        for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
            let mut rt =
                SingleDeviceRuntime::new(MachineConfig::paper_testbed(), device, program(n));
            assert_eq!(run(&mut rt, n, 17).unwrap(), reference(n, 17));
        }
    }

    #[test]
    fn has_four_kernels_with_alternate_version() {
        let p = program(DEFAULT_N);
        assert_eq!(p.len(), 4);
        let corr = p.kernel("corr_corr").unwrap();
        assert_eq!(corr.versions().len(), 2);
        assert_eq!(corr.versions()[1].label, "loop-interchanged");
    }

    #[test]
    fn interchange_improves_cpu_profile() {
        let base = profile_corr_base(256);
        let alt = profile_corr_interchanged(256);
        assert!(alt.cache_locality() > base.cache_locality());
    }

    #[test]
    fn workgroup_shape() {
        assert_eq!(workgroups(256), vec![8, 8, 256, 128]);
    }
}
