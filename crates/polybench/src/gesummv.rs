//! GESUMMV: `y = α·A·x + β·B·x` in a single kernel.
//!
//! The paper's CPU-favoured benchmark: one kernel with only a handful of
//! long-running work-groups, which under-utilises the GPU's wave width and
//! is exactly the case CPU work-group splitting (§6.3) targets. GESUMMV is
//! also where large initial chunk sizes pay off (Figure 17's outlier).

use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::{
    AccessPattern, ArgRole, ArgSpec, ClDriver, ClResult, KernelArg, KernelDef, NdRange, Program,
};

use crate::data::{gen_matrix, gen_vector};

/// Default (scaled) problem size (paper: 4096 rows).
pub const DEFAULT_N: usize = 2048;
/// 1-D work-group size: large groups → few work-groups (paper Table 2
/// reports 8 work-groups for GESUMMV).
pub const WG: usize = 256;

const ALPHA: f32 = 1.5;
const BETA: f32 = 2.5;

fn profile(n: usize) -> KernelProfile {
    KernelProfile::new("gesummv")
        .flops_per_item(4.0 * n as f64)
        .bytes_read_per_item(8.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.15)
        .cpu_cache_locality(0.9)
        .cpu_simd_friendliness(0.85)
}

/// Builds the GESUMMV program for problem size `n`.
pub fn program(n: usize) -> Program {
    let mut p = Program::new();
    p.register(
        KernelDef::new(
            "gesummv",
            vec![
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::Row {
                    dim: 0,
                    width_scalar: 2,
                }),
                ArgSpec::new("b", ArgRole::In).with_access(AccessPattern::Row {
                    dim: 0,
                    width_scalar: 2,
                }),
                ArgSpec::new("x", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("y", ArgRole::Out).with_access(AccessPattern::Element),
                ArgSpec::new("alpha", ArgRole::Scalar),
                ArgSpec::new("beta", ArgRole::Scalar),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile(n),
            |item, scalars, ins, outs| {
                let alpha = scalars.f32(0);
                let beta = scalars.f32(1);
                let n = scalars.usize(2);
                let i = item.global[0];
                let a = ins.get(0);
                let b = ins.get(1);
                let x = ins.get(2);
                let mut acc_a = 0.0f32;
                let mut acc_b = 0.0f32;
                for j in 0..n {
                    acc_a += a[i * n + j] * x[j];
                    acc_b += b[i * n + j] * x[j];
                }
                outs.at(0)[i] = alpha * acc_a + beta * acc_b;
            },
        )
        .with_disjoint_writes(),
    );
    p
}

/// Runs GESUMMV on `driver`, returning `[y]`.
///
/// # Errors
///
/// Propagates driver errors.
pub fn run(driver: &mut dyn ClDriver, n: usize, seed: u64) -> ClResult<Vec<Vec<f32>>> {
    let a = gen_matrix(n, n, seed);
    let b = gen_matrix(n, n, seed.wrapping_add(1));
    let x = gen_vector(n, seed.wrapping_add(2));
    let a_buf = driver.create_buffer(n * n);
    let b_buf = driver.create_buffer(n * n);
    let x_buf = driver.create_buffer(n);
    let y_buf = driver.create_buffer(n);
    driver.write_buffer(a_buf, &a)?;
    driver.write_buffer(b_buf, &b)?;
    driver.write_buffer(x_buf, &x)?;
    driver.enqueue_kernel(
        "gesummv",
        NdRange::d1(n, WG)?,
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(b_buf),
            KernelArg::Buffer(x_buf),
            KernelArg::Buffer(y_buf),
            KernelArg::F32(ALPHA),
            KernelArg::F32(BETA),
            KernelArg::Usize(n),
        ],
    )?;
    Ok(vec![driver.read_buffer(y_buf)?])
}

/// Sequential reference.
pub fn reference(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let a = gen_matrix(n, n, seed);
    let b = gen_matrix(n, n, seed.wrapping_add(1));
    let x = gen_vector(n, seed.wrapping_add(2));
    let mut y = vec![0.0f32; n];
    for (i, yi) in y.iter_mut().enumerate() {
        let mut acc_a = 0.0f32;
        let mut acc_b = 0.0f32;
        for j in 0..n {
            acc_a += a[i * n + j] * x[j];
            acc_b += b[i * n + j] * x[j];
        }
        *yi = ALPHA * acc_a + BETA * acc_b;
    }
    vec![y]
}

/// Work-group counts per kernel.
pub fn workgroups(n: usize) -> Vec<u64> {
    vec![(n / WG) as u64]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::MachineConfig;
    use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

    #[test]
    fn matches_reference_on_both_devices() {
        let n = 512;
        for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
            let mut rt =
                SingleDeviceRuntime::new(MachineConfig::paper_testbed(), device, program(n));
            assert_eq!(run(&mut rt, n, 5).unwrap(), reference(n, 5));
        }
    }

    #[test]
    fn cpu_is_the_better_single_device() {
        // The paper's GESUMMV runs best on the CPU alone.
        let n = DEFAULT_N;
        let m = MachineConfig::paper_testbed();
        let cpu = SingleDeviceRuntime::new(m.clone(), DeviceKind::Cpu, program(n));
        let gpu = SingleDeviceRuntime::new(m, DeviceKind::Gpu, program(n));
        let nd = NdRange::d1(n, WG).unwrap();
        assert!(
            cpu.kernel_duration("gesummv", nd).unwrap()
                < gpu.kernel_duration("gesummv", nd).unwrap()
        );
    }

    #[test]
    fn few_workgroups() {
        assert_eq!(workgroups(DEFAULT_N), vec![8]);
    }
}
