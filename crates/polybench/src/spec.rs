//! Benchmark registry: one uniform handle per Polybench application.

use fluidicl_vcl::{ClDriver, ClResult, Program};

/// Host-program entry point: runs the benchmark on any driver and returns
/// the output buffers.
pub type RunFn = fn(&mut dyn ClDriver, usize, u64) -> ClResult<Vec<Vec<f32>>>;

/// A benchmark from the paper's Table 2: program factory, host driver,
/// sequential reference, and reporting metadata.
///
/// # Examples
///
/// ```
/// use fluidicl_polybench::benchmarks;
///
/// let suite = benchmarks();
/// assert_eq!(suite.len(), 6);
/// assert!(suite.iter().any(|b| b.name == "SYRK"));
/// ```
#[derive(Clone, Copy)]
pub struct BenchmarkSpec {
    /// Display name, as in the paper's figures.
    pub name: &'static str,
    /// Default (scaled) problem size.
    pub default_n: usize,
    /// Number of kernels the application launches.
    pub kernel_count: usize,
    /// Builds the program for a problem size.
    pub program: fn(usize) -> Program,
    /// Runs the host program on any driver, returning the output buffers.
    pub run: RunFn,
    /// Sequential reference producing the same output buffers.
    pub reference: fn(usize, u64) -> Vec<Vec<f32>>,
    /// Work-group count per kernel for a problem size (Table 2).
    pub workgroups: fn(usize) -> Vec<u64>,
}

impl std::fmt::Debug for BenchmarkSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkSpec")
            .field("name", &self.name)
            .field("default_n", &self.default_n)
            .field("kernel_count", &self.kernel_count)
            .finish_non_exhaustive()
    }
}

impl BenchmarkSpec {
    /// Runs the benchmark on `driver` at its default size and validates the
    /// outputs against the sequential reference.
    ///
    /// # Errors
    ///
    /// Propagates driver errors; a mismatch against the reference is
    /// reported as `Ok(false)`.
    pub fn run_and_validate(&self, driver: &mut dyn ClDriver, seed: u64) -> ClResult<bool> {
        self.run_and_validate_sized(driver, self.default_n, seed)
    }

    /// Runs at an explicit size and validates against the reference.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn run_and_validate_sized(
        &self,
        driver: &mut dyn ClDriver,
        n: usize,
        seed: u64,
    ) -> ClResult<bool> {
        let got = (self.run)(driver, n, seed)?;
        let want = (self.reference)(n, seed);
        Ok(outputs_match(&got, &want))
    }
}

/// Bit-exact comparison of output buffer sets (every device executes the
/// same Rust kernel bodies in the same per-element order, so results must
/// agree exactly; any difference is a partitioning or merging bug).
pub fn outputs_match(got: &[Vec<f32>], want: &[Vec<f32>]) -> bool {
    got.len() == want.len()
        && got.iter().zip(want).all(|(g, w)| {
            g.len() == w.len() && g.iter().zip(w).all(|(a, b)| a.to_bits() == b.to_bits())
        })
}

/// Extended workloads beyond the paper's suite (MVT, GEMM, 2MM): same
/// interface, not included in the paper-reproduction experiments.
pub fn extended_benchmarks() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "MVT",
            default_n: crate::mvt::DEFAULT_N,
            kernel_count: 2,
            program: crate::mvt::program,
            run: crate::mvt::run,
            reference: crate::mvt::reference,
            workgroups: crate::mvt::workgroups,
        },
        BenchmarkSpec {
            name: "GEMM",
            default_n: crate::gemm::DEFAULT_N,
            kernel_count: 1,
            program: crate::gemm::program,
            run: crate::gemm::run,
            reference: crate::gemm::reference,
            workgroups: crate::gemm::workgroups,
        },
        BenchmarkSpec {
            name: "2MM",
            default_n: crate::mm2::DEFAULT_N,
            kernel_count: 2,
            program: crate::mm2::program,
            run: crate::mm2::run,
            reference: crate::mm2::reference,
            workgroups: crate::mm2::workgroups,
        },
    ]
}

/// Both suites: the paper's six plus the extended workloads.
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    let mut all = benchmarks();
    all.extend(extended_benchmarks());
    all
}

/// The paper's six benchmarks (Table 2), in figure order.
pub fn benchmarks() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "ATAX",
            default_n: crate::atax::DEFAULT_N,
            kernel_count: 2,
            program: crate::atax::program,
            run: crate::atax::run,
            reference: crate::atax::reference,
            workgroups: crate::atax::workgroups,
        },
        BenchmarkSpec {
            name: "BICG",
            default_n: crate::bicg::DEFAULT_N,
            kernel_count: 2,
            program: crate::bicg::program,
            run: crate::bicg::run,
            reference: crate::bicg::reference,
            workgroups: crate::bicg::workgroups,
        },
        BenchmarkSpec {
            name: "CORR",
            default_n: crate::corr::DEFAULT_N,
            kernel_count: 4,
            program: crate::corr::program,
            run: crate::corr::run,
            reference: crate::corr::reference,
            workgroups: crate::corr::workgroups,
        },
        BenchmarkSpec {
            name: "GESUMMV",
            default_n: crate::gesummv::DEFAULT_N,
            kernel_count: 1,
            program: crate::gesummv::program,
            run: crate::gesummv::run,
            reference: crate::gesummv::reference,
            workgroups: crate::gesummv::workgroups,
        },
        BenchmarkSpec {
            name: "SYRK",
            default_n: crate::syrk::DEFAULT_N,
            kernel_count: 1,
            program: crate::syrk::program,
            run: crate::syrk::run,
            reference: crate::syrk::reference,
            workgroups: crate::syrk::workgroups,
        },
        BenchmarkSpec {
            name: "SYR2K",
            default_n: crate::syr2k::DEFAULT_N,
            kernel_count: 1,
            program: crate::syr2k::program,
            run: crate::syr2k::run,
            reference: crate::syr2k::reference,
            workgroups: crate::syr2k::workgroups,
        },
    ]
}

/// The BATCHMM kernel-graph pipeline workload: [`crate::batchmm::CHAINS`]
/// independent matrix products feeding one reduction. Standalone — not part
/// of [`benchmarks`]/[`extended_benchmarks`]/[`all_benchmarks`], so the
/// sweep row set (and every output derived from it) is unchanged.
pub fn pipeline_benchmark() -> BenchmarkSpec {
    crate::batchmm::spec()
}

/// Looks up a benchmark by (case-insensitive) name, across both suites.
pub fn find(name: &str) -> Option<BenchmarkSpec> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_paper_suite() {
        let names: Vec<_> = benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec!["ATAX", "BICG", "CORR", "GESUMMV", "SYRK", "SYR2K"]
        );
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("syrk").is_some());
        assert!(find("Syr2k").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn extended_registry() {
        let names: Vec<_> = extended_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["MVT", "GEMM", "2MM"]);
        assert_eq!(all_benchmarks().len(), 9);
        assert!(find("gemm").is_some());
    }

    #[test]
    fn kernel_counts_match_workgroup_lists() {
        for b in all_benchmarks() {
            assert_eq!(
                (b.workgroups)(b.default_n).len(),
                b.kernel_count,
                "benchmark {}",
                b.name
            );
            assert_eq!((b.program)(b.default_n).len(), b.kernel_count);
        }
    }

    #[test]
    fn outputs_match_is_exact() {
        assert!(outputs_match(&[vec![1.0, 2.0]], &[vec![1.0, 2.0]]));
        assert!(!outputs_match(&[vec![1.0]], &[vec![1.0, 2.0]]));
        assert!(!outputs_match(&[vec![1.0]], &[vec![1.0 + 1e-7]]));
        assert!(outputs_match(&[vec![f32::NAN]], &[vec![f32::NAN]]));
        assert!(!outputs_match(&[vec![0.0]], &[vec![-0.0]]));
    }
}
