//! ATAX: `y = Aᵀ(Ax)` — two kernels, both strongly GPU-friendly.
//!
//! In the paper's evaluation ATAX runs best on the GPU alone (Figure 2's
//! monotone curve); FluidiCL must track GPU-only performance within a few
//! percent, losing only the one-time scratch-buffer creation cost (§9.1).

use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::{
    AccessPattern, ArgRole, ArgSpec, ClDriver, ClResult, KernelArg, KernelDef, NdRange, Program,
};

use crate::data::{gen_matrix, gen_vector};

/// Default (scaled) problem size: the paper uses 8672²; we scale down so
/// functional execution stays fast while the cost models keep the paper's
/// large-input behaviour.
pub const DEFAULT_N: usize = 4096;
/// 1-D work-group size.
pub const WG: usize = 16;

fn profile_k1(n: usize) -> KernelProfile {
    KernelProfile::new("atax_k1")
        .flops_per_item(2.0 * n as f64)
        .bytes_read_per_item(4.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.92)
        .cpu_cache_locality(0.35)
        .cpu_simd_friendliness(0.45)
}

fn profile_k2(n: usize) -> KernelProfile {
    // Column-major walk: still fine on the GPU (texture-like reuse across
    // the wave) but cache-hostile on the CPU.
    KernelProfile::new("atax_k2")
        .flops_per_item(2.0 * n as f64)
        .bytes_read_per_item(4.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.9)
        .cpu_cache_locality(0.15)
        .cpu_simd_friendliness(0.3)
}

/// Builds the ATAX program for problem size `n`.
pub fn program(n: usize) -> Program {
    let mut p = Program::new();
    p.register(
        KernelDef::new(
            "atax_k1",
            vec![
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::Row {
                    dim: 0,
                    width_scalar: 0,
                }),
                ArgSpec::new("x", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("tmp", ArgRole::Out).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile_k1(n),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let i = item.global[0];
                let a = ins.get(0);
                let x = ins.get(1);
                let mut acc = 0.0f32;
                for j in 0..n {
                    acc += a[i * n + j] * x[j];
                }
                outs.at(0)[i] = acc;
            },
        )
        .with_disjoint_writes(),
    );
    p.register(
        KernelDef::new(
            "atax_k2",
            vec![
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::Col {
                    dim: 0,
                    width_scalar: 0,
                }),
                ArgSpec::new("tmp", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("y", ArgRole::Out).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile_k2(n),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let j = item.global[0];
                let a = ins.get(0);
                let tmp = ins.get(1);
                let mut acc = 0.0f32;
                for i in 0..n {
                    acc += a[i * n + j] * tmp[i];
                }
                outs.at(0)[j] = acc;
            },
        )
        .with_disjoint_writes(),
    );
    p
}

/// Runs ATAX on `driver` and returns the output buffers (`[y]`).
///
/// # Errors
///
/// Propagates driver errors.
pub fn run(driver: &mut dyn ClDriver, n: usize, seed: u64) -> ClResult<Vec<Vec<f32>>> {
    let a = gen_matrix(n, n, seed);
    let x = gen_vector(n, seed.wrapping_add(1));
    let a_buf = driver.create_buffer(n * n);
    let x_buf = driver.create_buffer(n);
    let tmp_buf = driver.create_buffer(n);
    let y_buf = driver.create_buffer(n);
    driver.write_buffer(a_buf, &a)?;
    driver.write_buffer(x_buf, &x)?;
    let nd = NdRange::d1(n, WG)?;
    driver.enqueue_kernel(
        "atax_k1",
        nd,
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(x_buf),
            KernelArg::Buffer(tmp_buf),
            KernelArg::Usize(n),
        ],
    )?;
    driver.enqueue_kernel(
        "atax_k2",
        nd,
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(tmp_buf),
            KernelArg::Buffer(y_buf),
            KernelArg::Usize(n),
        ],
    )?;
    Ok(vec![driver.read_buffer(y_buf)?])
}

/// Sequential reference implementation (same accumulation order as the
/// kernels, so results match bit for bit).
pub fn reference(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let a = gen_matrix(n, n, seed);
    let x = gen_vector(n, seed.wrapping_add(1));
    let mut tmp = vec![0.0f32; n];
    for i in 0..n {
        let mut acc = 0.0f32;
        for j in 0..n {
            acc += a[i * n + j] * x[j];
        }
        tmp[i] = acc;
    }
    let mut y = vec![0.0f32; n];
    for (j, yj) in y.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for i in 0..n {
            acc += a[i * n + j] * tmp[i];
        }
        *yj = acc;
    }
    vec![y]
}

/// Work-group counts per kernel for problem size `n` (Table 2 reporting).
pub fn workgroups(n: usize) -> Vec<u64> {
    vec![(n / WG) as u64, (n / WG) as u64]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::MachineConfig;
    use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

    #[test]
    fn matches_reference_on_both_devices() {
        let n = 128;
        for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
            let mut rt =
                SingleDeviceRuntime::new(MachineConfig::paper_testbed(), device, program(n));
            let got = run(&mut rt, n, 11).unwrap();
            assert_eq!(got, reference(n, 11), "device {device:?}");
        }
    }

    #[test]
    fn workgroup_counts() {
        assert_eq!(workgroups(4096), vec![256, 256]);
    }
}
