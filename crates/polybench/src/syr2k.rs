//! SYR2K: symmetric rank-2k update `C = α·(A·Bᵀ + B·Aᵀ) + β·C`.
//!
//! Like SYRK but with twice the memory traffic per iteration, which pushes
//! the balance further toward cooperative execution: in the paper ("SYRK2"
//! in the figures) FluidiCL beats the better single device by the largest
//! margin of the suite (≈1.4×) and SOCL-dmda by >2.4× (§9.1, §9.4).

use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::{
    AccessPattern, ArgRole, ArgSpec, ClDriver, ClResult, KernelArg, KernelDef, NdRange, Program,
};

use crate::data::gen_matrix;

/// Default (scaled) problem size.
pub const DEFAULT_N: usize = 384;
/// 2-D work-group edge (8×8, matching SYRK's fine granularity).
pub const WG: usize = 8;

const ALPHA: f32 = 1.5;
const BETA: f32 = 2.5;

fn gpu_efficiency(n: usize) -> f64 {
    // Four streamed rows per work-item: the cache working set is twice
    // SYRK's, so efficiency decays faster with n.
    0.7 / (1.0 + (n as f64 / 640.0))
}

fn profile(n: usize) -> KernelProfile {
    KernelProfile::new("syr2k")
        .flops_per_item(4.0 * n as f64)
        .bytes_read_per_item(16.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(gpu_efficiency(n))
        .cpu_cache_locality(0.8)
        .cpu_simd_friendliness(0.8)
}

/// Builds the SYR2K program for problem size `n`.
pub fn program(n: usize) -> Program {
    let mut p = Program::new();
    p.register(
        KernelDef::new(
            "syr2k",
            vec![
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("b", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("c", ArgRole::InOut).with_access(AccessPattern::Element),
                ArgSpec::new("alpha", ArgRole::Scalar),
                ArgSpec::new("beta", ArgRole::Scalar),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile(n),
            |item, scalars, ins, outs| {
                let alpha = scalars.f32(0);
                let beta = scalars.f32(1);
                let n = scalars.usize(2);
                let i = item.global[1];
                let j = item.global[0];
                let a = ins.get(0);
                let b = ins.get(1);
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a[i * n + k] * b[j * n + k] + b[i * n + k] * a[j * n + k];
                }
                let c = outs.at(0);
                c[i * n + j] = beta * c[i * n + j] + alpha * acc;
            },
        )
        .with_disjoint_writes(),
    );
    p
}

/// Runs SYR2K on `driver`, returning `[c]`.
///
/// # Errors
///
/// Propagates driver errors.
pub fn run(driver: &mut dyn ClDriver, n: usize, seed: u64) -> ClResult<Vec<Vec<f32>>> {
    let a = gen_matrix(n, n, seed);
    let b = gen_matrix(n, n, seed.wrapping_add(1));
    let c0 = gen_matrix(n, n, seed.wrapping_add(2));
    let a_buf = driver.create_buffer(n * n);
    let b_buf = driver.create_buffer(n * n);
    let c_buf = driver.create_buffer(n * n);
    driver.write_buffer(a_buf, &a)?;
    driver.write_buffer(b_buf, &b)?;
    driver.write_buffer(c_buf, &c0)?;
    driver.enqueue_kernel(
        "syr2k",
        NdRange::d2(n, n, WG, WG)?,
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(b_buf),
            KernelArg::Buffer(c_buf),
            KernelArg::F32(ALPHA),
            KernelArg::F32(BETA),
            KernelArg::Usize(n),
        ],
    )?;
    Ok(vec![driver.read_buffer(c_buf)?])
}

/// Sequential reference.
pub fn reference(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let a = gen_matrix(n, n, seed);
    let b = gen_matrix(n, n, seed.wrapping_add(1));
    let mut c = gen_matrix(n, n, seed.wrapping_add(2));
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[i * n + k] * b[j * n + k] + b[i * n + k] * a[j * n + k];
            }
            c[i * n + j] = BETA * c[i * n + j] + ALPHA * acc;
        }
    }
    vec![c]
}

/// Work-group counts per kernel.
pub fn workgroups(n: usize) -> Vec<u64> {
    vec![((n / WG) * (n / WG)) as u64]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::MachineConfig;
    use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

    #[test]
    fn matches_reference_on_both_devices() {
        let n = 64;
        for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
            let mut rt =
                SingleDeviceRuntime::new(MachineConfig::paper_testbed(), device, program(n));
            assert_eq!(run(&mut rt, n, 13).unwrap(), reference(n, 13));
        }
    }

    #[test]
    fn devices_are_closely_matched() {
        let n = DEFAULT_N;
        let m = MachineConfig::paper_testbed();
        let cpu = SingleDeviceRuntime::new(m.clone(), DeviceKind::Cpu, program(n));
        let gpu = SingleDeviceRuntime::new(m, DeviceKind::Gpu, program(n));
        let nd = NdRange::d2(n, n, WG, WG).unwrap();
        let tc = cpu.kernel_duration("syr2k", nd).unwrap().as_nanos() as f64;
        let tg = gpu.kernel_duration("syr2k", nd).unwrap().as_nanos() as f64;
        let ratio = tc.max(tg) / tc.min(tg);
        assert!(ratio < 3.0, "CPU/GPU ratio {ratio} too lopsided for SYR2K");
    }
}
