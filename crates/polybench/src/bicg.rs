//! BICG: the BiCG sub-kernel of BiCGStab — `q = A·p` and `s = Aᵀ·r`.
//!
//! The paper's motivating multi-kernel case (Table 1): each of the two
//! kernels runs faster on a *different* device, so any static whole-kernel
//! device choice loses, and the coherence traffic between kernels must be
//! managed. `bicg_q` (row-wise) favours the GPU; `bicg_s` (column-wise,
//! scattered access) favours the CPU.

use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::{
    AccessPattern, ArgRole, ArgSpec, ClDriver, ClResult, KernelArg, KernelDef, NdRange, Program,
};

use crate::data::{gen_matrix, gen_vector};

/// Default (scaled) problem size (paper: 4576²).
pub const DEFAULT_N: usize = 4096;
/// 1-D work-group size.
pub const WG: usize = 16;

fn profile_q(n: usize) -> KernelProfile {
    KernelProfile::new("bicg_q")
        .flops_per_item(2.0 * n as f64)
        .bytes_read_per_item(4.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.9)
        .cpu_cache_locality(0.9)
        .cpu_simd_friendliness(0.9)
}

fn profile_s(n: usize) -> KernelProfile {
    // Work-item j walks column j: fully scattered on the GPU (stride-n
    // across the warp) and divergent; the CPU's caches cope far better.
    KernelProfile::new("bicg_s")
        .flops_per_item(2.0 * n as f64)
        .bytes_read_per_item(4.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.0)
        .gpu_divergence(0.5)
        .cpu_cache_locality(0.5)
        .cpu_simd_friendliness(0.6)
}

/// Builds the BICG program for problem size `n`.
pub fn program(n: usize) -> Program {
    let mut p = Program::new();
    p.register(
        KernelDef::new(
            "bicg_q",
            vec![
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::Row {
                    dim: 0,
                    width_scalar: 0,
                }),
                ArgSpec::new("p", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("q", ArgRole::Out).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile_q(n),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let i = item.global[0];
                let a = ins.get(0);
                let p = ins.get(1);
                let mut acc = 0.0f32;
                for j in 0..n {
                    acc += a[i * n + j] * p[j];
                }
                outs.at(0)[i] = acc;
            },
        )
        .with_disjoint_writes(),
    );
    p.register(
        KernelDef::new(
            "bicg_s",
            vec![
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::Col {
                    dim: 0,
                    width_scalar: 0,
                }),
                ArgSpec::new("r", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("s", ArgRole::Out).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile_s(n),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let j = item.global[0];
                let a = ins.get(0);
                let r = ins.get(1);
                let mut acc = 0.0f32;
                for i in 0..n {
                    acc += a[i * n + j] * r[i];
                }
                outs.at(0)[j] = acc;
            },
        )
        .with_disjoint_writes(),
    );
    p
}

/// Runs BICG on `driver`, returning `[s, q]`.
///
/// # Errors
///
/// Propagates driver errors.
pub fn run(driver: &mut dyn ClDriver, n: usize, seed: u64) -> ClResult<Vec<Vec<f32>>> {
    let a = gen_matrix(n, n, seed);
    let p = gen_vector(n, seed.wrapping_add(1));
    let r = gen_vector(n, seed.wrapping_add(2));
    let a_buf = driver.create_buffer(n * n);
    let p_buf = driver.create_buffer(n);
    let r_buf = driver.create_buffer(n);
    let q_buf = driver.create_buffer(n);
    let s_buf = driver.create_buffer(n);
    driver.write_buffer(a_buf, &a)?;
    driver.write_buffer(p_buf, &p)?;
    driver.write_buffer(r_buf, &r)?;
    let nd = NdRange::d1(n, WG)?;
    driver.enqueue_kernel(
        "bicg_s",
        nd,
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(r_buf),
            KernelArg::Buffer(s_buf),
            KernelArg::Usize(n),
        ],
    )?;
    driver.enqueue_kernel(
        "bicg_q",
        nd,
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(p_buf),
            KernelArg::Buffer(q_buf),
            KernelArg::Usize(n),
        ],
    )?;
    Ok(vec![driver.read_buffer(s_buf)?, driver.read_buffer(q_buf)?])
}

/// Sequential reference.
pub fn reference(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let a = gen_matrix(n, n, seed);
    let p = gen_vector(n, seed.wrapping_add(1));
    let r = gen_vector(n, seed.wrapping_add(2));
    let mut s = vec![0.0f32; n];
    for (j, sj) in s.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for i in 0..n {
            acc += a[i * n + j] * r[i];
        }
        *sj = acc;
    }
    let mut q = vec![0.0f32; n];
    for (i, qi) in q.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for j in 0..n {
            acc += a[i * n + j] * p[j];
        }
        *qi = acc;
    }
    vec![s, q]
}

/// Work-group counts per kernel.
pub fn workgroups(n: usize) -> Vec<u64> {
    vec![(n / WG) as u64, (n / WG) as u64]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::MachineConfig;
    use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

    #[test]
    fn matches_reference_on_both_devices() {
        let n = 128;
        for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
            let mut rt =
                SingleDeviceRuntime::new(MachineConfig::paper_testbed(), device, program(n));
            assert_eq!(run(&mut rt, n, 3).unwrap(), reference(n, 3));
        }
    }

    #[test]
    fn kernels_prefer_different_devices() {
        // The paper's Table 1 property: bicg_q faster on GPU, bicg_s faster
        // on CPU.
        let n = DEFAULT_N;
        let m = MachineConfig::paper_testbed();
        let cpu = SingleDeviceRuntime::new(m.clone(), DeviceKind::Cpu, program(n));
        let gpu = SingleDeviceRuntime::new(m, DeviceKind::Gpu, program(n));
        let nd = NdRange::d1(n, WG).unwrap();
        let q_cpu = cpu.kernel_duration("bicg_q", nd).unwrap();
        let q_gpu = gpu.kernel_duration("bicg_q", nd).unwrap();
        let s_cpu = cpu.kernel_duration("bicg_s", nd).unwrap();
        let s_gpu = gpu.kernel_duration("bicg_s", nd).unwrap();
        assert!(q_gpu < q_cpu, "bicg_q should be GPU-favoured");
        assert!(s_cpu < s_gpu, "bicg_s should be CPU-favoured");
    }
}
