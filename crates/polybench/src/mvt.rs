//! MVT (extension): `x1 += A·y1` and `x2 += Aᵀ·y2` — two independent
//! matrix-vector kernels over the same matrix, one row-major and one
//! column-major, both with `InOut` result vectors.
//!
//! Not part of the paper's six-benchmark suite; included to exercise
//! FluidiCL on independent kernels sharing a large read-only input and on
//! `InOut` vectors (the diff-merge must preserve unmodified elements).

use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::{
    AccessPattern, ArgRole, ArgSpec, ClDriver, ClResult, KernelArg, KernelDef, NdRange, Program,
};

use crate::data::{gen_matrix, gen_vector};

/// Default (scaled) problem size.
pub const DEFAULT_N: usize = 4096;
/// 1-D work-group size.
pub const WG: usize = 16;

fn profile_x1(n: usize) -> KernelProfile {
    KernelProfile::new("mvt_x1")
        .flops_per_item(2.0 * n as f64)
        .bytes_read_per_item(4.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.9)
        .cpu_cache_locality(0.85)
        .cpu_simd_friendliness(0.85)
}

fn profile_x2(n: usize) -> KernelProfile {
    KernelProfile::new("mvt_x2")
        .flops_per_item(2.0 * n as f64)
        .bytes_read_per_item(4.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.05)
        .gpu_divergence(0.3)
        .cpu_cache_locality(0.45)
        .cpu_simd_friendliness(0.5)
}

/// Builds the MVT program for problem size `n`.
pub fn program(n: usize) -> Program {
    let mut p = Program::new();
    p.register(
        KernelDef::new(
            "mvt_x1",
            vec![
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::Row {
                    dim: 0,
                    width_scalar: 0,
                }),
                ArgSpec::new("y1", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("x1", ArgRole::InOut).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile_x1(n),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let i = item.global[0];
                let a = ins.get(0);
                let y1 = ins.get(1);
                let mut acc = 0.0f32;
                for j in 0..n {
                    acc += a[i * n + j] * y1[j];
                }
                outs.at(0)[i] += acc;
            },
        )
        .with_disjoint_writes(),
    );
    p.register(
        KernelDef::new(
            "mvt_x2",
            vec![
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::Col {
                    dim: 0,
                    width_scalar: 0,
                }),
                ArgSpec::new("y2", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("x2", ArgRole::InOut).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile_x2(n),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let i = item.global[0];
                let a = ins.get(0);
                let y2 = ins.get(1);
                let mut acc = 0.0f32;
                for j in 0..n {
                    acc += a[j * n + i] * y2[j];
                }
                outs.at(0)[i] += acc;
            },
        )
        .with_disjoint_writes(),
    );
    p
}

/// Runs MVT on `driver`, returning `[x1, x2]`.
///
/// # Errors
///
/// Propagates driver errors.
pub fn run(driver: &mut dyn ClDriver, n: usize, seed: u64) -> ClResult<Vec<Vec<f32>>> {
    let a = gen_matrix(n, n, seed);
    let x1 = gen_vector(n, seed.wrapping_add(1));
    let x2 = gen_vector(n, seed.wrapping_add(2));
    let y1 = gen_vector(n, seed.wrapping_add(3));
    let y2 = gen_vector(n, seed.wrapping_add(4));
    let a_buf = driver.create_buffer(n * n);
    let x1_buf = driver.create_buffer(n);
    let x2_buf = driver.create_buffer(n);
    let y1_buf = driver.create_buffer(n);
    let y2_buf = driver.create_buffer(n);
    driver.write_buffer(a_buf, &a)?;
    driver.write_buffer(x1_buf, &x1)?;
    driver.write_buffer(x2_buf, &x2)?;
    driver.write_buffer(y1_buf, &y1)?;
    driver.write_buffer(y2_buf, &y2)?;
    let nd = NdRange::d1(n, WG)?;
    driver.enqueue_kernel(
        "mvt_x1",
        nd,
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(y1_buf),
            KernelArg::Buffer(x1_buf),
            KernelArg::Usize(n),
        ],
    )?;
    driver.enqueue_kernel(
        "mvt_x2",
        nd,
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(y2_buf),
            KernelArg::Buffer(x2_buf),
            KernelArg::Usize(n),
        ],
    )?;
    Ok(vec![
        driver.read_buffer(x1_buf)?,
        driver.read_buffer(x2_buf)?,
    ])
}

/// Sequential reference.
pub fn reference(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let a = gen_matrix(n, n, seed);
    let mut x1 = gen_vector(n, seed.wrapping_add(1));
    let mut x2 = gen_vector(n, seed.wrapping_add(2));
    let y1 = gen_vector(n, seed.wrapping_add(3));
    let y2 = gen_vector(n, seed.wrapping_add(4));
    for (i, v) in x1.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for j in 0..n {
            acc += a[i * n + j] * y1[j];
        }
        *v += acc;
    }
    for (i, v) in x2.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for j in 0..n {
            acc += a[j * n + i] * y2[j];
        }
        *v += acc;
    }
    vec![x1, x2]
}

/// Work-group counts per kernel.
pub fn workgroups(n: usize) -> Vec<u64> {
    vec![(n / WG) as u64, (n / WG) as u64]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::MachineConfig;
    use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

    #[test]
    fn matches_reference_on_both_devices() {
        let n = 128;
        for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
            let mut rt =
                SingleDeviceRuntime::new(MachineConfig::paper_testbed(), device, program(n));
            assert_eq!(run(&mut rt, n, 21).unwrap(), reference(n, 21));
        }
    }

    #[test]
    fn kernels_prefer_different_devices() {
        let n = DEFAULT_N;
        let m = MachineConfig::paper_testbed();
        let cpu = SingleDeviceRuntime::new(m.clone(), DeviceKind::Cpu, program(n));
        let gpu = SingleDeviceRuntime::new(m, DeviceKind::Gpu, program(n));
        let nd = NdRange::d1(n, WG).unwrap();
        assert!(
            gpu.kernel_duration("mvt_x1", nd).unwrap() < cpu.kernel_duration("mvt_x1", nd).unwrap()
        );
        assert!(
            cpu.kernel_duration("mvt_x2", nd).unwrap() < gpu.kernel_duration("mvt_x2", nd).unwrap()
        );
    }
}
