//! # fluidicl-polybench — the paper's benchmark suite
//!
//! Re-implementations of the six Polybench applications the FluidiCL paper
//! evaluates (Table 2): ATAX, BICG, CORR, GESUMMV, SYRK and SYR2K. Each
//! module provides the kernel program (bodies + cost profiles), a host
//! driver written against [`fluidicl_vcl::ClDriver`] so the identical
//! program runs on every runtime, a bit-exact sequential reference, and
//! seeded input generators.
//!
//! Problem sizes are scaled down from the paper's (functional execution of
//! 8672² matrices would dominate wall-clock time); the device cost profiles
//! are calibrated so the *relative* CPU/GPU behaviour matches the paper's
//! large-input observations — see `DESIGN.md` for the substitution
//! rationale and `EXPERIMENTS.md` for the per-benchmark mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atax;
pub mod batchmm;
pub mod bicg;
pub mod corr;
pub mod data;
pub mod gemm;
pub mod gesummv;
pub mod mm2;
pub mod mvt;
pub mod spec;
pub mod syr2k;
pub mod syrk;

pub use spec::{
    all_benchmarks, benchmarks, extended_benchmarks, find, outputs_match, pipeline_benchmark,
    BenchmarkSpec, RunFn,
};
