//! 2MM (extension): `D = α·(A·B)·C + β·D` as two chained matrix products.
//!
//! Not part of the paper's six-benchmark suite; included because the second
//! kernel consumes the first one's *entire* output, which stresses the
//! cross-kernel coherence machinery hardest: the CPU scheduler must wait
//! for the device-to-host thread of kernel 1 (buffer versions, paper §5.3)
//! while the GPU proceeds immediately from its merged copy.

use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::{
    AccessPattern, ArgRole, ArgSpec, ClDriver, ClResult, KernelArg, KernelDef, NdRange, Program,
};

use crate::data::gen_matrix;

/// Default (scaled) problem size.
pub const DEFAULT_N: usize = 256;
/// 2-D work-group edge.
pub const WG: usize = 8;

const ALPHA: f32 = 1.5;
const BETA: f32 = 2.5;

fn profile(name: &str, n: usize) -> KernelProfile {
    KernelProfile::new(name)
        .flops_per_item(2.0 * n as f64)
        .bytes_read_per_item(8.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.9 / (1.0 + (n as f64 / 520.0).powf(1.2)))
        .cpu_cache_locality(0.8)
        .cpu_simd_friendliness(0.85)
}

/// Builds the 2MM program for problem size `n`.
pub fn program(n: usize) -> Program {
    let mut p = Program::new();
    p.register(
        KernelDef::new(
            "mm2_tmp",
            vec![
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::Row {
                    dim: 1,
                    width_scalar: 1,
                }),
                ArgSpec::new("b", ArgRole::In).with_access(AccessPattern::Col {
                    dim: 0,
                    width_scalar: 1,
                }),
                ArgSpec::new("tmp", ArgRole::Out).with_access(AccessPattern::Element),
                ArgSpec::new("alpha", ArgRole::Scalar),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile("mm2_tmp", n),
            |item, scalars, ins, outs| {
                let alpha = scalars.f32(0);
                let n = scalars.usize(1);
                let i = item.global[1];
                let j = item.global[0];
                let a = ins.get(0);
                let b = ins.get(1);
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a[i * n + k] * b[k * n + j];
                }
                outs.at(0)[i * n + j] = alpha * acc;
            },
        )
        .with_disjoint_writes(),
    );
    p.register(
        KernelDef::new(
            "mm2_d",
            vec![
                ArgSpec::new("tmp", ArgRole::In).with_access(AccessPattern::Row {
                    dim: 1,
                    width_scalar: 1,
                }),
                ArgSpec::new("c", ArgRole::In).with_access(AccessPattern::Col {
                    dim: 0,
                    width_scalar: 1,
                }),
                ArgSpec::new("d", ArgRole::InOut).with_access(AccessPattern::Element),
                ArgSpec::new("beta", ArgRole::Scalar),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile("mm2_d", n),
            |item, scalars, ins, outs| {
                let beta = scalars.f32(0);
                let n = scalars.usize(1);
                let i = item.global[1];
                let j = item.global[0];
                let tmp = ins.get(0);
                let c = ins.get(1);
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += tmp[i * n + k] * c[k * n + j];
                }
                let d = outs.at(0);
                d[i * n + j] = beta * d[i * n + j] + acc;
            },
        )
        .with_disjoint_writes(),
    );
    p
}

/// Runs 2MM on `driver`, returning `[d]`.
///
/// # Errors
///
/// Propagates driver errors.
pub fn run(driver: &mut dyn ClDriver, n: usize, seed: u64) -> ClResult<Vec<Vec<f32>>> {
    let a = gen_matrix(n, n, seed);
    let b = gen_matrix(n, n, seed.wrapping_add(1));
    let c = gen_matrix(n, n, seed.wrapping_add(2));
    let d0 = gen_matrix(n, n, seed.wrapping_add(3));
    let a_buf = driver.create_buffer(n * n);
    let b_buf = driver.create_buffer(n * n);
    let c_buf = driver.create_buffer(n * n);
    let d_buf = driver.create_buffer(n * n);
    let tmp_buf = driver.create_buffer(n * n);
    driver.write_buffer(a_buf, &a)?;
    driver.write_buffer(b_buf, &b)?;
    driver.write_buffer(c_buf, &c)?;
    driver.write_buffer(d_buf, &d0)?;
    let nd = NdRange::d2(n, n, WG, WG)?;
    driver.enqueue_kernel(
        "mm2_tmp",
        nd,
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(b_buf),
            KernelArg::Buffer(tmp_buf),
            KernelArg::F32(ALPHA),
            KernelArg::Usize(n),
        ],
    )?;
    driver.enqueue_kernel(
        "mm2_d",
        nd,
        &[
            KernelArg::Buffer(tmp_buf),
            KernelArg::Buffer(c_buf),
            KernelArg::Buffer(d_buf),
            KernelArg::F32(BETA),
            KernelArg::Usize(n),
        ],
    )?;
    Ok(vec![driver.read_buffer(d_buf)?])
}

/// Sequential reference.
pub fn reference(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let a = gen_matrix(n, n, seed);
    let b = gen_matrix(n, n, seed.wrapping_add(1));
    let c = gen_matrix(n, n, seed.wrapping_add(2));
    let mut d = gen_matrix(n, n, seed.wrapping_add(3));
    let mut tmp = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            tmp[i * n + j] = ALPHA * acc;
        }
    }
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += tmp[i * n + k] * c[k * n + j];
            }
            d[i * n + j] = BETA * d[i * n + j] + acc;
        }
    }
    vec![d]
}

/// Work-group counts per kernel.
pub fn workgroups(n: usize) -> Vec<u64> {
    let wgs = ((n / WG) * (n / WG)) as u64;
    vec![wgs, wgs]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::MachineConfig;
    use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

    #[test]
    fn matches_reference_on_both_devices() {
        let n = 64;
        for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
            let mut rt =
                SingleDeviceRuntime::new(MachineConfig::paper_testbed(), device, program(n));
            assert_eq!(run(&mut rt, n, 29).unwrap(), reference(n, 29));
        }
    }

    #[test]
    fn two_dependent_kernels() {
        let p = program(DEFAULT_N);
        assert_eq!(p.len(), 2);
        assert_eq!(workgroups(DEFAULT_N), vec![1024, 1024]);
    }
}
