//! BATCHMM (extension): `G = Σᵢ Aᵢ·Bᵢ` over [`CHAINS`] independent matrix
//! products feeding one elementwise reduction.
//!
//! Not part of the paper's six-benchmark suite — this is the kernel-graph
//! scheduling workload: the products share no buffers, so the dependence
//! DAG is a [`CHAINS`]-wide fan-in and a graph-scheduling runtime may run
//! sibling products on different devices concurrently, while the final sum
//! carries a true dependence on every product. A serial runtime executes
//! the same five launches back to back; both orders produce bit-identical
//! results.
//!
//! BATCHMM is exposed through [`spec`] only — it is deliberately **not**
//! registered in [`crate::all_benchmarks`], so pre-existing sweep outputs
//! keep their exact row set.

use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::{
    AccessPattern, ArgRole, ArgSpec, ClDriver, ClResult, KernelArg, KernelDef, NdRange, Program,
};

use crate::data::gen_matrix;
use crate::spec::BenchmarkSpec;

/// Default (scaled) problem size (matrix edge).
pub const DEFAULT_N: usize = 128;
/// 2-D work-group edge.
pub const WG: usize = 8;
/// Number of independent product chains feeding the reduction.
pub const CHAINS: usize = 4;

fn mul_profile(n: usize) -> KernelProfile {
    KernelProfile::new("batchmm_mul")
        .flops_per_item(2.0 * n as f64)
        .bytes_read_per_item(8.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(0.9 / (1.0 + (n as f64 / 520.0).powf(1.2)))
        .cpu_cache_locality(0.8)
        .cpu_simd_friendliness(0.85)
}

fn sum_profile() -> KernelProfile {
    KernelProfile::new("batchmm_sum")
        .flops_per_item(CHAINS as f64)
        .bytes_read_per_item(4.0 * CHAINS as f64)
        .bytes_written_per_item(4.0)
        .cpu_cache_locality(0.95)
        .cpu_simd_friendliness(0.95)
}

/// Builds the BATCHMM program for problem size `n`.
pub fn program(n: usize) -> Program {
    let mut p = Program::new();
    p.register(
        KernelDef::new(
            "batchmm_mul",
            vec![
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::Row {
                    dim: 1,
                    width_scalar: 0,
                }),
                ArgSpec::new("b", ArgRole::In).with_access(AccessPattern::Col {
                    dim: 0,
                    width_scalar: 0,
                }),
                ArgSpec::new("e", ArgRole::Out).with_access(AccessPattern::Element),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            mul_profile(n),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let i = item.global[1];
                let j = item.global[0];
                let a = ins.get(0);
                let b = ins.get(1);
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a[i * n + k] * b[k * n + j];
                }
                outs.at(0)[i * n + j] = acc;
            },
        )
        .with_disjoint_writes(),
    );
    p.register(
        KernelDef::new(
            "batchmm_sum",
            vec![
                ArgSpec::new("e0", ArgRole::In).with_access(AccessPattern::Element),
                ArgSpec::new("e1", ArgRole::In).with_access(AccessPattern::Element),
                ArgSpec::new("e2", ArgRole::In).with_access(AccessPattern::Element),
                ArgSpec::new("e3", ArgRole::In).with_access(AccessPattern::Element),
                ArgSpec::new("g", ArgRole::Out).with_access(AccessPattern::Element),
            ],
            sum_profile(),
            |item, _, ins, outs| {
                let at = item.global_linear();
                outs.at(0)[at] = ins.get(0)[at] + ins.get(1)[at] + ins.get(2)[at] + ins.get(3)[at];
            },
        )
        .with_disjoint_writes(),
    );
    p
}

/// Runs BATCHMM on `driver`, returning `[g]`.
///
/// # Errors
///
/// Propagates driver errors.
pub fn run(driver: &mut dyn ClDriver, n: usize, seed: u64) -> ClResult<Vec<Vec<f32>>> {
    let nd = NdRange::d2(n, n, WG, WG)?;
    let mut e_bufs = Vec::with_capacity(CHAINS);
    let mut writes = Vec::with_capacity(CHAINS);
    for c in 0..CHAINS as u64 {
        let a = gen_matrix(n, n, seed.wrapping_add(2 * c));
        let b = gen_matrix(n, n, seed.wrapping_add(2 * c + 1));
        let a_buf = driver.create_buffer(n * n);
        let b_buf = driver.create_buffer(n * n);
        let e_buf = driver.create_buffer(n * n);
        writes.push((a_buf, a, b_buf, b));
        e_bufs.push(e_buf);
    }
    let g_buf = driver.create_buffer(n * n);
    for (a_buf, a, b_buf, b) in &writes {
        driver.write_buffer(*a_buf, a)?;
        driver.write_buffer(*b_buf, b)?;
    }
    for (c, e_buf) in e_bufs.iter().enumerate() {
        let (a_buf, _, b_buf, _) = &writes[c];
        driver.enqueue_kernel(
            "batchmm_mul",
            nd,
            &[
                KernelArg::Buffer(*a_buf),
                KernelArg::Buffer(*b_buf),
                KernelArg::Buffer(*e_buf),
                KernelArg::Usize(n),
            ],
        )?;
    }
    driver.enqueue_kernel(
        "batchmm_sum",
        nd,
        &[
            KernelArg::Buffer(e_bufs[0]),
            KernelArg::Buffer(e_bufs[1]),
            KernelArg::Buffer(e_bufs[2]),
            KernelArg::Buffer(e_bufs[3]),
            KernelArg::Buffer(g_buf),
        ],
    )?;
    Ok(vec![driver.read_buffer(g_buf)?])
}

/// Sequential reference.
pub fn reference(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut g = vec![0.0f32; n * n];
    for c in 0..CHAINS as u64 {
        let a = gen_matrix(n, n, seed.wrapping_add(2 * c));
        let b = gen_matrix(n, n, seed.wrapping_add(2 * c + 1));
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a[i * n + k] * b[k * n + j];
                }
                g[i * n + j] += acc;
            }
        }
    }
    vec![g]
}

/// Work-group counts per kernel.
pub fn workgroups(n: usize) -> Vec<u64> {
    let wgs = ((n / WG) * (n / WG)) as u64;
    vec![wgs; CHAINS + 1]
}

/// The BATCHMM spec handle (standalone — not in the sweep registries).
pub fn spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "BATCHMM",
        default_n: DEFAULT_N,
        kernel_count: CHAINS + 1,
        program,
        run,
        reference,
        workgroups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::MachineConfig;
    use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

    #[test]
    fn matches_reference_on_both_devices() {
        let n = 32;
        for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
            let mut rt =
                SingleDeviceRuntime::new(MachineConfig::paper_testbed(), device, program(n));
            assert_eq!(run(&mut rt, n, 29).unwrap(), reference(n, 29));
        }
    }

    #[test]
    fn reduction_sums_independent_products() {
        // The reference of the summed batch equals the sum of 1-chain
        // references computed by hand on a tiny size.
        let n = 8;
        let got = &reference(n, 7)[0];
        let mut want = vec![0.0f32; n * n];
        for c in 0..CHAINS as u64 {
            let a = gen_matrix(n, n, 7u64.wrapping_add(2 * c));
            let b = gen_matrix(n, n, 7u64.wrapping_add(2 * c + 1));
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for k in 0..n {
                        acc += a[i * n + k] * b[k * n + j];
                    }
                    want[i * n + j] += acc;
                }
            }
        }
        assert_eq!(got, &want);
        assert_eq!(workgroups(DEFAULT_N).len(), CHAINS + 1);
        assert_eq!(spec().kernel_count, CHAINS + 1);
    }
}
