//! SYRK: symmetric rank-k update `C = α·A·Aᵀ + β·C`.
//!
//! The paper's star case for cooperative execution: the best static split
//! lies strictly between the devices (Figure 2) and *moves with the input
//! size* (Figure 3 — roughly 60/40 GPU/CPU for small inputs, 40/60 for
//! large ones, as the working set outgrows the GPU's cache). FluidiCL beats
//! the better single device by a wide margin and even beats OracleSP, whose
//! 10%-granular static split cannot express the fine-grained optimum
//! (§9.1–§9.2).

use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::{
    AccessPattern, ArgRole, ArgSpec, ClDriver, ClResult, KernelArg, KernelDef, NdRange, Program,
};

use crate::data::gen_matrix;

/// Default (scaled) problem size.
pub const DEFAULT_N: usize = 384;
/// 2-D work-group edge (8×8 work-items per group — many small groups give
/// the runtime fine distribution granularity, as in the paper's Table 2).
pub const WG: usize = 8;

const ALPHA: f32 = 1.5;
const BETA: f32 = 2.5;

/// GPU cache efficiency decays as the per-wave working set outgrows the
/// L2: for small `n` two matrix rows per work-item stay resident, for large
/// `n` every loop iteration misses. This is what moves SYRK's optimal
/// split with input size (paper Figure 3).
fn gpu_efficiency(n: usize) -> f64 {
    // ≈0.66 at n=192, 0.47 at n=384, 0.26 at n=768: the two streamed rows
    // per work-item stop fitting the C2070's small L2 as n grows.
    0.85 / (1.0 + (n as f64 / 450.0).powf(1.3))
}

fn profile(n: usize) -> KernelProfile {
    KernelProfile::new("syrk")
        .flops_per_item(2.0 * n as f64)
        .bytes_read_per_item(8.0 * n as f64)
        .bytes_written_per_item(4.0)
        .inner_loop_trips(n as u32)
        .gpu_coalescing(gpu_efficiency(n))
        .cpu_cache_locality(0.85)
        .cpu_simd_friendliness(0.8)
}

/// Builds the SYRK program for problem size `n`.
pub fn program(n: usize) -> Program {
    let mut p = Program::new();
    p.register(
        KernelDef::new(
            "syrk",
            vec![
                // Each item reads rows i and j of `a`; across a wave that
                // gathers from arbitrary rows, so declare the whole buffer.
                ArgSpec::new("a", ArgRole::In).with_access(AccessPattern::WholeBuffer),
                ArgSpec::new("c", ArgRole::InOut).with_access(AccessPattern::Element),
                ArgSpec::new("alpha", ArgRole::Scalar),
                ArgSpec::new("beta", ArgRole::Scalar),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            profile(n),
            |item, scalars, ins, outs| {
                let alpha = scalars.f32(0);
                let beta = scalars.f32(1);
                let n = scalars.usize(2);
                let i = item.global[1];
                let j = item.global[0];
                let a = ins.get(0);
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a[i * n + k] * a[j * n + k];
                }
                let c = outs.at(0);
                c[i * n + j] = beta * c[i * n + j] + alpha * acc;
            },
        )
        .with_disjoint_writes(),
    );
    p
}

/// Runs SYRK on `driver`, returning `[c]`.
///
/// # Errors
///
/// Propagates driver errors.
pub fn run(driver: &mut dyn ClDriver, n: usize, seed: u64) -> ClResult<Vec<Vec<f32>>> {
    let a = gen_matrix(n, n, seed);
    let c0 = gen_matrix(n, n, seed.wrapping_add(1));
    let a_buf = driver.create_buffer(n * n);
    let c_buf = driver.create_buffer(n * n);
    driver.write_buffer(a_buf, &a)?;
    driver.write_buffer(c_buf, &c0)?;
    driver.enqueue_kernel(
        "syrk",
        NdRange::d2(n, n, WG, WG)?,
        &[
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(c_buf),
            KernelArg::F32(ALPHA),
            KernelArg::F32(BETA),
            KernelArg::Usize(n),
        ],
    )?;
    Ok(vec![driver.read_buffer(c_buf)?])
}

/// Sequential reference.
pub fn reference(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let a = gen_matrix(n, n, seed);
    let mut c = gen_matrix(n, n, seed.wrapping_add(1));
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[i * n + k] * a[j * n + k];
            }
            c[i * n + j] = BETA * c[i * n + j] + ALPHA * acc;
        }
    }
    vec![c]
}

/// Work-group counts per kernel.
pub fn workgroups(n: usize) -> Vec<u64> {
    vec![((n / WG) * (n / WG)) as u64]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::MachineConfig;
    use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

    #[test]
    fn matches_reference_on_both_devices() {
        let n = 64;
        for device in [DeviceKind::Cpu, DeviceKind::Gpu] {
            let mut rt =
                SingleDeviceRuntime::new(MachineConfig::paper_testbed(), device, program(n));
            assert_eq!(run(&mut rt, n, 9).unwrap(), reference(n, 9));
        }
    }

    #[test]
    fn gpu_efficiency_decays_with_size() {
        assert!(gpu_efficiency(128) > gpu_efficiency(1024));
    }

    #[test]
    fn devices_are_comparable_at_default_size() {
        // SYRK is the cooperative sweet spot: neither device dominates by
        // more than ~4×, so splitting wins.
        let n = DEFAULT_N;
        let m = MachineConfig::paper_testbed();
        let cpu = SingleDeviceRuntime::new(m.clone(), DeviceKind::Cpu, program(n));
        let gpu = SingleDeviceRuntime::new(m, DeviceKind::Gpu, program(n));
        let nd = NdRange::d2(n, n, WG, WG).unwrap();
        let tc = cpu.kernel_duration("syrk", nd).unwrap().as_nanos() as f64;
        let tg = gpu.kernel_duration("syrk", nd).unwrap().as_nanos() as f64;
        let ratio = tc.max(tg) / tc.min(tg);
        assert!(ratio < 4.0, "CPU/GPU ratio {ratio} too lopsided for SYRK");
    }
}
