//! Deterministic input generation for the benchmark suite.
//!
//! Inputs are seeded so every runtime (CPU-only, GPU-only, FluidiCL, static
//! splits, SOCL) computes over identical data and can be validated against
//! the same sequential reference, bit for bit. Generation uses the in-tree
//! [`SplitMix64`] generator so the streams never depend on an external
//! crate's version.

use fluidicl_des::SplitMix64;

/// Generates an `rows × cols` matrix (row-major) of values in `[-1, 1)`.
pub fn gen_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..rows * cols).map(|_| rng.range_f32(-1.0, 1.0)).collect()
}

/// Generates a vector of `len` values in `[-1, 1)`.
pub fn gen_vector(len: usize, seed: u64) -> Vec<f32> {
    gen_matrix(len, 1, seed)
}

/// Generates strictly positive values in `[0.1, 1.1)` (for inputs where
/// zero variance or cancellation would be degenerate, e.g. CORR).
pub fn gen_positive(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| rng.range_f32(0.1, 1.1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(gen_matrix(8, 8, 42), gen_matrix(8, 8, 42));
        assert_eq!(gen_vector(16, 7), gen_vector(16, 7));
        assert_eq!(gen_positive(16, 7), gen_positive(16, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(gen_matrix(8, 8, 1), gen_matrix(8, 8, 2));
    }

    #[test]
    fn ranges_hold() {
        assert!(gen_matrix(100, 1, 3)
            .iter()
            .all(|&v| (-1.0..1.0).contains(&v)));
        assert!(gen_positive(100, 3)
            .iter()
            .all(|&v| (0.1..1.1).contains(&v)));
    }

    #[test]
    fn sizes_are_respected() {
        assert_eq!(gen_matrix(3, 5, 0).len(), 15);
        assert_eq!(gen_vector(9, 0).len(), 9);
    }
}
