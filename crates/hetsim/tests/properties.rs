//! Property-based tests of the performance models: the monotonicity and
//! ordering laws the co-execution protocol's decisions depend on. A model
//! violating these could make the simulated FluidiCL take nonsensical
//! decisions without failing any functional test.

use fluidicl_des::SimDuration;
use fluidicl_hetsim::{AbortMode, CpuModel, GpuModel, KernelProfile, LinkModel, MachineConfig};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = KernelProfile> {
    (
        1.0f64..8192.0,
        0.0f64..8192.0,
        1u32..1024,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
    )
        .prop_map(|(fl, br, trips, co, dv, lo, si)| {
            KernelProfile::new("p")
                .flops_per_item(fl)
                .bytes_read_per_item(br)
                .bytes_written_per_item(4.0)
                .inner_loop_trips(trips)
                .gpu_coalescing(co)
                .gpu_divergence(dv)
                .cpu_cache_locality(lo)
                .cpu_simd_friendliness(si)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// GPU range time is monotone in the work-group count.
    #[test]
    fn gpu_range_time_monotone_in_wgs(
        p in arb_profile(),
        items in 1u64..1024,
        a in 0u64..5000,
        b in 0u64..5000,
    ) {
        let gpu = GpuModel::tesla_c2070_like();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(
            gpu.range_time(&p, items, lo, AbortMode::None)
                <= gpu.range_time(&p, items, hi, AbortMode::None)
        );
    }

    /// More arithmetic per item never makes a kernel faster, on either
    /// device.
    #[test]
    fn more_flops_never_faster(
        p in arb_profile(),
        items in 1u64..1024,
        extra in 1.0f64..4096.0,
    ) {
        let heavier = p.clone().flops_per_item(p.flops() + extra);
        let gpu = GpuModel::tesla_c2070_like();
        let cpu = CpuModel::xeon_w3550_like();
        prop_assert!(
            gpu.wg_time(&p, items, AbortMode::None)
                <= gpu.wg_time(&heavier, items, AbortMode::None)
        );
        prop_assert!(cpu.wg_time(&p, items) <= cpu.wg_time(&heavier, items));
    }

    /// Better coalescing never hurts the GPU; better locality never hurts
    /// the CPU.
    #[test]
    fn friction_factors_are_monotone(
        p in arb_profile(),
        items in 1u64..1024,
        bump in 0.0f64..=1.0,
    ) {
        let gpu = GpuModel::tesla_c2070_like();
        let cpu = CpuModel::xeon_w3550_like();
        let better_coal = p.clone().gpu_coalescing((p.coalescing() + bump).min(1.0));
        prop_assert!(
            gpu.wg_time(&better_coal, items, AbortMode::None)
                <= gpu.wg_time(&p, items, AbortMode::None)
        );
        let better_loc = p.clone().cpu_cache_locality((p.cache_locality() + bump).min(1.0));
        prop_assert!(cpu.wg_time(&better_loc, items) <= cpu.wg_time(&p, items));
    }

    /// The Figure-15 ordering holds for every profile: the unrolled-abort
    /// kernel is never slower than the raw in-loop one, and never slower
    /// than the dilution-free baseline by more than the check overhead.
    #[test]
    fn abort_mode_ordering(p in arb_profile(), items in 1u64..1024) {
        let gpu = GpuModel::tesla_c2070_like();
        let unrolled = gpu.wg_time(&p, items, AbortMode::InLoopUnrolled);
        let raw = gpu.wg_time(&p, items, AbortMode::InLoop);
        prop_assert!(unrolled <= raw, "manual unrolling must never lose to raw checks");
    }

    /// Early-abort modes always expose a finite, positive quantum.
    #[test]
    fn abort_quantum_is_positive(p in arb_profile(), items in 1u64..1024) {
        let gpu = GpuModel::tesla_c2070_like();
        for mode in [AbortMode::InLoop, AbortMode::InLoopUnrolled] {
            let q = gpu.abort_quantum(&p, items, mode).expect("quantum exists");
            prop_assert!(!q.is_zero());
            prop_assert!(q <= gpu.wg_time(&p, items, mode).max(SimDuration::from_nanos(1)));
        }
        prop_assert!(gpu.abort_quantum(&p, items, AbortMode::None).is_none());
        prop_assert!(gpu.abort_quantum(&p, items, AbortMode::WorkGroupStart).is_none());
    }

    /// CPU subkernel time is monotone in the allocation and always at least
    /// the launch overhead.
    #[test]
    fn cpu_subkernel_monotone(
        p in arb_profile(),
        items in 1u64..1024,
        a in 1u64..2000,
        b in 1u64..2000,
        split in any::<bool>(),
    ) {
        let cpu = CpuModel::xeon_w3550_like();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(
            cpu.subkernel_time(&p, items, lo, split) <= cpu.subkernel_time(&p, items, hi, split)
        );
        prop_assert!(cpu.subkernel_time(&p, items, lo, split) >= cpu.launch_overhead());
    }

    /// Work-group splitting never hurts (it only engages below the thread
    /// count, where it strictly helps up to its overhead bound).
    #[test]
    fn splitting_never_hurts(p in arb_profile(), items in 1u64..1024, wgs in 1u64..64) {
        let cpu = CpuModel::xeon_w3550_like();
        let with = cpu.subkernel_time(&p, items, wgs, true);
        let without = cpu.subkernel_time(&p, items, wgs, false);
        // Splitting spreads wgs·wg_time over all threads with a 12%
        // overhead; below the thread count that is always a win.
        prop_assert!(with <= without);
    }

    /// Link transfers are monotone in size and dominated by latency at zero
    /// bytes.
    #[test]
    fn link_transfer_monotone(a in 0u64..1 << 30, b in 0u64..1 << 30) {
        let link = LinkModel::pcie2_x16();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
        prop_assert_eq!(link.transfer_time(0), link.latency());
    }

    /// The three machine presets all satisfy basic sanity: positive rates
    /// and identical CPUs (the migration experiments vary only the GPU
    /// side).
    #[test]
    fn machine_presets_sane(_x in 0u8..1) {
        for m in [
            MachineConfig::paper_testbed(),
            MachineConfig::weak_gpu_laptop(),
            MachineConfig::big_gpu_node(),
        ] {
            prop_assert!(m.gpu.peak_flops_per_ns() > 0.0);
            prop_assert!(m.gpu.peak_mem_bytes_per_ns() > 0.0);
            prop_assert!(m.h2d.bandwidth() > 0.0);
            prop_assert_eq!(m.cpu.threads(), 8);
        }
    }
}
