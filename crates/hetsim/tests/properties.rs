//! Randomized property tests of the performance models: the monotonicity
//! and ordering laws the co-execution protocol's decisions depend on. A
//! model violating these could make the simulated FluidiCL take nonsensical
//! decisions without failing any functional test. Cases come from the
//! in-tree deterministic generator so failures replay bit-for-bit.

use fluidicl_des::{SimDuration, SplitMix64};
use fluidicl_hetsim::{AbortMode, CpuModel, GpuModel, KernelProfile, LinkModel, MachineConfig};

const CASES: u64 = 128;

fn arb_profile(rng: &mut SplitMix64) -> KernelProfile {
    KernelProfile::new("p")
        .flops_per_item(rng.range_f64(1.0, 8192.0))
        .bytes_read_per_item(rng.range_f64(0.0, 8192.0))
        .bytes_written_per_item(4.0)
        .inner_loop_trips(rng.range_u64(1, 1024) as u32)
        .gpu_coalescing(rng.next_f64())
        .gpu_divergence(rng.next_f64())
        .cpu_cache_locality(rng.next_f64())
        .cpu_simd_friendliness(rng.next_f64())
}

/// GPU range time is monotone in the work-group count.
#[test]
fn gpu_range_time_monotone_in_wgs() {
    let mut rng = SplitMix64::new(0x4E51);
    let gpu = GpuModel::tesla_c2070_like();
    for _ in 0..CASES {
        let p = arb_profile(&mut rng);
        let items = rng.range_u64(1, 1024);
        let a = rng.range_u64(0, 5000);
        let b = rng.range_u64(0, 5000);
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(
            gpu.range_time(&p, items, lo, AbortMode::None)
                <= gpu.range_time(&p, items, hi, AbortMode::None)
        );
    }
}

/// More arithmetic per item never makes a kernel faster, on either device.
#[test]
fn more_flops_never_faster() {
    let mut rng = SplitMix64::new(0x4E52);
    let gpu = GpuModel::tesla_c2070_like();
    let cpu = CpuModel::xeon_w3550_like();
    for _ in 0..CASES {
        let p = arb_profile(&mut rng);
        let items = rng.range_u64(1, 1024);
        let extra = rng.range_f64(1.0, 4096.0);
        let heavier = p.clone().flops_per_item(p.flops() + extra);
        assert!(
            gpu.wg_time(&p, items, AbortMode::None)
                <= gpu.wg_time(&heavier, items, AbortMode::None)
        );
        assert!(cpu.wg_time(&p, items) <= cpu.wg_time(&heavier, items));
    }
}

/// Better coalescing never hurts the GPU; better locality never hurts the
/// CPU.
#[test]
fn friction_factors_are_monotone() {
    let mut rng = SplitMix64::new(0x4E53);
    let gpu = GpuModel::tesla_c2070_like();
    let cpu = CpuModel::xeon_w3550_like();
    for _ in 0..CASES {
        let p = arb_profile(&mut rng);
        let items = rng.range_u64(1, 1024);
        let bump = rng.next_f64();
        let better_coal = p.clone().gpu_coalescing((p.coalescing() + bump).min(1.0));
        assert!(
            gpu.wg_time(&better_coal, items, AbortMode::None)
                <= gpu.wg_time(&p, items, AbortMode::None)
        );
        let better_loc = p
            .clone()
            .cpu_cache_locality((p.cache_locality() + bump).min(1.0));
        assert!(cpu.wg_time(&better_loc, items) <= cpu.wg_time(&p, items));
    }
}

/// The Figure-15 ordering holds for every profile: the unrolled-abort
/// kernel is never slower than the raw in-loop one.
#[test]
fn abort_mode_ordering() {
    let mut rng = SplitMix64::new(0x4E54);
    let gpu = GpuModel::tesla_c2070_like();
    for _ in 0..CASES {
        let p = arb_profile(&mut rng);
        let items = rng.range_u64(1, 1024);
        let unrolled = gpu.wg_time(&p, items, AbortMode::InLoopUnrolled);
        let raw = gpu.wg_time(&p, items, AbortMode::InLoop);
        assert!(
            unrolled <= raw,
            "manual unrolling must never lose to raw checks"
        );
    }
}

/// Early-abort modes always expose a finite, positive quantum.
#[test]
fn abort_quantum_is_positive() {
    let mut rng = SplitMix64::new(0x4E55);
    let gpu = GpuModel::tesla_c2070_like();
    for _ in 0..CASES {
        let p = arb_profile(&mut rng);
        let items = rng.range_u64(1, 1024);
        for mode in [AbortMode::InLoop, AbortMode::InLoopUnrolled] {
            let q = gpu.abort_quantum(&p, items, mode).expect("quantum exists");
            assert!(!q.is_zero());
            assert!(q <= gpu.wg_time(&p, items, mode).max(SimDuration::from_nanos(1)));
        }
        assert!(gpu.abort_quantum(&p, items, AbortMode::None).is_none());
        assert!(gpu
            .abort_quantum(&p, items, AbortMode::WorkGroupStart)
            .is_none());
    }
}

/// CPU subkernel time is monotone in the allocation and always at least
/// the launch overhead.
#[test]
fn cpu_subkernel_monotone() {
    let mut rng = SplitMix64::new(0x4E56);
    let cpu = CpuModel::xeon_w3550_like();
    for _ in 0..CASES {
        let p = arb_profile(&mut rng);
        let items = rng.range_u64(1, 1024);
        let a = rng.range_u64(1, 2000);
        let b = rng.range_u64(1, 2000);
        let split = rng.next_bool();
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(
            cpu.subkernel_time(&p, items, lo, split) <= cpu.subkernel_time(&p, items, hi, split)
        );
        assert!(cpu.subkernel_time(&p, items, lo, split) >= cpu.launch_overhead());
    }
}

/// Work-group splitting never hurts (it only engages below the thread
/// count, where it strictly helps up to its overhead bound).
#[test]
fn splitting_never_hurts() {
    let mut rng = SplitMix64::new(0x4E57);
    let cpu = CpuModel::xeon_w3550_like();
    for _ in 0..CASES {
        let p = arb_profile(&mut rng);
        let items = rng.range_u64(1, 1024);
        let wgs = rng.range_u64(1, 64);
        let with = cpu.subkernel_time(&p, items, wgs, true);
        let without = cpu.subkernel_time(&p, items, wgs, false);
        assert!(with <= without);
    }
}

/// Link transfers are monotone in size and dominated by latency at zero
/// bytes.
#[test]
fn link_transfer_monotone() {
    let mut rng = SplitMix64::new(0x4E58);
    let link = LinkModel::pcie2_x16();
    for _ in 0..CASES {
        let a = rng.range_u64(0, 1 << 30);
        let b = rng.range_u64(0, 1 << 30);
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(link.transfer_time(lo) <= link.transfer_time(hi));
    }
    assert_eq!(link.transfer_time(0), link.latency());
}

/// The three machine presets all satisfy basic sanity: positive rates and
/// identical CPUs (the migration experiments vary only the GPU side).
#[test]
fn machine_presets_sane() {
    for m in [
        MachineConfig::paper_testbed(),
        MachineConfig::weak_gpu_laptop(),
        MachineConfig::big_gpu_node(),
    ] {
        assert!(m.gpu.peak_flops_per_ns() > 0.0);
        assert!(m.gpu.peak_mem_bytes_per_ns() > 0.0);
        assert!(m.h2d.bandwidth() > 0.0);
        assert_eq!(m.cpu.threads(), 8);
    }
}
