//! Whole-machine configuration: one CPU, one GPU, a full-duplex link.

use fluidicl_des::SimDuration;

use crate::{CpuModel, GpuModel, HostModel, LinkModel};

/// A non-owner peer GPU: a second (third, ...) discrete device that claims
/// work-group ranges from the shared frontier and ships results back to the
/// owner over its own full-duplex link pair.
#[derive(Clone, Debug, PartialEq)]
pub struct PeerGpu {
    /// The peer device model.
    pub gpu: GpuModel,
    /// Host-to-peer link channel.
    pub h2d: LinkModel,
    /// Peer-to-host link channel.
    pub d2h: LinkModel,
}

/// The heterogeneous node every runtime in this reproduction executes on:
/// a multicore CPU and a discrete GPU with separate address spaces joined by
/// a PCIe-like link, plus zero or more peer GPUs on their own links.
///
/// # Examples
///
/// ```
/// use fluidicl_hetsim::MachineConfig;
///
/// let m = MachineConfig::paper_testbed();
/// assert_eq!(m.cpu.threads(), 8);
/// assert!(m.peers.is_empty());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// The CPU device model.
    pub cpu: CpuModel,
    /// The GPU device model (the protocol owner).
    pub gpu: GpuModel,
    /// Host-to-device link channel.
    pub h2d: LinkModel,
    /// Device-to-host link channel.
    pub d2h: LinkModel,
    /// Host memory (intermediate copies).
    pub host: HostModel,
    /// Additional non-owner GPUs, each with its own link pair. Empty on
    /// the paper's two-device testbed.
    pub peers: Vec<PeerGpu>,
}

impl MachineConfig {
    /// The paper's experimental system: NVidia Tesla C2070 + quad-core Xeon
    /// W3550 with hyper-threading, PCIe 2.0 x16.
    pub fn paper_testbed() -> Self {
        MachineConfig {
            cpu: CpuModel::xeon_w3550_like(),
            gpu: GpuModel::tesla_c2070_like(),
            h2d: LinkModel::pcie2_x16(),
            d2h: LinkModel::pcie2_x16(),
            host: HostModel::xeon_host(),
            peers: Vec::new(),
        }
    }

    /// Adds a non-owner peer GPU with its own link pair.
    #[must_use]
    pub fn with_peer(mut self, peer: PeerGpu) -> Self {
        self.peers.push(peer);
        self
    }

    /// A mid-range peer card: laptop-class wave geometry but on a decent
    /// link, the kind of second GPU a workstation actually has next to the
    /// primary card.
    pub fn midrange_peer() -> PeerGpu {
        PeerGpu {
            gpu: GpuModel::tesla_c2070_like()
                .with_wave(8, 4)
                .with_rates(260.0, 60.0),
            h2d: LinkModel::new(SimDuration::from_micros(18), 4.0),
            d2h: LinkModel::new(SimDuration::from_micros(18), 4.0),
        }
    }

    /// The paper's testbed extended with one mid-range peer GPU: the
    /// three-device configuration the N-way ablation runs on.
    pub fn paper_testbed_3dev() -> Self {
        Self::paper_testbed().with_peer(Self::midrange_peer())
    }

    /// The paper's testbed extended with `n - 2` identical mid-range peer
    /// GPUs, for an `n`-device machine (CPU + owner GPU + peers).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`: the protocol always has the CPU and the owner.
    pub fn paper_testbed_ndev(n: usize) -> Self {
        assert!(n >= 2, "an n-device machine needs at least CPU + owner GPU");
        let mut m = Self::paper_testbed();
        for _ in 2..n {
            m = m.with_peer(Self::midrange_peer());
        }
        m
    }

    /// A machine with a much weaker GPU (a laptop-class part: fewer SMs,
    /// a third of the bandwidth) and the same CPU. FluidiCL claims to need
    /// no per-machine retuning (paper §1: "completely portable across
    /// different machines"); the portability experiment runs the unchanged
    /// runtime here.
    pub fn weak_gpu_laptop() -> Self {
        let mut m = Self::paper_testbed();
        m.gpu = m.gpu.with_wave(4, 4).with_rates(120.0, 30.0);
        m.h2d = LinkModel::new(SimDuration::from_micros(20), 3.0);
        m.d2h = LinkModel::new(SimDuration::from_micros(20), 3.0);
        m
    }

    /// A machine with a newer, much stronger GPU and a faster link — the
    /// opposite migration direction from [`MachineConfig::weak_gpu_laptop`].
    pub fn big_gpu_node() -> Self {
        let mut m = Self::paper_testbed();
        m.gpu = m.gpu.with_wave(16, 8).with_rates(2000.0, 320.0);
        m.h2d = LinkModel::new(SimDuration::from_micros(10), 12.0);
        m.d2h = LinkModel::new(SimDuration::from_micros(10), 12.0);
        // A node of that generation also has faster DRAM.
        m.host = HostModel::new(16.0);
        m
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_gpu_strength() {
        let weak = MachineConfig::weak_gpu_laptop();
        let paper = MachineConfig::paper_testbed();
        let big = MachineConfig::big_gpu_node();
        assert!(weak.gpu.peak_flops_per_ns() < paper.gpu.peak_flops_per_ns());
        assert!(big.gpu.peak_flops_per_ns() > paper.gpu.peak_flops_per_ns());
        assert!(weak.h2d.bandwidth() < big.h2d.bandwidth());
        // The CPU is the same across all three machines.
        assert_eq!(weak.cpu, paper.cpu);
        assert_eq!(big.cpu, paper.cpu);
    }

    #[test]
    fn default_is_paper_testbed() {
        assert_eq!(MachineConfig::default(), MachineConfig::paper_testbed());
    }

    #[test]
    fn ndev_constructor_counts_peers() {
        assert!(MachineConfig::paper_testbed_ndev(2).peers.is_empty());
        assert_eq!(MachineConfig::paper_testbed_ndev(3).peers.len(), 1);
        assert_eq!(MachineConfig::paper_testbed_ndev(5).peers.len(), 3);
        assert_eq!(
            MachineConfig::paper_testbed_3dev(),
            MachineConfig::paper_testbed_ndev(3)
        );
    }

    #[test]
    fn peer_is_weaker_than_owner() {
        let m = MachineConfig::paper_testbed_3dev();
        let peer = &m.peers[0];
        assert!(peer.gpu.peak_flops_per_ns() < m.gpu.peak_flops_per_ns());
        assert!(peer.h2d.bandwidth() < m.h2d.bandwidth());
    }

    #[test]
    #[should_panic(expected = "at least CPU + owner GPU")]
    fn ndev_rejects_fewer_than_two_devices() {
        let _ = MachineConfig::paper_testbed_ndev(1);
    }

    #[test]
    fn debug_rendering_names_every_component() {
        let text = format!("{:?}", MachineConfig::paper_testbed());
        assert!(text.contains("cpu"));
        assert!(text.contains("gpu"));
    }
}
