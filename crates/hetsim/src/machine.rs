//! Whole-machine configuration: one CPU, one GPU, a full-duplex link.

use fluidicl_des::SimDuration;

use crate::{CpuModel, GpuModel, HostModel, LinkModel};

/// The heterogeneous node every runtime in this reproduction executes on:
/// a multicore CPU and a discrete GPU with separate address spaces joined by
/// a PCIe-like link.
///
/// # Examples
///
/// ```
/// use fluidicl_hetsim::MachineConfig;
///
/// let m = MachineConfig::paper_testbed();
/// assert_eq!(m.cpu.threads(), 8);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// The CPU device model.
    pub cpu: CpuModel,
    /// The GPU device model.
    pub gpu: GpuModel,
    /// Host-to-device link channel.
    pub h2d: LinkModel,
    /// Device-to-host link channel.
    pub d2h: LinkModel,
    /// Host memory (intermediate copies).
    pub host: HostModel,
}

impl MachineConfig {
    /// The paper's experimental system: NVidia Tesla C2070 + quad-core Xeon
    /// W3550 with hyper-threading, PCIe 2.0 x16.
    pub fn paper_testbed() -> Self {
        MachineConfig {
            cpu: CpuModel::xeon_w3550_like(),
            gpu: GpuModel::tesla_c2070_like(),
            h2d: LinkModel::pcie2_x16(),
            d2h: LinkModel::pcie2_x16(),
            host: HostModel::xeon_host(),
        }
    }

    /// A machine with a much weaker GPU (a laptop-class part: fewer SMs,
    /// a third of the bandwidth) and the same CPU. FluidiCL claims to need
    /// no per-machine retuning (paper §1: "completely portable across
    /// different machines"); the portability experiment runs the unchanged
    /// runtime here.
    pub fn weak_gpu_laptop() -> Self {
        let mut m = Self::paper_testbed();
        m.gpu = m.gpu.with_wave(4, 4).with_rates(120.0, 30.0);
        m.h2d = LinkModel::new(SimDuration::from_micros(20), 3.0);
        m.d2h = LinkModel::new(SimDuration::from_micros(20), 3.0);
        m
    }

    /// A machine with a newer, much stronger GPU and a faster link — the
    /// opposite migration direction from [`MachineConfig::weak_gpu_laptop`].
    pub fn big_gpu_node() -> Self {
        let mut m = Self::paper_testbed();
        m.gpu = m.gpu.with_wave(16, 8).with_rates(2000.0, 320.0);
        m.h2d = LinkModel::new(SimDuration::from_micros(10), 12.0);
        m.d2h = LinkModel::new(SimDuration::from_micros(10), 12.0);
        // A node of that generation also has faster DRAM.
        m.host = HostModel::new(16.0);
        m
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_gpu_strength() {
        let weak = MachineConfig::weak_gpu_laptop();
        let paper = MachineConfig::paper_testbed();
        let big = MachineConfig::big_gpu_node();
        assert!(weak.gpu.peak_flops_per_ns() < paper.gpu.peak_flops_per_ns());
        assert!(big.gpu.peak_flops_per_ns() > paper.gpu.peak_flops_per_ns());
        assert!(weak.h2d.bandwidth() < big.h2d.bandwidth());
        // The CPU is the same across all three machines.
        assert_eq!(weak.cpu, paper.cpu);
        assert_eq!(big.cpu, paper.cpu);
    }

    #[test]
    fn default_is_paper_testbed() {
        assert_eq!(MachineConfig::default(), MachineConfig::paper_testbed());
    }

    #[test]
    fn debug_rendering_names_every_component() {
        let text = format!("{:?}", MachineConfig::paper_testbed());
        assert!(text.contains("cpu"));
        assert!(text.contains("gpu"));
    }
}
