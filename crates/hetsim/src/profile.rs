//! Kernel cost descriptors.
//!
//! A [`KernelProfile`] captures the per-work-item characteristics that decide
//! how fast a kernel runs on each device: arithmetic intensity, memory
//! traffic, and the architectural friction terms (coalescing, divergence,
//! cache locality) that make GPUs great at some Polybench kernels and CPUs
//! competitive at others. The FluidiCL paper's motivation (Section 3) is
//! precisely that these properties differ per kernel *and* interact with
//! input size through transfer overheads, so no static device choice wins.

/// Per-work-item execution characteristics of a kernel.
///
/// All quantities are *per work-item*; the device models scale them by the
/// work-group size and count. Friction factors live in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use fluidicl_hetsim::KernelProfile;
///
/// let p = KernelProfile::new("syrk")
///     .flops_per_item(2.0 * 256.0)
///     .bytes_read_per_item(8.0 * 256.0)
///     .bytes_written_per_item(4.0)
///     .inner_loop_trips(256);
/// assert_eq!(p.name(), "syrk");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct KernelProfile {
    name: String,
    flops_per_item: f64,
    bytes_read_per_item: f64,
    bytes_written_per_item: f64,
    inner_loop_trips: u32,
    gpu_coalescing: f64,
    gpu_divergence: f64,
    cpu_cache_locality: f64,
    cpu_simd_friendliness: f64,
}

impl KernelProfile {
    /// Creates a profile with neutral defaults: one flop, no memory traffic,
    /// a single loop trip, perfect coalescing/locality, no divergence.
    pub fn new(name: impl Into<String>) -> Self {
        KernelProfile {
            name: name.into(),
            flops_per_item: 1.0,
            bytes_read_per_item: 0.0,
            bytes_written_per_item: 0.0,
            inner_loop_trips: 1,
            gpu_coalescing: 1.0,
            gpu_divergence: 0.0,
            cpu_cache_locality: 1.0,
            cpu_simd_friendliness: 1.0,
        }
    }

    /// Kernel name (for reporting and calibration tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Arithmetic operations one work-item performs.
    #[must_use]
    pub fn flops_per_item(mut self, flops: f64) -> Self {
        assert!(flops >= 0.0, "flops must be non-negative");
        self.flops_per_item = flops;
        self
    }

    /// Bytes one work-item reads from global memory.
    #[must_use]
    pub fn bytes_read_per_item(mut self, bytes: f64) -> Self {
        assert!(bytes >= 0.0, "bytes must be non-negative");
        self.bytes_read_per_item = bytes;
        self
    }

    /// Bytes one work-item writes to global memory.
    #[must_use]
    pub fn bytes_written_per_item(mut self, bytes: f64) -> Self {
        assert!(bytes >= 0.0, "bytes must be non-negative");
        self.bytes_written_per_item = bytes;
        self
    }

    /// Trip count of the innermost loop (1 for straight-line kernels).
    ///
    /// Determines how often an in-loop abort check executes (paper §6.4) and
    /// therefore the granularity at which a GPU work-group can terminate
    /// early.
    #[must_use]
    pub fn inner_loop_trips(mut self, trips: u32) -> Self {
        assert!(trips >= 1, "a kernel body runs at least once");
        self.inner_loop_trips = trips;
        self
    }

    /// GPU memory-coalescing quality in `[0, 1]`; 1 means fully coalesced
    /// accesses, 0 means fully scattered.
    #[must_use]
    pub fn gpu_coalescing(mut self, c: f64) -> Self {
        assert!((0.0..=1.0).contains(&c), "coalescing must be in [0,1]");
        self.gpu_coalescing = c;
        self
    }

    /// GPU branch-divergence fraction in `[0, 1]`; 0 means uniform control
    /// flow across a warp.
    #[must_use]
    pub fn gpu_divergence(mut self, d: f64) -> Self {
        assert!((0.0..=1.0).contains(&d), "divergence must be in [0,1]");
        self.gpu_divergence = d;
        self
    }

    /// CPU cache locality in `[0, 1]`; 1 means streaming/cache-friendly
    /// access, 0 means cache-hostile (e.g. large-stride column walks).
    #[must_use]
    pub fn cpu_cache_locality(mut self, l: f64) -> Self {
        assert!((0.0..=1.0).contains(&l), "locality must be in [0,1]");
        self.cpu_cache_locality = l;
        self
    }

    /// How well the CPU vectorizes the body, in `[0, 1]`; 1 means full SIMD
    /// utilisation.
    #[must_use]
    pub fn cpu_simd_friendliness(mut self, s: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&s),
            "simd friendliness must be in [0,1]"
        );
        self.cpu_simd_friendliness = s;
        self
    }

    /// Arithmetic operations per work-item.
    pub fn flops(&self) -> f64 {
        self.flops_per_item
    }

    /// Total global-memory bytes (read + written) per work-item.
    pub fn bytes(&self) -> f64 {
        self.bytes_read_per_item + self.bytes_written_per_item
    }

    /// Bytes read per work-item.
    pub fn bytes_read(&self) -> f64 {
        self.bytes_read_per_item
    }

    /// Bytes written per work-item.
    pub fn bytes_written(&self) -> f64 {
        self.bytes_written_per_item
    }

    /// Innermost-loop trip count.
    pub fn loop_trips(&self) -> u32 {
        self.inner_loop_trips
    }

    /// GPU coalescing factor.
    pub fn coalescing(&self) -> f64 {
        self.gpu_coalescing
    }

    /// GPU divergence factor.
    pub fn divergence(&self) -> f64 {
        self.gpu_divergence
    }

    /// CPU cache-locality factor.
    pub fn cache_locality(&self) -> f64 {
        self.cpu_cache_locality
    }

    /// CPU SIMD-friendliness factor.
    pub fn simd_friendliness(&self) -> f64 {
        self.cpu_simd_friendliness
    }

    /// Arithmetic operations per innermost-loop iteration, used to estimate
    /// how much an in-loop abort check dilutes the loop body.
    pub fn flops_per_trip(&self) -> f64 {
        self.flops_per_item / f64::from(self.inner_loop_trips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let p = KernelProfile::new("k")
            .flops_per_item(10.0)
            .bytes_read_per_item(4.0)
            .bytes_written_per_item(2.0)
            .inner_loop_trips(5)
            .gpu_coalescing(0.5)
            .gpu_divergence(0.25)
            .cpu_cache_locality(0.75)
            .cpu_simd_friendliness(0.9);
        assert_eq!(p.name(), "k");
        assert_eq!(p.flops(), 10.0);
        assert_eq!(p.bytes(), 6.0);
        assert_eq!(p.bytes_read(), 4.0);
        assert_eq!(p.bytes_written(), 2.0);
        assert_eq!(p.loop_trips(), 5);
        assert_eq!(p.coalescing(), 0.5);
        assert_eq!(p.divergence(), 0.25);
        assert_eq!(p.cache_locality(), 0.75);
        assert_eq!(p.simd_friendliness(), 0.9);
        assert_eq!(p.flops_per_trip(), 2.0);
    }

    #[test]
    fn defaults_are_neutral() {
        let p = KernelProfile::new("n");
        assert_eq!(p.flops(), 1.0);
        assert_eq!(p.bytes(), 0.0);
        assert_eq!(p.loop_trips(), 1);
        assert_eq!(p.coalescing(), 1.0);
        assert_eq!(p.divergence(), 0.0);
    }

    #[test]
    #[should_panic(expected = "coalescing must be in [0,1]")]
    fn rejects_out_of_range_coalescing() {
        let _ = KernelProfile::new("bad").gpu_coalescing(1.5);
    }

    #[test]
    #[should_panic(expected = "at least once")]
    fn rejects_zero_trips() {
        let _ = KernelProfile::new("bad").inner_loop_trips(0);
    }
}
