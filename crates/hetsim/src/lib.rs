//! # fluidicl-hetsim — heterogeneous node performance models
//!
//! The FluidiCL paper evaluates on a real machine (Tesla C2070 GPU + Xeon
//! W3550 CPU over PCIe). This reproduction has no such hardware, so this
//! crate provides the *substitute*: deterministic analytic models of
//!
//! * a wave-issuing GPU ([`GpuModel`]) with coalescing/divergence penalties
//!   and explicit pricing of FluidiCL's abort-check kernel transformations,
//! * a multicore CPU OpenCL device ([`CpuModel`]) with per-subkernel launch
//!   overhead and work-group splitting,
//! * a full-duplex PCIe-like link ([`LinkModel`]) and host memcpy
//!   ([`HostModel`]),
//! * kernel cost descriptors ([`KernelProfile`]),
//!
//! assembled into a [`MachineConfig`]. Every quantity is a virtual
//! [`fluidicl_des::SimDuration`], so the co-execution protocol in the
//! `fluidicl` crate plays out on a reproducible timeline. What matters for
//! reproducing the paper is not absolute nanoseconds but the *relative*
//! landscape: which device wins which kernel, how transfer overhead scales
//! with input size, and how launch overheads punish tiny CPU subkernels —
//! all of which are explicit, testable terms here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod gpu;
mod link;
mod machine;
mod profile;

pub use cpu::CpuModel;
pub use gpu::{AbortMode, GpuModel};
pub use link::{HostModel, LinkModel};
pub use machine::{MachineConfig, PeerGpu};
pub use profile::KernelProfile;
