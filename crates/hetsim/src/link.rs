//! Interconnect and host-memory models.
//!
//! The paper's CPU and GPU have discrete address spaces joined by PCIe; every
//! byte FluidiCL moves (CPU subkernel results, status messages, merged
//! results) crosses this link. [`LinkModel`] prices a single direction;
//! host-to-device and device-to-host are independent channels (full duplex),
//! which is what lets FluidiCL overlap transfers with computation (paper
//! §5.5). [`HostModel`] prices the intermediate host-side buffer copies the
//! runtime makes so that subsequent subkernels can proceed while data is in
//! flight.

use fluidicl_des::SimDuration;

/// One direction of a PCIe-like interconnect: fixed latency plus a
/// bandwidth-proportional term.
///
/// # Examples
///
/// ```
/// use fluidicl_hetsim::LinkModel;
///
/// let link = LinkModel::pcie2_x16();
/// let t = link.transfer_time(1 << 20); // 1 MiB
/// assert!(t > link.transfer_time(0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LinkModel {
    latency: SimDuration,
    bytes_per_ns: f64,
}

impl LinkModel {
    /// Creates a link with the given fixed latency and bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_ns` is not strictly positive.
    pub fn new(latency: SimDuration, bytes_per_ns: f64) -> Self {
        assert!(bytes_per_ns > 0.0, "link bandwidth must be positive");
        LinkModel {
            latency,
            bytes_per_ns,
        }
    }

    /// A PCIe 2.0 x16 link as in the paper's testbed: ~8 GB/s with ~15 µs
    /// end-to-end software latency per transfer.
    pub fn pcie2_x16() -> Self {
        LinkModel::new(SimDuration::from_micros(15), 7.0)
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_nanos((bytes as f64 / self.bytes_per_ns).ceil() as u64)
    }

    /// Fixed latency component.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Bandwidth in bytes per nanosecond.
    pub fn bandwidth(&self) -> f64 {
        self.bytes_per_ns
    }
}

/// Host memory-copy model (for intermediate buffer copies, paper §5.5).
#[derive(Clone, Debug, PartialEq)]
pub struct HostModel {
    memcpy_bytes_per_ns: f64,
}

impl HostModel {
    /// Creates a host model with the given memcpy bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `memcpy_bytes_per_ns` is not strictly positive.
    pub fn new(memcpy_bytes_per_ns: f64) -> Self {
        assert!(
            memcpy_bytes_per_ns > 0.0,
            "memcpy bandwidth must be positive"
        );
        HostModel {
            memcpy_bytes_per_ns,
        }
    }

    /// A host matching the paper's Xeon workstation (~7.5 GB/s large-copy
    /// bandwidth).
    pub fn xeon_host() -> Self {
        HostModel::new(7.5)
    }

    /// Time to copy `bytes` within host memory.
    pub fn copy_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos((bytes as f64 / self.memcpy_bytes_per_ns).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_linear() {
        let link = LinkModel::new(SimDuration::from_micros(10), 2.0);
        assert_eq!(link.transfer_time(0), SimDuration::from_micros(10));
        assert_eq!(
            link.transfer_time(2000),
            SimDuration::from_micros(10) + SimDuration::from_nanos(1000)
        );
    }

    #[test]
    fn bigger_transfers_take_longer() {
        let link = LinkModel::pcie2_x16();
        assert!(link.transfer_time(1 << 24) > link.transfer_time(1 << 20));
    }

    #[test]
    fn host_copy_is_linear() {
        let host = HostModel::new(4.0);
        assert_eq!(host.copy_time(0), SimDuration::ZERO);
        assert_eq!(host.copy_time(400), SimDuration::from_nanos(100));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkModel::new(SimDuration::ZERO, 0.0);
    }

    #[test]
    fn accessors_expose_parameters() {
        let link = LinkModel::pcie2_x16();
        assert_eq!(link.latency(), SimDuration::from_micros(15));
        assert!(link.bandwidth() > 0.0);
    }
}
