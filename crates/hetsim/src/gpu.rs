//! GPU throughput model.
//!
//! Models a discrete GPU in the spirit of the paper's NVidia Tesla C2070: a
//! set of SMs executing work-groups in *waves* (as many concurrent
//! work-groups as the device holds resident), with throughput bounded by
//! whichever of arithmetic or memory bandwidth saturates first. Coalescing
//! and divergence penalties make irregular kernels proportionally slower,
//! which is what lets the CPU catch up on some Polybench kernels (paper §3).
//!
//! The model also prices FluidiCL's kernel transformations (paper §6.4–6.5):
//! abort checks inside loops cost extra instructions and inhibit compiler
//! loop unrolling unless the manual-unroll transformation is applied.

use fluidicl_des::SimDuration;

use crate::KernelProfile;

/// Where the GPU kernel performs CPU-completion abort checks (paper §4.2,
/// §6.4, §6.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortMode {
    /// Unmodified kernel: no checks at all (used by single-device baselines).
    None,
    /// Check once at the start of every work-group ("NoAbortUnroll" in
    /// Fig. 15): a work-group that already started runs to completion.
    WorkGroupStart,
    /// Checks inside the innermost loop, but without the manual unrolling
    /// that restores compiler optimisation ("NoUnroll" in Fig. 15).
    InLoop,
    /// Checks inside the innermost loop with manual unrolling around them
    /// ("AllOpt" in Fig. 15).
    InLoopUnrolled,
}

impl AbortMode {
    /// Whether a running work-group can terminate before finishing its loop.
    pub fn allows_early_abort(self) -> bool {
        matches!(self, AbortMode::InLoop | AbortMode::InLoopUnrolled)
    }

    /// Whether the kernel contains any abort check at all.
    pub fn has_checks(self) -> bool {
        !matches!(self, AbortMode::None)
    }
}

/// Analytic performance model of a discrete GPU.
///
/// # Examples
///
/// ```
/// use fluidicl_hetsim::{AbortMode, GpuModel, KernelProfile};
///
/// let gpu = GpuModel::tesla_c2070_like();
/// let p = KernelProfile::new("k").flops_per_item(512.0).inner_loop_trips(256);
/// let t = gpu.range_time(&p, 256, 1024, AbortMode::None);
/// assert!(!t.is_zero());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GpuModel {
    /// Number of streaming multiprocessors.
    sms: u32,
    /// Work-groups resident per SM; `sms * wgs_per_sm` is the wave width.
    wgs_per_sm: u32,
    /// Device-wide sustained arithmetic throughput, flops per nanosecond.
    flops_per_ns: f64,
    /// Device-wide sustained memory bandwidth, bytes per nanosecond.
    mem_bytes_per_ns: f64,
    /// Slowdown factor for fully uncoalesced access (effective bandwidth is
    /// divided by this for the scattered fraction of traffic).
    uncoalesced_penalty: f64,
    /// Extra time multiplier at full divergence: `1 + divergence * this`.
    divergence_penalty: f64,
    /// Fixed cost of launching a kernel.
    launch_overhead: SimDuration,
    /// Flop-equivalent cost of one abort check (status load + branch).
    check_cost_flops: f64,
    /// Manual unroll factor applied around in-loop checks (paper §6.5).
    unroll_factor: u32,
    /// Peak body slowdown when an in-loop check inhibits compiler unrolling;
    /// scaled down for loop bodies with more arithmetic per trip.
    unroll_inhibition: f64,
    /// Fixed cost of allocating a device buffer.
    alloc_overhead: SimDuration,
    /// Allocation throughput (page mapping), bytes per nanosecond.
    alloc_bytes_per_ns: f64,
    /// Memory-pipeline improvement from FluidiCL's manual loop unrolling on
    /// imperfectly coalesced kernels (the paper observes SYRK's modified
    /// kernel beating the unmodified one through "improved GPU cache
    /// performance", §9.1). Scaled by `1 − coalescing`.
    unroll_cache_bonus: f64,
}

impl GpuModel {
    /// A model calibrated to behave like the paper's Tesla C2070 relative to
    /// [`crate::CpuModel::xeon_w3550_like`].
    pub fn tesla_c2070_like() -> Self {
        GpuModel {
            sms: 14,
            wgs_per_sm: 6,
            flops_per_ns: 515.0,
            mem_bytes_per_ns: 110.0,
            uncoalesced_penalty: 8.0,
            divergence_penalty: 3.0,
            launch_overhead: SimDuration::from_micros(12),
            check_cost_flops: 6.0,
            unroll_factor: 8,
            unroll_inhibition: 0.9,
            alloc_overhead: SimDuration::from_micros(15),
            alloc_bytes_per_ns: 800.0,
            unroll_cache_bonus: 0.15,
        }
    }

    /// Number of work-groups that execute concurrently (one "wave").
    pub fn wave_width(&self) -> u64 {
        u64::from(self.sms) * u64::from(self.wgs_per_sm)
    }

    /// Kernel-launch fixed overhead.
    pub fn launch_overhead(&self) -> SimDuration {
        self.launch_overhead
    }

    /// Effective per-item arithmetic cost in flops, including abort-check
    /// instructions.
    fn effective_flops(&self, p: &KernelProfile, abort: AbortMode) -> f64 {
        let trips = f64::from(p.loop_trips());
        match abort {
            AbortMode::None => p.flops(),
            // One check at work-group entry is negligible per item but we
            // charge it once per item for simplicity — it is tiny.
            AbortMode::WorkGroupStart => p.flops() + self.check_cost_flops / trips.max(1.0),
            // A check every iteration of the innermost loop.
            AbortMode::InLoop => p.flops() + self.check_cost_flops * trips,
            // Manual unrolling amortises the check over `unroll_factor`
            // iterations (paper §6.5).
            AbortMode::InLoopUnrolled => {
                p.flops() + self.check_cost_flops * trips / f64::from(self.unroll_factor)
            }
        }
    }

    /// Whole-body slowdown when an in-loop check inhibits compiler loop
    /// unrolling (paper §6.5): fewer independent instructions per iteration
    /// hurt both the arithmetic pipeline and latency hiding for loads, and
    /// short loop bodies suffer most.
    fn unroll_dilution(&self, p: &KernelProfile, abort: AbortMode) -> f64 {
        match abort {
            AbortMode::InLoop => 1.0 + self.unroll_inhibition / (1.0 + p.flops_per_trip() / 8.0),
            // Manual unrolling batches loads and improves cache behaviour on
            // kernels the hardware cannot fully coalesce — the paper's
            // explanation for SYRK's >1 speedup over the GPU (§9.1).
            AbortMode::InLoopUnrolled => 1.0 - self.unroll_cache_bonus * (1.0 - p.coalescing()),
            _ => 1.0,
        }
    }

    /// Time for one work-group of `items` work-items, assuming a full wave
    /// shares the device.
    pub fn wg_time(&self, p: &KernelProfile, items: u64, abort: AbortMode) -> SimDuration {
        let slots = self.wave_width() as f64;
        let slot_flops = self.flops_per_ns / slots;
        let slot_bw = self.mem_bytes_per_ns / slots;
        let compute_ns = items as f64 * self.effective_flops(p, abort) / slot_flops;
        let coalesced = p.coalescing() + (1.0 - p.coalescing()) / self.uncoalesced_penalty;
        let mem_ns = items as f64 * p.bytes() / (slot_bw * coalesced);
        let base = compute_ns.max(mem_ns) * self.unroll_dilution(p, abort);
        let total = base * (1.0 + p.divergence() * self.divergence_penalty);
        SimDuration::from_nanos(total.ceil() as u64)
    }

    /// Time to execute `wg_count` work-groups of `items` items each, issued
    /// in waves of [`GpuModel::wave_width`]. Does not include launch
    /// overhead.
    pub fn range_time(
        &self,
        p: &KernelProfile,
        items: u64,
        wg_count: u64,
        abort: AbortMode,
    ) -> SimDuration {
        if wg_count == 0 {
            return SimDuration::ZERO;
        }
        let waves = wg_count.div_ceil(self.wave_width());
        self.wg_time(p, items, abort) * waves
    }

    /// The granularity at which a *running* wave can abort: the virtual time
    /// between consecutive in-loop checks. Returns `None` when the abort mode
    /// only checks at work-group start (the wave then runs to completion).
    pub fn abort_quantum(
        &self,
        p: &KernelProfile,
        items: u64,
        abort: AbortMode,
    ) -> Option<SimDuration> {
        if !abort.allows_early_abort() {
            return None;
        }
        let checks_per_wg = match abort {
            AbortMode::InLoop => u64::from(p.loop_trips()),
            AbortMode::InLoopUnrolled => {
                u64::from(p.loop_trips()).div_ceil(u64::from(self.unroll_factor))
            }
            _ => unreachable!(),
        }
        .max(1);
        let wg = self.wg_time(p, items, abort);
        Some((wg / checks_per_wg).max(SimDuration::from_nanos(1)))
    }

    /// Time for the diff-and-merge kernel (paper §4.3) over `bytes` of
    /// output data: reads the CPU copy and the original copy, conditionally
    /// writes the destination — about 3 bytes of traffic per payload byte.
    pub fn merge_time(&self, bytes: u64) -> SimDuration {
        let traffic = 3.0 * bytes as f64;
        self.launch_overhead + SimDuration::from_nanos((traffic / self.mem_bytes_per_ns) as u64)
    }

    /// Time to allocate a device buffer of `bytes` (paper §6.1 motivates the
    /// buffer pool by this cost).
    pub fn buffer_create_time(&self, bytes: u64) -> SimDuration {
        self.alloc_overhead
            + SimDuration::from_nanos((bytes as f64 / self.alloc_bytes_per_ns) as u64)
    }

    /// Device-wide arithmetic throughput in flops/ns (for reporting).
    pub fn peak_flops_per_ns(&self) -> f64 {
        self.flops_per_ns
    }

    /// Device-wide memory bandwidth in bytes/ns (for reporting).
    pub fn peak_mem_bytes_per_ns(&self) -> f64 {
        self.mem_bytes_per_ns
    }

    /// Returns a copy with a different wave width (for sensitivity tests).
    #[must_use]
    pub fn with_wave(mut self, sms: u32, wgs_per_sm: u32) -> Self {
        assert!(
            sms > 0 && wgs_per_sm > 0,
            "wave dimensions must be positive"
        );
        self.sms = sms;
        self.wgs_per_sm = wgs_per_sm;
        self
    }

    /// Returns a copy with different peak rates (for calibration).
    #[must_use]
    pub fn with_rates(mut self, flops_per_ns: f64, mem_bytes_per_ns: f64) -> Self {
        assert!(
            flops_per_ns > 0.0 && mem_bytes_per_ns > 0.0,
            "rates must be positive"
        );
        self.flops_per_ns = flops_per_ns;
        self.mem_bytes_per_ns = mem_bytes_per_ns;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuModel {
        GpuModel::tesla_c2070_like()
    }

    fn profile() -> KernelProfile {
        KernelProfile::new("t")
            .flops_per_item(1024.0)
            .bytes_read_per_item(2048.0)
            .bytes_written_per_item(4.0)
            .inner_loop_trips(256)
    }

    #[test]
    fn zero_workgroups_cost_nothing() {
        assert_eq!(
            gpu().range_time(&profile(), 256, 0, AbortMode::None),
            SimDuration::ZERO
        );
    }

    #[test]
    fn range_time_scales_in_waves() {
        let g = gpu();
        let p = profile();
        let one_wave = g.range_time(&p, 256, 1, AbortMode::None);
        let full_wave = g.range_time(&p, 256, g.wave_width(), AbortMode::None);
        let two_waves = g.range_time(&p, 256, g.wave_width() + 1, AbortMode::None);
        assert_eq!(one_wave, full_wave, "a partial wave costs a full wave slot");
        assert_eq!(two_waves, full_wave * 2);
    }

    #[test]
    fn uncoalesced_access_is_slower() {
        let g = gpu();
        let good = profile().gpu_coalescing(1.0);
        let bad = profile().gpu_coalescing(0.0);
        assert!(
            g.wg_time(&bad, 256, AbortMode::None) > g.wg_time(&good, 256, AbortMode::None),
            "scattered access must cost more"
        );
    }

    #[test]
    fn divergence_is_slower() {
        let g = gpu();
        let uniform = profile();
        let divergent = profile().gpu_divergence(0.8);
        assert!(
            g.wg_time(&divergent, 256, AbortMode::None) > g.wg_time(&uniform, 256, AbortMode::None)
        );
    }

    #[test]
    fn abort_modes_order_as_in_fig15() {
        // NoUnroll (InLoop) must be the slowest variant; AllOpt
        // (InLoopUnrolled) only slightly slower than no checks at all.
        let g = gpu();
        let p = profile();
        let none = g.wg_time(&p, 256, AbortMode::None);
        let wg_start = g.wg_time(&p, 256, AbortMode::WorkGroupStart);
        let unrolled = g.wg_time(&p, 256, AbortMode::InLoopUnrolled);
        let in_loop = g.wg_time(&p, 256, AbortMode::InLoop);
        assert!(none <= wg_start);
        assert!(wg_start <= unrolled);
        assert!(
            unrolled < in_loop,
            "unrolling must recover most of the cost"
        );
    }

    #[test]
    fn abort_quantum_only_for_in_loop_modes() {
        let g = gpu();
        let p = profile();
        assert!(g.abort_quantum(&p, 256, AbortMode::None).is_none());
        assert!(g
            .abort_quantum(&p, 256, AbortMode::WorkGroupStart)
            .is_none());
        let q_unrolled = g.abort_quantum(&p, 256, AbortMode::InLoopUnrolled).unwrap();
        let q_raw = g.abort_quantum(&p, 256, AbortMode::InLoop).unwrap();
        assert!(!q_unrolled.is_zero());
        // Unrolled kernels check less often, so the quantum is coarser
        // relative to the (smaller) work-group time.
        let wg_unrolled = g.wg_time(&p, 256, AbortMode::InLoopUnrolled);
        let wg_raw = g.wg_time(&p, 256, AbortMode::InLoop);
        assert!(q_unrolled.as_nanos() * 256 >= wg_unrolled.as_nanos());
        assert!(q_raw.as_nanos() * 256 <= wg_raw.as_nanos() + 256);
    }

    #[test]
    fn unrolled_kernels_gain_cache_bonus_when_uncoalesced() {
        // The paper's SYRK observation (§9.1): FluidiCL's unrolled kernel
        // outruns the unmodified one on imperfectly coalesced loops.
        let g = gpu();
        let scattered = profile().gpu_coalescing(0.4);
        assert!(
            g.wg_time(&scattered, 256, AbortMode::InLoopUnrolled)
                < g.wg_time(&scattered, 256, AbortMode::None)
        );
        // Fully coalesced kernels get no bonus.
        let coalesced = profile().gpu_coalescing(1.0);
        assert!(
            g.wg_time(&coalesced, 256, AbortMode::InLoopUnrolled)
                >= g.wg_time(&coalesced, 256, AbortMode::None)
        );
    }

    #[test]
    fn merge_time_grows_with_bytes() {
        let g = gpu();
        assert!(g.merge_time(1 << 20) < g.merge_time(1 << 24));
        assert!(g.merge_time(0) >= g.launch_overhead());
    }

    #[test]
    fn buffer_create_has_fixed_and_linear_parts() {
        let g = gpu();
        let small = g.buffer_create_time(4);
        let big = g.buffer_create_time(1 << 26);
        assert!(small >= SimDuration::from_micros(15));
        assert!(big > small);
    }

    #[test]
    fn memory_bound_kernel_ignores_flop_changes() {
        let g = gpu();
        let mem_bound = KernelProfile::new("m")
            .flops_per_item(1.0)
            .bytes_read_per_item(4096.0);
        let slightly_more_flops = KernelProfile::new("m")
            .flops_per_item(2.0)
            .bytes_read_per_item(4096.0);
        assert_eq!(
            g.wg_time(&mem_bound, 256, AbortMode::None),
            g.wg_time(&slightly_more_flops, 256, AbortMode::None)
        );
    }
}
