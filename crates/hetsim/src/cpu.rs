//! CPU (OpenCL-on-multicore) performance model.
//!
//! Models the paper's quad-core Xeon W3550 with hyper-threading running the
//! AMD APP CPU OpenCL runtime: each work-group executes as a single thread
//! with its work-items run in a loop (paper §6.3), so a subkernel of `k`
//! work-groups on `t` hardware threads takes `ceil(k/t)` serial rounds. Each
//! subkernel launch pays a fixed runtime overhead — the term the adaptive
//! chunk-size heuristic (paper §5.1) amortises.

use fluidicl_des::SimDuration;

use crate::KernelProfile;

/// Analytic performance model of a multicore CPU OpenCL device.
///
/// # Examples
///
/// ```
/// use fluidicl_hetsim::{CpuModel, KernelProfile};
///
/// let cpu = CpuModel::xeon_w3550_like();
/// let p = KernelProfile::new("k").flops_per_item(512.0);
/// let t = cpu.subkernel_time(&p, 256, 16, false);
/// assert!(t > cpu.launch_overhead());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CpuModel {
    /// Hardware threads (compute units as OpenCL reports them).
    threads: u32,
    /// Per-thread scalar arithmetic throughput, flops per nanosecond.
    scalar_flops_per_ns: f64,
    /// Additional per-thread throughput unlocked by full SIMD utilisation.
    simd_extra_flops_per_ns: f64,
    /// Whole-socket memory bandwidth, bytes per nanosecond.
    mem_bytes_per_ns: f64,
    /// Fraction of streaming bandwidth still achieved by a fully
    /// cache-hostile access pattern.
    worst_case_bw_fraction: f64,
    /// Fixed cost of launching one subkernel through the vendor runtime.
    launch_overhead: SimDuration,
    /// Relative overhead of CPU work-group splitting (paper §6.3): custom
    /// barrier helper plus `local`→`global` buffer rewriting.
    split_overhead: f64,
}

impl CpuModel {
    /// A model calibrated to behave like the paper's Xeon W3550 (4 cores,
    /// 8 hardware threads) under the AMD APP CPU runtime.
    pub fn xeon_w3550_like() -> Self {
        CpuModel {
            threads: 8,
            scalar_flops_per_ns: 2.2,
            simd_extra_flops_per_ns: 6.5,
            mem_bytes_per_ns: 24.0,
            worst_case_bw_fraction: 0.22,
            launch_overhead: SimDuration::from_micros(25),
            split_overhead: 0.12,
        }
    }

    /// Number of hardware threads (the minimum useful work allocation;
    /// paper §5.1 clamps the chunk size to this).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Fixed per-subkernel launch overhead.
    pub fn launch_overhead(&self) -> SimDuration {
        self.launch_overhead
    }

    /// Time for one work-group of `items` items executed serially on one
    /// hardware thread.
    pub fn wg_time(&self, p: &KernelProfile, items: u64) -> SimDuration {
        let flop_rate =
            self.scalar_flops_per_ns + self.simd_extra_flops_per_ns * p.simd_friendliness();
        let compute_ns = items as f64 * p.flops() / flop_rate;
        let per_thread_bw = self.mem_bytes_per_ns / f64::from(self.threads);
        let eff_bw = per_thread_bw
            * (self.worst_case_bw_fraction
                + (1.0 - self.worst_case_bw_fraction) * p.cache_locality());
        let mem_ns = items as f64 * p.bytes() / eff_bw;
        // CPUs overlap arithmetic with outstanding loads less perfectly than
        // GPUs hide latency; charge the larger term plus a fraction of the
        // smaller.
        let total = compute_ns.max(mem_ns) + 0.25 * compute_ns.min(mem_ns);
        SimDuration::from_nanos(total.ceil() as u64)
    }

    /// Time for a subkernel of `wg_count` work-groups of `items` items,
    /// including the launch overhead.
    ///
    /// With `split` enabled and fewer work-groups than hardware threads, each
    /// work-group is divided across all threads (paper §6.3), trading a small
    /// overhead for full utilisation.
    pub fn subkernel_time(
        &self,
        p: &KernelProfile,
        items: u64,
        wg_count: u64,
        split: bool,
    ) -> SimDuration {
        if wg_count == 0 {
            return SimDuration::ZERO;
        }
        let wg = self.wg_time(p, items);
        let threads = u64::from(self.threads);
        let body = if split && wg_count < threads {
            // Work of `wg_count` groups spread evenly over every thread.
            (wg * wg_count)
                .div_count(threads)
                .mul_f64(1.0 + self.split_overhead)
        } else {
            wg * wg_count.div_ceil(threads)
        };
        self.launch_overhead + body
    }

    /// Average time per work-group for a given subkernel size — the quantity
    /// the adaptive chunk heuristic observes (paper §5.1). Monotonically
    /// improves with `wg_count` until launch overhead is amortised.
    pub fn per_wg_time(
        &self,
        p: &KernelProfile,
        items: u64,
        wg_count: u64,
        split: bool,
    ) -> SimDuration {
        self.subkernel_time(p, items, wg_count, split)
            .div_count(wg_count.max(1))
    }

    /// Returns a copy with a different thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: u32) -> Self {
        assert!(threads > 0, "a CPU has at least one thread");
        self.threads = threads;
        self
    }

    /// Returns a copy with a different launch overhead (for sensitivity
    /// studies).
    #[must_use]
    pub fn with_launch_overhead(mut self, overhead: SimDuration) -> Self {
        self.launch_overhead = overhead;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuModel {
        CpuModel::xeon_w3550_like()
    }

    fn profile() -> KernelProfile {
        KernelProfile::new("t")
            .flops_per_item(1024.0)
            .bytes_read_per_item(2048.0)
            .inner_loop_trips(256)
    }

    #[test]
    fn zero_workgroups_cost_nothing() {
        assert_eq!(
            cpu().subkernel_time(&profile(), 256, 0, false),
            SimDuration::ZERO
        );
    }

    #[test]
    fn rounds_scale_with_thread_count() {
        let c = cpu();
        let p = profile();
        let one_round = c.subkernel_time(&p, 256, 8, false);
        let two_rounds = c.subkernel_time(&p, 256, 9, false);
        let wg = c.wg_time(&p, 256);
        assert_eq!(two_rounds - one_round, wg);
    }

    #[test]
    fn per_wg_time_improves_with_chunk_size() {
        // The adaptive heuristic relies on launch-overhead amortisation.
        let c = cpu();
        let p = profile();
        let small = c.per_wg_time(&p, 256, 8, false);
        let large = c.per_wg_time(&p, 256, 64, false);
        assert!(large < small);
    }

    #[test]
    fn splitting_helps_below_thread_count() {
        let c = cpu();
        let p = profile();
        let unsplit = c.subkernel_time(&p, 256, 2, false);
        let split = c.subkernel_time(&p, 256, 2, true);
        assert!(split < unsplit, "2 work-groups on 8 threads should split");
    }

    #[test]
    fn splitting_is_a_no_op_at_or_above_thread_count() {
        let c = cpu();
        let p = profile();
        assert_eq!(
            c.subkernel_time(&p, 256, 8, true),
            c.subkernel_time(&p, 256, 8, false)
        );
        assert_eq!(
            c.subkernel_time(&p, 256, 100, true),
            c.subkernel_time(&p, 256, 100, false)
        );
    }

    #[test]
    fn cache_locality_matters() {
        let c = cpu();
        let friendly = profile().cpu_cache_locality(1.0);
        let hostile = profile().cpu_cache_locality(0.0);
        assert!(c.wg_time(&hostile, 256) > c.wg_time(&friendly, 256));
    }

    #[test]
    fn simd_friendliness_matters() {
        let c = cpu();
        let vectorized = KernelProfile::new("v").flops_per_item(4096.0);
        let scalar = KernelProfile::new("s")
            .flops_per_item(4096.0)
            .cpu_simd_friendliness(0.0);
        assert!(c.wg_time(&scalar, 256) > c.wg_time(&vectorized, 256));
    }

    #[test]
    fn with_threads_changes_rounds() {
        let c = cpu().with_threads(4);
        let p = profile();
        let t8 = cpu().subkernel_time(&p, 256, 32, false);
        let t4 = c.subkernel_time(&p, 256, 32, false);
        assert!(t4 > t8);
    }
}
