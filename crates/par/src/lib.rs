//! # fluidicl-par — a minimal, deterministic fan-out pool
//!
//! The experiment sweep, the `fluidicl-check` sweep and the intra-launch
//! executor all consist of *independent* units of work: each benchmark run
//! owns its own `Memory` and runtime, so units can execute on any thread in
//! any order as long as the *results* are assembled in input order. This
//! crate provides exactly that and nothing more:
//!
//! * [`par_map`] — map a function over a `Vec` on up to [`jobs`] scoped
//!   `std::thread`s, returning results **in input order** (each worker
//!   writes into a pre-indexed slot, so output never depends on completion
//!   order);
//! * a process-global worker count resolved from `FLUIDICL_JOBS`, then
//!   `RAYON_NUM_THREADS` (for drop-in compatibility with rayon-based
//!   tooling), then the machine's available parallelism — overridable by
//!   the binaries' `--jobs` flag via [`configure_jobs`];
//! * a nesting guard: a `par_map` issued *from inside* a pool worker runs
//!   sequentially, so two fan-out layers (experiments × benchmarks, or a
//!   sweep × the intra-launch executor) never multiply thread counts.
//!
//! The pool is intentionally built on `std::thread::scope` rather than an
//! external dependency: the workspace is dependency-free and the work units
//! are coarse (milliseconds to seconds), so scoped threads with an atomic
//! work index lose nothing to a work-stealing runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker count; 0 means "not resolved yet".
static JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Resolves the default worker count: `FLUIDICL_JOBS`, then
/// `RAYON_NUM_THREADS`, then [`std::thread::available_parallelism`].
///
/// Invalid or zero values in the environment are ignored.
pub fn default_jobs() -> usize {
    for var in ["FLUIDICL_JOBS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sets the global worker count (backs the binaries' `--jobs N` flag).
/// Values below 1 are clamped to 1.
pub fn configure_jobs(jobs: usize) {
    JOBS.store(jobs.max(1), Ordering::SeqCst);
}

/// The machine's hardware thread count
/// ([`std::thread::available_parallelism`]), independent of the
/// `FLUIDICL_JOBS`/`RAYON_NUM_THREADS` overrides honored by
/// [`default_jobs`]. Falls back to 1 when the platform cannot report it.
pub fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Clamps a requested worker count by [`hardware_parallelism`]: threads
/// beyond the core count only time-slice each other, so a fan-out sized
/// past the hardware runs *slower* than sequential (observed on 1-cpu CI
/// runners). Never returns 0.
pub fn effective_jobs(requested: usize) -> usize {
    requested.min(hardware_parallelism()).max(1)
}

/// Current global worker count, resolving [`default_jobs`] on first use.
pub fn jobs() -> usize {
    let j = JOBS.load(Ordering::SeqCst);
    if j != 0 {
        return j;
    }
    let resolved = default_jobs();
    // A concurrent configure_jobs wins; otherwise install the default.
    let _ = JOBS.compare_exchange(0, resolved, Ordering::SeqCst, Ordering::SeqCst);
    JOBS.load(Ordering::SeqCst)
}

/// Whether the calling thread is a pool worker. Nested [`par_map`] calls
/// detect this and run sequentially instead of spawning a second layer of
/// threads.
pub fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Maps `f` over `items` using the global worker count ([`jobs`]); see
/// [`par_map_jobs`].
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_jobs(items, jobs(), f)
}

/// Maps `f` over `items` on up to `jobs` scoped threads, returning results
/// **in input order**.
///
/// Workers claim items through an atomic cursor and write each result into
/// the slot matching its input index, so the output is byte-identical to
/// `items.into_iter().map(f).collect()` regardless of scheduling. With
/// `jobs <= 1`, a single item, or when called from inside a pool worker
/// (see [`in_pool`]), the map runs sequentially on the calling thread with
/// no pool overhead.
///
/// # Panics
///
/// Panics if any worker's `f` panicked (scoped threads re-raise on join,
/// with the original panic printed by the worker thread).
pub fn par_map_jobs<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.min(n);
    if workers <= 1 || in_pool() {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = std::iter::repeat_with(|| Mutex::new(None))
        .take(n)
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                IN_POOL.with(|c| c.set(true));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot lock poisoned")
                        .take()
                        .expect("work item claimed twice");
                    let result = f(item);
                    *slots[i].lock().expect("result slot lock poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot lock poisoned")
                .expect("worker exited without storing its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_jobs(items.clone(), 8, |i| {
            // Skew the completion order: early items finish last.
            std::thread::sleep(std::time::Duration::from_micros(((64 - i) % 7) as u64 * 50));
            i * 2
        });
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let out = par_map_jobs(vec![(); 4], 1, |()| std::thread::current().id());
        assert!(out.iter().all(|id| *id == caller));
    }

    #[test]
    fn nested_par_map_runs_sequentially() {
        let nested_in_pool = par_map_jobs(vec![(); 2], 2, |()| {
            assert!(in_pool());
            // The inner map must not spawn: its closure stays on this
            // worker thread.
            let outer = std::thread::current().id();
            par_map_jobs(vec![(); 4], 4, |()| std::thread::current().id())
                .into_iter()
                .all(|id| id == outer)
        });
        assert!(nested_in_pool.into_iter().all(|same| same));
        assert!(!in_pool(), "the guard is scoped to pool workers");
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_jobs(empty, 4, |x: u32| x).is_empty());
        assert_eq!(par_map_jobs(vec![7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn effective_jobs_clamps_to_hardware() {
        let hw = hardware_parallelism();
        assert!(hw >= 1);
        assert_eq!(effective_jobs(0), 1, "never zero");
        assert!(effective_jobs(usize::MAX) <= hw, "capped by the hardware");
        assert_eq!(effective_jobs(1), 1);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let _ = par_map_jobs(vec![0, 1, 2, 3], 2, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
