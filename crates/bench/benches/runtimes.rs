//! Whole-runtime benchmarks: one small-size application run per runtime.
//! These measure the *simulator's* wall-clock cost (virtual results are
//! deterministic); they are the knobs to watch when extending the runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use fluidicl::{Fluidicl, FluidiclConfig};
use fluidicl_baselines::{SoclRuntime, SoclScheduler, StaticPartitionRuntime};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::find;
use fluidicl_vcl::{DeviceKind, SingleDeviceRuntime};

const N: usize = 128;
const SEED: u64 = 5;

fn bench_runtimes(c: &mut Criterion) {
    let machine = MachineConfig::paper_testbed();
    let bench = find("SYRK").expect("SYRK registered");
    let mut g = c.benchmark_group("runtimes_syrk128");
    g.sample_size(20);
    g.bench_function("cpu_only", |b| {
        b.iter(|| {
            let mut rt =
                SingleDeviceRuntime::new(machine.clone(), DeviceKind::Cpu, (bench.program)(N));
            (bench.run)(&mut rt, N, SEED).expect("runs")
        })
    });
    g.bench_function("gpu_only", |b| {
        b.iter(|| {
            let mut rt =
                SingleDeviceRuntime::new(machine.clone(), DeviceKind::Gpu, (bench.program)(N));
            (bench.run)(&mut rt, N, SEED).expect("runs")
        })
    });
    g.bench_function("fluidicl", |b| {
        b.iter(|| {
            let mut rt = Fluidicl::new(
                machine.clone(),
                FluidiclConfig::default(),
                (bench.program)(N),
            );
            (bench.run)(&mut rt, N, SEED).expect("runs")
        })
    });
    g.bench_function("static_50_50", |b| {
        b.iter(|| {
            let mut rt =
                StaticPartitionRuntime::new(machine.clone(), (bench.program)(N), 0.5);
            (bench.run)(&mut rt, N, SEED).expect("runs")
        })
    });
    g.bench_function("socl_eager", |b| {
        b.iter(|| {
            let mut rt =
                SoclRuntime::new(machine.clone(), (bench.program)(N), SoclScheduler::Eager);
            (bench.run)(&mut rt, N, SEED).expect("runs")
        })
    });
    g.finish();
}

fn bench_multi_kernel(c: &mut Criterion) {
    let machine = MachineConfig::paper_testbed();
    let bench = find("CORR").expect("CORR registered");
    let n = 64;
    let mut g = c.benchmark_group("runtimes_corr64");
    g.sample_size(20);
    g.bench_function("fluidicl_4_kernels", |b| {
        b.iter(|| {
            let mut rt = Fluidicl::new(
                machine.clone(),
                FluidiclConfig::default(),
                (bench.program)(n),
            );
            (bench.run)(&mut rt, n, SEED).expect("runs")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_runtimes, bench_multi_kernel);
criterion_main!(benches);
