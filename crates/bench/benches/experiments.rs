//! Criterion benches over the experiment harness. Criterion repeats each
//! target at least ten times, so only the second-scale experiments run here
//! (tables 1–3); the full set — every figure and table of the paper — is
//! regenerated in one pass by `cargo run --release -p fluidicl-bench --bin
//! repro all`, which is the canonical way to reproduce the evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use fluidicl_bench::experiments::{experiments, find, ExperimentResult};
use fluidicl_hetsim::MachineConfig;

/// The experiments cheap enough to repeat under criterion.
const FAST: [&str; 3] = ["table1", "table2", "table3"];

fn bench_fast_experiments(c: &mut Criterion) {
    let machine = MachineConfig::paper_testbed();
    let mut g = c.benchmark_group("paper_experiments");
    g.sample_size(10);
    for id in FAST {
        let e = find(id).expect("experiment registered");
        g.bench_function(e.id, |b| {
            b.iter(|| {
                let result: ExperimentResult = (e.run)(&machine);
                assert!(
                    !result.tables.is_empty() && !result.tables[0].is_empty(),
                    "{} produced no data",
                    e.id
                );
                result.tables.len()
            })
        });
    }
    g.finish();
    // The registry itself stays covered: every experiment id must resolve.
    assert_eq!(experiments().len(), 14);
}

criterion_group!(benches, bench_fast_experiments);
criterion_main!(benches);
