//! Microbenchmarks of the substrate: event-queue throughput, the
//! diff-merge coherence primitive, and the functional kernel executor.
//! These bound the wall-clock cost of regenerating the paper's experiments.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fluidicl_des::{SimDuration, Simulation};
use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::exec::{execute_all, Launch};
use fluidicl_vcl::{diff_merge, ArgRole, ArgSpec, BufferId, KernelArg, KernelDef, Memory, NdRange};
use std::sync::Arc;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    for &n in &[1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("schedule_pop_{n}"), |b| {
            b.iter(|| {
                let mut sim = Simulation::new();
                for i in 0..n {
                    sim.schedule_in(SimDuration::from_nanos(i % 977), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = sim.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_diff_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");
    for &n in &[1usize << 12, 1 << 18] {
        let orig: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let cpu: Vec<f32> = (0..n)
            .map(|i| if i % 3 == 0 { i as f32 + 1.0 } else { i as f32 })
            .collect();
        g.throughput(Throughput::Bytes(n as u64 * 4));
        g.bench_function(format!("diff_merge_{n}"), |b| {
            b.iter_batched(
                || orig.clone(),
                |mut gpu| {
                    diff_merge(&mut gpu, &cpu, &orig);
                    gpu
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    let kernel = Arc::new(KernelDef::new(
        "mad",
        vec![
            ArgSpec::new("src", ArgRole::In),
            ArgSpec::new("dst", ArgRole::Out),
        ],
        KernelProfile::new("mad"),
        |item, _, ins, outs| {
            let i = item.global_linear();
            outs.at(0)[i] = ins.get(0)[i].mul_add(1.5, 0.5);
        },
    ));
    let mut g = c.benchmark_group("executor");
    for &n in &[1usize << 12, 1 << 16] {
        let nd = NdRange::d1(n, 64).expect("valid range");
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("execute_all_{n}"), |b| {
            b.iter_batched(
                || {
                    let mut mem = Memory::new();
                    mem.install(BufferId(0), (0..n).map(|i| i as f32).collect());
                    mem.alloc(BufferId(1), n);
                    mem
                },
                |mut mem| {
                    let launch = Launch::new(
                        kernel.clone(),
                        nd,
                        vec![KernelArg::Buffer(BufferId(0)), KernelArg::Buffer(BufferId(1))],
                    );
                    execute_all(&launch, &mut mem).expect("executes");
                    mem
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_diff_merge, bench_executor);
criterion_main!(benches);
