//! One module per table/figure of the paper, each regenerating its data
//! over the simulated testbed.

use fluidicl_hetsim::MachineConfig;

use crate::table::Table;

mod ablation;
mod extended;
mod fig14;
mod fig15;
mod fig16;
mod fig17;
mod fig18;
mod fig2;
mod fig3;
mod graph;
mod ndev;
mod overall;
mod portability;
mod table1;
mod table2;
mod table3;

/// Output of one experiment: rendered tables plus free-form notes about
/// how the measured shape compares with the paper.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `"fig2"`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Data tables.
    pub tables: Vec<Table>,
    /// Observations: the paper's expectation and what the run showed.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Renders the result as text (tables + notes).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### [{}] {}\n\n", self.id, self.title));
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// An experiment of the paper's evaluation.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Identifier used on the `repro` command line.
    pub id: &'static str,
    /// Title, matching the paper's table/figure caption.
    pub title: &'static str,
    /// Runs the experiment on a machine configuration.
    pub run: fn(&MachineConfig) -> ExperimentResult,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish_non_exhaustive()
    }
}

/// All experiments, in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig2",
            title: "Figure 2: normalized time vs GPU work allocation (ATAX, SYRK)",
            run: fig2::run,
        },
        Experiment {
            id: "fig3",
            title: "Figure 3: SYRK static-split curves for two input sizes",
            run: fig3::run,
        },
        Experiment {
            id: "table1",
            title: "Table 1: BICG kernel running times on each device",
            run: table1::run,
        },
        Experiment {
            id: "table2",
            title: "Table 2: benchmark inventory (sizes, kernels, work-groups)",
            run: table2::run,
        },
        Experiment {
            id: "overall",
            title: "Figure 13: overall performance of FluidiCL vs CPU/GPU/OracleSP",
            run: overall::run,
        },
        Experiment {
            id: "fig14",
            title: "Figure 14: SYRK across input sizes",
            run: fig14::run,
        },
        Experiment {
            id: "fig15",
            title: "Figure 15: effect of work-group abort placement and unrolling",
            run: fig15::run,
        },
        Experiment {
            id: "table3",
            title: "Table 3: CORR with online profiling over kernel versions",
            run: table3::run,
        },
        Experiment {
            id: "fig16",
            title: "Figure 16: comparison with SOCL (eager and dmda)",
            run: fig16::run,
        },
        Experiment {
            id: "fig17",
            title: "Figure 17: sensitivity to initial chunk size",
            run: fig17::run,
        },
        Experiment {
            id: "fig18",
            title: "Figure 18: sensitivity to chunk step size",
            run: fig18::run,
        },
        Experiment {
            id: "ablation",
            title: "Extension: host-side optimization ablation (pool, location tracking, wg split)",
            run: ablation::run,
        },
        Experiment {
            id: "portability",
            title: "Extension: portability of the unchanged runtime across machines",
            run: portability::run,
        },
        Experiment {
            id: "extended",
            title: "Extension: workloads beyond the paper's suite (MVT, GEMM, 2MM)",
            run: extended::run,
        },
        Experiment {
            id: "ndev",
            title: "Extension: N-device scaling with a mid-range peer GPU",
            run: ndev::run,
        },
        Experiment {
            id: "graph",
            title: "Extension: kernel-graph scheduling of independent kernels (BATCHMM)",
            run: graph::run,
        },
    ]
}

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let all = experiments();
        assert_eq!(all.len(), 16);
        let mut ids: Vec<_> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16, "experiment ids must be unique");
    }

    #[test]
    fn find_works() {
        assert!(find("fig2").is_some());
        assert!(find("nope").is_none());
    }
}
