//! Figure 2: normalized execution time as the GPU work share varies, for
//! ATAX and SYRK.
//!
//! Paper expectation: ATAX's curve is monotone — 100% GPU is best — while
//! SYRK has an interior optimum, so no single rule of thumb works.

use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::find;

use crate::runners::run_static;
use crate::table::{ratio, Table};

use super::ExperimentResult;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let mut table = Table::new(
        "Normalized execution time vs GPU work allocation",
        &["gpu_pct", "ATAX", "SYRK"],
    );
    let atax = find("ATAX").expect("ATAX registered");
    let syrk = find("SYRK").expect("SYRK registered");
    let sweep = |bench: &fluidicl_polybench::BenchmarkSpec| -> Vec<f64> {
        // Each static split is an independent run; par_map keeps the
        // sweep order, so the normalized curve is unchanged.
        let times = fluidicl_par::par_map((0..=10).collect::<Vec<u32>>(), |i| {
            run_static(machine, bench, bench.default_n, 1.0 - f64::from(i) / 10.0)
        });
        let best = times.iter().copied().min().expect("non-empty").as_nanos() as f64;
        times.iter().map(|t| t.as_nanos() as f64 / best).collect()
    };
    let a = sweep(&atax);
    let s = sweep(&syrk);
    for i in 0..=10usize {
        table.row(vec![format!("{}", i * 10), ratio(a[i]), ratio(s[i])]);
    }
    let atax_best = a
        .iter()
        .enumerate()
        .min_by(|(_, x), (_, y)| x.total_cmp(y))
        .map(|(i, _)| i * 10)
        .expect("non-empty");
    let syrk_best = s
        .iter()
        .enumerate()
        .min_by(|(_, x), (_, y)| x.total_cmp(y))
        .map(|(i, _)| i * 10)
        .expect("non-empty");
    ExperimentResult {
        id: "fig2",
        title: "Normalized time vs GPU work allocation (ATAX, SYRK)",
        tables: vec![table],
        notes: vec![format!(
            "ATAX optimum at {atax_best}% GPU (paper: 100% — monotone curve), \
                 SYRK optimum at {syrk_best}% GPU (paper: interior optimum)."
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atax_is_gpu_monotone_and_syrk_interior() {
        let r = run(&MachineConfig::paper_testbed());
        assert_eq!(r.tables[0].len(), 11);
        // The note records the optima; re-derive them from the CSV.
        let csv = r.tables[0].to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        let best_atax = rows
            .iter()
            .min_by(|a, b| a[1].total_cmp(&b[1]))
            .map(|r| r[0])
            .unwrap();
        let best_syrk = rows
            .iter()
            .min_by(|a, b| a[2].total_cmp(&b[2]))
            .map(|r| r[0])
            .unwrap();
        assert!(best_atax >= 90.0, "ATAX must favour (almost) pure GPU");
        assert!(
            best_syrk > 0.0 && best_syrk < 100.0,
            "SYRK must have an interior optimum"
        );
    }
}
