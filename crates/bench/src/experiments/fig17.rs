//! Figure 17: sensitivity to the initial CPU chunk size.
//!
//! Paper expectations: large initial chunks (≫ the default few percent)
//! hurt the cooperative benchmarks (BICG, SYRK, SYR2K) because CPU results
//! stop flowing to the GPU often enough, while GESUMMV — which runs best on
//! the CPU alone — *prefers* big chunks that amortise subkernel launches.
//! The default stays within a few percent of the per-benchmark best.

use fluidicl::FluidiclConfig;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::benchmarks;

use crate::runners::run_fluidicl;
use crate::table::{ratio, Table};

use super::ExperimentResult;

/// Initial chunk sizes swept (percent of total work-groups); the paper's
/// tick labels are garbled — these cover its 2%–75% range.
pub const CHUNKS: [f64; 6] = [2.0, 5.0, 10.0, 25.0, 50.0, 75.0];

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let mut header = vec!["benchmark".to_string()];
    header.extend(CHUNKS.iter().map(|c| format!("{c}%")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "FluidiCL time normalized to the default 2% initial chunk",
        &header_refs,
    );
    let mut notes = Vec::new();
    let units = fluidicl_par::par_map(benchmarks(), |b| {
        let n = b.default_n;
        let times: Vec<f64> = CHUNKS
            .iter()
            .map(|&chunk| {
                let config = FluidiclConfig::default().with_chunk(chunk, 2.0);
                run_fluidicl(machine, &config, &b, n).0.as_nanos() as f64
            })
            .collect();
        (b.name, times)
    });
    for (name, times) in units {
        let base = times[0];
        let mut row = vec![name.to_string()];
        row.extend(times.iter().map(|t| ratio(t / base)));
        table.row(row);
        if name == "GESUMMV" {
            let best = times.iter().copied().fold(f64::MAX, f64::min);
            notes.push(format!(
                "GESUMMV prefers larger chunks; the default is within \
                 {:.1}% of its best chunk size (paper: within a few percent).",
                (base / best - 1.0) * 100.0
            ));
        }
        if name == "BICG" {
            notes.push(
                "Deviation: the paper's BICG suffers from large chunks; here \
                 each BICG kernel is strongly single-device-favoured, so the \
                 GPU simply recomputes an oversized CPU allocation (bicg_q) \
                 or profits from it (bicg_s), and the curve stays flat."
                    .to_string(),
            );
        }
    }
    ExperimentResult {
        id: "fig17",
        title: "Initial chunk-size sensitivity",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_chunks_hurt_cooperative_benchmarks() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        // SYRK and SYR2K are the benchmarks where both devices genuinely
        // co-execute one kernel; they must pay for starving the GPU of
        // status updates. (BICG's kernels are each single-device-favoured
        // here and tolerate big chunks — noted as a deviation.)
        for name in ["SYRK", "SYR2K"] {
            let row = csv.lines().find(|l| l.starts_with(name)).unwrap();
            let cells: Vec<f64> = row.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
            let at_75 = *cells.last().unwrap();
            assert!(
                at_75 > 1.02,
                "{name}: a 75% initial chunk should clearly hurt (got {at_75})"
            );
        }
    }

    #[test]
    fn gesummv_tolerates_large_chunks() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        let row = csv.lines().find(|l| l.starts_with("GESUMMV")).unwrap();
        let cells: Vec<f64> = row.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
        let at_75 = *cells.last().unwrap();
        assert!(
            at_75 <= 1.02,
            "GESUMMV should not suffer from large chunks (got {at_75})"
        );
    }
}
