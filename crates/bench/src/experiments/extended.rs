//! Extended workloads (extension): FluidiCL on benchmarks beyond the
//! paper's suite — MVT (two kernels with opposite device preferences over
//! a shared matrix), GEMM (the canonical dense kernel) and 2MM (two
//! *dependent* matrix products stressing cross-kernel coherence).
//!
//! The point of the experiment: the runtime was calibrated only against the
//! paper's six benchmarks; tracking or beating the best single device on
//! unseen workloads shows the protocol, not the tuning, does the work.

use fluidicl::FluidiclConfig;
use fluidicl_des::geomean;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::extended_benchmarks;

use crate::runners::{run_cpu_only, run_fluidicl, run_gpu_only};
use crate::table::{ratio, Table};

use super::ExperimentResult;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let config = FluidiclConfig::default();
    let mut table = Table::new(
        "Extended suite: time normalized to the best single device",
        &["benchmark", "CPU", "GPU", "FluidiCL"],
    );
    let mut norms = Vec::new();
    let units = fluidicl_par::par_map(extended_benchmarks(), |b| {
        let n = b.default_n;
        let cpu = run_cpu_only(machine, &b, n);
        let gpu = run_gpu_only(machine, &b, n);
        let (fcl, _) = run_fluidicl(machine, &config, &b, n);
        (b.name, cpu, gpu, fcl)
    });
    for (name, cpu, gpu, fcl) in units {
        let best = cpu.min(gpu).as_nanos() as f64;
        let norm = fcl.as_nanos() as f64 / best;
        norms.push(norm);
        table.row(vec![
            name.to_string(),
            ratio(cpu.as_nanos() as f64 / best),
            ratio(gpu.as_nanos() as f64 / best),
            ratio(norm),
        ]);
    }
    let g = geomean(&norms).expect("non-empty");
    ExperimentResult {
        id: "extended",
        title: "FluidiCL on workloads beyond the paper's suite (extension)",
        tables: vec![table],
        notes: vec![format!(
            "Geomean {g:.3} vs the best single device on workloads the \
             models were never tuned against."
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluidicl_generalizes_to_unseen_workloads() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        assert_eq!(r.tables[0].len(), 3);
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let fcl: f64 = cells[3].parse().unwrap();
            assert!(
                fcl <= 1.08,
                "{}: FluidiCL at {fcl} strays too far on an unseen workload",
                cells[0]
            );
        }
    }
}
