//! Table 2: the benchmark inventory — input sizes, kernel counts and
//! work-group counts.
//!
//! The paper's sizes (OCR-garbled; plausibly 8672² ATAX, 4576² BICG, 2048²
//! CORR, 4096 GESUMMV, …) are scaled down for functional execution; the
//! structure (kernel counts, few-vs-many work-groups) is preserved.

use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::benchmarks;

use crate::table::Table;

use super::ExperimentResult;

pub(super) fn run(_machine: &MachineConfig) -> ExperimentResult {
    let mut table = Table::new(
        "Benchmarks used in this reproduction",
        &[
            "benchmark",
            "input size",
            "kernels",
            "work-groups per kernel",
        ],
    );
    for b in benchmarks() {
        let wgs = (b.workgroups)(b.default_n)
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        table.row(vec![
            b.name.to_string(),
            format!("({n}, {n})", n = b.default_n),
            b.kernel_count.to_string(),
            wgs,
        ]);
    }
    ExperimentResult {
        id: "table2",
        title: "Benchmark inventory",
        tables: vec![table],
        notes: vec![
            "Sizes are scaled from the paper's (which functional execution cannot \
             afford); the kernel structure and work-group shape (e.g. GESUMMV's \
             8 long-running groups) match."
                .to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_registry() {
        let r = run(&MachineConfig::paper_testbed());
        assert_eq!(r.tables[0].len(), 6);
        let csv = r.tables[0].to_csv();
        assert!(csv.contains("GESUMMV"));
    }
}
