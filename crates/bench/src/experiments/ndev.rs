//! N-device scaling (extension): the shared-frontier protocol with a
//! mid-range peer GPU added to the paper testbed, against the paper's
//! two-device configuration and both single devices.
//!
//! The peer pays an up-front begin broadcast (kernel buffers over its own,
//! slower link) before its first claim, so the third device only pays off
//! once kernels are large enough to amortise it — the sizes here are double
//! the check-sweep sizes for exactly that reason. Memory-bound kernels
//! (GESUMMV, MVT) can *regress*: when the slow peer claims a range
//! mid-descent, the contiguous covered suffix — the owner's single
//! watermark, all the in-loop abort check can consult — stalls until the
//! peer's results land, and the owner re-executes work-groups the CPU
//! already shipped. The adaptive chunk controller bounds that tax; it
//! cannot eliminate it without giving up the paper's one-comparison abort.

use fluidicl::FluidiclConfig;
use fluidicl_des::geomean;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::all_benchmarks;

use crate::runners::{run_cpu_only, run_fluidicl, run_gpu_only};
use crate::table::{ratio, Table};

use super::ExperimentResult;

/// Double the fluidicl-check sweep sizes (kept in lockstep with
/// `fluidicl_check::sweep_size`, which bench cannot depend on).
fn scaling_n(name: &str) -> usize {
    match name {
        "ATAX" | "BICG" | "MVT" => 512,
        "GESUMMV" => 1024,
        _ => 128, // CORR, SYRK, SYR2K, GEMM, 2MM
    }
}

pub(super) fn run(_machine: &MachineConfig) -> ExperimentResult {
    let two_dev = MachineConfig::paper_testbed();
    let three_dev = MachineConfig::paper_testbed_3dev();
    let config = FluidiclConfig::default();
    let mut table = Table::new(
        "Time normalized to the best single device: 2-device vs 3-device",
        &[
            "benchmark",
            "CPU",
            "GPU",
            "FCL-2dev",
            "FCL-3dev",
            "3dev/2dev",
        ],
    );
    let units = fluidicl_par::par_map(all_benchmarks(), |b| {
        let n = scaling_n(b.name);
        let cpu = run_cpu_only(&two_dev, &b, n);
        let gpu = run_gpu_only(&two_dev, &b, n);
        let (two, _) = run_fluidicl(&two_dev, &config, &b, n);
        let (three, _) = run_fluidicl(&three_dev, &config, &b, n);
        (b.name, cpu, gpu, two, three)
    });
    let mut ratios = Vec::new();
    let mut wins = 0usize;
    for (name, cpu, gpu, two, three) in units {
        let best = cpu.min(gpu).as_nanos() as f64;
        let r = three.as_nanos() as f64 / two.as_nanos() as f64;
        ratios.push(r);
        if three < two {
            wins += 1;
        }
        table.row(vec![
            name.to_string(),
            ratio(cpu.as_nanos() as f64 / best),
            ratio(gpu.as_nanos() as f64 / best),
            ratio(two.as_nanos() as f64 / best),
            ratio(three.as_nanos() as f64 / best),
            ratio(r),
        ]);
    }
    let g = geomean(&ratios).expect("non-empty");
    ExperimentResult {
        id: "ndev",
        title: "N-device scaling: paper testbed + mid-range peer GPU (extension)",
        tables: vec![table],
        notes: vec![format!(
            "3-device total virtual time beats 2-device on {wins} of 9 \
             benchmarks (geomean 3dev/2dev {g:.3}); the peer helps once its \
             begin broadcast amortises, and taxes memory-bound kernels \
             whose watermark it gates."
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_device_wins_on_at_least_three_benchmarks() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        assert_eq!(r.tables[0].len(), 9);
        let mut wins = 0;
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let ratio: f64 = cells[5].parse().unwrap();
            assert!(
                ratio <= 1.15,
                "{}: 3-device config at {ratio} over 2-device",
                cells[0]
            );
            if ratio < 1.0 {
                wins += 1;
            }
        }
        assert!(wins >= 3, "third device won on only {wins} benchmarks");
    }
}
