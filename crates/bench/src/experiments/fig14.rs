//! Figure 14: SYRK across input sizes.
//!
//! Paper expectation: FluidiCL outperforms both single devices across the
//! whole size sweep, with a geomean speedup of ≈1.4× over the better one.

use fluidicl::FluidiclConfig;
use fluidicl_des::geomean;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::find;

use crate::runners::{run_cpu_only, run_fluidicl, run_gpu_only};
use crate::table::{ratio, Table};

use super::ExperimentResult;

/// The size sweep (the paper runs 1024²–3072²; scaled).
pub const SIZES: [usize; 5] = [128, 256, 384, 512, 768];

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let syrk = find("SYRK").expect("SYRK registered");
    let config = FluidiclConfig::default();
    let mut table = Table::new(
        "SYRK: time normalized to the best single device, per input size",
        &["input", "CPU", "GPU", "FluidiCL"],
    );
    let mut speedups = Vec::new();
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let units = fluidicl_par::par_map(SIZES.to_vec(), |n| {
        let cpu = run_cpu_only(machine, &syrk, n);
        let gpu = run_gpu_only(machine, &syrk, n);
        let (fcl, _) = run_fluidicl(machine, &config, &syrk, n);
        (n, cpu, gpu, fcl)
    });
    for (n, cpu, gpu, fcl) in units {
        let best = cpu.min(gpu).as_nanos() as f64;
        let norm = [
            cpu.as_nanos() as f64 / best,
            gpu.as_nanos() as f64 / best,
            fcl.as_nanos() as f64 / best,
        ];
        table.row(vec![
            format!("{n}"),
            ratio(norm[0]),
            ratio(norm[1]),
            ratio(norm[2]),
        ]);
        for (c, v) in cols.iter_mut().zip(norm) {
            c.push(v);
        }
        speedups.push(best / fcl.as_nanos() as f64);
    }
    table.row(vec![
        "GMean".to_string(),
        ratio(geomean(&cols[0]).expect("non-empty")),
        ratio(geomean(&cols[1]).expect("non-empty")),
        ratio(geomean(&cols[2]).expect("non-empty")),
    ]);
    let g = geomean(&speedups).expect("non-empty");
    ExperimentResult {
        id: "fig14",
        title: "SYRK on different inputs",
        tables: vec![table],
        notes: vec![format!(
            "FluidiCL geomean speedup over the better device across sizes: \
             {g:.2}x (paper ≈1.4x)."
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluidicl_wins_at_every_cooperative_size() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        // At 256 and above SYRK is cooperative; FluidiCL must beat the best
        // single device there.
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            if cells[0] == "GMean" {
                continue;
            }
            let n: usize = cells[0].parse().unwrap();
            let fcl: f64 = cells[3].parse().unwrap();
            if n >= 256 {
                assert!(fcl < 1.0, "n={n}: FluidiCL should beat the best device");
            } else {
                assert!(fcl < 1.1, "n={n}: FluidiCL should stay close to the best");
            }
        }
    }
}
