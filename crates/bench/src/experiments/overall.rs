//! Figure 13 (the paper's "Figure 3" in Section 9.1): overall performance
//! of FluidiCL against CPU-only, GPU-only and OracleSP.
//!
//! Paper expectations: FluidiCL tracks the best single device within a few
//! percent on every benchmark, outperforms it on BICG, SYRK and SYR2K,
//! approaches OracleSP everywhere (within ~4% on ATAX) and beats OracleSP
//! on SYRK/SYR2K; geomean speedups ≈1.64× over the GPU, ≈1.88× over the
//! CPU, up to ≈1.4× over the better of the two.

use fluidicl::FluidiclConfig;
use fluidicl_des::geomean;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::benchmarks;

use crate::runners::{run_cpu_only, run_fluidicl, run_gpu_only, run_static, SEED};
use crate::table::{ratio, Table};

use super::ExperimentResult;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let _ = SEED;
    let mut table = Table::new(
        "Execution time normalized to the best single device",
        &["benchmark", "CPU", "GPU", "FluidiCL", "OracleSP"],
    );
    let config = FluidiclConfig::default();
    let mut cols: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut vs_gpu = Vec::new();
    let mut vs_cpu = Vec::new();
    let mut vs_best = Vec::new();
    // Each benchmark (including its 11-point oracle sweep) is an
    // independent unit; `par_map` preserves input order, so the rows and
    // geomeans assembled below are byte-identical to the sequential run.
    let units = fluidicl_par::par_map(benchmarks(), |b| {
        let n = b.default_n;
        let cpu = run_cpu_only(machine, &b, n);
        let gpu = run_gpu_only(machine, &b, n);
        let (fcl, _) = run_fluidicl(machine, &config, &b, n);
        let oracle = (0..=10)
            .map(|i| run_static(machine, &b, n, i as f64 / 10.0))
            .min()
            .expect("sweep non-empty");
        (b.name, cpu, gpu, fcl, oracle)
    });
    for (name, cpu, gpu, fcl, oracle) in units {
        let best = cpu.min(gpu).as_nanos() as f64;
        let norm = [
            cpu.as_nanos() as f64 / best,
            gpu.as_nanos() as f64 / best,
            fcl.as_nanos() as f64 / best,
            oracle.as_nanos() as f64 / best,
        ];
        table.row(vec![
            name.to_string(),
            ratio(norm[0]),
            ratio(norm[1]),
            ratio(norm[2]),
            ratio(norm[3]),
        ]);
        for (c, v) in cols.iter_mut().zip(norm) {
            c.push(v);
        }
        vs_gpu.push(gpu.as_nanos() as f64 / fcl.as_nanos() as f64);
        vs_cpu.push(cpu.as_nanos() as f64 / fcl.as_nanos() as f64);
        vs_best.push(best / fcl.as_nanos() as f64);
    }
    table.row(vec![
        "GeoMean".to_string(),
        ratio(geomean(&cols[0]).expect("non-empty")),
        ratio(geomean(&cols[1]).expect("non-empty")),
        ratio(geomean(&cols[2]).expect("non-empty")),
        ratio(geomean(&cols[3]).expect("non-empty")),
    ]);
    let g_gpu = geomean(&vs_gpu).expect("non-empty");
    let g_cpu = geomean(&vs_cpu).expect("non-empty");
    let g_best = geomean(&vs_best).expect("non-empty");
    let max_best = vs_best.iter().copied().fold(f64::MIN, f64::max);
    ExperimentResult {
        id: "overall",
        title: "Overall performance of FluidiCL",
        tables: vec![table],
        notes: vec![format!(
            "FluidiCL geomean speedup: {g_gpu:.2}x over GPU-only (paper ≈1.64x), \
             {g_cpu:.2}x over CPU-only (paper ≈1.88x), {g_best:.2}x over the \
             better device (max {max_best:.2}x; paper up to ≈1.4x)."
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluidicl_tracks_or_beats_the_best_device() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            if cells[0] == "GeoMean" {
                continue;
            }
            let fcl: f64 = cells[3].parse().unwrap();
            assert!(
                fcl <= 1.06,
                "{}: FluidiCL at {fcl} strays >6% from the best device",
                cells[0]
            );
        }
    }

    #[test]
    fn fluidicl_beats_best_on_the_cooperative_benchmarks() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        for name in ["BICG", "SYRK", "SYR2K"] {
            let row = csv
                .lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("{name} missing"));
            let fcl: f64 = row.split(',').nth(3).unwrap().parse().unwrap();
            assert!(
                fcl < 1.0,
                "{name}: expected FluidiCL < best device, got {fcl}"
            );
        }
    }
}
