//! Optimization ablation (extension): each Section-6 optimization toggled
//! off individually.
//!
//! Figure 15 covers the GPU-kernel transformations; this experiment covers
//! the host-side optimizations the paper describes but does not ablate in a
//! figure: the GPU scratch-buffer pool (§6.1), data-location tracking
//! (§6.2) and CPU work-group splitting (§6.3). Each column disables exactly
//! one of them; values are normalized to the fully-optimized runtime, so
//! numbers above 1 are the cost of losing that optimization.
//!
//! A second table compares the dirty-range transfer protocol (an extension
//! beyond the paper, now the default) against the legacy whole-buffer
//! protocol, reporting modelled H2D bytes and total time per benchmark. A
//! third ablates the CPU subkernel pipeline depth: depth 1 is the serial
//! protocol, depth ≥ 2 overlaps compute with in-flight transfers and
//! coalesces back-to-back result shipments.
//!
//! The host-side table runs under the legacy whole-buffer serial protocol
//! (the paper's §6 setting) so that each column isolates exactly one
//! optimization: under dirty-range read-backs the untracked read ships only
//! stale ranges, which can legitimately undercut location tracking's
//! full-buffer host memcpy and would muddy the "disabling never helps"
//! property the table demonstrates.

use fluidicl::{FluidiclConfig, KernelReport};
use fluidicl_des::geomean;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::benchmarks;

use crate::runners::run_fluidicl;
use crate::table::{ratio, Table};

use super::ExperimentResult;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    // The paper's protocol setting: whole-buffer transfers, serial CPU
    // subkernels (see the module docs for why this table pins both).
    let paper = || {
        FluidiclConfig::default()
            .with_whole_buffer_transfers()
            .with_pipeline_depth(1)
    };
    let variants: [(&str, FluidiclConfig); 4] = [
        ("AllOpt", paper()),
        ("NoPool", paper().with_buffer_pool(false)),
        ("NoLocTrack", paper().with_location_tracking(false)),
        ("NoWgSplit", paper().with_wg_split(false)),
    ];
    let mut header = vec!["benchmark"];
    header.extend(variants.iter().map(|(name, _)| *name));
    let mut table = Table::new(
        "FluidiCL time normalized to AllOpt, per disabled optimization",
        &header,
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    let units = fluidicl_par::par_map(benchmarks(), |b| {
        // GESUMMV runs with 10 work-groups here (instead of Table 2's 8):
        // an allocation tail smaller than the thread count is what CPU
        // work-group splitting (§6.3) exists for, and 8 work-groups on 8
        // threads never produce one.
        let n = if b.name == "GESUMMV" {
            2560
        } else {
            b.default_n
        };
        let times: Vec<f64> = variants
            .iter()
            .map(|(_, config)| run_fluidicl(machine, config, &b, n).0.as_nanos() as f64)
            .collect();
        (b.name, times)
    });
    for (name, times) in units {
        let base = times[0];
        let mut row = vec![name.to_string()];
        row.extend(times.iter().map(|t| ratio(t / base)));
        table.row(row);
        for (c, t) in cols.iter_mut().zip(&times) {
            c.push(t / base);
        }
    }
    let mut geo_row = vec!["GeoMean".to_string()];
    for c in &cols {
        geo_row.push(ratio(geomean(c).expect("non-empty")));
    }
    table.row(geo_row);

    let mut dirty_table = Table::new(
        "Dirty-range transfers: H2D bytes and time vs the whole-buffer protocol",
        &[
            "benchmark",
            "hd_bytes_full",
            "hd_bytes_dirty",
            "bytes_ratio",
            "time_ratio",
        ],
    );
    let hd = |reports: &[KernelReport]| reports.iter().map(|r| r.hd_bytes).sum::<u64>();
    let dirty_units = fluidicl_par::par_map(benchmarks(), |b| {
        let n = if b.name == "GESUMMV" {
            2560
        } else {
            b.default_n
        };
        let (full_t, full_reports) = run_fluidicl(
            machine,
            &FluidiclConfig::default().with_whole_buffer_transfers(),
            &b,
            n,
        );
        let (dirty_t, dirty_reports) = run_fluidicl(machine, &FluidiclConfig::default(), &b, n);
        (
            b.name,
            hd(&full_reports),
            hd(&dirty_reports),
            full_t,
            dirty_t,
        )
    });
    for (name, full_hd, dirty_hd, full_t, dirty_t) in dirty_units {
        dirty_table.row(vec![
            name.to_string(),
            full_hd.to_string(),
            dirty_hd.to_string(),
            ratio(dirty_hd as f64 / full_hd as f64),
            ratio(dirty_t.as_nanos() as f64 / full_t.as_nanos() as f64),
        ]);
    }

    // The depth ablation runs on the weak-GPU laptop, not the passed
    // machine: on the paper testbed the GPU reaches the CPU/GPU boundary
    // long after every status has arrived, and its exit is quantized to
    // wave boundaries, so the sub-microsecond send shifts pipelining buys
    // never move the modelled total. On the weak-GPU machine the CPU
    // subkernel path sits on the critical path and overlapping compute
    // with staging copies pays on every benchmark.
    let pipe_machine = MachineConfig::weak_gpu_laptop();
    let mut pipe_table = Table::new(
        "Pipelined subkernels: total time by pipeline depth \
         (dirty-range protocol, weak-GPU laptop)",
        &[
            "benchmark",
            "depth1_ns",
            "depth2_ns",
            "depth4_ns",
            "d2_vs_d1",
            "d4_vs_d1",
        ],
    );
    let pipe_units = fluidicl_par::par_map(benchmarks(), |b| {
        let n = if b.name == "GESUMMV" {
            2560
        } else {
            b.default_n
        };
        let time = |depth: u32| {
            run_fluidicl(
                &pipe_machine,
                &FluidiclConfig::default().with_pipeline_depth(depth),
                &b,
                n,
            )
            .0
        };
        (b.name, time(1), time(2), time(4))
    });
    for (name, t1, t2, t4) in pipe_units {
        pipe_table.row(vec![
            name.to_string(),
            t1.as_nanos().to_string(),
            t2.as_nanos().to_string(),
            t4.as_nanos().to_string(),
            ratio(t2.as_nanos() as f64 / t1.as_nanos() as f64),
            ratio(t4.as_nanos() as f64 / t1.as_nanos() as f64),
        ]);
    }

    ExperimentResult {
        id: "ablation",
        title: "Host-side optimization ablation (extension)",
        tables: vec![table, dirty_table, pipe_table],
        notes: vec![
            "Work-group splitting matters for few-work-group kernels \
             (GESUMMV); the pool and location tracking shave fixed overheads \
             everywhere and matter most for short-kernel applications."
                .to_string(),
            "Dirty-range transfers ship only each CPU subkernel's written \
             element ranges (plus the 16 B status message) through the H2D \
             queue and copy only stale ranges on snapshot refreshes and \
             read-backs; functional results are bit-identical to the \
             whole-buffer protocol."
                .to_string(),
            "Pipeline depth 1 serializes each subkernel behind the previous \
             one's staging copy; depth ≥ 2 starts the next subkernel while \
             the previous results are in flight and coalesces back-to-back \
             completions into one data+status batch. Final buffers are \
             bit-identical at every depth. The depth table uses the \
             weak-GPU laptop, where the CPU subkernel path is on the \
             critical path; on the paper testbed the GPU's wave-quantized \
             exit absorbs the sub-microsecond send shifts and every depth \
             ties."
                .to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_optimization_helps_when_disabled() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        let geo = csv
            .lines()
            .find(|l| l.starts_with("GeoMean"))
            .expect("geomean row");
        let cells: Vec<f64> = geo.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
        assert!((cells[0] - 1.0).abs() < 1e-9, "baseline normalizes to 1");
        for (i, v) in cells.iter().enumerate().skip(1) {
            assert!(
                *v >= 0.999,
                "disabling optimization {i} should never help (got {v})"
            );
        }
    }

    #[test]
    fn dirty_range_transfers_reduce_bytes_on_every_benchmark() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[1].to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let (name, full, dirty) = (cells[0], cells[1], cells[2]);
            let full: u64 = full.parse().unwrap();
            let dirty: u64 = dirty.parse().unwrap();
            assert!(
                dirty < full,
                "{name}: dirty-range H2D bytes must shrink ({dirty} vs {full})"
            );
            let time_ratio: f64 = cells[4].parse().unwrap();
            assert!(
                time_ratio <= 1.0 + 1e-9,
                "{name}: shipping less must never slow the model ({time_ratio})"
            );
        }
    }

    #[test]
    fn pipelining_helps_transfer_bound_benchmarks() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[2].to_csv();
        let transfer_bound = ["ATAX", "BICG", "GESUMMV"];
        let mut improved = 0usize;
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let name = cells[0];
            let t1: u64 = cells[1].parse().unwrap();
            let t2: u64 = cells[2].parse().unwrap();
            if transfer_bound.contains(&name) && t2 < t1 {
                improved += 1;
            }
        }
        assert!(
            improved >= 3,
            "pipeline depth 2 must beat the serial protocol on at least 3 \
             transfer-bound benchmarks (improved on {improved})"
        );
    }

    #[test]
    fn wg_split_matters_for_gesummv() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        let row = csv.lines().find(|l| l.starts_with("GESUMMV")).unwrap();
        let cells: Vec<f64> = row.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
        let no_split = cells[3];
        assert!(
            no_split > 1.001,
            "GESUMMV must regress without work-group splitting (got {no_split})"
        );
    }
}
