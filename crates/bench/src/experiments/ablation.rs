//! Optimization ablation (extension): each Section-6 optimization toggled
//! off individually.
//!
//! Figure 15 covers the GPU-kernel transformations; this experiment covers
//! the host-side optimizations the paper describes but does not ablate in a
//! figure: the GPU scratch-buffer pool (§6.1), data-location tracking
//! (§6.2) and CPU work-group splitting (§6.3). Each column disables exactly
//! one of them; values are normalized to the fully-optimized runtime, so
//! numbers above 1 are the cost of losing that optimization.
//!
//! A second table ablates in the other direction: it *enables* the
//! dirty-range transfer protocol (an extension beyond the paper, off by
//! default) and reports the modelled H2D bytes and total time against the
//! whole-buffer protocol per benchmark.

use fluidicl::{FluidiclConfig, KernelReport};
use fluidicl_des::geomean;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::benchmarks;

use crate::runners::run_fluidicl;
use crate::table::{ratio, Table};

use super::ExperimentResult;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let variants: [(&str, FluidiclConfig); 4] = [
        ("AllOpt", FluidiclConfig::default()),
        ("NoPool", FluidiclConfig::default().with_buffer_pool(false)),
        (
            "NoLocTrack",
            FluidiclConfig::default().with_location_tracking(false),
        ),
        ("NoWgSplit", FluidiclConfig::default().with_wg_split(false)),
    ];
    let mut header = vec!["benchmark"];
    header.extend(variants.iter().map(|(name, _)| *name));
    let mut table = Table::new(
        "FluidiCL time normalized to AllOpt, per disabled optimization",
        &header,
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    let units = fluidicl_par::par_map(benchmarks(), |b| {
        // GESUMMV runs with 10 work-groups here (instead of Table 2's 8):
        // an allocation tail smaller than the thread count is what CPU
        // work-group splitting (§6.3) exists for, and 8 work-groups on 8
        // threads never produce one.
        let n = if b.name == "GESUMMV" {
            2560
        } else {
            b.default_n
        };
        let times: Vec<f64> = variants
            .iter()
            .map(|(_, config)| run_fluidicl(machine, config, &b, n).0.as_nanos() as f64)
            .collect();
        (b.name, times)
    });
    for (name, times) in units {
        let base = times[0];
        let mut row = vec![name.to_string()];
        row.extend(times.iter().map(|t| ratio(t / base)));
        table.row(row);
        for (c, t) in cols.iter_mut().zip(&times) {
            c.push(t / base);
        }
    }
    let mut geo_row = vec!["GeoMean".to_string()];
    for c in &cols {
        geo_row.push(ratio(geomean(c).expect("non-empty")));
    }
    table.row(geo_row);

    let mut dirty_table = Table::new(
        "Dirty-range transfers: H2D bytes and time vs the whole-buffer protocol",
        &[
            "benchmark",
            "hd_bytes_full",
            "hd_bytes_dirty",
            "bytes_ratio",
            "time_ratio",
        ],
    );
    let hd = |reports: &[KernelReport]| reports.iter().map(|r| r.hd_bytes).sum::<u64>();
    let dirty_units = fluidicl_par::par_map(benchmarks(), |b| {
        let n = if b.name == "GESUMMV" {
            2560
        } else {
            b.default_n
        };
        let (full_t, full_reports) = run_fluidicl(machine, &FluidiclConfig::default(), &b, n);
        let (dirty_t, dirty_reports) = run_fluidicl(
            machine,
            &FluidiclConfig::default().with_dirty_range_transfers(true),
            &b,
            n,
        );
        (
            b.name,
            hd(&full_reports),
            hd(&dirty_reports),
            full_t,
            dirty_t,
        )
    });
    for (name, full_hd, dirty_hd, full_t, dirty_t) in dirty_units {
        dirty_table.row(vec![
            name.to_string(),
            full_hd.to_string(),
            dirty_hd.to_string(),
            ratio(dirty_hd as f64 / full_hd as f64),
            ratio(dirty_t.as_nanos() as f64 / full_t.as_nanos() as f64),
        ]);
    }

    ExperimentResult {
        id: "ablation",
        title: "Host-side optimization ablation (extension)",
        tables: vec![table, dirty_table],
        notes: vec![
            "Work-group splitting matters for few-work-group kernels \
             (GESUMMV); the pool and location tracking shave fixed overheads \
             everywhere and matter most for short-kernel applications."
                .to_string(),
            "Dirty-range transfers ship only each CPU subkernel's written \
             element ranges (plus the 16 B status message) through the H2D \
             queue and copy only stale ranges on snapshot refreshes and \
             read-backs; functional results are bit-identical to the \
             whole-buffer protocol."
                .to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_optimization_helps_when_disabled() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        let geo = csv
            .lines()
            .find(|l| l.starts_with("GeoMean"))
            .expect("geomean row");
        let cells: Vec<f64> = geo.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
        assert!((cells[0] - 1.0).abs() < 1e-9, "baseline normalizes to 1");
        for (i, v) in cells.iter().enumerate().skip(1) {
            assert!(
                *v >= 0.999,
                "disabling optimization {i} should never help (got {v})"
            );
        }
    }

    #[test]
    fn dirty_range_transfers_reduce_bytes_on_every_benchmark() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[1].to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let (name, full, dirty) = (cells[0], cells[1], cells[2]);
            let full: u64 = full.parse().unwrap();
            let dirty: u64 = dirty.parse().unwrap();
            assert!(
                dirty < full,
                "{name}: dirty-range H2D bytes must shrink ({dirty} vs {full})"
            );
            let time_ratio: f64 = cells[4].parse().unwrap();
            assert!(
                time_ratio <= 1.0 + 1e-9,
                "{name}: shipping less must never slow the model ({time_ratio})"
            );
        }
    }

    #[test]
    fn wg_split_matters_for_gesummv() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        let row = csv.lines().find(|l| l.starts_with("GESUMMV")).unwrap();
        let cells: Vec<f64> = row.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
        let no_split = cells[3];
        assert!(
            no_split > 1.001,
            "GESUMMV must regress without work-group splitting (got {no_split})"
        );
    }
}
