//! Figure 16: comparison with SOCL (the StarPU OpenCL extension).
//!
//! Paper expectations: FluidiCL outperforms the eager scheduler on every
//! benchmark (SYRK by >4×), matches or beats the calibrated dmda scheduler
//! on most (SYR2K by >2.4×), and comes within ~9% of dmda on ATAX and CORR
//! — all without any calibration runs.

use fluidicl::FluidiclConfig;
use fluidicl_baselines::SoclScheduler;
use fluidicl_des::geomean;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::benchmarks;

use crate::runners::{run_cpu_only, run_fluidicl, run_gpu_only, run_socl};
use crate::table::{ratio, Table};

use super::ExperimentResult;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let mut table = Table::new(
        "Execution time normalized to the best single device",
        &[
            "benchmark",
            "CPU",
            "GPU",
            "SOCLDefault",
            "SOCLdmda",
            "FluidiCL",
        ],
    );
    let config = FluidiclConfig::default();
    let mut cols: [Vec<f64>; 5] = Default::default();
    let mut vs_eager = Vec::new();
    let mut vs_dmda = Vec::new();
    let units = fluidicl_par::par_map(benchmarks(), |b| {
        let n = b.default_n;
        let cpu = run_cpu_only(machine, &b, n);
        let gpu = run_gpu_only(machine, &b, n);
        let eager = run_socl(machine, &b, n, SoclScheduler::Eager, false);
        let dmda = run_socl(machine, &b, n, SoclScheduler::Dmda, true);
        let (fcl, _) = run_fluidicl(machine, &config, &b, n);
        (b.name, cpu, gpu, eager, dmda, fcl)
    });
    for (name, cpu, gpu, eager, dmda, fcl) in units {
        let best = cpu.min(gpu).as_nanos() as f64;
        let norm = [
            cpu.as_nanos() as f64 / best,
            gpu.as_nanos() as f64 / best,
            eager.as_nanos() as f64 / best,
            dmda.as_nanos() as f64 / best,
            fcl.as_nanos() as f64 / best,
        ];
        table.row(vec![
            name.to_string(),
            ratio(norm[0]),
            ratio(norm[1]),
            ratio(norm[2]),
            ratio(norm[3]),
            ratio(norm[4]),
        ]);
        for (c, v) in cols.iter_mut().zip(norm) {
            c.push(v);
        }
        vs_eager.push(eager.as_nanos() as f64 / fcl.as_nanos() as f64);
        vs_dmda.push(dmda.as_nanos() as f64 / fcl.as_nanos() as f64);
    }
    let mut geo_row = vec!["GeoMean".to_string()];
    for c in &cols {
        geo_row.push(ratio(geomean(c).expect("non-empty")));
    }
    table.row(geo_row);
    let g_eager = geomean(&vs_eager).expect("non-empty");
    let g_dmda = geomean(&vs_dmda).expect("non-empty");
    let max_eager = vs_eager.iter().copied().fold(f64::MIN, f64::max);
    let max_dmda = vs_dmda.iter().copied().fold(f64::MIN, f64::max);
    ExperimentResult {
        id: "fig16",
        title: "Comparison with SOCL",
        tables: vec![table],
        notes: vec![format!(
            "FluidiCL vs SOCL-eager: geomean {g_eager:.2}x, max {max_eager:.2}x \
             (paper: 1.67x geomean, >4x on SYRK). Vs calibrated SOCL-dmda: \
             geomean {g_dmda:.2}x, max {max_dmda:.2}x (paper: ≈1.26x, >2.4x on \
             SYR2K) — with no calibration runs at all."
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluidicl_beats_eager_everywhere_and_dmda_on_geomean() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        let mut dmda_geo = 0.0;
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let eager: f64 = cells[3].parse().unwrap();
            let dmda: f64 = cells[4].parse().unwrap();
            let fcl: f64 = cells[5].parse().unwrap();
            if cells[0] == "GeoMean" {
                dmda_geo = dmda / fcl;
                continue;
            }
            assert!(
                fcl <= eager * 1.001,
                "{}: FluidiCL ({fcl}) must not lose to eager ({eager})",
                cells[0]
            );
            // Within ~10% of calibrated dmda everywhere (paper: within 9%).
            assert!(
                fcl <= dmda * 1.10,
                "{}: FluidiCL ({fcl}) strays >10% behind dmda ({dmda})",
                cells[0]
            );
        }
        assert!(
            dmda_geo >= 1.0,
            "FluidiCL must at least match dmda on geomean"
        );
    }
}
