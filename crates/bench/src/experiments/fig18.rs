//! Figure 18: sensitivity to the chunk-growth step size.
//!
//! Paper expectation: the default step stays within a couple of percent of
//! the best step size for every benchmark (max degradation ≈3%); a step of
//! 0% freezes the chunk at its initial size.

use fluidicl::FluidiclConfig;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::benchmarks;

use crate::runners::run_fluidicl;
use crate::table::{ratio, Table};

use super::ExperimentResult;

/// Step sizes swept (percent of total work-groups); 0% means every CPU
/// subkernel keeps the initial allocation.
pub const STEPS: [f64; 6] = [0.0, 1.0, 2.0, 3.0, 5.0, 9.0];
/// Index of the default (2%) step within [`STEPS`].
const DEFAULT_IDX: usize = 2;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let mut header = vec!["benchmark".to_string()];
    header.extend(STEPS.iter().map(|s| format!("{s}%")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "FluidiCL time normalized to the default 2% step size",
        &header_refs,
    );
    let mut worst_default_gap = 0.0f64;
    let units = fluidicl_par::par_map(benchmarks(), |b| {
        let n = b.default_n;
        let times: Vec<f64> = STEPS
            .iter()
            .map(|&step| {
                let config = FluidiclConfig::default().with_chunk(2.0, step);
                run_fluidicl(machine, &config, &b, n).0.as_nanos() as f64
            })
            .collect();
        (b.name, times)
    });
    for (name, times) in units {
        let base = times[DEFAULT_IDX];
        let best = times.iter().copied().fold(f64::MAX, f64::min);
        worst_default_gap = worst_default_gap.max(base / best - 1.0);
        let mut row = vec![name.to_string()];
        row.extend(times.iter().map(|t| ratio(t / base)));
        table.row(row);
    }
    ExperimentResult {
        id: "fig18",
        title: "Chunk step-size sensitivity",
        tables: vec![table],
        notes: vec![format!(
            "The default 2% step is within {:.1}% of the best step size on \
             every benchmark (paper: within ~2%, max degradation 3%).",
            worst_default_gap * 100.0
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_step_is_near_optimal_everywhere() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let values: Vec<f64> = cells[1..].iter().map(|c| c.parse().unwrap()).collect();
            let best = values.iter().copied().fold(f64::MAX, f64::min);
            // Normalized to the default, so the default's gap to the best
            // step is 1/best − 1.
            assert!(
                1.0 / best - 1.0 < 0.08,
                "{}: default step strays too far from the best",
                cells[0]
            );
        }
    }
}
