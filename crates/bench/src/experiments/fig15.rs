//! Figure 15: effect of the GPU work-group abort placement and of loop
//! unrolling around in-loop checks.
//!
//! Paper expectations: checking only at work-group start ("NoAbortUnroll")
//! wastes GPU work that the CPU already finished; in-loop checks without
//! manual unrolling ("NoUnroll") slow most benchmarks down because the
//! compiler can no longer unroll; the full treatment ("AllOpt") is best.

use fluidicl::FluidiclConfig;
use fluidicl_des::geomean;
use fluidicl_hetsim::{AbortMode, MachineConfig};
use fluidicl_polybench::benchmarks;

use crate::runners::run_fluidicl;
use crate::table::{ratio, Table};

use super::ExperimentResult;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let mut table = Table::new(
        "FluidiCL time normalized to AllOpt, per abort configuration",
        &["benchmark", "NoAbortUnroll", "NoUnroll", "AllOpt"],
    );
    let modes = [
        AbortMode::WorkGroupStart,
        AbortMode::InLoop,
        AbortMode::InLoopUnrolled,
    ];
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let units = fluidicl_par::par_map(benchmarks(), |b| {
        let n = b.default_n;
        let times: Vec<f64> = modes
            .iter()
            .map(|mode| {
                let config = FluidiclConfig::default().with_abort_mode(*mode);
                run_fluidicl(machine, &config, &b, n).0.as_nanos() as f64
            })
            .collect();
        (b.name, times)
    });
    for (name, times) in units {
        let allopt = times[2];
        table.row(vec![
            name.to_string(),
            ratio(times[0] / allopt),
            ratio(times[1] / allopt),
            ratio(times[2] / allopt),
        ]);
        for (c, t) in cols.iter_mut().zip(&times) {
            c.push(t / allopt);
        }
    }
    table.row(vec![
        "GeoMean".to_string(),
        ratio(geomean(&cols[0]).expect("non-empty")),
        ratio(geomean(&cols[1]).expect("non-empty")),
        ratio(geomean(&cols[2]).expect("non-empty")),
    ]);
    ExperimentResult {
        id: "fig15",
        title: "Work-group abort and unrolling ablation",
        tables: vec![table],
        notes: vec![
            "AllOpt (in-loop aborts + manual unrolling) should be the fastest \
             configuration on (geo)average; NoUnroll pays the compiler's lost \
             unrolling, NoAbortUnroll wastes duplicated GPU loop iterations."
                .to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allopt_wins_on_geomean() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        let geo = csv
            .lines()
            .find(|l| l.starts_with("GeoMean"))
            .expect("geomean row");
        let cells: Vec<f64> = geo.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
        assert!(cells[0] >= 1.0, "NoAbortUnroll should not beat AllOpt");
        assert!(cells[1] >= 1.0, "NoUnroll should not beat AllOpt");
        assert!((cells[2] - 1.0).abs() < 1e-9);
        assert!(
            cells[0] > 1.0 || cells[1] > 1.0,
            "the ablation must show a measurable effect"
        );
    }
}
