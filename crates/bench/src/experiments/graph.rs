//! Kernel-graph scheduling (extension): DAG-parallel co-execution of
//! independent kernels across devices.
//!
//! The workload is the BATCHMM pipeline (`fluidicl_polybench::batchmm`):
//! four independent matrix products fanning into one reduction. With graph
//! scheduling off, the five launches execute back to back — each one
//! co-executes on the owner CPU+GPU pair while the mid-range peer GPU of
//! `paper_testbed_3dev` sits idle for small kernels (its begin broadcast
//! never amortises inside a single launch). With graph scheduling on, the
//! runtime defers the launches, builds the dependence DAG from the declared
//! access footprints, and the HEFT lookahead moves whole sibling products
//! onto the peer lane *concurrently* with owner co-execution — parallelism
//! the intra-kernel protocol cannot see.

use fluidicl::FluidiclConfig;
use fluidicl_des::geomean;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::pipeline_benchmark;

use crate::runners::run_fluidicl;
use crate::table::{ratio, Table};

use super::ExperimentResult;

/// BATCHMM sizes: around the default (128), where the products are heavy
/// enough for peer offload to pay but small enough to run quickly.
const SIZES: [usize; 3] = [96, 128, 192];

pub(super) fn run(_machine: &MachineConfig) -> ExperimentResult {
    let machine = MachineConfig::paper_testbed_3dev();
    let serial_cfg = FluidiclConfig::default();
    let graph_cfg = FluidiclConfig::default().with_graph_scheduling(true);
    let bench = pipeline_benchmark();
    let mut table = Table::new(
        "BATCHMM pipeline makespan: serial enqueue vs graph-scheduled (3-device testbed)",
        &["n", "serial_ns", "graph_ns", "graph/serial"],
    );
    let units = fluidicl_par::par_map(SIZES.to_vec(), |n| {
        let (serial, _) = run_fluidicl(&machine, &serial_cfg, &bench, n);
        let (graph, _) = run_fluidicl(&machine, &graph_cfg, &bench, n);
        (n, serial, graph)
    });
    let mut ratios = Vec::new();
    for (n, serial, graph) in units {
        let r = graph.as_nanos() as f64 / serial.as_nanos() as f64;
        ratios.push(r);
        table.row(vec![
            n.to_string(),
            serial.as_nanos().to_string(),
            graph.as_nanos().to_string(),
            ratio(r),
        ]);
    }
    let g = geomean(&ratios).expect("non-empty");
    ExperimentResult {
        id: "graph",
        title: "Kernel-graph scheduling: DAG-parallel co-execution (extension)",
        tables: vec![table],
        notes: vec![format!(
            "graph-scheduled BATCHMM runs at geomean {g:.3} of the serial \
             pipeline: HEFT offloads whole sibling products to the peer GPU \
             lane while the owner pair co-executes the rest, then the fan-in \
             reduction waits on every product's completion edge."
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_scheduling_beats_serial_on_the_pipeline() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        assert_eq!(r.tables[0].len(), SIZES.len());
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let ratio: f64 = cells[3].parse().unwrap();
            assert!(
                ratio < 0.95,
                "n={}: graph-scheduled pipeline at {ratio} of serial — \
                 expected a measurable makespan reduction",
                cells[0]
            );
        }
    }
}
