//! Portability (extension): the unchanged FluidiCL runtime on three
//! different machines.
//!
//! The paper's pitch (§1) is that FluidiCL "does not require prior training
//! or profiling and is completely portable across different machines": the
//! dynamic protocol re-discovers the device balance at runtime. This
//! experiment moves the suite — with the exact same runtime configuration —
//! from the paper's testbed to a weak-GPU laptop and to a big-GPU node, and
//! checks that FluidiCL keeps tracking (or beating) the best single device
//! everywhere, even though *which* device is best flips per machine.

use fluidicl::FluidiclConfig;
use fluidicl_des::geomean;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::benchmarks;

use crate::runners::{run_cpu_only, run_fluidicl, run_gpu_only};
use crate::table::{ratio, Table};

use super::ExperimentResult;

pub(super) fn run(_machine: &MachineConfig) -> ExperimentResult {
    let machines = [
        ("weak-GPU laptop", MachineConfig::weak_gpu_laptop()),
        ("paper testbed", MachineConfig::paper_testbed()),
        ("big-GPU node", MachineConfig::big_gpu_node()),
    ];
    let config = FluidiclConfig::default();
    let mut table = Table::new(
        "FluidiCL time normalized to the best single device, per machine",
        &[
            "benchmark",
            "weak-GPU laptop",
            "paper testbed",
            "big-GPU node",
        ],
    );
    let mut per_machine_norms: Vec<Vec<f64>> = vec![Vec::new(); machines.len()];
    let mut rows: Vec<Vec<String>> = Vec::new();
    // Every (benchmark, machine) cell is an independent unit; the nested
    // machine loop stays inside each unit so a benchmark row is one task.
    let units = fluidicl_par::par_map(benchmarks(), |b| {
        let n = b.default_n;
        let norms: Vec<f64> = machines
            .iter()
            .map(|(_, machine)| {
                let cpu = run_cpu_only(machine, &b, n);
                let gpu = run_gpu_only(machine, &b, n);
                let (fcl, _) = run_fluidicl(machine, &config, &b, n);
                fcl.as_nanos() as f64 / cpu.min(gpu).as_nanos() as f64
            })
            .collect();
        (b.name, norms)
    });
    for (name, norms) in units {
        let mut row = vec![name.to_string()];
        for (mi, norm) in norms.into_iter().enumerate() {
            per_machine_norms[mi].push(norm);
            row.push(ratio(norm));
        }
        rows.push(row);
    }
    for row in rows {
        table.row(row);
    }
    let mut geo_row = vec!["GeoMean".to_string()];
    for norms in &per_machine_norms {
        geo_row.push(ratio(geomean(norms).expect("non-empty")));
    }
    table.row(geo_row);
    let worst = per_machine_norms
        .iter()
        .flatten()
        .copied()
        .fold(f64::MIN, f64::max);
    ExperimentResult {
        id: "portability",
        title: "Portability across machines (extension)",
        tables: vec![table],
        notes: vec![format!(
            "One runtime configuration, three machines: FluidiCL never strays \
             more than {:.1}% behind the best single device on any of them, \
             with zero retuning — the paper's portability claim.",
            (worst - 1.0).max(0.0) * 100.0
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluidicl_tracks_the_best_device_on_every_machine() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            if cells[0] == "GeoMean" {
                continue;
            }
            for (mi, v) in cells[1..].iter().enumerate() {
                let norm: f64 = v.parse().unwrap();
                assert!(
                    norm <= 1.15,
                    "{} on machine {mi}: FluidiCL at {norm} strays too far",
                    cells[0]
                );
            }
        }
    }
}
