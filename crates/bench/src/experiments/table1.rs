//! Table 1: per-kernel running times of BICG on each single device.
//!
//! Paper expectation: BICG's two kernels each run faster on a *different*
//! device, so no whole-application device choice is right, and per-kernel
//! placement needs data management between the kernels.

use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::find;
use fluidicl_vcl::{ClDriver, DeviceKind, SingleDeviceRuntime};

use crate::runners::SEED;
use crate::table::{ms, Table};

use super::ExperimentResult;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let bicg = find("BICG").expect("BICG registered");
    let n = bicg.default_n;
    let kernel_times = |device: DeviceKind| {
        let mut rt = SingleDeviceRuntime::new(machine.clone(), device, (bicg.program)(n));
        let ok = bicg
            .run_and_validate_sized(&mut rt, n, SEED)
            .expect("bicg run failed");
        assert!(ok, "BICG validation failed on {device:?}");
        rt.kernel_times()
    };
    let mut both = fluidicl_par::par_map(vec![DeviceKind::Cpu, DeviceKind::Gpu], kernel_times);
    let gpu = both.pop().expect("gpu times");
    let cpu = both.pop().expect("cpu times");
    let mut table = Table::new(
        "BICG kernel running times (ms)",
        &["kernel", "CPU only", "GPU only", "faster device"],
    );
    let mut winners = Vec::new();
    for ((name, tc), (_, tg)) in cpu.iter().zip(&gpu) {
        let winner = if tc < tg { "CPU" } else { "GPU" };
        winners.push(winner);
        table.row(vec![name.clone(), ms(*tc), ms(*tg), winner.to_string()]);
    }
    ExperimentResult {
        id: "table1",
        title: "BICG kernel running times",
        tables: vec![table],
        notes: vec![format!(
            "Each kernel prefers a different device: {} (paper: same split).",
            winners.join(" / ")
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_prefer_different_devices() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        let winners: Vec<&str> = csv
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap())
            .collect();
        assert_eq!(winners.len(), 2);
        assert_ne!(winners[0], winners[1], "the two kernels must disagree");
    }
}
