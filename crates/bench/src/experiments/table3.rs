//! Table 3: CORR with a choice of kernel versions and online profiling.
//!
//! Paper expectation: given an alternate loop-interchanged CPU kernel,
//! FluidiCL's online profiling picks it automatically and improves CORR by
//! ≈1.9× over the baseline-kernel FluidiCL run.

use fluidicl::FluidiclConfig;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::find;

use crate::runners::{run_cpu_only, run_fluidicl, run_gpu_only};
use crate::table::{ms, Table};

use super::ExperimentResult;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let corr = find("CORR").expect("CORR registered");
    let n = corr.default_n;
    // The four runtimes are independent; fan them out and pull the results
    // back in declaration order.
    let mut units = fluidicl_par::par_map(vec![0usize, 1, 2, 3], |which| match which {
        0 => (run_gpu_only(machine, &corr, n), Vec::new()),
        1 => (run_cpu_only(machine, &corr, n), Vec::new()),
        2 => {
            let (t, _) = run_fluidicl(machine, &FluidiclConfig::default(), &corr, n);
            (t, Vec::new())
        }
        _ => {
            let (t, reports) = run_fluidicl(
                machine,
                &FluidiclConfig::default().with_online_profiling(true),
                &corr,
                n,
            );
            (t, reports)
        }
    });
    let (fcl_pro, reports) = units.pop().expect("fcl_pro run");
    let (fcl, _) = units.pop().expect("fcl run");
    let (cpu, _) = units.pop().expect("cpu run");
    let (gpu, _) = units.pop().expect("gpu run");
    let chosen = reports
        .iter()
        .find(|r| r.kernel == "corr_corr")
        .map(|r| r.cpu_version_used)
        .expect("corr_corr report");
    let mut table = Table::new(
        "CORR total running time (ms) with a choice of kernels",
        &["GPU", "CPU", "FluidiCL", "FCL+Pro"],
    );
    table.row(vec![ms(gpu), ms(cpu), ms(fcl), ms(fcl_pro)]);
    let speedup = fcl.as_nanos() as f64 / fcl_pro.as_nanos() as f64;
    ExperimentResult {
        id: "table3",
        title: "CORR with online kernel-version profiling",
        tables: vec![table],
        notes: vec![format!(
            "Online profiling selected version {chosen} (the loop-interchanged \
             CPU kernel) and improved FluidiCL by {speedup:.2}x (paper ≈1.9x)."
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_picks_the_alternate_and_improves() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        let cells: Vec<f64> = csv
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .map(|c| c.parse().unwrap())
            .collect();
        let (fcl, fcl_pro) = (cells[2], cells[3]);
        assert!(
            fcl_pro < fcl,
            "online profiling must improve CORR ({fcl_pro} vs {fcl})"
        );
        assert!(r.notes[0].contains("version 1"), "alternate version chosen");
    }
}
