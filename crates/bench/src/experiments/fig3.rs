//! Figure 3: SYRK static-split curves for a small and a large input.
//!
//! Paper expectation: the best static split *moves with the input size*
//! (≈60% GPU for the small input, ≈40% GPU for the large one in the paper);
//! any fixed split is therefore wrong for some input.

use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::find;

use crate::runners::run_static;
use crate::table::{ratio, Table};

use super::ExperimentResult;

/// Small input size (the paper's garbled "(, )" — most plausibly 128²).
pub const SMALL_N: usize = 128;
/// Large input size (paper: 2048²; scaled to keep functional execution
/// fast while staying in the cache-thrashing regime of the GPU model).
pub const LARGE_N: usize = 768;

pub(super) fn run(machine: &MachineConfig) -> ExperimentResult {
    let syrk = find("SYRK").expect("SYRK registered");
    let mut table = Table::new(
        "SYRK: normalized time vs GPU allocation, two input sizes",
        &["gpu_pct", "SYRK(Small)", "SYRK(Large)"],
    );
    let sweep = |n: usize| -> Vec<f64> {
        let times = fluidicl_par::par_map((0..=10).collect::<Vec<u32>>(), |i| {
            run_static(machine, &syrk, n, 1.0 - f64::from(i) / 10.0)
        });
        let best = times.iter().copied().min().expect("non-empty").as_nanos() as f64;
        times.iter().map(|t| t.as_nanos() as f64 / best).collect()
    };
    let small = sweep(SMALL_N);
    let large = sweep(LARGE_N);
    for i in 0..=10usize {
        table.row(vec![
            format!("{}", i * 10),
            ratio(small[i]),
            ratio(large[i]),
        ]);
    }
    let best_pct = |v: &[f64]| {
        v.iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i * 10)
            .expect("non-empty")
    };
    ExperimentResult {
        id: "fig3",
        title: "SYRK split curves for two input sizes",
        tables: vec![table],
        notes: vec![format!(
            "Best GPU share: small input {}%, large input {}% — the optimum \
             moves toward the CPU as the input grows (paper: 60% → 40%).",
            best_pct(&small),
            best_pct(&large)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_moves_toward_cpu_with_size() {
        let r = run(&MachineConfig::paper_testbed());
        let csv = r.tables[0].to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        let best = |col: usize| {
            rows.iter()
                .min_by(|a, b| a[col].total_cmp(&b[col]))
                .map(|r| r[0])
                .unwrap()
        };
        assert!(
            best(2) < best(1),
            "large input must favour more CPU (lower GPU %) than small"
        );
    }
}
