//! # fluidicl-bench — experiment harness
//!
//! Regenerates every table and figure of the FluidiCL paper's motivation
//! and evaluation sections over the simulated testbed. See `EXPERIMENTS.md`
//! at the repository root for the index and the recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runners;
pub mod table;

pub use runners::SEED;
