//! Plain-text table rendering for the experiment harness.
//!
//! Every figure/table of the paper is regenerated as an aligned text table
//! (numbers, not pixels) plus a CSV block that plotting tools can ingest.

use std::fmt::Write as _;

/// A simple column-aligned table with a title, header and string cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders a CSV form (comma-separated, header first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a normalized ratio with 3 decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a virtual duration in milliseconds with 3 decimals.
pub fn ms(d: fluidicl_des::SimDuration) -> String {
    format!("{:.3}", d.as_nanos() as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_des::SimDuration;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_checked() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(1.23456), "1.235");
        assert_eq!(ms(SimDuration::from_millis(2)), "2.000");
    }
}
