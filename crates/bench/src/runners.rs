//! Uniform runner helpers: execute one benchmark application on each
//! runtime, validate against the sequential reference, and return the
//! virtual total running time (the paper's metric: total time including all
//! data-transfer overheads, §8).

use fluidicl::{Fluidicl, FluidiclConfig, KernelReport};
use fluidicl_baselines::{SoclRuntime, SoclScheduler, StaticPartitionRuntime};
use fluidicl_des::SimDuration;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::BenchmarkSpec;
use fluidicl_vcl::{ClDriver, DeviceKind, SingleDeviceRuntime};

/// Default seed: every experiment runs over the same inputs.
pub const SEED: u64 = 20140215; // CGO'14 conference date.

fn check(name: &str, runtime: &str, ok: bool) {
    assert!(ok, "{runtime} produced wrong results for {name}");
}

/// Runs on the CPU alone via the vendor-runtime stand-in.
pub fn run_cpu_only(machine: &MachineConfig, bench: &BenchmarkSpec, n: usize) -> SimDuration {
    let mut rt = SingleDeviceRuntime::new(machine.clone(), DeviceKind::Cpu, (bench.program)(n));
    let ok = bench
        .run_and_validate_sized(&mut rt, n, SEED)
        .expect("cpu-only run failed");
    check(bench.name, "CPU-only", ok);
    rt.elapsed()
}

/// Runs on the GPU alone via the vendor-runtime stand-in.
pub fn run_gpu_only(machine: &MachineConfig, bench: &BenchmarkSpec, n: usize) -> SimDuration {
    let mut rt = SingleDeviceRuntime::new(machine.clone(), DeviceKind::Gpu, (bench.program)(n));
    let ok = bench
        .run_and_validate_sized(&mut rt, n, SEED)
        .expect("gpu-only run failed");
    check(bench.name, "GPU-only", ok);
    rt.elapsed()
}

/// Runs under FluidiCL with `config`, returning total time and the
/// per-kernel reports.
pub fn run_fluidicl(
    machine: &MachineConfig,
    config: &FluidiclConfig,
    bench: &BenchmarkSpec,
    n: usize,
) -> (SimDuration, Vec<KernelReport>) {
    let mut rt = Fluidicl::new(machine.clone(), config.clone(), (bench.program)(n));
    let ok = bench
        .run_and_validate_sized(&mut rt, n, SEED)
        .expect("fluidicl run failed");
    check(bench.name, "FluidiCL", ok);
    (rt.elapsed(), rt.reports().to_vec())
}

/// Runs under a fixed static split (`cpu_fraction` of the work-groups to
/// the CPU).
pub fn run_static(
    machine: &MachineConfig,
    bench: &BenchmarkSpec,
    n: usize,
    cpu_fraction: f64,
) -> SimDuration {
    let mut rt = StaticPartitionRuntime::new(machine.clone(), (bench.program)(n), cpu_fraction);
    let ok = bench
        .run_and_validate_sized(&mut rt, n, SEED)
        .expect("static run failed");
    check(bench.name, "StaticPartition", ok);
    rt.elapsed()
}

/// Runs under SOCL. For `Dmda` with `calibrated = true` the application is
/// first replayed once to record kernel geometries, a fresh runtime is
/// calibrated on them, and the measured run follows — mirroring the paper's
/// calibration-then-measure methodology (§9.4).
pub fn run_socl(
    machine: &MachineConfig,
    bench: &BenchmarkSpec,
    n: usize,
    scheduler: SoclScheduler,
    calibrated: bool,
) -> SimDuration {
    let mut rt = SoclRuntime::new(machine.clone(), (bench.program)(n), scheduler);
    if calibrated {
        let mut probe = SoclRuntime::new(machine.clone(), (bench.program)(n), SoclScheduler::Eager);
        let _ = bench
            .run_and_validate_sized(&mut probe, n, SEED)
            .expect("socl probe run failed");
        for (kernel, nd) in probe.geometry_log() {
            rt.calibrate(kernel, *nd).expect("calibration failed");
        }
    }
    let ok = bench
        .run_and_validate_sized(&mut rt, n, SEED)
        .expect("socl run failed");
    check(bench.name, "SOCL", ok);
    rt.elapsed()
}

/// Normalizes `times` to the best (smallest) entry of `baselines`: the
/// paper's usual presentation "execution time normalized to the best
/// single device".
pub fn normalize_to_best(time: SimDuration, baselines: &[SimDuration]) -> f64 {
    let best = baselines
        .iter()
        .copied()
        .min()
        .expect("at least one baseline")
        .as_nanos() as f64;
    time.as_nanos() as f64 / best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_polybench::find;

    #[test]
    fn all_runners_validate_on_a_small_case() {
        let machine = MachineConfig::paper_testbed();
        let bench = find("ATAX").unwrap();
        let n = 256;
        let cpu = run_cpu_only(&machine, &bench, n);
        let gpu = run_gpu_only(&machine, &bench, n);
        let (fcl, reports) = run_fluidicl(&machine, &FluidiclConfig::default(), &bench, n);
        let st = run_static(&machine, &bench, n, 0.5);
        let eager = run_socl(&machine, &bench, n, SoclScheduler::Eager, false);
        let dmda = run_socl(&machine, &bench, n, SoclScheduler::Dmda, true);
        for t in [cpu, gpu, fcl, st, eager, dmda] {
            assert!(!t.is_zero());
        }
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn normalization_is_relative_to_best() {
        let a = SimDuration::from_nanos(100);
        let b = SimDuration::from_nanos(50);
        assert_eq!(normalize_to_best(a, &[a, b]), 2.0);
        assert_eq!(normalize_to_best(b, &[a, b]), 1.0);
    }
}
