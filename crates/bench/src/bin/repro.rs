//! `repro` — regenerate the FluidiCL paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro list            # show available experiment ids
//! repro all             # run everything, in paper order
//! repro fig2 table1 …   # run a subset
//! repro all --csv DIR   # also write one CSV per table into DIR
//! ```
//!
//! All results are virtual-time measurements over the simulated testbed;
//! see EXPERIMENTS.md for the paper-vs-measured comparison.

use std::io::Write as _;

use fluidicl_bench::experiments::{experiments, find, Experiment, ExperimentResult};
use fluidicl_hetsim::MachineConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro <list|all|id...> [--csv DIR]");
        eprintln!("experiments:");
        for e in experiments() {
            eprintln!("  {:8} {}", e.id, e.title);
        }
        return;
    }
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            csv_dir = it.next();
            if csv_dir.is_none() {
                eprintln!("--csv requires a directory argument");
                std::process::exit(2);
            }
        } else {
            ids.push(a);
        }
    }
    if ids.iter().any(|i| i == "list") {
        for e in experiments() {
            println!("{:8} {}", e.id, e.title);
        }
        return;
    }
    let selected: Vec<Experiment> = if ids.iter().any(|i| i == "all") {
        experiments()
    } else {
        ids.iter()
            .map(|id| {
                find(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment `{id}`; try `repro list`");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let machine = MachineConfig::paper_testbed();
    for e in selected {
        let started = std::time::Instant::now();
        let result = (e.run)(&machine);
        println!("{}", result.render());
        println!(
            "(regenerated in {:.1}s wall time)\n",
            started.elapsed().as_secs_f64()
        );
        if let Some(dir) = &csv_dir {
            write_csvs(dir, &result);
        }
    }
}

fn write_csvs(dir: &str, result: &ExperimentResult) {
    std::fs::create_dir_all(dir).expect("create csv dir");
    for (i, t) in result.tables.iter().enumerate() {
        let path = if result.tables.len() == 1 {
            format!("{dir}/{}.csv", result.id)
        } else {
            format!("{dir}/{}_{}.csv", result.id, i)
        };
        let mut f = std::fs::File::create(&path).expect("create csv file");
        f.write_all(t.to_csv().as_bytes()).expect("write csv");
        eprintln!("wrote {path}");
    }
}
