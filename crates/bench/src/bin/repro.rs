//! `repro` — regenerate the FluidiCL paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro list            # show available experiment ids
//! repro all             # run everything, in paper order
//! repro fig2 table1 …   # run a subset
//! repro all --csv DIR   # also write one CSV per table into DIR
//! repro all --jobs 4    # cap the worker-thread pool at 4
//! repro --quick         # fast subset (table1 table2 table3 extended)
//! ```
//!
//! Experiments fan out over the [`fluidicl_par`] pool (also steered by
//! `FLUIDICL_JOBS` / `RAYON_NUM_THREADS`); results are buffered and printed
//! in selection order, so stdout and the CSVs are byte-identical to a
//! sequential (`--jobs 1`) run — only the wall-time annotations vary.
//!
//! All results are virtual-time measurements over the simulated testbed;
//! see EXPERIMENTS.md for the paper-vs-measured comparison.

use std::io::Write as _;

use fluidicl_bench::experiments::{experiments, find, Experiment, ExperimentResult};
use fluidicl_hetsim::MachineConfig;

/// Experiment ids of the fast subset selected by `--quick`.
const QUICK_IDS: [&str; 4] = ["table1", "table2", "table3", "extended"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro <list|all|id...> [--csv DIR] [--jobs N] [--quick]");
        eprintln!("experiments:");
        for e in experiments() {
            eprintln!("  {:8} {}", e.id, e.title);
        }
        return;
    }
    let mut csv_dir: Option<String> = None;
    let mut quick = false;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            csv_dir = it.next();
            if csv_dir.is_none() {
                eprintln!("--csv requires a directory argument");
                std::process::exit(2);
            }
        } else if a == "--jobs" {
            let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                eprintln!("--jobs requires a positive integer argument");
                std::process::exit(2);
            };
            fluidicl_par::configure_jobs(n);
        } else if a == "--quick" {
            quick = true;
        } else {
            ids.push(a);
        }
    }
    if ids.iter().any(|i| i == "list") {
        for e in experiments() {
            println!("{:8} {}", e.id, e.title);
        }
        return;
    }
    let lookup = |id: &str| -> Experiment {
        find(id).unwrap_or_else(|| {
            eprintln!("unknown experiment `{id}`; try `repro list`");
            std::process::exit(2);
        })
    };
    let selected: Vec<Experiment> = if ids.iter().any(|i| i == "all") || (ids.is_empty() && quick) {
        if quick {
            QUICK_IDS.iter().map(|id| lookup(id)).collect()
        } else {
            experiments()
        }
    } else {
        ids.iter().map(|id| lookup(id)).collect()
    };
    let machine = MachineConfig::paper_testbed();
    // One task per experiment; each experiment fans its own benchmark runs
    // out over the same pool (nested fan-out degrades gracefully to
    // sequential inside a worker). par_map preserves order, so results are
    // printed exactly as a sequential loop would print them.
    let results = fluidicl_par::par_map(selected, |e| {
        let started = std::time::Instant::now();
        let result = (e.run)(&machine);
        (result, started.elapsed().as_secs_f64())
    });
    for (result, seconds) in results {
        println!("{}", result.render());
        println!("(regenerated in {seconds:.1}s wall time)\n");
        if let Some(dir) = &csv_dir {
            write_csvs(dir, &result);
        }
    }
}

fn write_csvs(dir: &str, result: &ExperimentResult) {
    std::fs::create_dir_all(dir).expect("create csv dir");
    for (i, t) in result.tables.iter().enumerate() {
        let path = if result.tables.len() == 1 {
            format!("{dir}/{}.csv", result.id)
        } else {
            format!("{dir}/{}_{}.csv", result.id, i)
        };
        let mut f = std::fs::File::create(&path).expect("create csv file");
        f.write_all(t.to_csv().as_bytes()).expect("write csv");
        eprintln!("wrote {path}");
    }
}
