//! `perf` — wall-clock performance harness for the reproduction itself.
//!
//! The experiments measure *virtual* time; this binary measures the *real*
//! time the harness spends producing them, so regressions in the executor
//! hot paths show up in CI. It times:
//!
//! * the repro sweep (all experiments, or the `--quick` subset), fanned out
//!   over the [`fluidicl_par`] pool exactly as `repro` runs it;
//! * the micro-hotspots: sequential and parallel `execute_groups` on SYRK,
//!   the `diff_merge` / `diff_merge_ranged` coherence primitives,
//!   dirty-range coalescing, and buffer snapshotting.
//!
//! Results go to `BENCH_repro.json` at the repository root (one section per
//! line: median/p10/p90 nanoseconds, worker-thread count, git revision,
//! runner key).
//!
//! `--check` compares medians against `ci/bench_baseline.json`. The
//! baseline holds a fallback section list (compared at a generous blanket
//! factor, because unknown machines differ from the one that recorded it)
//! plus optional per-runner blocks keyed by `<os>-<cpus>cpu` — a runner
//! block carries its own, tighter factor and wins over the fallback when
//! its key matches the current machine.
//!
//! ```text
//! perf                    # full sweep + micro-hotspots
//! perf --quick            # fast subset (CI)
//! perf --jobs 4           # cap the worker pool
//! perf --check            # also compare against ci/bench_baseline.json;
//!                         # exit 1 on a median regression beyond the
//!                         # baseline's factor for this runner
//! perf --out PATH         # write the JSON somewhere else
//! ```

use std::time::Instant;

use fluidicl::{Fluidicl, FluidiclConfig, SnapshotPool};
use fluidicl_bench::experiments::{experiments, find, Experiment};
use fluidicl_des::SplitMix64;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::data::gen_matrix;
use fluidicl_polybench::syrk;
use fluidicl_vcl::{
    diff_merge, diff_merge_ranged, diff_merge_tracked, execute_groups_par, set_simd_enabled,
    simd_active, BufferId, DirtyRanges, DirtyTracker, KernelArg, Launch, Memory, NdRange,
};

/// Experiment ids of the `--quick` sweep (mirrors `repro --quick`).
const QUICK_IDS: [&str; 4] = ["table1", "table2", "table3", "extended"];

/// Allowed median slowdown vs the committed *fallback* baseline before
/// `--check` fails: generous because unknown machines differ from the
/// machine that recorded it. Per-runner baseline blocks override this
/// with their own (tighter) factor.
const REGRESSION_FACTOR: f64 = 3.0;

/// Allowed median slowdown of a `with_dirty_range_transfers` co-execution
/// over the ungated protocol. Self-relative (both states measured in the
/// same process on the same machine), so the bound holds everywhere.
const DIRTY_GATE_FACTOR: f64 = 3.0;

/// Key identifying the machine class a baseline was recorded on.
fn runner_key() -> String {
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    format!("{}-{cpus}cpu", std::env::consts::OS)
}

/// One timed section of the harness.
struct Section {
    name: &'static str,
    iters: usize,
    median_ns: u128,
    p10_ns: u128,
    p90_ns: u128,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut check = false;
    let mut out: Option<String> = None;
    let mut baseline = default_path("ci/bench_baseline.json");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs requires a positive integer argument");
                    std::process::exit(2);
                };
                fluidicl_par::configure_jobs(n);
            }
            "--out" => {
                out = it.next();
                if out.is_none() {
                    eprintln!("--out requires a path argument");
                    std::process::exit(2);
                }
            }
            "--baseline" => {
                baseline = it.next().unwrap_or_else(|| {
                    eprintln!("--baseline requires a path argument");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "usage: perf [--quick] [--check] [--jobs N] [--out PATH] [--baseline PATH]"
                );
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| default_path("BENCH_repro.json"));
    let jobs = fluidicl_par::jobs();
    eprintln!(
        "perf: {} sweep, {jobs} worker threads",
        if quick { "quick" } else { "full" }
    );

    let mut sections = Vec::new();
    sections.push(time_sweep(quick));
    sections.extend(micro_hotspots(jobs));
    let (paged_sections, simd) = paged_merge_sections(quick);
    sections.extend(paged_sections);
    let (gate_sections, gate_factor) = dirty_gate_sections();
    sections.extend(gate_sections);
    sections.extend(pipeline_sections());
    sections.extend(ndev_sections());
    sections.extend(graph_sched_sections());

    let json = render_json(&sections, quick, jobs, &simd);
    std::fs::write(&out, &json).expect("write BENCH_repro.json");
    eprintln!("wrote {out}");
    for s in &sections {
        eprintln!(
            "  {:24} median {:>10.3} ms  (p10 {:.3}, p90 {:.3})",
            s.name,
            s.median_ns as f64 / 1e6,
            s.p10_ns as f64 / 1e6,
            s.p90_ns as f64 / 1e6
        );
    }
    eprintln!(
        "  dirty-range gate overhead: {gate_factor:.2}x ungated (bound {DIRTY_GATE_FACTOR}x)"
    );
    if simd.compiled && simd.active {
        eprintln!(
            "  simd: compiled={} active={} speedup {:.2}x over portable (10M page-path merge)",
            simd.compiled,
            simd.active,
            simd.speedup()
        );
    } else {
        // Both timed lanes ran the portable merge: the ratio is noise, not
        // a speedup — don't print one.
        eprintln!(
            "  simd: compiled={} active={} (speedup n/a: both lanes portable)",
            simd.compiled, simd.active
        );
    }
    if gate_factor > DIRTY_GATE_FACTOR {
        eprintln!(
            "perf: dirty-range gated co-execution exceeds {DIRTY_GATE_FACTOR}x the ungated path"
        );
        std::process::exit(1);
    }
    if check && !check_against_baseline(&sections, &baseline) {
        std::process::exit(1);
    }
}

/// Times a full SYRK co-execution with `with_dirty_range_transfers` off
/// and on — both gate states exercised every CI run — and returns the
/// sections plus the gated/ungated median ratio, which `main` holds to
/// [`DIRTY_GATE_FACTOR`].
fn dirty_gate_sections() -> (Vec<Section>, f64) {
    let b = fluidicl_polybench::find("SYRK").expect("SYRK registered");
    let n = 128;
    let machine = MachineConfig::paper_testbed();
    let run_once = |dirty: bool| {
        let mut rt = Fluidicl::new(
            machine.clone(),
            FluidiclConfig::default().with_dirty_range_transfers(dirty),
            (b.program)(n),
        );
        let started = Instant::now();
        let ok = b
            .run_and_validate_sized(&mut rt, n, 0xF1D1C1)
            .expect("SYRK co-execution");
        let ns = started.elapsed().as_nanos();
        assert!(ok, "SYRK diverged from reference (dirty={dirty})");
        ns
    };
    let iters = 7;
    let off = collect(iters, || run_once(false));
    let on = collect(iters, || run_once(true));
    let off = stats("coexec_dirty_off", iters, off);
    let on = stats("coexec_dirty_on", iters, on);
    let factor = on.median_ns as f64 / off.median_ns.max(1) as f64;
    (vec![off, on], factor)
}

/// Times a full SYRK co-execution at pipeline depths 1, 2 and 4: the
/// harness cost of the pipelined CPU subkernel executor (the copy channel,
/// batch coalescing and exposed-stall bookkeeping) at the serial, default
/// and deep settings.
fn pipeline_sections() -> Vec<Section> {
    let b = fluidicl_polybench::find("SYRK").expect("SYRK registered");
    let n = 128;
    let machine = MachineConfig::paper_testbed();
    let run_once = |depth: u32| {
        let mut rt = Fluidicl::new(
            machine.clone(),
            FluidiclConfig::default().with_pipeline_depth(depth),
            (b.program)(n),
        );
        let started = Instant::now();
        let ok = b
            .run_and_validate_sized(&mut rt, n, 0xF1D1C1)
            .expect("SYRK co-execution");
        let ns = started.elapsed().as_nanos();
        assert!(ok, "SYRK diverged from reference (depth={depth})");
        ns
    };
    let iters = 7;
    [1u32, 2, 4]
        .into_iter()
        .map(|depth| {
            let samples = collect(iters, || run_once(depth));
            stats(
                match depth {
                    1 => "coexec_pipeline_1",
                    2 => "coexec_pipeline_2",
                    _ => "coexec_pipeline_4",
                },
                iters,
                samples,
            )
        })
        .collect()
}

/// Times a full SYRK co-execution on the two-device paper testbed and the
/// three-device machine: the harness cost of the shared-frontier protocol
/// with a peer-GPU endpoint (second endpoint loop, per-device staging
/// channels, coverage bookkeeping and the merge fold) relative to the
/// watermark-pair baseline.
fn ndev_sections() -> Vec<Section> {
    let b = fluidicl_polybench::find("SYRK").expect("SYRK registered");
    let n = 128;
    let run_once = |machine: &MachineConfig| {
        let mut rt = Fluidicl::new(machine.clone(), FluidiclConfig::default(), (b.program)(n));
        let started = Instant::now();
        let ok = b
            .run_and_validate_sized(&mut rt, n, 0xF1D1C1)
            .expect("SYRK co-execution");
        let ns = started.elapsed().as_nanos();
        assert!(ok, "SYRK diverged from reference");
        ns
    };
    let iters = 7;
    let two = MachineConfig::paper_testbed();
    let three = MachineConfig::paper_testbed_3dev();
    let ndev2 = collect(iters, || run_once(&two));
    let ndev3 = collect(iters, || run_once(&three));
    vec![
        stats("coexec_ndev_2", iters, ndev2),
        stats("coexec_ndev_3", iters, ndev3),
    ]
}

/// Times the BATCHMM pipeline with kernel-graph scheduling off and on: the
/// harness cost of deferral, DAG construction, HEFT placement and the
/// per-node dispatch loop, on the workload the `graph` experiment uses.
/// Wall-clock, not virtual time — the scheduling *win* lives in the
/// virtual makespans (EXPERIMENTS.md `[graph]`); this gate catches the
/// host-side overhead of the graph machinery regressing.
fn graph_sched_sections() -> Vec<Section> {
    let b = fluidicl_polybench::pipeline_benchmark();
    let n = 96;
    let three = MachineConfig::paper_testbed_3dev();
    let run_once = |graph: bool| {
        let mut rt = Fluidicl::new(
            three.clone(),
            FluidiclConfig::default().with_graph_scheduling(graph),
            (b.program)(n),
        );
        let started = Instant::now();
        let ok = b
            .run_and_validate_sized(&mut rt, n, 0xF1D1C1)
            .expect("BATCHMM run");
        let ns = started.elapsed().as_nanos();
        assert!(ok, "BATCHMM diverged from reference (graph={graph})");
        ns
    };
    let iters = 7;
    let off = collect(iters, || run_once(false));
    let on = collect(iters, || run_once(true));
    vec![
        stats("graph_sched_off", iters, off),
        stats("graph_sched_on", iters, on),
    ]
}

/// Resolves `rel` against the repository root (two levels above this
/// crate's manifest).
fn default_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Times the repro sweep: every selected experiment fanned out over the
/// pool, like `repro all` / `repro --quick`.
fn time_sweep(quick: bool) -> Section {
    let selected: Vec<Experiment> = if quick {
        QUICK_IDS
            .iter()
            .map(|id| find(id).expect("quick experiment registered"))
            .collect()
    } else {
        experiments()
    };
    let machine = MachineConfig::paper_testbed();
    let iters = 3;
    let samples = collect(iters, || {
        let sel = selected.clone();
        let started = Instant::now();
        let results = fluidicl_par::par_map(sel, |e| (e.run)(&machine));
        let ns = started.elapsed().as_nanos();
        assert!(!results.is_empty());
        ns
    });
    stats(
        if quick { "sweep_quick" } else { "sweep_full" },
        iters,
        samples,
    )
}

/// Times the executor hot paths the coexec engine leans on.
fn micro_hotspots(jobs: usize) -> Vec<Section> {
    let n = 256;
    let program = syrk::program(n);
    let kernel = program.kernel("syrk").expect("syrk kernel");
    let a = gen_matrix(n, n, 7);
    let c0 = gen_matrix(n, n, 8);
    let a_buf = BufferId(0);
    let c_buf = BufferId(1);
    let launch = Launch::new(
        kernel,
        NdRange::d2(n, n, syrk::WG, syrk::WG).expect("ndrange"),
        vec![
            KernelArg::Buffer(a_buf),
            KernelArg::Buffer(c_buf),
            KernelArg::F32(1.5),
            KernelArg::F32(2.5),
            KernelArg::Usize(n),
        ],
    );
    let groups = launch.ndrange.num_groups();
    let mut mem = Memory::new();
    mem.install(a_buf, a);
    mem.install(c_buf, c0.clone());

    let iters = 10;
    let seq = collect(iters, || {
        mem.write(c_buf, &c0).expect("reset c");
        let started = Instant::now();
        fluidicl_vcl::exec::execute_groups(&launch, &mut mem, 0, groups).expect("execute");
        started.elapsed().as_nanos()
    });
    let par = collect(iters, || {
        mem.write(c_buf, &c0).expect("reset c");
        let started = Instant::now();
        execute_groups_par(&launch, &mut mem, 0, groups, jobs).expect("execute par");
        started.elapsed().as_nanos()
    });

    // diff_merge over a 1M-element buffer with every 16th element changed —
    // the §4.3 coherence primitive the CPU->GPU result path runs per
    // subkernel.
    let len = 1 << 20;
    let original: Vec<f32> = (0..len).map(|i| i as f32).collect();
    let mut cpu = original.clone();
    for (i, v) in cpu.iter_mut().enumerate() {
        if i % 16 == 0 {
            *v += 1.0;
        }
    }
    let mut dst = original.clone();
    let merge = collect(iters, || {
        dst.copy_from_slice(&original);
        let started = Instant::now();
        diff_merge(&mut dst, &cpu, &original);
        started.elapsed().as_nanos()
    });

    // diff_merge_ranged over the same 1M buffer with a realistic captured
    // footprint: 128 spans of 512 dirty elements (1/16 of the buffer) —
    // what the dirty-range protocol hands the merge per subkernel.
    let span = 512;
    let stride = len / 128;
    let ranges = DirtyRanges::from_ranges((0..128).map(|j| (j * stride, j * stride + span)));
    let mut cpu_spans = original.clone();
    for (s, e) in ranges.iter() {
        for v in &mut cpu_spans[s..e] {
            *v += 1.0;
        }
    }
    let merge_ranged = collect(iters, || {
        dst.copy_from_slice(&original);
        let started = Instant::now();
        diff_merge_ranged(&mut dst, &cpu_spans, &original, &ranges).expect("ranged merge");
        started.elapsed().as_nanos()
    });

    // Coalescing 65536 scattered dirty indices (every 16th element) into
    // ranges — the capture-side cost of the dirty-range protocol.
    let indices: Vec<usize> = (0..len).filter(|i| i % 16 == 0).collect();
    let coalesce = collect(iters, || {
        let started = Instant::now();
        let r = DirtyRanges::from_indices(indices.iter().copied());
        let ns = started.elapsed().as_nanos();
        assert_eq!(r.element_count(), indices.len());
        ns
    });

    // Snapshotting: acquire a pooled vec, copy a buffer into it, release —
    // what coexec does for every output buffer of every kernel.
    let mut pool = SnapshotPool::new();
    let snap = collect(iters * 10, || {
        let started = Instant::now();
        let mut v = pool.acquire();
        mem.copy_into(c_buf, &mut v).expect("copy_into");
        pool.release(v);
        started.elapsed().as_nanos()
    });

    vec![
        stats("execute_groups_seq", iters, seq),
        stats("execute_groups_par", iters, par),
        stats("diff_merge_1m", iters, merge),
        stats("diff_merge_ranged_1m", iters, merge_ranged),
        stats("dirty_coalesce", iters, coalesce),
        stats("snapshot_roundtrip", iters * 10, snap),
    ]
}

/// SIMD-on vs SIMD-off medians of the 10M page-path merge, measured in
/// one process via the runtime toggle. Without the `simd` feature both
/// runs take the portable path and the speedup reports 1.00x.
struct SimdStats {
    compiled: bool,
    active: bool,
    on_median_ns: u128,
    off_median_ns: u128,
}

impl SimdStats {
    fn speedup(&self) -> f64 {
        self.off_median_ns as f64 / self.on_median_ns.max(1) as f64
    }
}

/// A pristine buffer and a copy with scattered single-element writes at
/// ~1/16 density — the huge-buffer regime the paged tracker exists for:
/// writes land everywhere, so exact range capture fragments into millions
/// of unit ranges while the page map stays O(pages).
fn scatter_case(len: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = SplitMix64::new(seed);
    let original: Vec<f32> = (0..len).map(|i| (i % 1024) as f32).collect();
    let mut cpu = original.clone();
    for _ in 0..len / 16 {
        let at = rng.range_usize(0, len);
        cpu[at] += 1.5;
    }
    (original, cpu)
}

/// Times the paged dirty pipeline on huge buffers: page-map capture plus
/// tracked merge at 10M (quick and full) and 100M elements (full only,
/// against the pre-PR exact-range pipeline on the same data), and the
/// O(1) page-marking path under 1M scattered marks.
fn paged_merge_sections(quick: bool) -> (Vec<Section>, SimdStats) {
    let iters = 10;
    // 10M elements: capture + merge through the paged path; also the
    // SIMD-on/SIMD-off comparison workload.
    let (orig10, cpu10) = scatter_case(10_000_000, 0xF1D1_0001);
    let mut dst = orig10.clone();
    let run10 = |dst: &mut Vec<f32>| {
        dst.copy_from_slice(&orig10);
        let started = Instant::now();
        let t = DirtyTracker::from_diff(&cpu10, &orig10);
        diff_merge_tracked(dst, &cpu10, &orig10, &t).expect("tracked merge");
        let ns = started.elapsed().as_nanos();
        assert!(t.is_paged() && !t.is_empty());
        ns
    };
    set_simd_enabled(true);
    let on = collect(iters, || run10(&mut dst));
    set_simd_enabled(false);
    let off = collect(iters, || run10(&mut dst));
    set_simd_enabled(true);
    let merge10 = stats("diff_merge_10m", iters, on.clone());
    let simd = SimdStats {
        compiled: cfg!(feature = "simd"),
        active: simd_active(),
        on_median_ns: stats("simd_on", iters, on).median_ns,
        off_median_ns: stats("simd_off", iters, off).median_ns,
    };
    drop(dst);
    drop(cpu10);
    drop(orig10);

    // 1M scattered marks into a 100M-element paged tracker: the O(1)
    // capture-side cost the page map buys (compare `dirty_coalesce`,
    // which builds exact ranges from 65536 indices).
    let mut rng = SplitMix64::new(0xF1D1_0002);
    const MARK_LEN: usize = 100_000_000;
    let marks: Vec<usize> = (0..1_000_000)
        .map(|_| rng.range_usize(0, MARK_LEN))
        .collect();
    let mark = collect(iters, || {
        let started = Instant::now();
        let mut t = DirtyTracker::new(MARK_LEN);
        for &i in &marks {
            t.mark_range(i, i + 1);
        }
        let ns = started.elapsed().as_nanos();
        assert!(t.is_paged() && !t.is_empty());
        ns
    });
    let mut sections = vec![merge10, stats("page_mark_scatter", iters, mark)];

    // 100M elements, full mode only: the paged pipeline vs the pre-PR
    // exact-range pipeline (DirtyRanges::from_diff + diff_merge_ranged)
    // on identical data — the EXPERIMENTS.md page-path/range-path table.
    if !quick {
        let len = 100_000_000;
        let (orig, cpu) = scatter_case(len, 0xF1D1_0003);
        let mut dst = orig.clone();
        let paged_iters = 5;
        let paged = collect(paged_iters, || {
            dst.copy_from_slice(&orig);
            let started = Instant::now();
            let t = DirtyTracker::from_diff(&cpu, &orig);
            diff_merge_tracked(&mut dst, &cpu, &orig, &t).expect("tracked merge");
            let ns = started.elapsed().as_nanos();
            assert!(t.is_paged());
            ns
        });
        sections.push(stats("diff_merge_100m_scattered", paged_iters, paged));
        let range_iters = 3;
        let ranged = collect(range_iters, || {
            dst.copy_from_slice(&orig);
            let started = Instant::now();
            let r = DirtyRanges::from_diff(&cpu, &orig);
            diff_merge_ranged(&mut dst, &cpu, &orig, &r).expect("ranged merge");
            let ns = started.elapsed().as_nanos();
            assert!(!r.is_empty());
            ns
        });
        sections.push(stats("diff_merge_100m_rangepath", range_iters, ranged));
    }
    (sections, simd)
}

fn collect(iters: usize, mut f: impl FnMut() -> u128) -> Vec<u128> {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        samples.push(f());
    }
    samples
}

fn stats(name: &'static str, iters: usize, mut samples: Vec<u128>) -> Section {
    samples.sort_unstable();
    let q = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
    Section {
        name,
        iters,
        median_ns: q(0.5),
        p10_ns: q(0.1),
        p90_ns: q(0.9),
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Hand-written JSON: one section object per line, so the file diffs
/// cleanly and the `--check` parser can stay a line scanner.
fn render_json(sections: &[Section], quick: bool, jobs: usize, simd: &SimdStats) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"git_rev\": \"{}\",\n", git_rev()));
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"runner\": \"{}\",\n", runner_key()));
    s.push_str(&format!("  \"simd_compiled\": {},\n", simd.compiled));
    s.push_str(&format!("  \"simd_active\": {},\n", simd.active));
    s.push_str(&format!(
        "  \"simd_on_median_ns\": {},\n",
        simd.on_median_ns
    ));
    s.push_str(&format!(
        "  \"simd_off_median_ns\": {},\n",
        simd.off_median_ns
    ));
    // A speedup ratio is only meaningful when the on-lane actually ran
    // vectorized code; otherwise both lanes timed the portable merge and
    // the ratio is runner noise (a 1-cpu CI box once published 0.958).
    if simd.compiled && simd.active {
        s.push_str(&format!("  \"simd_speedup\": {:.3},\n", simd.speedup()));
    } else {
        s.push_str("  \"simd_speedup\": null,\n");
    }
    s.push_str("  \"sections\": [\n");
    for (i, sec) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {}, \"p10_ns\": {}, \"p90_ns\": {}}}{comma}\n",
            sec.name, sec.iters, sec.median_ns, sec.p10_ns, sec.p90_ns
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts a quoted string value for `key` from a JSON line.
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)?;
    let rest = &line[at + pat.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a bare numeric value for `key` from a JSON line.
fn json_num(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)?;
    Some(
        line[at + pat.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect(),
    )
}

/// One baseline block: a section list compared at `factor`. The fallback
/// block has `runner == None` and applies to machines without a matching
/// per-runner block.
struct BaselineBlock {
    runner: Option<String>,
    factor: f64,
    sections: Vec<(String, u128)>,
}

/// Parses a baseline file in the line-per-section format: `"name"` lines
/// before any `"runner"` line form the fallback block (compared at
/// [`REGRESSION_FACTOR`]); each `"runner"` line opens a per-runner block
/// whose `"factor"` (same line) governs its sections.
fn parse_baseline(text: &str) -> Vec<BaselineBlock> {
    let mut blocks = vec![BaselineBlock {
        runner: None,
        factor: REGRESSION_FACTOR,
        sections: Vec::new(),
    }];
    for line in text.lines() {
        if let Some(runner) = json_str(line, "runner") {
            let factor = json_num(line, "factor")
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(REGRESSION_FACTOR);
            blocks.push(BaselineBlock {
                runner: Some(runner),
                factor,
                sections: Vec::new(),
            });
            continue;
        }
        let (Some(name), Some(med)) = (json_str(line, "name"), json_num(line, "median_ns")) else {
            continue;
        };
        if let Ok(v) = med.parse::<u128>() {
            blocks
                .last_mut()
                .expect("fallback block")
                .sections
                .push((name, v));
        }
    }
    blocks
}

/// Compares section medians against the committed baseline; returns false
/// (CI failure) on a regression beyond the selected block's factor.
fn check_against_baseline(sections: &[Section], path: &str) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("perf --check: no baseline at {path}; skipping comparison");
        return true;
    };
    let blocks = parse_baseline(&text);
    let key = runner_key();
    let block = blocks
        .iter()
        .find(|b| b.runner.as_deref() == Some(key.as_str()))
        .or_else(|| blocks.iter().find(|b| !b.sections.is_empty()))
        .expect("fallback block always present");
    match &block.runner {
        Some(r) => eprintln!(
            "perf --check: runner baseline `{r}` (factor {})",
            block.factor
        ),
        None => eprintln!(
            "perf --check: no baseline for runner `{key}`; using fallback (factor {})",
            block.factor
        ),
    }
    let mut ok = true;
    for s in sections {
        let Some((_, base_med)) = block.sections.iter().find(|(n, _)| n == s.name) else {
            eprintln!("  {:24} no baseline entry; skipped", s.name);
            continue;
        };
        let factor = s.median_ns as f64 / (*base_med).max(1) as f64;
        let verdict = if factor > block.factor {
            ok = false;
            "REGRESSION"
        } else {
            "ok"
        };
        eprintln!("  {:24} {factor:>6.2}x baseline  {verdict}", s.name);
    }
    if !ok {
        eprintln!(
            "perf --check: median regression beyond {}x baseline",
            block.factor
        );
    }
    ok
}
