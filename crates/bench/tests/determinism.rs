//! Determinism of the parallel experiment harness: the CSVs produced with
//! one worker thread must be byte-identical to the CSVs produced with many.
//!
//! Lives in its own integration-test binary because it reconfigures the
//! global `fluidicl_par` job count, which must not race with other tests.

use fluidicl_bench::experiments::find;
use fluidicl_hetsim::MachineConfig;

/// A fast subset that still exercises `par_map` in several shapes: two
/// devices (table1), four runtimes (table3), and a benchmark fan-out
/// (extended).
const IDS: [&str; 3] = ["table1", "table3", "extended"];

fn render_all(machine: &MachineConfig) -> Vec<String> {
    IDS.iter()
        .map(|id| {
            let e = find(id).expect("experiment registered");
            let result = (e.run)(machine);
            let mut out = result.render();
            for t in &result.tables {
                out.push_str(&t.to_csv());
            }
            out
        })
        .collect()
}

#[test]
fn parallel_experiments_are_byte_identical_to_sequential() {
    let machine = MachineConfig::paper_testbed();
    fluidicl_par::configure_jobs(1);
    let sequential = render_all(&machine);
    fluidicl_par::configure_jobs(4);
    let parallel = render_all(&machine);
    for ((id, seq), par) in IDS.iter().zip(&sequential).zip(&parallel) {
        assert_eq!(
            seq, par,
            "{id}: parallel output differs from the sequential run"
        );
    }
}
