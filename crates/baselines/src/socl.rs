//! SOCL: a StarPU-style task scheduler behind the OpenCL API (paper §9.4).
//!
//! SOCL eliminates StarPU's task API by mapping each enqueued kernel to one
//! StarPU task and scheduling it on a device. The paper compares FluidiCL
//! against two of its schedulers:
//!
//! * **eager** (StarPU's default): greedy first-idle-worker assignment with
//!   no performance model and no transfer awareness;
//! * **dmda** (deque model data aware): picks the device minimising the
//!   expected completion time — calibrated execution estimate plus the data
//!   transfers the placement would require. dmda needs a *calibration*
//!   phase (the paper runs ≥10 differently-sized runs per application);
//!   without it StarPU falls back to eager behaviour.
//!
//! The crucial structural difference from FluidiCL: a task (kernel) is
//! indivisible, so SOCL can never split one kernel across both devices.

use std::collections::HashMap;

use fluidicl_des::{SimDuration, SimTime};
use fluidicl_hetsim::{AbortMode, MachineConfig};
use fluidicl_vcl::exec::{execute_all, Launch};
use fluidicl_vcl::{BufferId, ClDriver, ClResult, DeviceKind, KernelArg, Memory, NdRange, Program};

/// Scheduling policy of the SOCL runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoclScheduler {
    /// StarPU's default greedy scheduler ("SOCLDefault" in Figure 16).
    Eager,
    /// The deque-model data-aware scheduler ("SOCLdmda"); behaves like
    /// eager until [`SoclRuntime::calibrate`] has recorded a performance
    /// model for the kernels it sees.
    Dmda,
}

/// A SOCL/StarPU-style whole-kernel task scheduler over the simulated
/// machine.
///
/// # Examples
///
/// ```
/// use fluidicl_baselines::{SoclRuntime, SoclScheduler};
/// use fluidicl_hetsim::MachineConfig;
/// use fluidicl_vcl::Program;
///
/// let rt = SoclRuntime::new(
///     MachineConfig::paper_testbed(),
///     Program::new(),
///     SoclScheduler::Eager,
/// );
/// assert!(rt.task_log().is_empty());
/// ```
#[derive(Debug)]
pub struct SoclRuntime {
    machine: MachineConfig,
    program: Program,
    scheduler: SoclScheduler,
    calibration: HashMap<(String, u64), (SimDuration, SimDuration)>,
    cpu_mem: Memory,
    gpu_mem: Memory,
    buffer_lens: Vec<usize>,
    valid_cpu: Vec<bool>,
    valid_gpu: Vec<bool>,
    host_clock: SimTime,
    cpu_free: SimTime,
    gpu_free: SimTime,
    round_robin: usize,
    kernel_log: Vec<(String, SimDuration)>,
    task_log: Vec<(String, DeviceKind)>,
    geometry_log: Vec<(String, NdRange)>,
}

impl SoclRuntime {
    /// Creates a SOCL runtime with the given scheduler.
    pub fn new(machine: MachineConfig, program: Program, scheduler: SoclScheduler) -> Self {
        SoclRuntime {
            machine,
            program,
            scheduler,
            calibration: HashMap::new(),
            cpu_mem: Memory::new(),
            gpu_mem: Memory::new(),
            buffer_lens: Vec::new(),
            valid_cpu: Vec::new(),
            valid_gpu: Vec::new(),
            host_clock: SimTime::ZERO,
            cpu_free: SimTime::ZERO,
            gpu_free: SimTime::ZERO,
            round_robin: 0,
            kernel_log: Vec::new(),
            task_log: Vec::new(),
            geometry_log: Vec::new(),
        }
    }

    /// Records a performance model for `kernel` at the geometry `ndrange` —
    /// the outcome of StarPU's calibration runs. dmda only makes informed
    /// decisions for calibrated (kernel, size) pairs.
    ///
    /// # Errors
    ///
    /// Fails if the kernel is unknown.
    pub fn calibrate(&mut self, kernel: &str, ndrange: NdRange) -> ClResult<()> {
        let def = self.program.kernel(kernel)?;
        let profile = &def.default_version().profile;
        let items = ndrange.items_per_group();
        let total = ndrange.num_groups();
        let cpu = self
            .machine
            .cpu
            .subkernel_time(profile, items, total, false);
        let gpu = self.machine.gpu.launch_overhead()
            + self
                .machine
                .gpu
                .range_time(profile, items, total, AbortMode::None);
        self.calibration
            .insert((kernel.to_string(), total), (cpu, gpu));
        Ok(())
    }

    /// Which device ran each task, in order (for analysis/tests).
    pub fn task_log(&self) -> &[(String, DeviceKind)] {
        &self.task_log
    }

    /// Every (kernel, NDRange) pair the application launched, in order —
    /// what a calibration harness replays through [`SoclRuntime::calibrate`]
    /// before the measured run (the paper calibrates dmda with at least ten
    /// prior runs, §9.4).
    pub fn geometry_log(&self) -> &[(String, NdRange)] {
        &self.geometry_log
    }

    /// Whether a (kernel, work-group count) pair has a calibrated model.
    pub fn is_calibrated(&self, kernel: &str, ndrange: NdRange) -> bool {
        self.calibration
            .contains_key(&(kernel.to_string(), ndrange.num_groups()))
    }

    fn input_transfer_cost(&self, device: DeviceKind, inputs: &[BufferId]) -> SimDuration {
        let mut t = SimDuration::ZERO;
        for id in inputs {
            let idx = id.0 as usize;
            let bytes = self.buffer_lens[idx] as u64 * 4;
            match device {
                DeviceKind::Cpu if !self.valid_cpu[idx] => {
                    t += self.machine.d2h.transfer_time(bytes);
                }
                DeviceKind::Gpu if !self.valid_gpu[idx] => {
                    t += self.machine.h2d.transfer_time(bytes);
                }
                _ => {}
            }
        }
        t
    }

    fn materialize_inputs(&mut self, device: DeviceKind, inputs: &[BufferId]) -> ClResult<()> {
        for id in inputs {
            let idx = id.0 as usize;
            match device {
                DeviceKind::Cpu if !self.valid_cpu[idx] => {
                    let data = self.gpu_mem.get(*id)?.to_vec();
                    self.cpu_mem.write(*id, &data)?;
                    self.valid_cpu[idx] = true;
                }
                DeviceKind::Gpu if !self.valid_gpu[idx] => {
                    let data = self.cpu_mem.get(*id)?.to_vec();
                    self.gpu_mem.write(*id, &data)?;
                    self.valid_gpu[idx] = true;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl ClDriver for SoclRuntime {
    fn create_buffer(&mut self, len: usize) -> BufferId {
        let id = BufferId(self.buffer_lens.len() as u64);
        self.buffer_lens.push(len);
        self.valid_cpu.push(true);
        self.valid_gpu.push(true);
        self.cpu_mem.alloc(id, len);
        self.gpu_mem.alloc(id, len);
        self.host_clock += self.machine.gpu.buffer_create_time(len as u64 * 4);
        id
    }

    fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        self.cpu_mem.write(id, data)?;
        self.gpu_mem.write(id, data)?;
        let idx = id.0 as usize;
        self.valid_cpu[idx] = true;
        self.valid_gpu[idx] = true;
        let bytes = data.len() as u64 * 4;
        self.host_clock += self
            .machine
            .host
            .copy_time(bytes)
            .max(self.machine.h2d.transfer_time(bytes));
        Ok(())
    }

    fn enqueue_kernel(
        &mut self,
        kernel: &str,
        ndrange: NdRange,
        args: &[KernelArg],
    ) -> ClResult<()> {
        let def = self.program.kernel(kernel)?;
        let profile = def.default_version().profile.clone();
        let launch = Launch::new(def, ndrange, args.to_vec());
        let in_ids = launch.input_buffers()?;
        let out_ids = launch.output_buffers()?;
        // Task inputs are everything the kernel reads: In plus InOut.
        let mut task_inputs = in_ids;
        task_inputs.extend(out_ids.iter().copied());
        let items = ndrange.items_per_group();
        let total = ndrange.num_groups();

        let exec_cpu = self
            .machine
            .cpu
            .subkernel_time(&profile, items, total, false);
        let exec_gpu = self.machine.gpu.launch_overhead()
            + self
                .machine
                .gpu
                .range_time(&profile, items, total, AbortMode::None);

        let start = self.host_clock;
        let est = |device: DeviceKind, free: SimTime, exec: SimDuration| {
            start.max(free) + self.input_transfer_cost(device, &task_inputs) + exec
        };
        let cpu_completion = est(DeviceKind::Cpu, self.cpu_free, exec_cpu);
        let gpu_completion = est(DeviceKind::Gpu, self.gpu_free, exec_gpu);

        let informed = self.scheduler == SoclScheduler::Dmda && self.is_calibrated(kernel, ndrange);
        let device = if informed {
            // dmda: minimise expected completion including transfers.
            if cpu_completion <= gpu_completion {
                DeviceKind::Cpu
            } else {
                DeviceKind::Gpu
            }
        } else {
            // eager (and uncalibrated dmda): the first idle worker grabs the
            // task; with a blocking host both workers are idle, so the
            // assignment degenerates to alternation.
            let free = [
                (DeviceKind::Cpu, self.cpu_free),
                (DeviceKind::Gpu, self.gpu_free),
            ];
            let min_free = free.iter().map(|(_, f)| *f).min().expect("two devices");
            let idle: Vec<DeviceKind> = free
                .iter()
                .filter(|(_, f)| *f == min_free)
                .map(|(d, _)| *d)
                .collect();
            let pick = idle[self.round_robin % idle.len()];
            self.round_robin += 1;
            pick
        };

        self.materialize_inputs(device, &task_inputs)?;
        let done = match device {
            DeviceKind::Cpu => {
                execute_all(&launch, &mut self.cpu_mem)?;
                let t = cpu_completion;
                self.cpu_free = t;
                for id in &out_ids {
                    let idx = id.0 as usize;
                    self.valid_cpu[idx] = true;
                    self.valid_gpu[idx] = false;
                }
                t
            }
            DeviceKind::Gpu => {
                execute_all(&launch, &mut self.gpu_mem)?;
                let t = gpu_completion;
                self.gpu_free = t;
                for id in &out_ids {
                    let idx = id.0 as usize;
                    self.valid_gpu[idx] = true;
                    self.valid_cpu[idx] = false;
                }
                t
            }
        };
        self.host_clock = done;
        self.kernel_log
            .push((kernel.to_string(), done.saturating_since(start)));
        self.task_log.push((kernel.to_string(), device));
        self.geometry_log.push((kernel.to_string(), ndrange));
        Ok(())
    }

    fn read_buffer(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        let idx = id.0 as usize;
        if !self.valid_cpu[idx] {
            let data = self.gpu_mem.get(id)?.to_vec();
            self.cpu_mem.write(id, &data)?;
            self.valid_cpu[idx] = true;
            self.host_clock += self.machine.d2h.transfer_time(data.len() as u64 * 4);
        }
        let data = self.cpu_mem.get(id)?.to_vec();
        self.host_clock += self.machine.host.copy_time(data.len() as u64 * 4);
        Ok(data)
    }

    fn elapsed(&self) -> SimDuration {
        self.host_clock.saturating_since(SimTime::ZERO)
    }

    fn kernel_times(&self) -> Vec<(String, SimDuration)> {
        self.kernel_log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::KernelProfile;
    use fluidicl_vcl::{ArgRole, ArgSpec, KernelDef};

    fn two_kernel_program() -> Program {
        let mut p = Program::new();
        // gpu_friendly: high arithmetic intensity, perfectly regular.
        p.register(KernelDef::new(
            "gpu_friendly",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
            ],
            KernelProfile::new("gpu_friendly")
                .flops_per_item(4096.0)
                .bytes_read_per_item(4.0)
                .bytes_written_per_item(4.0),
            |item, _, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[i] = ins.get(0)[i] + 1.0;
            },
        ));
        // cpu_friendly: scattered on the GPU, cache-friendly on the CPU.
        p.register(KernelDef::new(
            "cpu_friendly",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
            ],
            KernelProfile::new("cpu_friendly")
                .flops_per_item(16.0)
                .bytes_read_per_item(256.0)
                .bytes_written_per_item(4.0)
                .gpu_coalescing(0.0)
                .gpu_divergence(0.8)
                .cpu_cache_locality(0.9),
            |item, _, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[i] = ins.get(0)[i] * 2.0;
            },
        ));
        p
    }

    fn drive(rt: &mut SoclRuntime) -> Vec<f32> {
        let n = 1024;
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        let c = rt.create_buffer(n);
        rt.write_buffer(a, &vec![1.0; n]).unwrap();
        let nd = NdRange::d1(n, 32).unwrap();
        rt.enqueue_kernel(
            "gpu_friendly",
            nd,
            &[KernelArg::Buffer(a), KernelArg::Buffer(b)],
        )
        .unwrap();
        rt.enqueue_kernel(
            "cpu_friendly",
            nd,
            &[KernelArg::Buffer(b), KernelArg::Buffer(c)],
        )
        .unwrap();
        rt.read_buffer(c).unwrap()
    }

    #[test]
    fn eager_alternates_devices() {
        let mut rt = SoclRuntime::new(
            MachineConfig::paper_testbed(),
            two_kernel_program(),
            SoclScheduler::Eager,
        );
        let out = drive(&mut rt);
        assert_eq!(out, vec![4.0; 1024]);
        let devices: Vec<_> = rt.task_log().iter().map(|(_, d)| *d).collect();
        assert_eq!(devices, vec![DeviceKind::Cpu, DeviceKind::Gpu]);
    }

    #[test]
    fn calibrated_dmda_picks_the_right_device_per_kernel() {
        let mut rt = SoclRuntime::new(
            MachineConfig::paper_testbed(),
            two_kernel_program(),
            SoclScheduler::Dmda,
        );
        let nd = NdRange::d1(1024, 32).unwrap();
        rt.calibrate("gpu_friendly", nd).unwrap();
        rt.calibrate("cpu_friendly", nd).unwrap();
        let out = drive(&mut rt);
        assert_eq!(out, vec![4.0; 1024]);
        let map: std::collections::HashMap<&str, DeviceKind> = rt
            .task_log()
            .iter()
            .map(|(k, d)| (k.as_str(), *d))
            .collect();
        assert_eq!(map["gpu_friendly"], DeviceKind::Gpu);
        assert_eq!(map["cpu_friendly"], DeviceKind::Cpu);
    }

    #[test]
    fn uncalibrated_dmda_degenerates_to_eager() {
        let mk = |sched| {
            let mut rt =
                SoclRuntime::new(MachineConfig::paper_testbed(), two_kernel_program(), sched);
            drive(&mut rt);
            rt.task_log().to_vec()
        };
        assert_eq!(mk(SoclScheduler::Dmda), mk(SoclScheduler::Eager));
    }

    #[test]
    fn dmda_accounts_for_transfer_locality() {
        // After a GPU task produces `b`, a follow-up kernel reading `b`
        // sees an extra d2h cost in its CPU estimate.
        let mut rt = SoclRuntime::new(
            MachineConfig::paper_testbed(),
            two_kernel_program(),
            SoclScheduler::Dmda,
        );
        let n = 1024;
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        rt.write_buffer(a, &vec![0.0; n]).unwrap();
        let nd = NdRange::d1(n, 32).unwrap();
        rt.calibrate("gpu_friendly", nd).unwrap();
        rt.enqueue_kernel(
            "gpu_friendly",
            nd,
            &[KernelArg::Buffer(a), KernelArg::Buffer(b)],
        )
        .unwrap();
        assert!(rt.input_transfer_cost(DeviceKind::Cpu, &[b]) > SimDuration::ZERO);
        assert_eq!(
            rt.input_transfer_cost(DeviceKind::Gpu, &[b]),
            SimDuration::ZERO
        );
    }

    #[test]
    fn results_are_correct_under_every_scheduler() {
        for sched in [SoclScheduler::Eager, SoclScheduler::Dmda] {
            let mut rt =
                SoclRuntime::new(MachineConfig::paper_testbed(), two_kernel_program(), sched);
            assert_eq!(drive(&mut rt), vec![4.0; 1024]);
        }
    }
}
