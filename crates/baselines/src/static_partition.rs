//! Static work partitioning: a fixed x% CPU / (100−x)% GPU split of every
//! kernel, applied by hand as a programmer would (paper §3, Figures 2–3,
//! and the OracleSP bars of Figure 13).
//!
//! The split point is chosen once for the whole application; the same
//! flattened-ID partitioning, CPU→GPU result transfer and diff-merge as
//! FluidiCL are applied, but there is no adaptation, no subkernel pipeline
//! and no status protocol — both devices get their share up front and the
//! kernel finishes when the slower side (plus coherence) does.

use fluidicl_des::{SimDuration, SimTime};
use fluidicl_hetsim::{AbortMode, MachineConfig};
use fluidicl_vcl::exec::{execute_groups, Launch};
use fluidicl_vcl::{diff_merge, BufferId, ClDriver, ClResult, KernelArg, Memory, NdRange, Program};

/// A runtime executing every kernel under a fixed CPU/GPU split.
///
/// `cpu_fraction = 0.0` is the pure-GPU baseline, `1.0` pure CPU; interior
/// values split at work-group granularity with the CPU taking the top
/// flattened IDs (as in FluidiCL).
///
/// # Examples
///
/// ```
/// use fluidicl_baselines::StaticPartitionRuntime;
/// use fluidicl_hetsim::MachineConfig;
/// use fluidicl_vcl::Program;
///
/// let rt = StaticPartitionRuntime::new(
///     MachineConfig::paper_testbed(),
///     Program::new(),
///     0.4,
/// );
/// assert_eq!(rt.cpu_fraction(), 0.4);
/// ```
#[derive(Debug)]
pub struct StaticPartitionRuntime {
    machine: MachineConfig,
    program: Program,
    cpu_fraction: f64,
    cpu_mem: Memory,
    gpu_mem: Memory,
    buffer_lens: Vec<usize>,
    host_clock: SimTime,
    gpu_free: SimTime,
    scratch_created: bool,
    kernel_log: Vec<(String, SimDuration)>,
}

impl StaticPartitionRuntime {
    /// Creates a runtime with the given CPU share of every kernel.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_fraction` is outside `[0, 1]`.
    pub fn new(machine: MachineConfig, program: Program, cpu_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cpu_fraction),
            "cpu fraction must be in [0, 1]"
        );
        StaticPartitionRuntime {
            machine,
            program,
            cpu_fraction,
            cpu_mem: Memory::new(),
            gpu_mem: Memory::new(),
            buffer_lens: Vec::new(),
            host_clock: SimTime::ZERO,
            gpu_free: SimTime::ZERO,
            scratch_created: false,
            kernel_log: Vec::new(),
        }
    }

    /// The configured CPU share.
    pub fn cpu_fraction(&self) -> f64 {
        self.cpu_fraction
    }

    fn uses_gpu(&self) -> bool {
        self.cpu_fraction < 1.0
    }

    fn splits_work(&self) -> bool {
        self.cpu_fraction > 0.0 && self.cpu_fraction < 1.0
    }
}

impl ClDriver for StaticPartitionRuntime {
    fn create_buffer(&mut self, len: usize) -> BufferId {
        let id = BufferId(self.buffer_lens.len() as u64);
        self.buffer_lens.push(len);
        self.cpu_mem.alloc(id, len);
        self.gpu_mem.alloc(id, len);
        if self.uses_gpu() {
            self.host_clock += self.machine.gpu.buffer_create_time(len as u64 * 4);
        }
        id
    }

    fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        self.cpu_mem.write(id, data)?;
        self.gpu_mem.write(id, data)?;
        let bytes = data.len() as u64 * 4;
        // Pure-GPU and pure-CPU configurations pay exactly their vendor
        // runtime's transfer; an interior split writes to both devices.
        let t = if !self.uses_gpu() {
            self.machine.host.copy_time(bytes)
        } else if self.cpu_fraction == 0.0 {
            self.machine.h2d.transfer_time(bytes)
        } else {
            self.machine
                .host
                .copy_time(bytes)
                .max(self.machine.h2d.transfer_time(bytes))
        };
        self.host_clock += t;
        Ok(())
    }

    fn enqueue_kernel(
        &mut self,
        kernel: &str,
        ndrange: NdRange,
        args: &[KernelArg],
    ) -> ClResult<()> {
        let def = self.program.kernel(kernel)?;
        let profile = def.default_version().profile.clone();
        let launch = Launch::new(def, ndrange, args.to_vec());
        let out_ids = launch.output_buffers()?;
        let total = ndrange.num_groups();
        let items = ndrange.items_per_group();
        let cpu_wgs = ((total as f64 * self.cpu_fraction).round() as u64).min(total);
        let split = total - cpu_wgs; // GPU executes [0, split), CPU [split, total)

        let out_bytes: u64 = out_ids
            .iter()
            .map(|id| self.buffer_lens[id.0 as usize] as u64 * 4)
            .sum();

        // One-time creation of merge scratch buffers when actually
        // splitting (the programmer's manual data-management code).
        let mut setup = SimDuration::ZERO;
        if self.splits_work() && !self.scratch_created {
            for id in &out_ids {
                let bytes = self.buffer_lens[id.0 as usize] as u64 * 4;
                setup += self.machine.gpu.buffer_create_time(bytes) * 2;
            }
            self.scratch_created = true;
        }

        // Snapshot originals for the merge before either side writes.
        let mut origs = Vec::new();
        if self.splits_work() {
            for id in &out_ids {
                origs.push((*id, self.gpu_mem.get(*id)?.to_vec()));
            }
        }

        let start = self.host_clock;
        // GPU side.
        let gpu_done = if split > 0 {
            let t = start.max(self.gpu_free)
                + setup
                + self.machine.gpu.launch_overhead()
                + self
                    .machine
                    .gpu
                    .range_time(&profile, items, split, AbortMode::None);
            execute_groups(&launch, &mut self.gpu_mem, 0, split)?;
            t
        } else {
            start
        };
        // CPU side plus its result transfer to the GPU.
        let cpu_arrival = if cpu_wgs > 0 {
            let exec = start
                + self
                    .machine
                    .cpu
                    .subkernel_time(&profile, items, cpu_wgs, false);
            execute_groups(&launch, &mut self.cpu_mem, split, total)?;
            if self.splits_work() {
                exec + self.machine.h2d.transfer_time(out_bytes)
            } else {
                exec
            }
        } else {
            start
        };

        let done = if self.splits_work() {
            // Merge on the GPU once both contributions are present, then
            // return the merged result to the host.
            let merge_done = gpu_done.max(cpu_arrival) + self.machine.gpu.merge_time(out_bytes);
            for (id, orig) in &origs {
                let cpu = self.cpu_mem.get(*id)?.to_vec();
                diff_merge(self.gpu_mem.get_mut(*id)?, &cpu, orig);
            }
            let back = merge_done + self.machine.d2h.transfer_time(out_bytes);
            for id in &out_ids {
                let data = self.gpu_mem.get(*id)?.to_vec();
                self.cpu_mem.write(*id, &data)?;
            }
            back
        } else if split > 0 {
            // Pure GPU: results stay on the device until read, but keep the
            // CPU copy coherent for subsequent kernels that may read it.
            for id in &out_ids {
                let data = self.gpu_mem.get(*id)?.to_vec();
                self.cpu_mem.write(*id, &data)?;
            }
            gpu_done + self.machine.d2h.transfer_time(out_bytes)
        } else {
            // Pure CPU: results live in host memory already, but the GPU
            // copy must be refreshed for any later mixed work.
            for id in &out_ids {
                let data = self.cpu_mem.get(*id)?.to_vec();
                self.gpu_mem.write(*id, &data)?;
            }
            cpu_arrival
        };
        if split > 0 {
            self.gpu_free = done;
        }
        self.kernel_log
            .push((kernel.to_string(), done.saturating_since(start)));
        self.host_clock = done;
        Ok(())
    }

    fn read_buffer(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        let data = self.cpu_mem.get(id)?.to_vec();
        self.host_clock += self.machine.host.copy_time(data.len() as u64 * 4);
        Ok(data)
    }

    fn elapsed(&self) -> SimDuration {
        self.host_clock.saturating_since(SimTime::ZERO)
    }

    fn kernel_times(&self) -> Vec<(String, SimDuration)> {
        self.kernel_log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::KernelProfile;
    use fluidicl_vcl::{ArgRole, ArgSpec, KernelDef};

    fn scale_program() -> Program {
        let mut p = Program::new();
        p.register(KernelDef::new(
            "scale",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
                ArgSpec::new("f", ArgRole::Scalar),
            ],
            KernelProfile::new("scale")
                .flops_per_item(8.0)
                .bytes_read_per_item(4.0)
                .bytes_written_per_item(4.0),
            |item, scalars, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[i] = scalars.f32(0) * ins.get(0)[i];
            },
        ));
        p
    }

    fn run_with(fraction: f64) -> (Vec<f32>, SimDuration) {
        let mut rt =
            StaticPartitionRuntime::new(MachineConfig::paper_testbed(), scale_program(), fraction);
        let n = 4096;
        let src = rt.create_buffer(n);
        let dst = rt.create_buffer(n);
        let input: Vec<f32> = (0..n).map(|i| i as f32 + 1.0).collect();
        rt.write_buffer(src, &input).unwrap();
        rt.enqueue_kernel(
            "scale",
            NdRange::d1(n, 64).unwrap(),
            &[
                KernelArg::Buffer(src),
                KernelArg::Buffer(dst),
                KernelArg::F32(2.0),
            ],
        )
        .unwrap();
        (rt.read_buffer(dst).unwrap(), rt.elapsed())
    }

    #[test]
    fn every_split_computes_the_same_result() {
        let (reference, _) = run_with(0.0);
        for f in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let (got, _) = run_with(f);
            assert_eq!(got, reference, "split {f}");
        }
    }

    #[test]
    fn interior_splits_pay_coherence_costs() {
        let (_, t0) = run_with(0.0);
        let (_, t50) = run_with(0.5);
        // The tiny kernel cannot amortise merge + transfer.
        assert!(t50 > t0);
    }

    #[test]
    #[should_panic(expected = "cpu fraction")]
    fn rejects_out_of_range_fraction() {
        let _ = StaticPartitionRuntime::new(MachineConfig::paper_testbed(), Program::new(), 1.5);
    }

    #[test]
    fn pure_cpu_avoids_gpu_costs() {
        let (_, t_cpu) = run_with(1.0);
        let (_, t_gpu) = run_with(0.0);
        // Both valid; just ensure they differ and are positive.
        assert!(!t_cpu.is_zero() && !t_gpu.is_zero());
        assert_ne!(t_cpu, t_gpu);
    }
}
