//! OracleSP: the oracle static partitioning of paper §9.1.
//!
//! Runs the application once for every CPU/GPU split x ∈ {0%, 10%, …, 100%}
//! and reports the best — the strongest *static* scheme a programmer could
//! reach by exhaustive offline tuning. FluidiCL matching or beating
//! OracleSP without any tuning is the paper's headline result.

use fluidicl_des::SimDuration;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::BenchmarkSpec;
use fluidicl_vcl::{ClDriver, ClResult};

use crate::StaticPartitionRuntime;

/// Result of one oracle sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleResult {
    /// Best total running time across all splits.
    pub best_time: SimDuration,
    /// CPU fraction achieving it.
    pub best_cpu_fraction: f64,
    /// The full sweep: `(cpu_fraction, total_time)` for every split tried.
    pub sweep: Vec<(f64, SimDuration)>,
}

/// Runs `benchmark` at size `n` under every static split in `steps`-percent
/// increments and returns the oracle choice.
///
/// # Errors
///
/// Propagates driver errors; fails if any split produces results that do
/// not match the sequential reference.
pub fn oracle_sweep(
    machine: &MachineConfig,
    benchmark: &BenchmarkSpec,
    n: usize,
    seed: u64,
    steps: usize,
) -> ClResult<OracleResult> {
    assert!(steps >= 1, "need at least one step");
    let mut sweep = Vec::new();
    for i in 0..=steps {
        let fraction = i as f64 / steps as f64;
        let mut rt = StaticPartitionRuntime::new(machine.clone(), (benchmark.program)(n), fraction);
        let ok = benchmark.run_and_validate_sized(&mut rt, n, seed)?;
        assert!(
            ok,
            "static split {fraction} corrupted {} output",
            benchmark.name
        );
        sweep.push((fraction, rt.elapsed()));
    }
    let (best_cpu_fraction, best_time) = sweep
        .iter()
        .copied()
        .min_by_key(|(_, t)| *t)
        .expect("sweep is non-empty");
    Ok(OracleResult {
        best_time,
        best_cpu_fraction,
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_polybench::find;

    #[test]
    fn oracle_picks_the_minimum() {
        let machine = MachineConfig::paper_testbed();
        let bench = find("GESUMMV").unwrap();
        let r = oracle_sweep(&machine, &bench, 512, 3, 5).unwrap();
        assert_eq!(r.sweep.len(), 6);
        let min = r.sweep.iter().map(|(_, t)| *t).min().unwrap();
        assert_eq!(r.best_time, min);
        assert!((0.0..=1.0).contains(&r.best_cpu_fraction));
    }
}
