//! # fluidicl-baselines — every runtime the paper compares against
//!
//! * [`StaticPartitionRuntime`] — a fixed x% CPU / (100−x)% GPU split of
//!   every kernel, the manual partitioning of paper §3 (Figures 2–3);
//! * [`oracle_sweep`] — OracleSP, the best static split found by exhaustive
//!   offline search (§9.1);
//! * [`SoclRuntime`] — a StarPU/SOCL-style whole-kernel task scheduler with
//!   the `eager` and `dmda` policies and an explicit calibration step
//!   (§9.4).
//!
//! The pure single-device baselines (CPU-only / GPU-only) come from
//! [`fluidicl_vcl::SingleDeviceRuntime`]. All runtimes implement
//! [`fluidicl_vcl::ClDriver`], so the identical host programs from
//! `fluidicl-polybench` drive each of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod oracle;
mod socl;
mod static_partition;

pub use oracle::{oracle_sweep, OracleResult};
pub use socl::{SoclRuntime, SoclScheduler};
pub use static_partition::StaticPartitionRuntime;
