//! Decision-quality tests for the baseline runtimes on the real benchmark
//! suite: dmda must place each BICG kernel on its preferred device, the
//! oracle must find interior optima where they exist, and the calibration
//! workflow must behave as the paper describes.

use fluidicl_baselines::{oracle_sweep, SoclRuntime, SoclScheduler, StaticPartitionRuntime};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::find;
use fluidicl_vcl::{ClDriver, DeviceKind};

const SEED: u64 = 77;

#[test]
fn calibrated_dmda_splits_bicg_across_devices() {
    // The paper's Table 1 scenario: BICG's kernels prefer different
    // devices; a data-aware scheduler with a model should place them apart.
    let bench = find("BICG").expect("BICG registered");
    let n = bench.default_n;
    let machine = MachineConfig::paper_testbed();
    let mut probe = SoclRuntime::new(machine.clone(), (bench.program)(n), SoclScheduler::Eager);
    assert!(bench.run_and_validate_sized(&mut probe, n, SEED).unwrap());
    let mut rt = SoclRuntime::new(machine, (bench.program)(n), SoclScheduler::Dmda);
    for (kernel, nd) in probe.geometry_log() {
        rt.calibrate(kernel, *nd).unwrap();
    }
    assert!(bench.run_and_validate_sized(&mut rt, n, SEED).unwrap());
    let devices: std::collections::HashMap<String, DeviceKind> =
        rt.task_log().iter().map(|(k, d)| (k.clone(), *d)).collect();
    assert_eq!(devices["bicg_q"], DeviceKind::Gpu);
    assert_eq!(devices["bicg_s"], DeviceKind::Cpu);
}

#[test]
fn calibrated_dmda_never_loses_to_eager_on_the_suite() {
    let machine = MachineConfig::paper_testbed();
    for name in ["ATAX", "BICG", "GESUMMV", "SYRK"] {
        let bench = find(name).expect("benchmark registered");
        let n = bench.default_n;
        let mut eager = SoclRuntime::new(machine.clone(), (bench.program)(n), SoclScheduler::Eager);
        assert!(bench.run_and_validate_sized(&mut eager, n, SEED).unwrap());
        let mut dmda = SoclRuntime::new(machine.clone(), (bench.program)(n), SoclScheduler::Dmda);
        for (kernel, nd) in eager.geometry_log() {
            dmda.calibrate(kernel, *nd).unwrap();
        }
        assert!(bench.run_and_validate_sized(&mut dmda, n, SEED).unwrap());
        assert!(
            dmda.elapsed() <= eager.elapsed(),
            "{name}: calibrated dmda ({}) lost to eager ({})",
            dmda.elapsed(),
            eager.elapsed()
        );
    }
}

#[test]
fn oracle_finds_an_interior_optimum_for_syrk() {
    let machine = MachineConfig::paper_testbed();
    let bench = find("SYRK").expect("SYRK registered");
    let r = oracle_sweep(&machine, &bench, bench.default_n, SEED, 10).unwrap();
    assert!(
        r.best_cpu_fraction > 0.0 && r.best_cpu_fraction < 1.0,
        "SYRK's best static split must be interior (got {})",
        r.best_cpu_fraction
    );
    // The oracle must beat both pure-device endpoints.
    let ends: Vec<_> = r
        .sweep
        .iter()
        .filter(|(f, _)| *f == 0.0 || *f == 1.0)
        .map(|(_, t)| *t)
        .collect();
    assert!(ends.iter().all(|&t| r.best_time < t));
}

#[test]
fn oracle_picks_an_endpoint_for_single_device_benchmarks() {
    let machine = MachineConfig::paper_testbed();
    // ATAX is GPU-monotone, GESUMMV CPU-monotone.
    let atax = find("ATAX").expect("ATAX registered");
    let r = oracle_sweep(&machine, &atax, atax.default_n, SEED, 10).unwrap();
    assert_eq!(r.best_cpu_fraction, 0.0, "ATAX oracle must pick pure GPU");
    let gesummv = find("GESUMMV").expect("GESUMMV registered");
    let r = oracle_sweep(&machine, &gesummv, gesummv.default_n, SEED, 10).unwrap();
    assert_eq!(
        r.best_cpu_fraction, 1.0,
        "GESUMMV oracle must pick pure CPU"
    );
}

#[test]
fn static_split_times_vary_smoothly_enough_to_sweep() {
    // No split may be pathologically wrong by orders of magnitude — a
    // sanity bound on the interaction of partitioning with the models.
    let machine = MachineConfig::paper_testbed();
    let bench = find("SYR2K").expect("SYR2K registered");
    let n = bench.default_n;
    let mut times = Vec::new();
    for i in 0..=10 {
        let mut rt =
            StaticPartitionRuntime::new(machine.clone(), (bench.program)(n), i as f64 / 10.0);
        assert!(bench.run_and_validate_sized(&mut rt, n, SEED).unwrap());
        times.push(rt.elapsed());
    }
    let min = times.iter().min().unwrap().as_nanos() as f64;
    let max = times.iter().max().unwrap().as_nanos() as f64;
    assert!(max / min < 20.0, "static sweep spans {:.1}x", max / min);
}
