//! Shared work frontier and arrival coverage for N-way co-execution.
//!
//! The paper's two-device protocol is a race over flattened work-group IDs:
//! the GPU walks up from 0, the CPU claims chunks down from the top, and a
//! single watermark (the lowest shipped CPU boundary) tells the GPU where
//! to stop. With more than one non-owner that pair of counters no longer
//! describes the unexecuted region, so this module generalizes both ends:
//!
//! * [`Frontier`] is the shared pool of unclaimed work-group IDs. Non-owner
//!   devices claim contiguous ranges off its top (preserving the paper's
//!   top-down descent), and recovery returns a lost device's claimed-but-
//!   unshipped ranges to the pool.
//! * [`Coverage`] is the merged set of ranges whose results have arrived at
//!   the owner. Its contiguous top suffix yields the watermark the GPU's
//!   wave loop and early-abort check consume — with a single non-owner it
//!   is exactly the paper's boundary watermark.

/// Pool of unclaimed work-group IDs shared by all non-owner devices.
///
/// Work is handed out top-down: the pool is `[0, top)` plus any ranges
/// returned by recovery. With one claimant and no returns this degenerates
/// to the paper's single descending `cpu_top` counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frontier {
    /// Top of the untouched region: `[0, top)` is unclaimed.
    top: u64,
    /// Disjoint ranges handed back by recovery, each inside `[top, total)`.
    returned: Vec<(u64, u64)>,
}

impl Frontier {
    /// A frontier over `total` flattened work-group IDs, all unclaimed.
    pub fn new(total: u64) -> Self {
        Frontier {
            top: total,
            returned: Vec::new(),
        }
    }

    /// Number of work-group IDs still claimable.
    pub fn available(&self) -> u64 {
        self.top + self.returned.iter().map(|(f, t)| t - f).sum::<u64>()
    }

    /// Whether every work-group ID has been claimed.
    pub fn is_empty(&self) -> bool {
        self.available() == 0
    }

    /// Claims up to `want` contiguous work-group IDs off the top of the
    /// pool, preferring returned ranges (they sit above `top`, closest to
    /// where the owner's wave walk will arrive last). Returns `None` when
    /// the pool is empty; otherwise the claimed `(from, to)` range, which
    /// may be shorter than `want` — a claimant needing more work asks again.
    pub fn claim(&mut self, want: u64) -> Option<(u64, u64)> {
        if want == 0 {
            return None;
        }
        // Returned ranges first, highest top wins: recovery work re-enters
        // where the original claimant would have been executing.
        if let Some(idx) = (0..self.returned.len()).max_by_key(|&i| self.returned[i].1) {
            let (from, to) = self.returned[idx];
            let k = want.min(to - from);
            let claimed = (to - k, to);
            if k == to - from {
                self.returned.swap_remove(idx);
            } else {
                self.returned[idx].1 = to - k;
            }
            return Some(claimed);
        }
        if self.top == 0 {
            return None;
        }
        let k = want.min(self.top);
        let claimed = (self.top - k, self.top);
        self.top -= k;
        Some(claimed)
    }

    /// Returns a claimed-but-unexecuted range to the pool (recovery after a
    /// non-owner device loss). Merges with the untouched region when the
    /// range sits directly on top of it.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to`.
    pub fn return_range(&mut self, from: u64, to: u64) {
        assert!(from < to, "returned range must be non-empty");
        if from == self.top {
            self.top = to;
            // A previously returned range may now touch the new top.
            while let Some(idx) = self.returned.iter().position(|&(f, _)| f == self.top) {
                self.top = self.returned.swap_remove(idx).1;
            }
        } else {
            self.returned.push((from, to));
        }
    }
}

/// Merged set of work-group ranges whose results have arrived at the owner.
///
/// The owner's wave loop stops below the *watermark*: the start of the
/// maximal contiguous suffix of covered IDs ending at `total`. Covered
/// islands below the watermark (a faster peer's results arriving before a
/// slower one's) do not move it — the GPU may re-execute those IDs, which
/// the diff-merge makes harmless, exactly like the paper's duplicated
/// boundary work-groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage {
    total: u64,
    /// Disjoint, sorted-by-start covered ranges.
    ranges: Vec<(u64, u64)>,
}

impl Coverage {
    /// Empty coverage over `total` work-group IDs.
    pub fn new(total: u64) -> Self {
        Coverage {
            total,
            ranges: Vec::new(),
        }
    }

    /// Records that results for `[from, to)` arrived, merging adjacent and
    /// overlapping ranges.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to` or `to > total`.
    pub fn add(&mut self, from: u64, to: u64) {
        assert!(
            from < to && to <= self.total,
            "coverage range out of bounds"
        );
        let mut from = from;
        let mut to = to;
        self.ranges.retain(|&(f, t)| {
            if t < from || f > to {
                true
            } else {
                from = from.min(f);
                to = to.max(t);
                false
            }
        });
        let at = self.ranges.partition_point(|&(f, _)| f < from);
        self.ranges.insert(at, (from, to));
    }

    /// Start of the maximal contiguous covered suffix ending at `total` —
    /// the owner's watermark. `total` when nothing borders the top yet.
    pub fn suffix_start(&self) -> u64 {
        match self.ranges.last() {
            Some(&(f, t)) if t == self.total => f,
            _ => self.total,
        }
    }

    /// Total number of covered work-group IDs.
    pub fn covered_count(&self) -> u64 {
        self.ranges.iter().map(|(f, t)| t - f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_des::SplitMix64;

    #[test]
    fn single_claimant_descends_like_the_paper() {
        let mut f = Frontier::new(100);
        assert_eq!(f.claim(30), Some((70, 100)));
        assert_eq!(f.claim(30), Some((40, 70)));
        assert_eq!(f.claim(50), Some((0, 40)), "short claim at the bottom");
        assert!(f.is_empty());
        assert_eq!(f.claim(10), None);
    }

    #[test]
    fn returned_ranges_are_reclaimed_top_down_first() {
        let mut f = Frontier::new(100);
        assert_eq!(f.claim(20), Some((80, 100)));
        assert_eq!(f.claim(20), Some((60, 80)));
        assert_eq!(f.claim(20), Some((40, 60)), "third claim keeps the top low");
        // Neither return touches the top (40), so both stay detached.
        f.return_range(80, 100);
        f.return_range(60, 80);
        assert_eq!(f.available(), 80);
        // Highest returned range wins, clipped from its top.
        assert_eq!(f.claim(10), Some((90, 100)));
        assert_eq!(f.claim(10), Some((80, 90)));
        assert_eq!(f.claim(30), Some((60, 80)), "short claim drains the range");
        assert_eq!(f.claim(60), Some((0, 40)), "top descent is clipped at 0");
        assert!(f.is_empty());
    }

    #[test]
    fn return_adjacent_to_top_merges_back() {
        let mut f = Frontier::new(100);
        let (a_from, a_to) = f.claim(10).unwrap();
        let (b_from, b_to) = f.claim(10).unwrap();
        // Return in claim order: b sits on the new top after a merges.
        f.return_range(b_from, b_to);
        f.return_range(a_from, a_to);
        assert_eq!(f, Frontier::new(100), "full merge back to pristine");
    }

    #[test]
    fn claims_never_overlap_and_union_covers_everything() {
        let mut rng = SplitMix64::new(0xF1D1_C1A0);
        for trial in 0..200 {
            let total = 1 + rng.range_usize(0, 400) as u64;
            let mut f = Frontier::new(total);
            let mut claimed: Vec<(u64, u64)> = Vec::new();
            let mut steps = 0;
            while !f.is_empty() {
                steps += 1;
                assert!(steps < 10_000, "trial {trial} did not converge");
                let want = 1 + rng.range_usize(0, 32) as u64;
                let (from, to) = f.claim(want).expect("non-empty frontier claims");
                assert!(from < to && to <= total, "claim in bounds");
                assert!(to - from <= want, "claim never exceeds the ask");
                for &(cf, ct) in &claimed {
                    assert!(to <= cf || from >= ct, "claims must be disjoint");
                }
                // Occasionally return a claimed range, recovery-style.
                if rng.range_usize(0, 8) == 0 {
                    f.return_range(from, to);
                } else {
                    claimed.push((from, to));
                }
            }
            claimed.sort_unstable();
            let mut cursor = 0;
            for (from, to) in claimed {
                assert_eq!(from, cursor, "union must have no gaps");
                cursor = to;
            }
            assert_eq!(cursor, total, "union must cover [0, total)");
            assert_eq!(f.claim(5), None);
        }
    }

    #[test]
    fn coverage_suffix_is_the_boundary_watermark_for_one_claimant() {
        // One non-owner shipping descending boundaries: the suffix start
        // must track the lowest shipped boundary, the paper's watermark.
        let mut c = Coverage::new(100);
        assert_eq!(c.suffix_start(), 100);
        c.add(80, 100);
        assert_eq!(c.suffix_start(), 80);
        c.add(50, 80);
        assert_eq!(c.suffix_start(), 50);
        assert_eq!(c.covered_count(), 50);
    }

    #[test]
    fn coverage_islands_do_not_move_the_watermark() {
        let mut c = Coverage::new(100);
        c.add(90, 100);
        c.add(40, 60); // a faster peer's island below the suffix
        assert_eq!(c.suffix_start(), 90);
        assert_eq!(c.covered_count(), 30);
        c.add(60, 90); // bridge: suffix now reaches down through the island
        assert_eq!(c.suffix_start(), 40);
        assert_eq!(c.covered_count(), 60);
    }

    #[test]
    fn coverage_merges_overlaps_without_double_counting() {
        let mut c = Coverage::new(64);
        c.add(10, 30);
        c.add(20, 40);
        c.add(40, 50); // adjacent
        assert_eq!(c.covered_count(), 40);
        assert_eq!(c.suffix_start(), 64);
        c.add(50, 64);
        assert_eq!(c.suffix_start(), 10);
    }

    #[test]
    fn coverage_random_adds_match_a_bitmap_model() {
        let mut rng = SplitMix64::new(0xF1D1_C1A1);
        for _ in 0..100 {
            let total = 1 + rng.range_usize(0, 200) as u64;
            let mut c = Coverage::new(total);
            let mut bits = vec![false; total as usize];
            for _ in 0..rng.range_usize(0, 20) {
                let from = rng.range_usize(0, total as usize) as u64;
                let to = from + 1 + rng.range_usize(0, (total - from) as usize) as u64;
                let to = to.min(total);
                c.add(from, to);
                for b in &mut bits[from as usize..to as usize] {
                    *b = true;
                }
                let count = bits.iter().filter(|&&b| b).count() as u64;
                assert_eq!(c.covered_count(), count);
                let suffix = (0..=total)
                    .rev()
                    .take_while(|&i| i == total || bits[i as usize])
                    .last()
                    .unwrap_or(total);
                assert_eq!(c.suffix_start(), suffix);
            }
        }
    }

    /// Property test for the owner-failover accounting: claimants claim
    /// descending ranges, ship them (crediting [`Coverage`]), die mid-claim
    /// (in-flight work returns, shipped work stays) or get promoted to
    /// owner — the failover rollback, which un-credits everything they
    /// shipped and returns it to the frontier while coverage is rebuilt
    /// from the survivors. Under arbitrary interleavings of those events
    /// (including cascades of several promotions) no work-group may be
    /// lost — every one ends either credited to exactly one claimant or
    /// strictly below the watermark where the acting owner's wave walk
    /// picks it up — and none may be credited twice.
    #[test]
    fn loss_and_promotion_interleavings_never_lose_or_duplicate_work() {
        let mut rng = SplitMix64::new(0xF1D1_C1A2);
        for trial in 0..200 {
            let total = 8 + rng.range_usize(0, 256) as u64;
            let claimants = 2 + rng.range_usize(0, 3);
            let mut f = Frontier::new(total);
            let mut coverage = Coverage::new(total);
            // credit[wg] = the claimant whose shipped send currently holds
            // the work-group; exactly-once is `Option`, not a count.
            let mut credit: Vec<Option<usize>> = vec![None; total as usize];
            let mut in_flight: Vec<Vec<(u64, u64)>> = vec![Vec::new(); claimants];
            let mut applied: Vec<Vec<(u64, u64)>> = vec![Vec::new(); claimants];
            let mut alive = vec![true; claimants];
            let mut steps = 0;
            while !(f.is_empty() && in_flight.iter().all(Vec::is_empty)) {
                steps += 1;
                assert!(steps < 100_000, "trial {trial} did not converge");
                let live: Vec<usize> = (0..claimants).filter(|&c| alive[c]).collect();
                if live.is_empty() {
                    break;
                }
                let c = live[rng.range_usize(0, live.len())];
                match rng.range_usize(0, 10) {
                    0..=5 => {
                        let want = 1 + rng.range_usize(0, 16) as u64;
                        if let Some((from, to)) = f.claim(want) {
                            for wg in from..to {
                                assert!(
                                    credit[wg as usize].is_none(),
                                    "trial {trial}: frontier handed out a credited work-group"
                                );
                            }
                            for ranges in &in_flight {
                                for &(cf, ct) in ranges {
                                    assert!(
                                        to <= cf || from >= ct,
                                        "trial {trial}: claim overlaps an outstanding claim"
                                    );
                                }
                            }
                            in_flight[c].push((from, to));
                        }
                    }
                    6 | 7 => {
                        if !in_flight[c].is_empty() {
                            let i = rng.range_usize(0, in_flight[c].len());
                            let (from, to) = in_flight[c].swap_remove(i);
                            for wg in from..to {
                                assert!(
                                    credit[wg as usize].replace(c).is_none(),
                                    "trial {trial}: work-group credited twice"
                                );
                            }
                            coverage.add(from, to);
                            applied[c].push((from, to));
                        }
                    }
                    8 => {
                        // Plain loss: in-flight claims return, shipped work
                        // stays credited (in-order sends already delivered).
                        alive[c] = false;
                        for (from, to) in in_flight[c].drain(..) {
                            f.return_range(from, to);
                        }
                    }
                    _ => {
                        // Promotion rollback: the claimant becomes the
                        // acting owner from a pristine slate — everything
                        // it shipped is un-credited and returned alongside
                        // its in-flight claims, and coverage is rebuilt
                        // from the surviving claimants' shipped ranges.
                        alive[c] = false;
                        for (from, to) in in_flight[c].drain(..) {
                            f.return_range(from, to);
                        }
                        for (from, to) in applied[c].drain(..) {
                            for wg in from..to {
                                assert_eq!(credit[wg as usize].take(), Some(c));
                            }
                            f.return_range(from, to);
                        }
                        let mut rebuilt = Coverage::new(total);
                        for ranges in &applied {
                            for &(af, at) in ranges {
                                rebuilt.add(af, at);
                            }
                        }
                        coverage = rebuilt;
                    }
                }
            }
            let credited = credit.iter().filter(|c| c.is_some()).count() as u64;
            assert_eq!(
                coverage.covered_count(),
                credited,
                "trial {trial}: coverage disagrees with the credit ledger"
            );
            // The watermark splits the range exactly: everything at or
            // above it is credited to exactly one claimant, everything
            // below it that is uncredited sits in the frontier (or was
            // never claimed) where the acting owner's walk re-covers it.
            let wm = coverage.suffix_start();
            for wg in wm..total {
                assert!(
                    credit[wg as usize].is_some(),
                    "trial {trial}: work-group {wg} above the watermark {wm} lost"
                );
            }
            let mut walked = vec![false; total as usize];
            while let Some((from, to)) = f.claim(16) {
                assert!(
                    to <= wm,
                    "trial {trial}: frontier holds [{from}, {to}) above the watermark {wm}"
                );
                for wg in from..to {
                    assert!(
                        credit[wg as usize].is_none() && !walked[wg as usize],
                        "trial {trial}: work-group {wg} both credited and walkable"
                    );
                    walked[wg as usize] = true;
                }
            }
        }
    }
}
