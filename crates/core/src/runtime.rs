//! The FluidiCL runtime: the public, OpenCL-shaped API.
//!
//! `Fluidicl` is the drop-in layer of paper Figure 4: the application calls
//! the usual buffer/kernel functions as if one device existed, and the
//! runtime manages both devices underneath — duplicating buffers and writes
//! (§4.1), co-executing every kernel (§4.2), merging results (§4.3),
//! returning data to the host in a background thread (§4.4, §5.6), and
//! tracking buffer versions and locations across kernels (§5.3, §6.2).

use fluidicl_des::{SimDuration, SimTime};
use fluidicl_hetsim::MachineConfig;
use fluidicl_vcl::exec::Launch;
use fluidicl_vcl::{
    execute_groups_injected, BufferId, ClDriver, ClError, ClResult, DeviceKind, DirtyTracker,
    FaultInjector, KernelArg, Memory, NdRange, Program,
};

use crate::buffers::{BufferTable, KernelId, PoolStats, ScratchPool, SnapshotPool};
use crate::coexec::{Coexec, CoexecInput, PeerSlot};
use crate::config::FluidiclConfig;
use crate::graph::{self, GraphNodeSummary, GraphSchedule};
use crate::heft::{self, HeftEdge, WeightTable};
use crate::roster::DeviceRoster;
use crate::stats::{Finisher, KernelReport, LaunchMeta, RuntimeSummary};
use crate::trace::{TraceEvent, TraceKind};

/// The FluidiCL runtime over a simulated CPU+GPU machine.
///
/// # Examples
///
/// ```
/// use fluidicl::{Fluidicl, FluidiclConfig};
/// use fluidicl_hetsim::{KernelProfile, MachineConfig};
/// use fluidicl_vcl::{ArgRole, ArgSpec, ClDriver, KernelArg, KernelDef, NdRange, Program};
///
/// let mut program = Program::new();
/// program.register(KernelDef::new(
///     "scale",
///     vec![
///         ArgSpec::new("src", ArgRole::In),
///         ArgSpec::new("dst", ArgRole::Out),
///     ],
///     KernelProfile::new("scale").flops_per_item(1.0).bytes_read_per_item(4.0),
///     |item, _, ins, outs| {
///         let i = item.global_linear();
///         outs.at(0)[i] = 2.0 * ins.get(0)[i];
///     },
/// ));
/// let mut rt = Fluidicl::new(
///     MachineConfig::paper_testbed(),
///     FluidiclConfig::default(),
///     program,
/// );
/// let src = rt.create_buffer(1024);
/// let dst = rt.create_buffer(1024);
/// rt.write_buffer(src, &vec![1.0; 1024])?;
/// rt.enqueue_kernel(
///     "scale",
///     NdRange::d1(1024, 64)?,
///     &[KernelArg::Buffer(src), KernelArg::Buffer(dst)],
/// )?;
/// assert_eq!(rt.read_buffer(dst)?, vec![2.0; 1024]);
/// # Ok::<(), fluidicl_vcl::ClError>(())
/// ```
#[derive(Debug)]
pub struct Fluidicl {
    machine: MachineConfig,
    config: FluidiclConfig,
    program: Program,
    cpu_mem: Memory,
    gpu_mem: Memory,
    buffers: BufferTable,
    pool: ScratchPool,
    snapshots: SnapshotPool,
    host_clock: SimTime,
    gpu_free: SimTime,
    hd_free: SimTime,
    dh_free: SimTime,
    next_kernel_id: KernelId,
    reports: Vec<KernelReport>,
    /// Fault oracle derived from `config.faults`; `None` disables injection
    /// and every watchdog.
    injector: Option<FaultInjector>,
    /// Health of every device across kernels. Later kernels re-form
    /// co-execution on whatever the roster reports healthy and degrade to a
    /// single device only when one remains.
    roster: DeviceRoster,
    /// Kernel version online profiling last settled on; degraded runs keep
    /// reporting it (selection survives a device loss).
    last_cpu_version: usize,
    /// Unrecoverable error (both devices gone): every later enqueue returns
    /// a clone of it instead of touching dead hardware.
    fatal: Option<ClError>,
    /// Launches deferred by kernel-graph scheduling, awaiting a flush.
    pending: Vec<PendingLaunch>,
    /// Online-profiled per-(kernel, lane) node weights for HEFT lookahead,
    /// carried across flushes.
    weights: WeightTable,
    /// One record per flushed kernel graph, for inspection and the check
    /// tooling.
    graph_schedules: Vec<GraphSchedule>,
}

/// One enqueue captured while kernel-graph scheduling defers execution.
#[derive(Debug)]
struct PendingLaunch {
    kernel: String,
    ndrange: NdRange,
    args: Vec<KernelArg>,
}

impl Fluidicl {
    /// Creates a runtime on `machine` with `config` and a compiled
    /// `program` (kernels are built for both devices, paper §4.1).
    pub fn new(machine: MachineConfig, config: FluidiclConfig, program: Program) -> Self {
        let pool = ScratchPool::new(config.buffer_pool);
        let injector = config.faults.map(FaultInjector::new);
        Fluidicl {
            machine,
            config,
            program,
            cpu_mem: Memory::new(),
            gpu_mem: Memory::new(),
            buffers: BufferTable::new(),
            pool,
            snapshots: SnapshotPool::new(),
            host_clock: SimTime::ZERO,
            gpu_free: SimTime::ZERO,
            hd_free: SimTime::ZERO,
            dh_free: SimTime::ZERO,
            next_kernel_id: 1,
            reports: Vec::new(),
            injector,
            roster: DeviceRoster::new(),
            last_cpu_version: 0,
            fatal: None,
            pending: Vec::new(),
            weights: WeightTable::new(),
            graph_schedules: Vec::new(),
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &FluidiclConfig {
        &self.config
    }

    /// Per-kernel execution reports, in launch order.
    pub fn reports(&self) -> &[KernelReport] {
        &self.reports
    }

    /// Aggregate statistics.
    pub fn summary(&self) -> RuntimeSummary {
        RuntimeSummary::from_reports(&self.reports)
    }

    /// Schedules recorded by kernel-graph flushes, in flush order (empty
    /// unless [`FluidiclConfig::with_graph_scheduling`] is on).
    pub fn graph_schedules(&self) -> &[GraphSchedule] {
        &self.graph_schedules
    }

    /// Scratch-buffer pool statistics (paper §6.1).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Snapshot-allocation pool statistics `(hits, misses)`: how often the
    /// per-kernel original snapshots reused a pooled allocation.
    pub fn snapshot_stats(&self) -> (u64, u64) {
        self.snapshots.stats()
    }

    /// Number of snapshot allocations currently sitting free in the pool —
    /// balanced accounting even across launches that returned `Err`.
    pub fn snapshot_free_count(&self) -> usize {
        self.snapshots.free_count()
    }

    /// Number of scratch buffers currently sitting free in the pool.
    pub fn scratch_free_count(&self) -> usize {
        self.pool.free_count()
    }

    /// Whether the configured fault plan has fired yet.
    pub fn fault_fired(&self) -> bool {
        self.injector.as_ref().is_some_and(FaultInjector::fired)
    }

    /// Device declared permanently lost during an earlier kernel, if any —
    /// the legacy binary view ([`DeviceRoster::lost_device`]). Subsequent
    /// kernels co-execute on the healthy survivors when at least two
    /// remain, and run degraded only on the last one.
    pub fn lost_device(&self) -> Option<DeviceKind> {
        self.roster.lost_device()
    }

    /// Health of every device in the machine, tracked across kernels.
    pub fn roster(&self) -> &DeviceRoster {
        &self.roster
    }

    /// Promotes every kernel named in `proven` to declared-disjoint writes
    /// (see [`Program::promote_disjoint`]) and, if at least one promotion
    /// applied, raises the intra-launch thread budget to `jobs`. Returns
    /// the number of kernels promoted. This is how a disjoint-writes proof
    /// manifest emitted by `fluidicl-check --emit-disjoint` turns into
    /// enabled parallelism at run time.
    pub fn apply_disjoint_proofs(&mut self, proven: &[String], jobs: usize) -> usize {
        let mut promoted = 0;
        for name in proven {
            if self.program.promote_disjoint(name) {
                promoted += 1;
            }
        }
        if promoted > 0 {
            self.config.intra_launch_jobs = jobs.max(1);
        }
        promoted
    }

    fn scratch_setup_cost(&mut self, out_ids: &[BufferId]) -> SimDuration {
        let mut cost = SimDuration::ZERO;
        for id in out_ids {
            let state = self.buffers.state(*id);
            let len = state.len;
            let bytes = state.bytes();
            let snapshot_current = state.orig_snapshot_current;
            // Under dirty-range transfers a stale snapshot only re-copies
            // the ranges the GPU copy changed since the last refresh.
            let refresh_bytes = if self.config.dirty_range_transfers {
                state.snapshot_refresh_bytes()
            } else {
                bytes
            };
            // Two scratch buffers per modified buffer: the CPU-data landing
            // area and the pristine original (paper §4.1).
            for _ in 0..2 {
                if !self.pool.acquire(len) {
                    cost += self.machine.gpu.buffer_create_time(bytes);
                }
            }
            // Snapshot the original on the GPU unless the previous kernel's
            // end-of-kernel copy already did (paper §5.5).
            if !snapshot_current {
                let copy_ns = 2.0 * refresh_bytes as f64 / self.machine.gpu.peak_mem_bytes_per_ns();
                cost += SimDuration::from_nanos(copy_ns as u64);
            }
        }
        cost
    }

    fn release_scratch(&mut self, out_ids: &[BufferId]) {
        for id in out_ids {
            let len = self.buffers.state(*id).len;
            self.pool.release(len);
            self.pool.release(len);
        }
    }

    /// Re-establishes cross-device coherence on the output buffers of a
    /// kernel that failed mid-flight: the two copies have diverged (partial
    /// CPU subkernels vs partial GPU waves, no merge), which would poison
    /// the *next* kernel's diff-merge. The GPU copy is taken as the
    /// authority — exactly what its "original" scratch snapshot would hold.
    fn restore_coherence(&mut self, out_ids: &[BufferId]) {
        for id in out_ids {
            // Both memories allocated this id at create_buffer; a missing
            // entry here means the failure happened before any divergence.
            let Ok(gpu) = self.gpu_mem.get(*id) else {
                continue;
            };
            let gpu = gpu.to_vec();
            let _ = self.cpu_mem.write(*id, &gpu);
        }
    }

    /// Executes a kernel on the single surviving device after a permanent
    /// device loss: no co-execution, no subkernels, no transfers — the
    /// paper's protocol degrades to plain single-device OpenCL.
    fn enqueue_degraded(
        &mut self,
        kernel: &str,
        launch: &Launch,
        in_ids: &[BufferId],
        out_ids: &[BufferId],
        kid: KernelId,
        survivor: DeviceKind,
    ) -> ClResult<()> {
        let total = launch.ndrange.num_groups();
        let items = launch.ndrange.items_per_group();
        let profile = &launch.kernel.default_version().profile;
        let mut trace = vec![TraceEvent {
            at: self.host_clock,
            // A degraded run has no CPU/transfer overlap to speak of; its
            // trace always reads as the serial protocol.
            kind: TraceKind::Enqueued {
                total_wgs: total,
                pipeline_depth: 1,
            },
        }];
        let mut all_bufs: Vec<BufferId> = in_ids.to_vec();
        all_bufs.extend(out_ids.iter().copied());
        let (start, duration, finisher) = match survivor {
            DeviceKind::Cpu => {
                let start = self.buffers.cpu_ready_time(&all_bufs).max(self.host_clock);
                let dur =
                    self.machine
                        .cpu
                        .subkernel_time(profile, items, total, self.config.wg_split);
                (start, dur, Finisher::Cpu)
            }
            DeviceKind::Gpu => {
                let start = self
                    .buffers
                    .gpu_ready_time(&all_bufs)
                    .max(self.gpu_free)
                    .max(self.host_clock)
                    + self.machine.gpu.launch_overhead();
                let dur =
                    self.machine
                        .gpu
                        .range_time(profile, items, total, self.config.abort_mode);
                (start, dur, Finisher::Gpu)
            }
        };
        let mem = match survivor {
            DeviceKind::Cpu => &mut self.cpu_mem,
            DeviceKind::Gpu => &mut self.gpu_mem,
        };
        let exec = execute_groups_injected(
            launch,
            mem,
            0,
            total,
            self.config.intra_launch_jobs,
            self.injector.as_ref(),
            survivor,
        );
        if let Err(e) = exec {
            if matches!(e, ClError::DeviceLost { .. }) {
                self.fatal = Some(e.clone());
            }
            return Err(e);
        }
        let complete_at = start + duration;
        trace.push(TraceEvent {
            at: start,
            kind: TraceKind::DegradedRun {
                device: survivor,
                from: 0,
                to: total,
            },
        });
        trace.push(TraceEvent {
            at: complete_at,
            kind: TraceKind::KernelComplete { finisher },
        });
        let report = KernelReport {
            kernel: kernel.to_string(),
            kernel_id: kid,
            enqueued_at: self.host_clock,
            complete_at,
            total_wgs: total,
            gpu_executed_wgs: if survivor == DeviceKind::Gpu {
                total
            } else {
                0
            },
            cpu_executed_wgs: if survivor == DeviceKind::Cpu {
                total
            } else {
                0
            },
            cpu_merged_wgs: 0,
            subkernels: 0,
            subkernel_log: Vec::new(),
            hd_bytes: 0,
            dh_bytes: 0,
            // A degraded run still reports the version online profiling
            // settled on before the loss — selection is runtime state, not
            // per-kernel state, so the report must not reset it to 0.
            cpu_version_used: self.last_cpu_version,
            peer_executed_wgs: Vec::new(),
            finished_by: finisher,
            duration: complete_at.saturating_since(self.host_clock),
            trace,
            launch_meta: Some(LaunchMeta {
                ndrange: launch.ndrange,
                scalars: launch.plan()?.scalars.clone(),
                out_lens: out_ids
                    .iter()
                    .map(|id| self.buffers.state(*id).len)
                    .collect(),
            }),
        };
        if self.config.validate_protocol {
            let diags = crate::lint::lint_report(&report);
            if let Some(first) = diags
                .iter()
                .find(|d| d.severity == crate::lint::LintSeverity::Error)
            {
                return Err(ClError::ProtocolViolation {
                    kernel: kernel.to_string(),
                    detail: format!("{first} ({} finding(s) total)", diags.len()),
                });
            }
        }
        if let Some(hook) = &self.config.report_hook {
            let diags = hook.run(&report);
            if let Some(first) = diags
                .iter()
                .find(|d| d.severity == crate::lint::LintSeverity::Error)
            {
                return Err(ClError::ProtocolViolation {
                    kernel: kernel.to_string(),
                    detail: format!("{first} ({} finding(s) total)", diags.len()),
                });
            }
        }
        self.host_clock = complete_at;
        for id in out_ids {
            match survivor {
                DeviceKind::Cpu => self.buffers.record_cpu_arrival(*id, kid, complete_at),
                DeviceKind::Gpu => {
                    self.gpu_free = complete_at;
                    self.buffers.record_gpu_arrival(*id, kid, complete_at);
                }
            }
        }
        self.reports.push(report);
        Ok(())
    }

    /// Executes a kernel alone on a surviving peer GPU after both the CPU
    /// and the primary GPU are gone. The peer starts from a clean slate, so
    /// it pays a host-to-device broadcast of the launch buffers before the
    /// range; functionally the results land in the authoritative host copy
    /// (host memory outlives its compute device), which is what
    /// `read_buffer` serves once the primary GPU is dead. The fault plan's
    /// device kills target the primary CPU/GPU pair and both have already
    /// fired, so the run itself is not subject to further injection.
    fn enqueue_peer_degraded(
        &mut self,
        kernel: &str,
        launch: &Launch,
        in_ids: &[BufferId],
        out_ids: &[BufferId],
        kid: KernelId,
        slot: &PeerSlot,
    ) -> ClResult<()> {
        let total = launch.ndrange.num_groups();
        let items = launch.ndrange.items_per_group();
        let profile = &launch.kernel.default_version().profile;
        let mut all_bufs: Vec<BufferId> = in_ids.to_vec();
        all_bufs.extend(out_ids.iter().copied());
        let mut broadcast_bytes = 0u64;
        let mut seen: Vec<BufferId> = Vec::new();
        for id in &all_bufs {
            if seen.contains(id) {
                continue;
            }
            seen.push(*id);
            broadcast_bytes += self.buffers.state(*id).bytes();
        }
        let start = self
            .buffers
            .cpu_ready_time(&all_bufs)
            .max(self.gpu_free)
            .max(self.host_clock)
            + slot.peer.h2d.transfer_time(broadcast_bytes)
            + slot.peer.gpu.launch_overhead();
        let duration = slot
            .peer
            .gpu
            .range_time(profile, items, total, self.config.abort_mode);
        execute_groups_injected(
            launch,
            &mut self.cpu_mem,
            0,
            total,
            self.config.intra_launch_jobs,
            None,
            DeviceKind::Gpu,
        )?;
        let complete_at = start + duration;
        let trace = vec![
            TraceEvent {
                at: self.host_clock,
                kind: TraceKind::Enqueued {
                    total_wgs: total,
                    pipeline_depth: 1,
                },
            },
            TraceEvent {
                at: start,
                kind: TraceKind::EpDegradedRun {
                    dev: slot.dev,
                    from: 0,
                    to: total,
                },
            },
            TraceEvent {
                at: complete_at,
                kind: TraceKind::KernelComplete {
                    finisher: Finisher::Gpu,
                },
            },
        ];
        let report = KernelReport {
            kernel: kernel.to_string(),
            kernel_id: kid,
            enqueued_at: self.host_clock,
            complete_at,
            total_wgs: total,
            gpu_executed_wgs: 0,
            cpu_executed_wgs: 0,
            cpu_merged_wgs: 0,
            subkernels: 0,
            subkernel_log: Vec::new(),
            hd_bytes: 0,
            dh_bytes: 0,
            cpu_version_used: self.last_cpu_version,
            peer_executed_wgs: vec![total],
            finished_by: Finisher::Gpu,
            duration: complete_at.saturating_since(self.host_clock),
            trace,
            launch_meta: Some(LaunchMeta {
                ndrange: launch.ndrange,
                scalars: launch.plan()?.scalars.clone(),
                out_lens: out_ids
                    .iter()
                    .map(|id| self.buffers.state(*id).len)
                    .collect(),
            }),
        };
        if self.config.validate_protocol {
            let diags = crate::lint::lint_report(&report);
            if let Some(first) = diags
                .iter()
                .find(|d| d.severity == crate::lint::LintSeverity::Error)
            {
                return Err(ClError::ProtocolViolation {
                    kernel: kernel.to_string(),
                    detail: format!("{first} ({} finding(s) total)", diags.len()),
                });
            }
        }
        if let Some(hook) = &self.config.report_hook {
            let diags = hook.run(&report);
            if let Some(first) = diags
                .iter()
                .find(|d| d.severity == crate::lint::LintSeverity::Error)
            {
                return Err(ClError::ProtocolViolation {
                    kernel: kernel.to_string(),
                    detail: format!("{first} ({} finding(s) total)", diags.len()),
                });
            }
        }
        self.host_clock = complete_at;
        self.gpu_free = complete_at;
        for id in out_ids {
            self.buffers.record_cpu_arrival(*id, kid, complete_at);
        }
        self.reports.push(report);
        Ok(())
    }

    /// Runs the per-report protocol gates ([`FluidiclConfig::validate_protocol`]
    /// and the report hook) and converts the first error-severity finding
    /// into a typed [`ClError::ProtocolViolation`].
    fn gate_report(&self, kernel: &str, report: &KernelReport) -> ClResult<()> {
        if self.config.validate_protocol {
            let diags = crate::lint::lint_report(report);
            if let Some(first) = diags
                .iter()
                .find(|d| d.severity == crate::lint::LintSeverity::Error)
            {
                return Err(ClError::ProtocolViolation {
                    kernel: kernel.to_string(),
                    detail: format!("{first} ({} finding(s) total)", diags.len()),
                });
            }
        }
        if let Some(hook) = &self.config.report_hook {
            let diags = hook.run(report);
            if let Some(first) = diags
                .iter()
                .find(|d| d.severity == crate::lint::LintSeverity::Error)
            {
                return Err(ClError::ProtocolViolation {
                    kernel: kernel.to_string(),
                    detail: format!("{first} ({} finding(s) total)", diags.len()),
                });
            }
        }
        Ok(())
    }

    /// Validates a launch and parks it in the pending kernel graph instead
    /// of executing it (graph scheduling, ISSUE 10). Signature, scalar and
    /// buffer-handle errors still surface at enqueue time, exactly like the
    /// eager path; only execution is deferred.
    fn graph_defer(&mut self, kernel: &str, ndrange: NdRange, args: &[KernelArg]) -> ClResult<()> {
        let def = self.program.kernel(kernel)?;
        let launch = Launch::new(def, ndrange, args.to_vec());
        let in_ids = launch.input_buffers()?;
        let out_ids = launch.output_buffers()?;
        for id in in_ids.iter().chain(out_ids.iter()) {
            self.buffers.try_state(*id)?;
        }
        self.pending.push(PendingLaunch {
            kernel: kernel.to_string(),
            ndrange,
            args: args.to_vec(),
        });
        Ok(())
    }

    /// Executes every deferred launch according to a HEFT placement over
    /// the kernel dependence graph, then clears the pending queue.
    ///
    /// Called automatically before any buffer read or write; applications
    /// may also call it directly as an explicit synchronization point.
    /// Reports, kernel times and the clock only reflect deferred launches
    /// once a flush has run, so query statistics after the flush (or after
    /// the buffer read that forced it).
    ///
    /// # Errors
    ///
    /// Propagates execution and protocol-gate errors from the flushed
    /// nodes; nodes already executed when the error surfaces stay
    /// executed, and the remaining pending launches are dropped.
    pub fn flush_graph(&mut self) -> ClResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let pending = std::mem::take(&mut self.pending);
        let n = pending.len();
        // Footprints and dependence edges over the deferred launches.
        let mut accesses = Vec::with_capacity(n);
        for p in &pending {
            let def = self.program.kernel(&p.kernel)?;
            let launch = Launch::new(def, p.ndrange, p.args.clone());
            let buffers = &self.buffers;
            accesses.push(graph::node_access(&launch, |id| buffers.state(id).len)?);
        }
        let edges = graph::build_edges(&accesses);
        // Execution lanes: lane 0 is the owner co-execution path, lane
        // p >= 1 is a healthy peer GPU running nodes alone.
        let peer_cap = self
            .config
            .devices
            .map_or(self.machine.peers.len(), |n| n.saturating_sub(2));
        let peers: Vec<PeerSlot> = self
            .machine
            .peers
            .iter()
            .take(peer_cap)
            .enumerate()
            .map(|(i, p)| PeerSlot {
                dev: i as u32 + 1,
                peer: p.clone(),
            })
            .filter(|s| !self.roster.peer_dead(s.dev))
            .collect();
        let lanes = 1 + peers.len();
        // HEFT node weights: the profiled EWMA estimate when the (kernel,
        // lane) pair has run before, a device-model seed otherwise (the
        // paper's offline profiling trials, §6.6).
        let mut weights = Vec::with_capacity(n);
        for (i, p) in pending.iter().enumerate() {
            let def = self.program.kernel(&p.kernel)?;
            let profile = def.default_version().profile.clone();
            let total = p.ndrange.num_groups();
            let items = p.ndrange.items_per_group();
            let mut bytes = 0u64;
            let mut seen: Vec<BufferId> = Vec::new();
            for (id, _) in accesses[i].reads.iter().chain(accesses[i].writes.iter()) {
                if !seen.contains(id) {
                    seen.push(*id);
                    bytes += self.buffers.state(*id).bytes();
                }
            }
            let mut row = Vec::with_capacity(lanes);
            let owner_seed = self
                .machine
                .gpu
                .range_time(&profile, items, total, self.config.abort_mode)
                .as_nanos();
            row.push(self.weights.estimate_ns(&p.kernel, 0, owner_seed));
            for (l, slot) in peers.iter().enumerate() {
                // A peer starts from a clean slate: broadcast + launch +
                // range (mirrors the peer-degraded cost model).
                let seed = slot.peer.h2d.transfer_time(bytes).as_nanos()
                    + slot.peer.gpu.launch_overhead().as_nanos()
                    + slot
                        .peer
                        .gpu
                        .range_time(&profile, items, total, self.config.abort_mode)
                        .as_nanos();
                row.push(self.weights.estimate_ns(&p.kernel, l + 1, seed));
            }
            weights.push(row);
        }
        // Edge weights: only a true dependence moves data across lanes;
        // anti/output edges order execution but transfer nothing.
        let heft_edges: Vec<HeftEdge> = edges
            .iter()
            .map(|e| HeftEdge {
                from: e.from,
                to: e.to,
                cost_ns: if e.kind == graph::DepKind::True {
                    self.machine.h2d.transfer_time(e.overlap_bytes).as_nanos()
                } else {
                    0
                },
            })
            .collect();
        let plan = heft::plan(&weights, &heft_edges);
        // Execute in rank order. Every edge kind serializes its endpoints
        // (conservative: anti/output deps wait for full completion too), so
        // memory effects match the serial enqueue order exactly.
        let flush_at = self.host_clock;
        let mut node_start = vec![SimTime::ZERO; n];
        let mut node_complete = vec![SimTime::ZERO; n];
        let mut node_kid = vec![0u64; n];
        let mut lane_free = vec![flush_at; lanes];
        for &node in &plan.order {
            let p = &pending[node];
            let dep_ready = edges
                .iter()
                .filter(|e| e.to == node)
                .map(|e| node_complete[e.from])
                .fold(flush_at, SimTime::max);
            let lane = plan.lane[node];
            let kid = self.next_kernel_id;
            self.next_kernel_id += 1;
            let ready = dep_ready.max(lane_free[lane]);
            let (start, complete) = if lane == 0 {
                self.graph_run_owner(p, kid, ready, flush_at)?
            } else {
                let slot = peers[lane - 1].clone();
                self.graph_run_peer(node, p, kid, &slot, ready, flush_at)?
            };
            lane_free[lane] = complete;
            node_start[node] = start;
            node_complete[node] = complete;
            node_kid[node] = kid;
            self.weights
                .observe_ns(&p.kernel, lane, complete.saturating_since(start).as_nanos());
        }
        self.host_clock = node_complete.iter().copied().fold(flush_at, SimTime::max);
        let nodes = (0..n)
            .map(|i| GraphNodeSummary {
                node: i,
                kernel: pending[i].kernel.clone(),
                kernel_id: node_kid[i],
                lane: plan.lane[i],
                start_at: node_start[i],
                complete_at: node_complete[i],
                reads: accesses[i].reads.clone(),
                writes: accesses[i].writes.clone(),
            })
            .collect();
        self.graph_schedules.push(GraphSchedule { nodes, edges });
        Ok(())
    }

    /// Executes one graph node on lane 0: the full owner co-execution path
    /// (CPU subkernels + owner GPU under the fluidic protocol), floored at
    /// `ready` so dependence edges and lane occupancy are respected.
    fn graph_run_owner(
        &mut self,
        p: &PendingLaunch,
        kid: KernelId,
        ready: SimTime,
        flush_at: SimTime,
    ) -> ClResult<(SimTime, SimTime)> {
        let def = self.program.kernel(&p.kernel)?;
        let launch = Launch::new(def, p.ndrange, p.args.to_vec());
        let in_ids = launch.input_buffers()?;
        let out_ids = launch.output_buffers()?;
        for id in &out_ids {
            self.buffers.begin_kernel_write(*id, kid);
        }
        let mut cpu_inputs = in_ids.clone();
        cpu_inputs.extend(out_ids.iter().copied());
        let cpu_ready = self.buffers.cpu_ready_time(&cpu_inputs).max(ready);
        let mut all_bufs = in_ids;
        all_bufs.extend(out_ids.iter().copied());
        let gpu_ready = self.buffers.gpu_ready_time(&all_bufs).max(ready);
        let scratch_setup = self.scratch_setup_cost(&out_ids);
        let input = CoexecInput {
            machine: &self.machine,
            config: &self.config,
            launch: &launch,
            kernel_id: kid,
            enqueue_at: flush_at,
            gpu_start: gpu_ready.max(self.gpu_free),
            cpu_start: cpu_ready,
            scratch_setup,
            hd_free: self.hd_free,
            dh_free: self.dh_free,
            cpu_mem: &mut self.cpu_mem,
            gpu_mem: &mut self.gpu_mem,
            snapshots: &mut self.snapshots,
            // Sibling graph nodes occupy the peers; this node runs the
            // legacy two-device protocol.
            peers: Vec::new(),
            injector: None,
            dead_cpu: false,
        };
        let outcome = match Coexec::new(input).and_then(Coexec::run) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.release_scratch(&out_ids);
                self.restore_coherence(&out_ids);
                return Err(e);
            }
        };
        if let Err(e) = self.gate_report(&p.kernel, &outcome.report) {
            self.release_scratch(&out_ids);
            return Err(e);
        }
        self.gpu_free = outcome.gpu_busy_until;
        self.hd_free = outcome.hd_free;
        self.dh_free = outcome.dh_free;
        for id in &out_ids {
            self.buffers
                .record_cpu_arrival(*id, kid, outcome.cpu_results_at);
            self.buffers
                .record_gpu_arrival(*id, kid, outcome.gpu_results_at);
            self.buffers.state_mut(*id).orig_snapshot_current = true;
            if self.config.dirty_range_transfers {
                let len = self.buffers.state(*id).len;
                self.buffers.record_kernel_dirty(
                    *id,
                    DirtyTracker::new(len),
                    DirtyTracker::new(len),
                );
            }
        }
        self.release_scratch(&out_ids);
        self.last_cpu_version = outcome.report.cpu_version_used;
        let complete = outcome.complete_at;
        self.reports.push(outcome.report);
        Ok((ready, complete))
    }

    /// Executes one graph node alone on peer GPU `slot` (lane `>= 1`).
    /// Mirrors the peer-degraded cost model: the peer starts from a clean
    /// slate, so it pays a host-to-device broadcast of the launch buffers
    /// over its own link before the range. Results land in the
    /// authoritative host copy and are mirrored into the owner-GPU address
    /// space, whose arrival is charged one primary-link transfer (the
    /// refresh rides the link without occupying it — a deliberate
    /// simplification, like host writes' DMA).
    fn graph_run_peer(
        &mut self,
        node: usize,
        p: &PendingLaunch,
        kid: KernelId,
        slot: &PeerSlot,
        ready: SimTime,
        flush_at: SimTime,
    ) -> ClResult<(SimTime, SimTime)> {
        let def = self.program.kernel(&p.kernel)?;
        let launch = Launch::new(def, p.ndrange, p.args.to_vec());
        let in_ids = launch.input_buffers()?;
        let out_ids = launch.output_buffers()?;
        for id in &out_ids {
            self.buffers.begin_kernel_write(*id, kid);
        }
        let total = launch.ndrange.num_groups();
        let items = launch.ndrange.items_per_group();
        let profile = &launch.kernel.default_version().profile;
        let mut all_bufs: Vec<BufferId> = in_ids.clone();
        all_bufs.extend(out_ids.iter().copied());
        let mut broadcast_bytes = 0u64;
        let mut seen: Vec<BufferId> = Vec::new();
        for id in &all_bufs {
            if seen.contains(id) {
                continue;
            }
            seen.push(*id);
            broadcast_bytes += self.buffers.state(*id).bytes();
        }
        // The host copy is the broadcast source: wait for it and for the
        // graph dependences folded into `ready`.
        let start = self.buffers.cpu_ready_time(&all_bufs).max(ready)
            + slot.peer.h2d.transfer_time(broadcast_bytes)
            + slot.peer.gpu.launch_overhead();
        let duration = slot
            .peer
            .gpu
            .range_time(profile, items, total, self.config.abort_mode);
        execute_groups_injected(
            &launch,
            &mut self.cpu_mem,
            0,
            total,
            self.config.intra_launch_jobs,
            None,
            DeviceKind::Gpu,
        )?;
        // Mirror the results into the owner-GPU address space so later
        // owner-lane nodes read coherent data.
        for id in &out_ids {
            let data = self.cpu_mem.get(*id)?.to_vec();
            self.gpu_mem.write(*id, &data)?;
        }
        let complete_at = start + duration;
        let trace = vec![
            TraceEvent {
                at: flush_at,
                kind: TraceKind::Enqueued {
                    total_wgs: total,
                    pipeline_depth: 1,
                },
            },
            TraceEvent {
                at: start,
                kind: TraceKind::GraphRun {
                    node: node as u32,
                    dev: slot.dev,
                    from: 0,
                    to: total,
                },
            },
            TraceEvent {
                at: complete_at,
                kind: TraceKind::KernelComplete {
                    finisher: Finisher::Gpu,
                },
            },
        ];
        let report = KernelReport {
            kernel: p.kernel.clone(),
            kernel_id: kid,
            enqueued_at: flush_at,
            complete_at,
            total_wgs: total,
            gpu_executed_wgs: 0,
            cpu_executed_wgs: 0,
            cpu_merged_wgs: 0,
            subkernels: 0,
            subkernel_log: Vec::new(),
            hd_bytes: 0,
            dh_bytes: 0,
            cpu_version_used: self.last_cpu_version,
            peer_executed_wgs: vec![total],
            finished_by: Finisher::Gpu,
            duration: complete_at.saturating_since(flush_at),
            trace,
            launch_meta: Some(LaunchMeta {
                ndrange: launch.ndrange,
                scalars: launch.plan()?.scalars.clone(),
                out_lens: out_ids
                    .iter()
                    .map(|id| self.buffers.state(*id).len)
                    .collect(),
            }),
        };
        self.gate_report(&p.kernel, &report)?;
        for id in &out_ids {
            self.buffers.record_cpu_arrival(*id, kid, complete_at);
            let bytes = self.buffers.state(*id).bytes();
            self.buffers.record_gpu_arrival(
                *id,
                kid,
                complete_at + self.machine.h2d.transfer_time(bytes),
            );
        }
        self.reports.push(report);
        Ok((start, complete_at))
    }
}

/// Parses a disjoint-writes proof manifest (the JSON emitted by
/// `fluidicl-check --emit-disjoint`, of the form
/// `{"proven": ["kernel_a", "kernel_b"]}`) and returns the proven kernel
/// names. The parser is deliberately tolerant — whitespace, trailing
/// commas and unknown sibling keys are all accepted; a missing or
/// malformed `proven` array yields an empty list rather than an error, so
/// a stale or hand-edited manifest can never break a run.
///
/// # Examples
///
/// ```
/// use fluidicl::parse_disjoint_manifest;
///
/// let names = parse_disjoint_manifest(r#"{ "proven": ["atax_1", "gemm"] }"#);
/// assert_eq!(names, vec!["atax_1".to_string(), "gemm".to_string()]);
/// assert!(parse_disjoint_manifest("not json").is_empty());
/// ```
pub fn parse_disjoint_manifest(text: &str) -> Vec<String> {
    let Some(key) = text.find("\"proven\"") else {
        return Vec::new();
    };
    let after_key = &text[key + "\"proven\"".len()..];
    let Some(open) = after_key.find('[') else {
        return Vec::new();
    };
    let body = &after_key[open + 1..];
    let Some(close) = body.find(']') else {
        return Vec::new();
    };
    body[..close]
        .split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_string)
        .collect()
}

impl ClDriver for Fluidicl {
    fn create_buffer(&mut self, len: usize) -> BufferId {
        // clCreateBuffer allocates on both devices (paper §4.1); the GPU
        // allocation dominates the cost.
        let t = self.machine.gpu.buffer_create_time(len as u64 * 4);
        self.host_clock += t;
        let id = self.buffers.register(len, self.host_clock);
        self.cpu_mem.alloc(id, len);
        self.gpu_mem.alloc(id, len);
        id
    }

    fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        // A host write is a synchronization point for the kernel graph:
        // deferred launches that touch this buffer must run first.
        self.flush_graph()?;
        self.cpu_mem.write(id, data)?;
        self.gpu_mem.write(id, data)?;
        let bytes = data.len() as u64 * 4;
        // One clEnqueueWriteBuffer becomes two: a host-side copy for the CPU
        // device and an h2d transfer for the GPU (paper §4.1). The h2d is
        // DMA on the in-order hd queue; the host only performs the copy,
        // and whoever needs the GPU copy waits for its arrival (§5.5).
        // After a permanent GPU loss nothing crosses the link any more.
        let cpu_at = self.host_clock + self.machine.host.copy_time(bytes);
        let gpu_at = if !self.roster.gpu_healthy() {
            // A re-formed acting owner re-broadcasts its launch buffers per
            // kernel, so host writes stop paying the primary link here.
            cpu_at
        } else {
            let at = self.hd_free.max(self.host_clock) + self.machine.h2d.transfer_time(bytes);
            self.hd_free = at;
            at
        };
        self.buffers.record_host_write(id, cpu_at, gpu_at);
        self.host_clock = cpu_at;
        Ok(())
    }

    fn enqueue_kernel(
        &mut self,
        kernel: &str,
        ndrange: NdRange,
        args: &[KernelArg],
    ) -> ClResult<()> {
        if let Some(fatal) = &self.fatal {
            // Both devices are gone; nothing can execute. The original
            // failure is replayed so the application sees a stable error.
            return Err(fatal.clone());
        }
        // Kernel-graph scheduling: defer into the DAG instead of executing
        // now. Fault plans keep the eager path — the watchdog/failover
        // protocol is defined over immediate execution order.
        if self.config.graph_scheduling && self.injector.is_none() {
            return self.graph_defer(kernel, ndrange, args);
        }
        let def = self.program.kernel(kernel)?;
        let launch = Launch::new(def, ndrange, args.to_vec());
        let in_ids = launch.input_buffers()?;
        let out_ids = launch.output_buffers()?;
        // Reject forged buffer handles up front with a typed error; every
        // later table access on this path may then index infallibly.
        for id in in_ids.iter().chain(out_ids.iter()) {
            self.buffers.try_state(*id)?;
        }
        let kid = self.next_kernel_id;
        self.next_kernel_id += 1;
        for id in &out_ids {
            self.buffers.begin_kernel_write(*id, kid);
        }
        // Peer GPUs joining this launch: every peer the machine declares,
        // capped by `config.devices`, minus peers lost in earlier kernels.
        // Dev indices are stable (peer slot + 1), so traces and reports
        // name the same card across kernels even after losses.
        let peer_cap = self
            .config
            .devices
            .map_or(self.machine.peers.len(), |n| n.saturating_sub(2));
        let peers: Vec<PeerSlot> = self
            .machine
            .peers
            .iter()
            .take(peer_cap)
            .enumerate()
            .map(|(i, p)| PeerSlot {
                dev: i as u32 + 1,
                peer: p.clone(),
            })
            .filter(|s| !self.roster.peer_dead(s.dev))
            .collect();
        // Roster dispatch: after a loss, follow-on kernels re-form and
        // co-execute on every healthy survivor; a single survivor executes
        // the whole NDRange as a plain single-device launch; no survivor is
        // a stable typed error.
        let cpu_ok = self.roster.cpu_healthy();
        let gpu_ok = self.roster.gpu_healthy();
        match (cpu_ok, gpu_ok, peers.is_empty()) {
            (false, false, true) => {
                let e = ClError::DeviceLost {
                    device: DeviceKind::Gpu,
                    detail: "no healthy device remains to execute the kernel".into(),
                };
                self.fatal = Some(e.clone());
                return Err(e);
            }
            (false, false, false) => {
                let slot = peers[0].clone();
                return self.enqueue_peer_degraded(kernel, &launch, &in_ids, &out_ids, kid, &slot);
            }
            (true, false, true) => {
                return self.enqueue_degraded(
                    kernel,
                    &launch,
                    &in_ids,
                    &out_ids,
                    kid,
                    DeviceKind::Cpu,
                );
            }
            (false, true, true) => {
                return self.enqueue_degraded(
                    kernel,
                    &launch,
                    &in_ids,
                    &out_ids,
                    kid,
                    DeviceKind::Gpu,
                );
            }
            // At least two healthy devices remain: co-execute below, with a
            // dead CPU endpoint and/or a re-formed acting owner as needed.
            _ => {}
        }
        let reformed = !gpu_ok;
        let dead_cpu = !cpu_ok;
        // The CPU scheduler waits for its inputs (In + InOut) to be current
        // (paper §5.3); `begin_kernel_write` just reset InOut readiness, so
        // compute from the pre-kernel ready times via in_ids plus the InOut
        // subset captured before the reset — InOut buffers appear in
        // out_ids, whose cpu_ready_at we read below *before* any update.
        let mut cpu_inputs = in_ids.clone();
        cpu_inputs.extend(out_ids.iter().copied());
        let cpu_ready = self.buffers.cpu_ready_time(&cpu_inputs);
        let mut all_bufs = in_ids;
        all_bufs.extend(out_ids.iter().copied());
        let gpu_ready = self.buffers.gpu_ready_time(&all_bufs);
        let scratch_setup = self.scratch_setup_cost(&out_ids);
        // Owner re-formation: with the primary GPU gone but peers alive,
        // the first healthy peer takes the owner slot of a synthetic
        // machine and the remaining peers keep their endpoint indices. The
        // acting owner starts each kernel from a clean slate, so its launch
        // buffers are re-broadcast host-to-device — functionally, the
        // device copy is refreshed from the authoritative host copy
        // *before* the engine snapshots originals from it.
        let mut coexec_peers = peers;
        let mut reformed_machine: Option<MachineConfig> = None;
        let mut acting_dev: Option<u32> = None;
        let mut gpu_start = gpu_ready.max(self.gpu_free);
        if reformed {
            let acting = coexec_peers.remove(0);
            let mut broadcast_bytes = 0u64;
            let mut seen: Vec<BufferId> = Vec::new();
            for id in &all_bufs {
                if seen.contains(id) {
                    continue;
                }
                seen.push(*id);
                let data = self.cpu_mem.get(*id)?.to_vec();
                broadcast_bytes += data.len() as u64 * 4;
                self.gpu_mem.write(*id, &data)?;
            }
            gpu_start = gpu_start.max(cpu_ready).max(self.host_clock)
                + acting.peer.h2d.transfer_time(broadcast_bytes);
            reformed_machine = Some(MachineConfig {
                cpu: self.machine.cpu.clone(),
                gpu: acting.peer.gpu.clone(),
                h2d: acting.peer.h2d.clone(),
                d2h: acting.peer.d2h.clone(),
                host: self.machine.host.clone(),
                peers: Vec::new(),
            });
            acting_dev = Some(acting.dev);
        }
        let input = CoexecInput {
            machine: reformed_machine.as_ref().unwrap_or(&self.machine),
            config: &self.config,
            launch: &launch,
            kernel_id: kid,
            enqueue_at: self.host_clock,
            gpu_start,
            cpu_start: cpu_ready,
            scratch_setup,
            hd_free: self.hd_free,
            dh_free: self.dh_free,
            cpu_mem: &mut self.cpu_mem,
            gpu_mem: &mut self.gpu_mem,
            snapshots: &mut self.snapshots,
            peers: coexec_peers,
            injector: self.injector.as_mut(),
            dead_cpu,
        };
        let outcome = match Coexec::new(input).and_then(Coexec::run) {
            Ok(outcome) => outcome,
            Err(e) => {
                // The launch is abandoned: return the scratch buffers the
                // setup acquired (snapshot allocations were drained inside
                // the engine) and re-align the two address spaces so a
                // later kernel's diff-merge cannot fold stale divergence.
                self.release_scratch(&out_ids);
                self.restore_coherence(&out_ids);
                if matches!(e, ClError::DeviceLost { .. }) {
                    self.fatal = Some(e.clone());
                }
                return Err(e);
            }
        };
        if self.config.validate_protocol {
            let diags = crate::lint::lint_report(&outcome.report);
            if let Some(first) = diags
                .iter()
                .find(|d| d.severity == crate::lint::LintSeverity::Error)
            {
                self.release_scratch(&out_ids);
                return Err(ClError::ProtocolViolation {
                    kernel: kernel.to_string(),
                    detail: format!("{first} ({} finding(s) total)", diags.len()),
                });
            }
        }
        if let Some(hook) = &self.config.report_hook {
            let diags = hook.run(&outcome.report);
            if let Some(first) = diags
                .iter()
                .find(|d| d.severity == crate::lint::LintSeverity::Error)
            {
                self.release_scratch(&out_ids);
                return Err(ClError::ProtocolViolation {
                    kernel: kernel.to_string(),
                    detail: format!("{first} ({} finding(s) total)", diags.len()),
                });
            }
        }
        self.host_clock = outcome.complete_at;
        self.gpu_free = outcome.gpu_busy_until;
        self.hd_free = outcome.hd_free;
        self.dh_free = outcome.dh_free;
        // On a re-formed run the primary card stays dead and its buffer
        // tracking stays frozen — the next launch re-broadcasts anyway.
        let record_gpu = !reformed && !outcome.lost_gpu;
        for id in &out_ids {
            self.buffers
                .record_cpu_arrival(*id, kid, outcome.cpu_results_at);
            if record_gpu {
                self.buffers
                    .record_gpu_arrival(*id, kid, outcome.gpu_results_at);
                // The end-of-kernel copy refreshed the original snapshot
                // (paper §5.5).
                self.buffers.state_mut(*id).orig_snapshot_current = true;
                if self.config.dirty_range_transfers {
                    // The epilogue just refreshed the snapshot and the
                    // return path (D2H thread or CPU finish, §4.4) brought
                    // the host copy current, so both dirty sets collapse to
                    // empty (tracker representation chosen by buffer size).
                    let len = self.buffers.state(*id).len;
                    self.buffers.record_kernel_dirty(
                        *id,
                        DirtyTracker::new(len),
                        DirtyTracker::new(len),
                    );
                }
            }
        }
        self.release_scratch(&out_ids);
        if outcome.lost_cpu {
            self.roster.lose_cpu();
        }
        if outcome.lost_gpu {
            // In a re-formed run the engine's "gpu" is the acting peer: its
            // loss costs that peer, not the (already dead) primary card.
            match acting_dev {
                Some(dev) => self.roster.lose_peer(dev),
                None => self.roster.lose_gpu(),
            }
        }
        for dev in outcome.lost_peers {
            self.roster.lose_peer(dev);
        }
        self.last_cpu_version = outcome.report.cpu_version_used;
        self.reports.push(outcome.report);
        Ok(())
    }

    fn read_buffer(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        // Reading a buffer forces any deferred kernel graph to execute.
        self.flush_graph()?;
        let state = self.buffers.try_state(id)?.clone();
        // After a device loss the surviving copy is the only valid one,
        // regardless of what location tracking would prefer. With the
        // primary GPU dead the host copy is authoritative even if the CPU
        // device also died — host memory outlives its compute device, and
        // re-formed/peer-degraded runs mirror results into it.
        let use_cpu_copy = if !self.roster.gpu_healthy() {
            true
        } else if !self.roster.cpu_healthy() {
            false
        } else {
            self.config.location_tracking && !state.cpu_is_stale()
        };
        if use_cpu_copy {
            // Data-location tracking (paper §6.2): the device-to-host thread
            // (or a CPU-finished kernel) already placed the data on the CPU;
            // wait for it and hand it out without touching the link.
            let data = self.cpu_mem.get(id)?.to_vec();
            let bytes = data.len() as u64 * 4;
            self.host_clock =
                self.host_clock.max(state.cpu_ready_at) + self.machine.host.copy_time(bytes);
            Ok(data)
        } else {
            let data = self.gpu_mem.get(id)?.to_vec();
            // Under dirty-range transfers only the ranges where the host
            // copy is stale cross the link; the rest is already resident.
            let bytes = if self.config.dirty_range_transfers {
                state.read_back_bytes()
            } else {
                data.len() as u64 * 4
            };
            let start = self.host_clock.max(state.gpu_ready_at).max(self.dh_free);
            let arrival = start + self.machine.d2h.transfer_time(bytes);
            self.dh_free = arrival;
            self.host_clock = arrival;
            Ok(data)
        }
    }

    fn elapsed(&self) -> SimDuration {
        self.host_clock.saturating_since(SimTime::ZERO)
    }

    fn kernel_times(&self) -> Vec<(String, SimDuration)> {
        self.reports
            .iter()
            .map(|r| (r.kernel.clone(), r.duration))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::KernelProfile;
    use fluidicl_vcl::{ArgRole, ArgSpec, KernelDef};

    fn scale_program() -> Program {
        let mut p = Program::new();
        p.register(KernelDef::new(
            "scale",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
                ArgSpec::new("f", ArgRole::Scalar),
            ],
            KernelProfile::new("scale")
                .flops_per_item(4.0)
                .bytes_read_per_item(4.0)
                .bytes_written_per_item(4.0),
            |item, scalars, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[i] = scalars.f32(0) * ins.get(0)[i];
            },
        ));
        p
    }

    fn runtime() -> Fluidicl {
        Fluidicl::new(
            MachineConfig::paper_testbed(),
            FluidiclConfig::default(),
            scale_program(),
        )
    }

    #[test]
    fn single_kernel_end_to_end() {
        let mut rt = runtime();
        let n = 4096;
        let src = rt.create_buffer(n);
        let dst = rt.create_buffer(n);
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        rt.write_buffer(src, &input).unwrap();
        rt.enqueue_kernel(
            "scale",
            NdRange::d1(n, 64).unwrap(),
            &[
                KernelArg::Buffer(src),
                KernelArg::Buffer(dst),
                KernelArg::F32(3.0),
            ],
        )
        .unwrap();
        let out = rt.read_buffer(dst).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 3.0 * i as f32);
        }
        assert!(!rt.elapsed().is_zero());
        assert_eq!(rt.reports().len(), 1);
        let r = &rt.reports()[0];
        assert_eq!(r.total_wgs, 64);
        assert!(r.gpu_executed_wgs + r.cpu_executed_wgs >= r.total_wgs);
    }

    #[test]
    fn chained_kernels_stay_coherent() {
        let mut rt = runtime();
        let n = 2048;
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        rt.write_buffer(a, &vec![1.0; n]).unwrap();
        // a -> b (x2), b -> a (x2): a should end at 4.0.
        rt.enqueue_kernel(
            "scale",
            NdRange::d1(n, 64).unwrap(),
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b),
                KernelArg::F32(2.0),
            ],
        )
        .unwrap();
        rt.enqueue_kernel(
            "scale",
            NdRange::d1(n, 64).unwrap(),
            &[
                KernelArg::Buffer(b),
                KernelArg::Buffer(a),
                KernelArg::F32(2.0),
            ],
        )
        .unwrap();
        assert_eq!(rt.read_buffer(a).unwrap(), vec![4.0; n]);
        assert_eq!(rt.reports().len(), 2);
        // Kernel ids are assigned monotonically.
        assert!(rt.reports()[0].kernel_id < rt.reports()[1].kernel_id);
    }

    #[test]
    fn reports_and_summary_are_consistent() {
        let mut rt = runtime();
        let n = 1024;
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        rt.write_buffer(a, &vec![1.0; n]).unwrap();
        rt.enqueue_kernel(
            "scale",
            NdRange::d1(n, 32).unwrap(),
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b),
                KernelArg::F32(1.5),
            ],
        )
        .unwrap();
        let summary = rt.summary();
        assert_eq!(summary.kernels, 1);
        assert_eq!(summary.total_wgs, 32);
        let times = rt.kernel_times();
        assert_eq!(times.len(), 1);
        assert_eq!(times[0].0, "scale");
    }

    #[test]
    fn location_tracking_skips_dh_transfer_on_reads() {
        let run = |tracking: bool| {
            // Whole-buffer transfers: the untracked read pays a full
            // device-to-host transfer, so the CPU-copy path must win. (With
            // dirty-range transfers the untracked read ships only stale
            // ranges, which can legitimately undercut a full-buffer host
            // memcpy — the tracked read's virtue there is staying off the
            // link, asserted separately below.)
            let mut rt = Fluidicl::new(
                MachineConfig::paper_testbed(),
                FluidiclConfig::default()
                    .with_whole_buffer_transfers()
                    .with_location_tracking(tracking),
                scale_program(),
            );
            let n = 1 << 16;
            let a = rt.create_buffer(n);
            let b = rt.create_buffer(n);
            rt.write_buffer(a, &vec![1.0; n]).unwrap();
            rt.enqueue_kernel(
                "scale",
                NdRange::d1(n, 64).unwrap(),
                &[
                    KernelArg::Buffer(a),
                    KernelArg::Buffer(b),
                    KernelArg::F32(2.0),
                ],
            )
            .unwrap();
            let v = rt.read_buffer(b).unwrap();
            assert_eq!(v[0], 2.0);
            rt.elapsed()
        };
        // Reading via the CPU copy must never be slower than an extra
        // device-to-host transfer.
        assert!(run(true) <= run(false));
    }

    #[test]
    fn location_tracking_keeps_reads_off_the_link() {
        let run = |tracking: bool| {
            let mut rt = Fluidicl::new(
                MachineConfig::paper_testbed(),
                FluidiclConfig::default().with_location_tracking(tracking),
                scale_program(),
            );
            let n = 1 << 16;
            let a = rt.create_buffer(n);
            let b = rt.create_buffer(n);
            rt.write_buffer(a, &vec![1.0; n]).unwrap();
            rt.enqueue_kernel(
                "scale",
                NdRange::d1(n, 64).unwrap(),
                &[
                    KernelArg::Buffer(a),
                    KernelArg::Buffer(b),
                    KernelArg::F32(2.0),
                ],
            )
            .unwrap();
            let before = rt.dh_free;
            let v = rt.read_buffer(b).unwrap();
            assert_eq!(v[0], 2.0);
            rt.dh_free > before
        };
        // Under the dirty-range default, the tracked read serves the CPU
        // copy without occupying the device-to-host link; the untracked
        // read pays a (ranged) transfer.
        assert!(!run(true), "tracked read must not touch the dh link");
        assert!(run(false), "untracked read pays a dh transfer");
    }

    #[test]
    fn snapshot_allocations_are_recycled_across_kernels() {
        let mut rt = runtime();
        let n = 2048;
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        rt.write_buffer(a, &vec![1.0; n]).unwrap();
        for _ in 0..3 {
            rt.enqueue_kernel(
                "scale",
                NdRange::d1(n, 64).unwrap(),
                &[
                    KernelArg::Buffer(a),
                    KernelArg::Buffer(b),
                    KernelArg::F32(2.0),
                ],
            )
            .unwrap();
        }
        let (hits, misses) = rt.snapshot_stats();
        assert_eq!(misses, 1, "only the first kernel allocates a snapshot");
        assert_eq!(hits, 2, "later kernels reuse the pooled allocation");
    }

    #[test]
    fn intra_launch_parallelism_is_byte_identical() {
        let run = |jobs: usize| {
            let mut program = Program::new();
            program.register(
                KernelDef::new(
                    "scale",
                    vec![
                        ArgSpec::new("src", ArgRole::In),
                        ArgSpec::new("dst", ArgRole::Out),
                        ArgSpec::new("f", ArgRole::Scalar),
                    ],
                    KernelProfile::new("scale")
                        .flops_per_item(4.0)
                        .bytes_read_per_item(4.0)
                        .bytes_written_per_item(4.0),
                    |item, scalars, ins, outs| {
                        let i = item.global_linear();
                        // sin/exp give bit patterns that would expose any
                        // reordering or double-execution.
                        outs.at(0)[i] = (scalars.f32(0) * ins.get(0)[i]).sin().exp();
                    },
                )
                .with_disjoint_writes(),
            );
            let mut rt = Fluidicl::new(
                MachineConfig::paper_testbed(),
                FluidiclConfig::default().with_intra_launch_jobs(jobs),
                program,
            );
            let n = 4096;
            let src = rt.create_buffer(n);
            let dst = rt.create_buffer(n);
            let input: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
            rt.write_buffer(src, &input).unwrap();
            rt.enqueue_kernel(
                "scale",
                NdRange::d1(n, 64).unwrap(),
                &[
                    KernelArg::Buffer(src),
                    KernelArg::Buffer(dst),
                    KernelArg::F32(1.7),
                ],
            )
            .unwrap();
            (rt.read_buffer(dst).unwrap(), rt.elapsed())
        };
        let (seq, t_seq) = run(1);
        let (par, t_par) = run(4);
        assert_eq!(
            seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "parallel execution must be byte-identical"
        );
        assert_eq!(t_seq, t_par, "virtual time must not see the thread count");
    }

    #[test]
    fn dirty_range_transfers_cut_bytes_and_preserve_results() {
        // A kernel that writes only the first half of its output: the
        // dirty-range protocol should ship roughly half the H2D payload.
        let half_program = || {
            let mut p = Program::new();
            p.register(KernelDef::new(
                "halfscale",
                vec![
                    ArgSpec::new("src", ArgRole::In),
                    ArgSpec::new("dst", ArgRole::Out),
                ],
                KernelProfile::new("halfscale")
                    .flops_per_item(4.0)
                    .bytes_read_per_item(4.0)
                    .bytes_written_per_item(2.0),
                |item, _, ins, outs| {
                    let i = item.global_linear();
                    let half = outs.at(0).len() / 2;
                    if i < half {
                        outs.at(0)[i] = 2.0 * ins.get(0)[i] + 1.0;
                    }
                },
            ));
            p
        };
        let run = |dirty: bool| {
            let mut rt = Fluidicl::new(
                MachineConfig::paper_testbed(),
                FluidiclConfig::default()
                    .with_validate_protocol(true)
                    .with_dirty_range_transfers(dirty),
                half_program(),
            );
            let n = 1 << 15;
            let a = rt.create_buffer(n);
            let b = rt.create_buffer(n);
            rt.write_buffer(a, &vec![1.0; n]).unwrap();
            for _ in 0..2 {
                rt.enqueue_kernel(
                    "halfscale",
                    NdRange::d1(n, 64).unwrap(),
                    &[KernelArg::Buffer(a), KernelArg::Buffer(b)],
                )
                .unwrap();
            }
            let hd: u64 = rt.reports().iter().map(|r| r.hd_bytes).sum();
            (rt.read_buffer(b).unwrap(), rt.elapsed(), hd)
        };
        let (full_v, full_t, full_hd) = run(false);
        let (dirty_v, dirty_t, dirty_hd) = run(true);
        assert_eq!(
            full_v.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            dirty_v.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "dirty-range transfers must not change functional results"
        );
        assert!(
            dirty_hd < full_hd,
            "partial writes must ship fewer H2D bytes ({dirty_hd} vs {full_hd})"
        );
        assert!(dirty_t <= full_t, "shipping less must never slow the model");
    }

    #[test]
    fn graph_scheduling_defers_until_read_then_matches_serial_results() {
        let mut rt = Fluidicl::new(
            MachineConfig::paper_testbed(),
            FluidiclConfig::default()
                .with_graph_scheduling(true)
                .with_validate_protocol(true),
            scale_program(),
        );
        let n = 2048;
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        rt.write_buffer(a, &vec![1.0; n]).unwrap();
        // a -> b (x2), b -> a (x2): a should end at 4.0, exactly like the
        // eager chained test — the graph serializes the true dependences.
        for (src, dst) in [(a, b), (b, a)] {
            rt.enqueue_kernel(
                "scale",
                NdRange::d1(n, 64).unwrap(),
                &[
                    KernelArg::Buffer(src),
                    KernelArg::Buffer(dst),
                    KernelArg::F32(2.0),
                ],
            )
            .unwrap();
        }
        assert!(rt.reports().is_empty(), "launches are deferred");
        assert_eq!(rt.read_buffer(a).unwrap(), vec![4.0; n]);
        assert_eq!(rt.reports().len(), 2, "the read flushed the graph");
        let sched = rt.graph_schedules();
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[0].nodes.len(), 2);
        assert!(
            sched[0]
                .edges
                .iter()
                .any(|e| e.from == 0 && e.to == 1 && e.kind == crate::graph::DepKind::True),
            "chain has a true edge"
        );
        // A dependent chain cannot overlap: node 1 starts after node 0.
        assert!(sched[0].nodes[1].start_at >= sched[0].nodes[0].complete_at);
    }

    #[test]
    fn graph_scheduling_overlaps_independent_kernels_on_peers() {
        // Compute-heavy independent launches: serial co-execution leaves
        // the mid-range peer nearly idle (it joins each kernel too late to
        // claim waves), while the graph dedicates it whole sibling nodes.
        let heavy_program = || {
            let mut p = Program::new();
            p.register(KernelDef::new(
                "heavy",
                vec![
                    ArgSpec::new("src", ArgRole::In),
                    ArgSpec::new("dst", ArgRole::Out),
                    ArgSpec::new("f", ArgRole::Scalar),
                ],
                KernelProfile::new("heavy")
                    .flops_per_item(4096.0)
                    .bytes_read_per_item(4.0)
                    .bytes_written_per_item(4.0),
                |item, scalars, ins, outs| {
                    let i = item.global_linear();
                    outs.at(0)[i] = scalars.f32(0) * ins.get(0)[i];
                },
            ));
            p
        };
        let run = |graph: bool| {
            let mut rt = Fluidicl::new(
                MachineConfig::paper_testbed_3dev(),
                FluidiclConfig::default()
                    .with_graph_scheduling(graph)
                    .with_validate_protocol(true),
                heavy_program(),
            );
            let n = 1 << 13;
            let bufs: Vec<(BufferId, BufferId)> = (0..4)
                .map(|_| (rt.create_buffer(n), rt.create_buffer(n)))
                .collect();
            for (src, _) in &bufs {
                rt.write_buffer(*src, &vec![1.0; n]).unwrap();
            }
            let before = rt.elapsed();
            for (src, dst) in &bufs {
                rt.enqueue_kernel(
                    "heavy",
                    NdRange::d1(n, 64).unwrap(),
                    &[
                        KernelArg::Buffer(*src),
                        KernelArg::Buffer(*dst),
                        KernelArg::F32(3.0),
                    ],
                )
                .unwrap();
            }
            rt.flush_graph().unwrap();
            let makespan = rt.elapsed() - before;
            for (_, dst) in &bufs {
                assert_eq!(rt.read_buffer(*dst).unwrap(), vec![3.0; n]);
            }
            (makespan, rt.graph_schedules().to_vec())
        };
        let (serial, s0) = run(false);
        let (graphed, s1) = run(true);
        assert!(s0.is_empty(), "gate off records no schedules");
        assert_eq!(s1.len(), 1);
        assert!(
            s1[0].nodes.iter().any(|nd| nd.lane >= 1),
            "HEFT offloads at least one node to a peer lane"
        );
        assert!(
            graphed < serial,
            "independent kernels must overlap across devices ({graphed:?} vs {serial:?})"
        );
    }

    #[test]
    fn graph_flush_is_explicit_and_idempotent() {
        let mut rt = Fluidicl::new(
            MachineConfig::paper_testbed_3dev(),
            FluidiclConfig::default().with_graph_scheduling(true),
            scale_program(),
        );
        let n = 1024;
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        rt.write_buffer(a, &vec![1.0; n]).unwrap();
        rt.enqueue_kernel(
            "scale",
            NdRange::d1(n, 64).unwrap(),
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b),
                KernelArg::F32(2.0),
            ],
        )
        .unwrap();
        rt.flush_graph().unwrap();
        assert_eq!(rt.reports().len(), 1);
        let clock = rt.elapsed();
        rt.flush_graph().unwrap();
        assert_eq!(rt.reports().len(), 1, "empty flush is a no-op");
        assert_eq!(rt.elapsed(), clock, "empty flush does not move the clock");
        assert_eq!(rt.read_buffer(b).unwrap(), vec![2.0; n]);
    }

    #[test]
    fn graph_peer_lane_weights_are_profiled_online() {
        // Two flushes of the same independent pair: the second flush plans
        // from observed EWMA weights rather than model seeds, and results
        // stay correct either way.
        let mut rt = Fluidicl::new(
            MachineConfig::paper_testbed_3dev(),
            FluidiclConfig::default().with_graph_scheduling(true),
            scale_program(),
        );
        let n = 4096;
        let pairs: Vec<(BufferId, BufferId)> = (0..2)
            .map(|_| (rt.create_buffer(n), rt.create_buffer(n)))
            .collect();
        for round in 0..2 {
            for (src, _) in &pairs {
                rt.write_buffer(*src, &vec![round as f32 + 1.0; n]).unwrap();
            }
            for (src, dst) in &pairs {
                rt.enqueue_kernel(
                    "scale",
                    NdRange::d1(n, 64).unwrap(),
                    &[
                        KernelArg::Buffer(*src),
                        KernelArg::Buffer(*dst),
                        KernelArg::F32(2.0),
                    ],
                )
                .unwrap();
            }
            rt.flush_graph().unwrap();
            for (_, dst) in &pairs {
                assert_eq!(
                    rt.read_buffer(*dst).unwrap(),
                    vec![2.0 * (round as f32 + 1.0); n]
                );
            }
        }
        assert_eq!(rt.graph_schedules().len(), 2);
        assert_eq!(rt.reports().len(), 4);
    }

    #[test]
    fn buffer_pool_reduces_scratch_creation_cost() {
        let run = |pooled: bool| {
            let mut rt = Fluidicl::new(
                MachineConfig::paper_testbed(),
                FluidiclConfig::default().with_buffer_pool(pooled),
                scale_program(),
            );
            let n = 1 << 18;
            let a = rt.create_buffer(n);
            let b = rt.create_buffer(n);
            rt.write_buffer(a, &vec![1.0; n]).unwrap();
            for _ in 0..4 {
                rt.enqueue_kernel(
                    "scale",
                    NdRange::d1(n, 64).unwrap(),
                    &[
                        KernelArg::Buffer(a),
                        KernelArg::Buffer(b),
                        KernelArg::F32(2.0),
                    ],
                )
                .unwrap();
            }
            (rt.elapsed(), rt.pool_stats())
        };
        let (t_pool, s_pool) = run(true);
        let (t_nopool, s_nopool) = run(false);
        assert!(s_pool.hits > 0, "pool must be reused across kernels");
        assert_eq!(s_nopool.hits, 0);
        assert!(t_pool <= t_nopool);
    }
}
