//! The FluidiCL runtime: the public, OpenCL-shaped API.
//!
//! `Fluidicl` is the drop-in layer of paper Figure 4: the application calls
//! the usual buffer/kernel functions as if one device existed, and the
//! runtime manages both devices underneath — duplicating buffers and writes
//! (§4.1), co-executing every kernel (§4.2), merging results (§4.3),
//! returning data to the host in a background thread (§4.4, §5.6), and
//! tracking buffer versions and locations across kernels (§5.3, §6.2).

use fluidicl_des::{SimDuration, SimTime};
use fluidicl_hetsim::MachineConfig;
use fluidicl_vcl::exec::Launch;
use fluidicl_vcl::{
    BufferId, ClDriver, ClError, ClResult, DirtyRanges, KernelArg, Memory, NdRange, Program,
};

use crate::buffers::{BufferTable, KernelId, PoolStats, ScratchPool, SnapshotPool};
use crate::coexec::{Coexec, CoexecInput};
use crate::config::FluidiclConfig;
use crate::stats::{KernelReport, RuntimeSummary};

/// The FluidiCL runtime over a simulated CPU+GPU machine.
///
/// # Examples
///
/// ```
/// use fluidicl::{Fluidicl, FluidiclConfig};
/// use fluidicl_hetsim::{KernelProfile, MachineConfig};
/// use fluidicl_vcl::{ArgRole, ArgSpec, ClDriver, KernelArg, KernelDef, NdRange, Program};
///
/// let mut program = Program::new();
/// program.register(KernelDef::new(
///     "scale",
///     vec![
///         ArgSpec::new("src", ArgRole::In),
///         ArgSpec::new("dst", ArgRole::Out),
///     ],
///     KernelProfile::new("scale").flops_per_item(1.0).bytes_read_per_item(4.0),
///     |item, _, ins, outs| {
///         let i = item.global_linear();
///         outs.at(0)[i] = 2.0 * ins.get(0)[i];
///     },
/// ));
/// let mut rt = Fluidicl::new(
///     MachineConfig::paper_testbed(),
///     FluidiclConfig::default(),
///     program,
/// );
/// let src = rt.create_buffer(1024);
/// let dst = rt.create_buffer(1024);
/// rt.write_buffer(src, &vec![1.0; 1024])?;
/// rt.enqueue_kernel(
///     "scale",
///     NdRange::d1(1024, 64)?,
///     &[KernelArg::Buffer(src), KernelArg::Buffer(dst)],
/// )?;
/// assert_eq!(rt.read_buffer(dst)?, vec![2.0; 1024]);
/// # Ok::<(), fluidicl_vcl::ClError>(())
/// ```
#[derive(Debug)]
pub struct Fluidicl {
    machine: MachineConfig,
    config: FluidiclConfig,
    program: Program,
    cpu_mem: Memory,
    gpu_mem: Memory,
    buffers: BufferTable,
    pool: ScratchPool,
    snapshots: SnapshotPool,
    host_clock: SimTime,
    gpu_free: SimTime,
    hd_free: SimTime,
    dh_free: SimTime,
    next_kernel_id: KernelId,
    reports: Vec<KernelReport>,
}

impl Fluidicl {
    /// Creates a runtime on `machine` with `config` and a compiled
    /// `program` (kernels are built for both devices, paper §4.1).
    pub fn new(machine: MachineConfig, config: FluidiclConfig, program: Program) -> Self {
        let pool = ScratchPool::new(config.buffer_pool);
        Fluidicl {
            machine,
            config,
            program,
            cpu_mem: Memory::new(),
            gpu_mem: Memory::new(),
            buffers: BufferTable::new(),
            pool,
            snapshots: SnapshotPool::new(),
            host_clock: SimTime::ZERO,
            gpu_free: SimTime::ZERO,
            hd_free: SimTime::ZERO,
            dh_free: SimTime::ZERO,
            next_kernel_id: 1,
            reports: Vec::new(),
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &FluidiclConfig {
        &self.config
    }

    /// Per-kernel execution reports, in launch order.
    pub fn reports(&self) -> &[KernelReport] {
        &self.reports
    }

    /// Aggregate statistics.
    pub fn summary(&self) -> RuntimeSummary {
        RuntimeSummary::from_reports(&self.reports)
    }

    /// Scratch-buffer pool statistics (paper §6.1).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Snapshot-allocation pool statistics `(hits, misses)`: how often the
    /// per-kernel original snapshots reused a pooled allocation.
    pub fn snapshot_stats(&self) -> (u64, u64) {
        self.snapshots.stats()
    }

    fn scratch_setup_cost(&mut self, out_ids: &[BufferId]) -> SimDuration {
        let mut cost = SimDuration::ZERO;
        for id in out_ids {
            let state = self.buffers.state(*id);
            let len = state.len;
            let bytes = state.bytes();
            let snapshot_current = state.orig_snapshot_current;
            // Under dirty-range transfers a stale snapshot only re-copies
            // the ranges the GPU copy changed since the last refresh.
            let refresh_bytes = if self.config.dirty_range_transfers {
                state.snapshot_refresh_bytes()
            } else {
                bytes
            };
            // Two scratch buffers per modified buffer: the CPU-data landing
            // area and the pristine original (paper §4.1).
            for _ in 0..2 {
                if !self.pool.acquire(len) {
                    cost += self.machine.gpu.buffer_create_time(bytes);
                }
            }
            // Snapshot the original on the GPU unless the previous kernel's
            // end-of-kernel copy already did (paper §5.5).
            if !snapshot_current {
                let copy_ns = 2.0 * refresh_bytes as f64 / self.machine.gpu.peak_mem_bytes_per_ns();
                cost += SimDuration::from_nanos(copy_ns as u64);
            }
        }
        cost
    }

    fn release_scratch(&mut self, out_ids: &[BufferId]) {
        for id in out_ids {
            let len = self.buffers.state(*id).len;
            self.pool.release(len);
            self.pool.release(len);
        }
    }
}

impl ClDriver for Fluidicl {
    fn create_buffer(&mut self, len: usize) -> BufferId {
        // clCreateBuffer allocates on both devices (paper §4.1); the GPU
        // allocation dominates the cost.
        let t = self.machine.gpu.buffer_create_time(len as u64 * 4);
        self.host_clock += t;
        let id = self.buffers.register(len, self.host_clock);
        self.cpu_mem.alloc(id, len);
        self.gpu_mem.alloc(id, len);
        id
    }

    fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        self.cpu_mem.write(id, data)?;
        self.gpu_mem.write(id, data)?;
        let bytes = data.len() as u64 * 4;
        // One clEnqueueWriteBuffer becomes two: a host-side copy for the CPU
        // device and an h2d transfer for the GPU (paper §4.1). The h2d is
        // DMA on the in-order hd queue; the host only performs the copy,
        // and whoever needs the GPU copy waits for its arrival (§5.5).
        let cpu_at = self.host_clock + self.machine.host.copy_time(bytes);
        let gpu_at = self.hd_free.max(self.host_clock) + self.machine.h2d.transfer_time(bytes);
        self.hd_free = gpu_at;
        self.buffers.record_host_write(id, cpu_at, gpu_at);
        self.host_clock = cpu_at;
        Ok(())
    }

    fn enqueue_kernel(
        &mut self,
        kernel: &str,
        ndrange: NdRange,
        args: &[KernelArg],
    ) -> ClResult<()> {
        let def = self.program.kernel(kernel)?;
        let launch = Launch::new(def, ndrange, args.to_vec());
        let in_ids = launch.input_buffers()?;
        let out_ids = launch.output_buffers()?;
        let kid = self.next_kernel_id;
        self.next_kernel_id += 1;
        for id in &out_ids {
            self.buffers.begin_kernel_write(*id, kid);
        }
        // The CPU scheduler waits for its inputs (In + InOut) to be current
        // (paper §5.3); `begin_kernel_write` just reset InOut readiness, so
        // compute from the pre-kernel ready times via in_ids plus the InOut
        // subset captured before the reset — InOut buffers appear in
        // out_ids, whose cpu_ready_at we read below *before* any update.
        let mut cpu_inputs = in_ids.clone();
        cpu_inputs.extend(out_ids.iter().copied());
        let cpu_ready = self.buffers.cpu_ready_time(&cpu_inputs);
        let mut all_bufs = in_ids;
        all_bufs.extend(out_ids.iter().copied());
        let gpu_ready = self.buffers.gpu_ready_time(&all_bufs);
        let scratch_setup = self.scratch_setup_cost(&out_ids);
        let input = CoexecInput {
            machine: &self.machine,
            config: &self.config,
            launch: &launch,
            kernel_id: kid,
            enqueue_at: self.host_clock,
            gpu_start: gpu_ready.max(self.gpu_free),
            cpu_start: cpu_ready,
            scratch_setup,
            hd_free: self.hd_free,
            dh_free: self.dh_free,
            cpu_mem: &mut self.cpu_mem,
            gpu_mem: &mut self.gpu_mem,
            snapshots: &mut self.snapshots,
        };
        let outcome = Coexec::new(input)?.run()?;
        if self.config.validate_protocol {
            let diags = crate::lint::lint_report(&outcome.report);
            if let Some(first) = diags
                .iter()
                .find(|d| d.severity == crate::lint::LintSeverity::Error)
            {
                return Err(ClError::ProtocolViolation {
                    kernel: kernel.to_string(),
                    detail: format!("{first} ({} finding(s) total)", diags.len()),
                });
            }
        }
        self.host_clock = outcome.complete_at;
        self.gpu_free = outcome.gpu_busy_until;
        self.hd_free = outcome.hd_free;
        self.dh_free = outcome.dh_free;
        for id in &out_ids {
            self.buffers
                .record_cpu_arrival(*id, kid, outcome.cpu_results_at);
            self.buffers
                .record_gpu_arrival(*id, kid, outcome.gpu_results_at);
            // The end-of-kernel copy refreshed the original snapshot
            // (paper §5.5).
            self.buffers.state_mut(*id).orig_snapshot_current = true;
            if self.config.dirty_range_transfers {
                // The epilogue just refreshed the snapshot and the return
                // path (D2H thread or CPU finish, §4.4) brought the host
                // copy current, so both dirty sets collapse to empty.
                self.buffers
                    .record_kernel_dirty(*id, DirtyRanges::empty(), DirtyRanges::empty());
            }
        }
        self.release_scratch(&out_ids);
        self.reports.push(outcome.report);
        Ok(())
    }

    fn read_buffer(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        let state = self.buffers.state(id).clone();
        let use_cpu_copy = self.config.location_tracking && !state.cpu_is_stale();
        if use_cpu_copy {
            // Data-location tracking (paper §6.2): the device-to-host thread
            // (or a CPU-finished kernel) already placed the data on the CPU;
            // wait for it and hand it out without touching the link.
            let data = self.cpu_mem.get(id)?.to_vec();
            let bytes = data.len() as u64 * 4;
            self.host_clock =
                self.host_clock.max(state.cpu_ready_at) + self.machine.host.copy_time(bytes);
            Ok(data)
        } else {
            let data = self.gpu_mem.get(id)?.to_vec();
            // Under dirty-range transfers only the ranges where the host
            // copy is stale cross the link; the rest is already resident.
            let bytes = if self.config.dirty_range_transfers {
                state.read_back_bytes()
            } else {
                data.len() as u64 * 4
            };
            let start = self.host_clock.max(state.gpu_ready_at).max(self.dh_free);
            let arrival = start + self.machine.d2h.transfer_time(bytes);
            self.dh_free = arrival;
            self.host_clock = arrival;
            Ok(data)
        }
    }

    fn elapsed(&self) -> SimDuration {
        self.host_clock.saturating_since(SimTime::ZERO)
    }

    fn kernel_times(&self) -> Vec<(String, SimDuration)> {
        self.reports
            .iter()
            .map(|r| (r.kernel.clone(), r.duration))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::KernelProfile;
    use fluidicl_vcl::{ArgRole, ArgSpec, KernelDef};

    fn scale_program() -> Program {
        let mut p = Program::new();
        p.register(KernelDef::new(
            "scale",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
                ArgSpec::new("f", ArgRole::Scalar),
            ],
            KernelProfile::new("scale")
                .flops_per_item(4.0)
                .bytes_read_per_item(4.0)
                .bytes_written_per_item(4.0),
            |item, scalars, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[i] = scalars.f32(0) * ins.get(0)[i];
            },
        ));
        p
    }

    fn runtime() -> Fluidicl {
        Fluidicl::new(
            MachineConfig::paper_testbed(),
            FluidiclConfig::default(),
            scale_program(),
        )
    }

    #[test]
    fn single_kernel_end_to_end() {
        let mut rt = runtime();
        let n = 4096;
        let src = rt.create_buffer(n);
        let dst = rt.create_buffer(n);
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        rt.write_buffer(src, &input).unwrap();
        rt.enqueue_kernel(
            "scale",
            NdRange::d1(n, 64).unwrap(),
            &[
                KernelArg::Buffer(src),
                KernelArg::Buffer(dst),
                KernelArg::F32(3.0),
            ],
        )
        .unwrap();
        let out = rt.read_buffer(dst).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 3.0 * i as f32);
        }
        assert!(!rt.elapsed().is_zero());
        assert_eq!(rt.reports().len(), 1);
        let r = &rt.reports()[0];
        assert_eq!(r.total_wgs, 64);
        assert!(r.gpu_executed_wgs + r.cpu_executed_wgs >= r.total_wgs);
    }

    #[test]
    fn chained_kernels_stay_coherent() {
        let mut rt = runtime();
        let n = 2048;
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        rt.write_buffer(a, &vec![1.0; n]).unwrap();
        // a -> b (x2), b -> a (x2): a should end at 4.0.
        rt.enqueue_kernel(
            "scale",
            NdRange::d1(n, 64).unwrap(),
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b),
                KernelArg::F32(2.0),
            ],
        )
        .unwrap();
        rt.enqueue_kernel(
            "scale",
            NdRange::d1(n, 64).unwrap(),
            &[
                KernelArg::Buffer(b),
                KernelArg::Buffer(a),
                KernelArg::F32(2.0),
            ],
        )
        .unwrap();
        assert_eq!(rt.read_buffer(a).unwrap(), vec![4.0; n]);
        assert_eq!(rt.reports().len(), 2);
        // Kernel ids are assigned monotonically.
        assert!(rt.reports()[0].kernel_id < rt.reports()[1].kernel_id);
    }

    #[test]
    fn reports_and_summary_are_consistent() {
        let mut rt = runtime();
        let n = 1024;
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        rt.write_buffer(a, &vec![1.0; n]).unwrap();
        rt.enqueue_kernel(
            "scale",
            NdRange::d1(n, 32).unwrap(),
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b),
                KernelArg::F32(1.5),
            ],
        )
        .unwrap();
        let summary = rt.summary();
        assert_eq!(summary.kernels, 1);
        assert_eq!(summary.total_wgs, 32);
        let times = rt.kernel_times();
        assert_eq!(times.len(), 1);
        assert_eq!(times[0].0, "scale");
    }

    #[test]
    fn location_tracking_skips_dh_transfer_on_reads() {
        let run = |tracking: bool| {
            let mut rt = Fluidicl::new(
                MachineConfig::paper_testbed(),
                FluidiclConfig::default().with_location_tracking(tracking),
                scale_program(),
            );
            let n = 1 << 16;
            let a = rt.create_buffer(n);
            let b = rt.create_buffer(n);
            rt.write_buffer(a, &vec![1.0; n]).unwrap();
            rt.enqueue_kernel(
                "scale",
                NdRange::d1(n, 64).unwrap(),
                &[
                    KernelArg::Buffer(a),
                    KernelArg::Buffer(b),
                    KernelArg::F32(2.0),
                ],
            )
            .unwrap();
            let v = rt.read_buffer(b).unwrap();
            assert_eq!(v[0], 2.0);
            rt.elapsed()
        };
        // Reading via the CPU copy must never be slower than an extra
        // device-to-host transfer.
        assert!(run(true) <= run(false));
    }

    #[test]
    fn snapshot_allocations_are_recycled_across_kernels() {
        let mut rt = runtime();
        let n = 2048;
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        rt.write_buffer(a, &vec![1.0; n]).unwrap();
        for _ in 0..3 {
            rt.enqueue_kernel(
                "scale",
                NdRange::d1(n, 64).unwrap(),
                &[
                    KernelArg::Buffer(a),
                    KernelArg::Buffer(b),
                    KernelArg::F32(2.0),
                ],
            )
            .unwrap();
        }
        let (hits, misses) = rt.snapshot_stats();
        assert_eq!(misses, 1, "only the first kernel allocates a snapshot");
        assert_eq!(hits, 2, "later kernels reuse the pooled allocation");
    }

    #[test]
    fn intra_launch_parallelism_is_byte_identical() {
        let run = |jobs: usize| {
            let mut program = Program::new();
            program.register(
                KernelDef::new(
                    "scale",
                    vec![
                        ArgSpec::new("src", ArgRole::In),
                        ArgSpec::new("dst", ArgRole::Out),
                        ArgSpec::new("f", ArgRole::Scalar),
                    ],
                    KernelProfile::new("scale")
                        .flops_per_item(4.0)
                        .bytes_read_per_item(4.0)
                        .bytes_written_per_item(4.0),
                    |item, scalars, ins, outs| {
                        let i = item.global_linear();
                        // sin/exp give bit patterns that would expose any
                        // reordering or double-execution.
                        outs.at(0)[i] = (scalars.f32(0) * ins.get(0)[i]).sin().exp();
                    },
                )
                .with_disjoint_writes(),
            );
            let mut rt = Fluidicl::new(
                MachineConfig::paper_testbed(),
                FluidiclConfig::default().with_intra_launch_jobs(jobs),
                program,
            );
            let n = 4096;
            let src = rt.create_buffer(n);
            let dst = rt.create_buffer(n);
            let input: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
            rt.write_buffer(src, &input).unwrap();
            rt.enqueue_kernel(
                "scale",
                NdRange::d1(n, 64).unwrap(),
                &[
                    KernelArg::Buffer(src),
                    KernelArg::Buffer(dst),
                    KernelArg::F32(1.7),
                ],
            )
            .unwrap();
            (rt.read_buffer(dst).unwrap(), rt.elapsed())
        };
        let (seq, t_seq) = run(1);
        let (par, t_par) = run(4);
        assert_eq!(
            seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "parallel execution must be byte-identical"
        );
        assert_eq!(t_seq, t_par, "virtual time must not see the thread count");
    }

    #[test]
    fn dirty_range_transfers_cut_bytes_and_preserve_results() {
        // A kernel that writes only the first half of its output: the
        // dirty-range protocol should ship roughly half the H2D payload.
        let half_program = || {
            let mut p = Program::new();
            p.register(KernelDef::new(
                "halfscale",
                vec![
                    ArgSpec::new("src", ArgRole::In),
                    ArgSpec::new("dst", ArgRole::Out),
                ],
                KernelProfile::new("halfscale")
                    .flops_per_item(4.0)
                    .bytes_read_per_item(4.0)
                    .bytes_written_per_item(2.0),
                |item, _, ins, outs| {
                    let i = item.global_linear();
                    let half = outs.at(0).len() / 2;
                    if i < half {
                        outs.at(0)[i] = 2.0 * ins.get(0)[i] + 1.0;
                    }
                },
            ));
            p
        };
        let run = |dirty: bool| {
            let mut rt = Fluidicl::new(
                MachineConfig::paper_testbed(),
                FluidiclConfig::default()
                    .with_validate_protocol(true)
                    .with_dirty_range_transfers(dirty),
                half_program(),
            );
            let n = 1 << 15;
            let a = rt.create_buffer(n);
            let b = rt.create_buffer(n);
            rt.write_buffer(a, &vec![1.0; n]).unwrap();
            for _ in 0..2 {
                rt.enqueue_kernel(
                    "halfscale",
                    NdRange::d1(n, 64).unwrap(),
                    &[KernelArg::Buffer(a), KernelArg::Buffer(b)],
                )
                .unwrap();
            }
            let hd: u64 = rt.reports().iter().map(|r| r.hd_bytes).sum();
            (rt.read_buffer(b).unwrap(), rt.elapsed(), hd)
        };
        let (full_v, full_t, full_hd) = run(false);
        let (dirty_v, dirty_t, dirty_hd) = run(true);
        assert_eq!(
            full_v.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            dirty_v.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "dirty-range transfers must not change functional results"
        );
        assert!(
            dirty_hd < full_hd,
            "partial writes must ship fewer H2D bytes ({dirty_hd} vs {full_hd})"
        );
        assert!(dirty_t <= full_t, "shipping less must never slow the model");
    }

    #[test]
    fn buffer_pool_reduces_scratch_creation_cost() {
        let run = |pooled: bool| {
            let mut rt = Fluidicl::new(
                MachineConfig::paper_testbed(),
                FluidiclConfig::default().with_buffer_pool(pooled),
                scale_program(),
            );
            let n = 1 << 18;
            let a = rt.create_buffer(n);
            let b = rt.create_buffer(n);
            rt.write_buffer(a, &vec![1.0; n]).unwrap();
            for _ in 0..4 {
                rt.enqueue_kernel(
                    "scale",
                    NdRange::d1(n, 64).unwrap(),
                    &[
                        KernelArg::Buffer(a),
                        KernelArg::Buffer(b),
                        KernelArg::F32(2.0),
                    ],
                )
                .unwrap();
            }
            (rt.elapsed(), rt.pool_stats())
        };
        let (t_pool, s_pool) = run(true);
        let (t_nopool, s_nopool) = run(false);
        assert!(s_pool.hits > 0, "pool must be reused across kernels");
        assert_eq!(s_nopool.hits, 0);
        assert!(t_pool <= t_nopool);
    }
}
