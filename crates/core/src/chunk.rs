//! Adaptive CPU chunk sizing (paper §5.1).
//!
//! The CPU executes subkernels of a few work-groups at a time; too small a
//! chunk drowns in per-launch overhead, too large a chunk starves the GPU of
//! status updates. FluidiCL starts small and grows the chunk in fixed steps
//! *while the observed average time per work-group keeps improving* — a
//! training-free heuristic that lands near the launch-overhead knee on any
//! machine.
//!
//! Two refinements on top of the paper's controller:
//!
//! * the growth decision is fed **compute** time only; the *exposed*
//!   transfer stall (the wait between finishing a subkernel and launching
//!   the next) is tracked separately, so pipelined execution — which hides
//!   most of that stall — cannot inflate the apparent per-work-group
//!   throughput and over-grow the chunk;
//! * when the transfer layer reports a retry ([`ChunkController::
//!   on_transfer_retry`]), the next chunk is halved and growth stops: on a
//!   flaky link, smaller batches produce more frequent statuses, so more
//!   CPU work is acknowledged (and stays mergeable) before a watchdog
//!   abandons the link.

use fluidicl_des::SimDuration;

/// The adaptive chunk-size controller for one kernel execution.
#[derive(Clone, Debug)]
pub struct ChunkController {
    total_wgs: u64,
    chunk: u64,
    step: u64,
    min_chunk: u64,
    growing: bool,
    best_per_wg: Option<SimDuration>,
    tolerance: f64,
    /// Accumulated transfer stall the CPU actually experienced (time between
    /// a subkernel finishing and the next launching). Observed but never fed
    /// into the growth decision.
    exposed_stall: SimDuration,
}

impl ChunkController {
    /// Creates a controller for a kernel of `total_wgs` work-groups.
    ///
    /// `initial_pct`/`step_pct` are percentages of `total_wgs`; `min_chunk`
    /// is the CPU compute-unit count (allocations below it under-utilise the
    /// device, paper §5.1). A `step_pct` of zero freezes the chunk.
    ///
    /// # Panics
    ///
    /// Panics if `total_wgs` or `min_chunk` is zero, or percentages are out
    /// of range.
    pub fn new(
        total_wgs: u64,
        initial_pct: f64,
        step_pct: f64,
        min_chunk: u64,
        tolerance: f64,
    ) -> Self {
        assert!(total_wgs > 0, "kernel must have work-groups");
        assert!(min_chunk > 0, "minimum chunk must be positive");
        assert!(
            initial_pct > 0.0 && initial_pct <= 100.0,
            "initial percent out of range"
        );
        assert!(
            (0.0..=100.0).contains(&step_pct),
            "step percent out of range"
        );
        let pct = |p: f64| ((total_wgs as f64 * p / 100.0).ceil() as u64).max(1);
        let chunk = pct(initial_pct).max(min_chunk).min(total_wgs);
        ChunkController {
            total_wgs,
            chunk,
            step: if step_pct == 0.0 { 0 } else { pct(step_pct) },
            min_chunk,
            growing: step_pct > 0.0,
            best_per_wg: None,
            tolerance,
            exposed_stall: SimDuration::ZERO,
        }
    }

    /// The chunk size the next subkernel should use, clamped to `remaining`.
    pub fn next_chunk(&self, remaining: u64) -> u64 {
        self.chunk.min(remaining).max(1)
    }

    /// Current unclamped chunk size.
    pub fn chunk(&self) -> u64 {
        self.chunk
    }

    /// Whether the controller is still in its growth phase.
    pub fn is_growing(&self) -> bool {
        self.growing
    }

    /// Feeds back one completed subkernel: `wgs` work-groups, its pure
    /// `compute` duration, and the transfer stall that was *exposed* before
    /// it launched (the wait the CPU could not hide behind compute). Only
    /// `compute` drives the growth decision — exposed stall is accumulated
    /// for reporting, so deeper pipelines observe the same growth schedule
    /// as the serial protocol. Grows the chunk by one step if the average
    /// compute time per work-group improved by more than the tolerance;
    /// otherwise stops growing.
    pub fn observe(&mut self, wgs: u64, compute: SimDuration, exposed: SimDuration) {
        self.exposed_stall += exposed;
        if wgs == 0 {
            return;
        }
        let per_wg = compute.div_count(wgs);
        match self.best_per_wg {
            None => {
                self.best_per_wg = Some(per_wg);
                if self.growing {
                    self.grow();
                }
            }
            Some(best) => {
                let improved =
                    (per_wg.as_nanos() as f64) < (best.as_nanos() as f64) * (1.0 - self.tolerance);
                if per_wg < best {
                    self.best_per_wg = Some(per_wg);
                }
                if self.growing {
                    if improved {
                        self.grow();
                    } else {
                        self.growing = false;
                    }
                }
            }
        }
    }

    /// Total transfer stall the CPU could not hide behind compute.
    pub fn exposed_stall(&self) -> SimDuration {
        self.exposed_stall
    }

    /// Reacts to a transfer retry on the hd link: the next chunk is halved
    /// (never below the compute-unit floor) and growth stops. Smaller
    /// chunks mean more frequent statuses, so on a link that is about to be
    /// abandoned more of the CPU's work is already acknowledged — and
    /// therefore mergeable — when the watchdog fires.
    pub fn on_transfer_retry(&mut self) {
        self.chunk = (self.chunk / 2).max(self.min_chunk);
        self.growing = false;
    }

    fn grow(&mut self) {
        self.chunk = (self.chunk + self.step)
            .min(self.total_wgs)
            .max(self.min_chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> ChunkController {
        // 1000 work-groups, 2% initial, 2% step, 8 compute units.
        ChunkController::new(1000, 2.0, 2.0, 8, 0.02)
    }

    #[test]
    fn initial_chunk_is_percentage_clamped_to_min() {
        let c = controller();
        assert_eq!(c.chunk(), 20);
        // Tiny NDRange: percentage would be below the compute-unit count.
        let tiny = ChunkController::new(100, 1.0, 1.0, 8, 0.02);
        assert_eq!(tiny.chunk(), 8, "chunk is clamped up to the CPU units");
    }

    #[test]
    fn chunk_grows_while_per_wg_time_improves() {
        let mut c = controller();
        c.observe(20, SimDuration::from_micros(200), SimDuration::ZERO); // 10 µs/wg
        assert_eq!(c.chunk(), 40);
        c.observe(40, SimDuration::from_micros(320), SimDuration::ZERO); // 8 µs/wg — improving
        assert_eq!(c.chunk(), 60);
        c.observe(60, SimDuration::from_micros(480), SimDuration::ZERO); // 8 µs/wg — flat
        assert_eq!(c.chunk(), 60, "growth stops when improvement stalls");
        assert!(!c.is_growing());
        c.observe(60, SimDuration::from_micros(120), SimDuration::ZERO); // improvement after stop
        assert_eq!(c.chunk(), 60, "growth never restarts");
    }

    #[test]
    fn exposed_stall_accumulates_without_touching_growth() {
        let mut c = controller();
        c.observe(
            20,
            SimDuration::from_micros(200),
            SimDuration::from_micros(50),
        );
        c.observe(
            40,
            SimDuration::from_micros(320),
            SimDuration::from_micros(30),
        );
        assert_eq!(c.exposed_stall(), SimDuration::from_micros(80));
        // Identical compute observations as the test above: the stall
        // changed nothing about the growth schedule.
        assert_eq!(c.chunk(), 60);
        assert!(c.is_growing());
    }

    #[test]
    fn transfer_retry_halves_the_chunk_and_stops_growth() {
        let mut c = controller();
        c.observe(20, SimDuration::from_micros(200), SimDuration::ZERO);
        c.observe(40, SimDuration::from_micros(320), SimDuration::ZERO);
        assert_eq!(c.chunk(), 60);
        c.on_transfer_retry();
        assert_eq!(c.chunk(), 30);
        assert!(!c.is_growing(), "a flaky link ends the growth phase");
        c.observe(30, SimDuration::from_micros(60), SimDuration::ZERO);
        assert_eq!(c.chunk(), 30, "growth never restarts after a retry");
        // Repeated retries bottom out at the compute-unit floor.
        for _ in 0..8 {
            c.on_transfer_retry();
        }
        assert_eq!(c.chunk(), 8);
    }

    #[test]
    fn zero_step_freezes_chunk() {
        let mut c = ChunkController::new(1000, 2.0, 0.0, 8, 0.02);
        assert!(!c.is_growing());
        c.observe(20, SimDuration::from_micros(100), SimDuration::ZERO);
        c.observe(20, SimDuration::from_micros(10), SimDuration::ZERO);
        assert_eq!(c.chunk(), 20);
    }

    #[test]
    fn next_chunk_clamps_to_remaining() {
        let c = controller();
        assert_eq!(c.next_chunk(5), 5);
        assert_eq!(c.next_chunk(1000), 20);
        assert_eq!(c.next_chunk(0), 1, "never returns zero");
    }

    #[test]
    fn chunk_never_exceeds_total() {
        let mut c = ChunkController::new(10, 50.0, 50.0, 8, 0.02);
        for i in 0..20 {
            // Strictly improving observations try to grow forever.
            c.observe(
                5,
                SimDuration::from_micros(1000 / (i + 1)),
                SimDuration::ZERO,
            );
        }
        assert!(c.chunk() <= 10);
    }

    #[test]
    fn large_initial_percentages_work() {
        let c = ChunkController::new(400, 75.0, 2.0, 8, 0.02);
        assert_eq!(c.chunk(), 300);
    }
}
