//! # fluidicl — the FluidiCL runtime
//!
//! Reproduction of the runtime from *Fluidic Kernels: Cooperative Execution
//! of OpenCL Programs on Multiple Heterogeneous Devices* (Pandit &
//! Govindarajan, CGO 2014). FluidiCL takes an OpenCL program written for a
//! single device and executes **every kernel on both the CPU and the GPU**:
//!
//! * the GPU starts work-groups from flattened ID 0 upward; CPU *subkernels*
//!   take them from the top downward, so the devices close in on each other
//!   and the kernel "flows" toward the faster device;
//! * after each subkernel the CPU ships its results and a status message to
//!   the GPU over an in-order queue, so work only counts as CPU-complete
//!   once its data has arrived — transfer overhead is part of the decision;
//! * GPU work-groups poll the status and abort when already covered; a
//!   diff-merge kernel folds the CPU results into the GPU buffer;
//! * buffer versions and data-location tracking keep multi-kernel programs
//!   coherent while overlapping transfers with execution.
//!
//! The crate exposes [`Fluidicl`], which implements the same
//! [`fluidicl_vcl::ClDriver`] API as the single-device runtime — host
//! programs swap runtimes without modification, mirroring the paper's
//! find-and-replace integration (§5). Execution is *functional over virtual
//! time*: results are really computed, timings come from the
//! [`fluidicl_hetsim`] machine models, and the interleaving is played out by
//! a deterministic event simulation.
//!
//! # Example
//!
//! See [`Fluidicl`] for a complete end-to-end example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffers;
mod chunk;
mod coexec;
mod config;
mod endpoint;
mod frontier;
pub mod graph;
pub mod heft;
mod lint;
mod recover;
mod roster;
mod runtime;
mod stats;
mod trace;

pub use buffers::{BufferState, BufferTable, KernelId, PoolStats, ScratchPool, SnapshotPool};
pub use chunk::ChunkController;
pub use config::{FluidiclConfig, ReportHook};
pub use endpoint::{CpuEndpoint, NonOwnerEndpoint, PeerGpuEndpoint};
pub use frontier::{Coverage, Frontier};
pub use graph::{DepKind, GraphEdge, GraphNodeSummary, GraphSchedule, NodeAccess};
pub use heft::{HeftEdge, HeftPlan, WeightTable};
pub use lint::{lint_report, lint_trace, LintDiagnostic, LintSeverity};
pub use recover::RecoveryPolicy;
pub use roster::DeviceRoster;
pub use runtime::{parse_disjoint_manifest, Fluidicl};
pub use stats::{Finisher, KernelReport, LaunchMeta, RuntimeSummary};
pub use trace::{render_lanes, render_timeline, TraceEvent, TraceKind, STATUS_MSG_BYTES};
