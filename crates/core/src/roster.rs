//! Dynamic device roster: which devices are still healthy across kernels.
//!
//! The paper's runtime is owner-centric and binary about loss — once any
//! device dies, every follow-on kernel degrades to the single survivor.
//! With N devices that model wastes capacity: losing one peer GPU should
//! cost one peer's throughput, not the fleet. The roster tracks the health
//! of every device the machine declares (CPU, primary GPU, peer GPUs) so
//! the runtime can re-form co-execution on all healthy survivors after a
//! loss and only fall back to a single-device degraded run when exactly
//! one device remains.

use fluidicl_vcl::DeviceKind;

/// Health state of every device in the machine, tracked across kernels.
///
/// A fresh roster reports everything healthy. Losses are sticky: a device
/// reported lost stays lost for the lifetime of the runtime (the simulated
/// faults are fail-stop). Peer GPUs are identified by their endpoint
/// device index (`1..=peers.len()`, matching [`crate::KernelReport`]
/// endpoint numbering; the CPU endpoint is dev 0).
///
/// # Examples
///
/// ```
/// use fluidicl::DeviceRoster;
///
/// let mut roster = DeviceRoster::new();
/// assert!(roster.cpu_healthy() && roster.gpu_healthy());
/// roster.lose_gpu();
/// assert!(!roster.gpu_healthy());
/// roster.lose_peer(2);
/// assert!(roster.peer_dead(2) && !roster.peer_dead(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeviceRoster {
    cpu_lost: bool,
    gpu_lost: bool,
    dead_peers: Vec<u32>,
}

impl DeviceRoster {
    /// A roster with every device healthy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the CPU can still execute subkernels.
    pub fn cpu_healthy(&self) -> bool {
        !self.cpu_lost
    }

    /// Whether the primary GPU (the machine's configured owner card) can
    /// still execute waves.
    pub fn gpu_healthy(&self) -> bool {
        !self.gpu_lost
    }

    /// Marks the CPU lost. Idempotent; losses are sticky.
    pub fn lose_cpu(&mut self) {
        self.cpu_lost = true;
    }

    /// Marks the primary GPU lost. Idempotent; losses are sticky.
    pub fn lose_gpu(&mut self) {
        self.gpu_lost = true;
    }

    /// Marks peer GPU endpoint `dev` lost. Idempotent; losses are sticky.
    pub fn lose_peer(&mut self, dev: u32) {
        if !self.dead_peers.contains(&dev) {
            self.dead_peers.push(dev);
        }
    }

    /// Whether peer GPU endpoint `dev` has been lost.
    pub fn peer_dead(&self, dev: u32) -> bool {
        self.dead_peers.contains(&dev)
    }

    /// Endpoint indices of every lost peer GPU, in loss order.
    pub fn dead_peers(&self) -> &[u32] {
        &self.dead_peers
    }

    /// Whether any device at all has been lost.
    pub fn any_lost(&self) -> bool {
        self.cpu_lost || self.gpu_lost || !self.dead_peers.is_empty()
    }

    /// The legacy binary view of loss, kept for the paper's two-device
    /// vocabulary: the GPU outranks the CPU (losing both reports the GPU),
    /// and peer losses alone report nothing — the two-device protocol has
    /// no peers.
    pub fn lost_device(&self) -> Option<DeviceKind> {
        if self.gpu_lost {
            Some(DeviceKind::Gpu)
        } else if self.cpu_lost {
            Some(DeviceKind::Cpu)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_roster_is_all_healthy() {
        let r = DeviceRoster::new();
        assert!(r.cpu_healthy());
        assert!(r.gpu_healthy());
        assert!(r.dead_peers().is_empty());
        assert!(!r.any_lost());
        assert_eq!(r.lost_device(), None);
    }

    #[test]
    fn losses_are_sticky_and_idempotent() {
        let mut r = DeviceRoster::new();
        r.lose_peer(2);
        r.lose_peer(2);
        r.lose_peer(1);
        assert_eq!(r.dead_peers(), &[2, 1], "loss order preserved, no dupes");
        assert!(r.peer_dead(1) && r.peer_dead(2) && !r.peer_dead(3));
        r.lose_cpu();
        r.lose_cpu();
        assert!(!r.cpu_healthy() && r.gpu_healthy());
        assert!(r.any_lost());
    }

    #[test]
    fn legacy_view_ranks_gpu_over_cpu() {
        let mut r = DeviceRoster::new();
        r.lose_cpu();
        assert_eq!(r.lost_device(), Some(DeviceKind::Cpu));
        r.lose_gpu();
        assert_eq!(r.lost_device(), Some(DeviceKind::Gpu));
        let mut peers_only = DeviceRoster::new();
        peers_only.lose_peer(1);
        assert_eq!(
            peers_only.lost_device(),
            None,
            "peer loss is not binary loss"
        );
    }
}
