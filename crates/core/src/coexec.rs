//! The co-execution engine: one kernel, N devices, one virtual timeline.
//!
//! This module is the paper's Section 4 and 5 made executable, generalized
//! from the paper's two-device race to N devices. For a single kernel
//! launch it simulates — and functionally performs — the FluidiCL
//! protocol:
//!
//! * the **owner GPU** executes flattened work-groups from 0 upward in
//!   waves, checking an arrived-status watermark and aborting work already
//!   covered by the non-owners (Figures 6 and 8);
//! * every **non-owner endpoint** (the CPU, plus any peer GPUs) claims
//!   contiguous work-group ranges off the top of a shared [`Frontier`] —
//!   with one endpoint this is exactly the paper's top-down *subkernel*
//!   descent (Figure 7) — each claim followed by an intermediate staging
//!   copy, an in-order data + status transfer to the owner over the
//!   endpoint's own link, and an adaptive per-endpoint chunk-size update
//!   (§5.1);
//! * a work-group only counts as complete once its *data has arrived at
//!   the owner* — arrivals accumulate in a [`Coverage`] set whose
//!   contiguous top suffix is the watermark (with one endpoint, the
//!   paper's boundary watermark of §4.2);
//! * when the owner reaches the watermark it exits and a **diff-merge**
//!   folds each endpoint's results into the owner's buffers as a merge
//!   tree (§4.3) — one endpoint makes that the paper's single merge;
//! * if the non-owners compute the whole NDRange first (two-device mode),
//!   the CPU copy is authoritative and no device-to-host transfer is
//!   needed (§4.2, §6.2);
//! * with a pipeline depth ≥ 2 an endpoint starts subkernel *k+1* while
//!   subkernel *k*'s data + status is still being staged and shipped, and
//!   copies that complete while its link is busy are coalesced into one
//!   data payload + one status message; depth 1 reproduces the serial
//!   protocol byte-for-byte;
//! * recovery is per-endpoint: a lost endpoint's claimed-but-unshipped
//!   ranges return to the frontier for the survivors, and a dead link
//!   stops only its own endpoint.
//!
//! Work-groups are *really executed* against device memory at the moments
//! the protocol decides, so a scheduling bug produces wrong numbers, not
//! just wrong timings.

use fluidicl_des::{ChannelBank, SimDuration, SimTime, Simulation};
use fluidicl_hetsim::{GpuModel, LinkModel, MachineConfig, PeerGpu};
use fluidicl_vcl::exec::{execute_groups_par, Launch};
use fluidicl_vcl::{
    diff_merge_tracked, payload_checksum, BufferId, ClError, ClResult, DeviceKind, DirtyTracker,
    FaultInjector, Memory, TransferFate,
};

use crate::buffers::SnapshotPool;
use crate::chunk::ChunkController;
use crate::config::FluidiclConfig;
use crate::endpoint::{CpuEndpoint, NonOwnerEndpoint, PeerGpuEndpoint};
use crate::frontier::{Coverage, Frontier};
use crate::stats::{Finisher, KernelReport, LaunchMeta};
use crate::trace::{TraceEvent, TraceKind, STATUS_MSG_BYTES};

/// One active peer-GPU slot: the machine-config peer plus the stable
/// endpoint index it traces under (indices survive earlier peers dying in
/// previous kernels, so a trace's `ep2` always means the same card).
#[derive(Clone, Debug)]
pub(crate) struct PeerSlot {
    pub dev: u32,
    pub peer: PeerGpu,
}

/// Inputs to one co-executed kernel launch, carrying the global timeline
/// state the runtime threads across kernels.
#[derive(Debug)]
pub(crate) struct CoexecInput<'a> {
    pub machine: &'a MachineConfig,
    pub config: &'a FluidiclConfig,
    pub launch: &'a Launch,
    pub kernel_id: u64,
    /// Host time of the blocking enqueue call.
    pub enqueue_at: SimTime,
    /// Earliest time the GPU can begin (device free + its data ready).
    pub gpu_start: SimTime,
    /// Earliest time the CPU scheduler can begin (its input data ready).
    pub cpu_start: SimTime,
    /// Scratch-buffer acquisition cost paid on the GPU timeline (paper §6.1).
    pub scratch_setup: SimDuration,
    /// Host-to-device channel availability.
    pub hd_free: SimTime,
    /// Device-to-host channel availability.
    pub dh_free: SimTime,
    pub cpu_mem: &'a mut Memory,
    pub gpu_mem: &'a mut Memory,
    /// Reusable allocations for the per-kernel original snapshots.
    pub snapshots: &'a mut SnapshotPool,
    /// Peer GPUs participating as additional non-owner endpoints. Empty on
    /// the paper's two-device protocol.
    pub peers: Vec<PeerSlot>,
    /// Fault oracle shared across the runtime's kernels. `None` disables
    /// injection *and* every watchdog, keeping the event timeline
    /// byte-identical to the fault-free engine.
    pub injector: Option<&'a mut FaultInjector>,
    /// The CPU endpoint is already dead (roster state from an earlier
    /// kernel): it is constructed lost and never scheduled, so the kernel
    /// co-executes on the owner plus the surviving peers alone.
    pub dead_cpu: bool,
}

/// Timeline outcome of one co-executed kernel.
#[derive(Clone, Debug)]
pub(crate) struct CoexecOutcome {
    /// When the blocking host call returns.
    pub complete_at: SimTime,
    /// When the GPU device becomes free for the next kernel.
    pub gpu_busy_until: SimTime,
    /// Updated channel availability.
    pub hd_free: SimTime,
    /// Updated channel availability.
    pub dh_free: SimTime,
    /// When the final output content is usable on the CPU side.
    pub cpu_results_at: SimTime,
    /// When the merged output content is usable on the GPU side.
    pub gpu_results_at: SimTime,
    /// Per-kernel statistics.
    pub report: KernelReport,
    /// The CPU endpoint was declared permanently lost during this kernel
    /// (the run still completed on the survivors).
    pub lost_cpu: bool,
    /// The acting primary GPU was lost during this kernel — it missed a
    /// wave deadline, whether or not a surviving peer was promoted to
    /// finish the run. The runtime drops the primary card from its roster.
    pub lost_gpu: bool,
    /// Peer endpoints (by stable dev index) declared lost during this
    /// kernel; the runtime excludes them from later launches.
    pub lost_peers: Vec<u32>,
}

#[derive(Debug)]
enum Ev {
    GpuBegin,
    GpuWaveDone {
        gen: u32,
    },
    GpuWaveAbort {
        gen: u32,
    },
    GpuMergeDone,
    /// A non-owner endpoint's scheduler thread begins (index into `eps`).
    EpBegin {
        dev: u32,
    },
    SubkernelDone {
        idx: u32,
    },
    CopyDone {
        idx: u32,
    },
    /// Flush an endpoint's pending coalesced batch once its link frees up
    /// (pipeline depth ≥ 2 only; depth 1 ships each subkernel directly).
    HdFlush {
        dev: u32,
    },
    StatusArrived {
        seq: u32,
    },
    // Fault-recovery events: none of these are ever scheduled without an
    // injector, so the fault-free event stream is unchanged.
    /// Deadline check on a launched GPU wave.
    WaveWatchdog {
        gen: u32,
    },
    /// Deadline check on a launched endpoint subkernel.
    SubkernelWatchdog {
        idx: u32,
    },
    /// Deadline check on an enqueued transfer.
    TransferWatchdog {
        seq: u32,
    },
    /// A transfer attempt failed transiently (detected at its expected
    /// completion).
    TransferNack {
        seq: u32,
    },
    /// Backed-off retry of send `seq`'s batch (re-enqueues the same
    /// subkernels as a fresh send with an incremented attempt number).
    TransferRetry {
        seq: u32,
        attempt: u32,
    },
    /// A delivered transfer turned out corrupt (checksum verification).
    TransferCorrupt {
        seq: u32,
    },
}

struct Wave {
    start: u64,
    end: u64,
    started_at: SimTime,
    gen: u32,
    /// Completion-event token; `None` for a wave the injector killed (it
    /// will never complete — only its watchdog notices).
    token: Option<fluidicl_des::EventToken>,
}

struct Subkernel {
    /// Endpoint that claimed and executes this range.
    dev: u32,
    from: u64,
    to: u64,
    version: usize,
    duration: SimDuration,
    /// Bytes this subkernel newly dirtied (coalesced, across all output
    /// buffers) — its partial-transfer payload. Zero until the subkernel
    /// completes; only maintained when dirty-range transfers are on.
    dirty_bytes: u64,
    /// Whether the subkernel reported completion (watchdogs check this).
    done: bool,
    /// The claiming endpoint was promoted to owner while this subkernel
    /// was in flight: the claim went back to the frontier and the result
    /// is discarded when the completion event fires.
    abandoned: bool,
    /// Whether this is an online-profiling trial (CPU endpoint only).
    trial: bool,
    /// Transfer stall exposed before this subkernel launched (the wait
    /// between the previous subkernel finishing and this one starting) —
    /// fed to the chunk controller separately from compute time.
    exposed: SimDuration,
}

/// One in-order send (data + status) and its recovery bookkeeping. A send
/// carries one subkernel's results in the serial protocol, or a coalesced
/// batch of back-to-back completed subkernels under pipelined execution.
struct SendOp {
    /// Endpoint whose link carries this send.
    dev: u32,
    /// Subkernels whose results this send carries, in completion order.
    subs: Vec<u32>,
    /// Completion boundary the status message carries: the lowest `from`
    /// across the batch (the watermark of the whole batch).
    boundary: u64,
    /// Data payload bytes of the batch (excluding the status message) —
    /// the single source for both link accounting and merge charging.
    payload: u64,
    /// 1-based attempt number (retries and resends re-enqueue with +1).
    attempt: u32,
    /// Ownership epoch that enqueued this send. A delivery whose epoch is
    /// older than the current one is rejected at acceptance — its data
    /// landed on a dead owner (the epoch fence of owner failover).
    epoch: u32,
    /// Whether the send reached a terminal state (status arrived, failure
    /// detected, or timed out) — watchdogs no-op on resolved sends.
    resolved: bool,
    /// Whether the send was accepted and folded into [`Coverage`]. Owner
    /// failover un-credits the promoted endpoint's applied sends (their
    /// ranges leave coverage and return to the frontier), so this flag is
    /// the single source of truth for what coverage currently holds.
    applied: bool,
}

/// Per-endpoint protocol state: the paper's CPU-side loop, one instance
/// per non-owner device.
struct EpState {
    /// Stable endpoint index (0 = CPU, 1.. = peer GPUs).
    dev: u32,
    /// Cost model for this endpoint's claim/compute/ship loop.
    model: Box<dyn NonOwnerEndpoint>,
    /// This endpoint's adaptive chunk controller (§5.1).
    chunk: ChunkController,
    /// Clone of the launch used for this endpoint's subkernels: its
    /// `version` field is rewritten per subkernel instead of cloning the
    /// whole launch (the cached argument plan is shared through an `Arc`).
    launch: Launch,
    /// The endpoint's address space. `None` for the CPU endpoint, which
    /// computes directly in the runtime's CPU memory; peers get a fresh
    /// memory seeded from the (coherent) CPU copy at kernel start.
    mem: Option<Memory>,
    /// Cumulative dirty tracker of this endpoint's copy vs the original
    /// snapshot, one entry per `orig_snapshots` slot; what the merge tree
    /// walks for this endpoint.
    cum_dirty: Vec<DirtyTracker>,
    /// A subkernel is currently computing on this endpoint.
    busy: bool,
    /// Completed subkernels whose staging copy has not finished yet.
    unshipped: u32,
    /// When the endpoint last went idle; the gap until the next launch is
    /// the *exposed* transfer stall reported to the chunk controller.
    free_at: Option<SimTime>,
    /// This endpoint's upstream link availability. The CPU endpoint's
    /// clock is the machine's hd queue (threaded across kernels by the
    /// runtime); peer clocks are kernel-local.
    hd_free: SimTime,
    /// Copies that completed while the link was busy, waiting to be
    /// coalesced into one data+status batch at the next link-free instant.
    pending_batch: Vec<u32>,
    /// The endpoint missed a subkernel deadline and is permanently gone.
    lost: bool,
    /// The endpoint was promoted to acting owner: it stops claiming and
    /// shipping (the owner's wave walk is its execution now), but keeps
    /// its memory and `cum_dirty` as the merge destination.
    promoted: bool,
    /// A send stalled: this endpoint's in-order queue is blocked until the
    /// send's watchdog gives up on it.
    link_wedged: bool,
    /// The link was abandoned after a stalled send timed out; no further
    /// sends are attempted and this endpoint stops taking work.
    link_dead: bool,
    /// Rejected/failed sends awaiting a successful re-delivery. While a
    /// hole is open, later statuses from this endpoint are buffered
    /// instead of applied — coverage must only ever hold in-order-accepted
    /// data per link (paper §4.2's in-order queue argument, kept sound
    /// under reordering by recovery).
    holes: u32,
    /// Send sequence numbers received while a hole was open, applied once
    /// the re-delivery closes it.
    buffered_statuses: Vec<u32>,
    /// Work-groups this endpoint actually executed.
    wgs_executed: u64,
}

pub(crate) struct Coexec<'a> {
    input: CoexecInput<'a>,
    /// Non-owner endpoints: `eps[0]` is always the CPU, the rest peers.
    eps: Vec<EpState>,
    /// More than one non-owner: dev-tagged trace vocabulary and the
    /// merge-everything completion rule. With a single endpoint the engine
    /// degenerates to the paper's two-device protocol, byte-for-byte.
    multi: bool,
    /// One staging-copy engine per endpoint, each one copy at a time.
    staging: ChannelBank,
    // Geometry.
    total: u64,
    items: u64,
    out_bytes: u64,
    out_ids: Vec<BufferId>,
    /// Element length of each output buffer, captured at construction so the
    /// report's [`LaunchMeta`] survives a later GPU loss.
    out_lens: Vec<usize>,
    /// Total bytes of every launch buffer — what a peer's begin broadcast
    /// ships.
    launch_bytes: u64,
    orig_snapshots: Vec<(BufferId, Vec<f32>)>,
    // Dirty-range transfer modelling (config.dirty_range_transfers).
    /// Whether subkernels ship only their dirty ranges (paper §4.2's data
    /// message shrunk to what was actually written).
    dirty_enabled: bool,
    /// Total dirty payload bytes actually shipped to the owner — what the
    /// merge kernel is charged for.
    shipped_dirty_bytes: u64,
    // GPU (owner) state.
    gpu_next: u64,
    /// Start of the contiguous covered suffix — the owner's wave limit.
    watermark: u64,
    /// Merged set of ranges whose results have arrived at the owner.
    coverage: Coverage,
    wave: Option<Wave>,
    wave_gen: u32,
    gpu_exited_at: Option<SimTime>,
    merge_done_at: Option<SimTime>,
    gpu_wgs_executed: u64,
    // Shared non-owner state.
    /// Unclaimed work-group IDs; endpoints claim contiguous ranges off it.
    frontier: Frontier,
    subkernels: Vec<Subkernel>,
    /// When the non-owners finished computing the entire NDRange (frontier
    /// empty and every endpoint idle) — the paper's CPU-finished instant.
    cpu_finished_at: Option<SimTime>,
    /// CPU-endpoint subkernels launched so far (profiling-trial counter).
    ep0_subkernels: usize,
    // Pipelined execution (config.pipeline_depth).
    /// Bound on completed-but-unshipped subkernels per endpoint; 1 is the
    /// serial protocol (compute waits for the previous staging copy).
    depth: u32,
    // Online profiling (paper §6.6) — CPU endpoint only.
    trial_versions: usize,
    trial_results: Vec<(usize, SimDuration)>,
    selected_version: usize,
    // Channels.
    dh_free: SimTime,
    hd_bytes: u64,
    dh_bytes: u64,
    subkernel_log: Vec<(u64, SimDuration)>,
    trace: Vec<TraceEvent>,
    // Fault-recovery state. All of it stays at its initial value when no
    // injector is attached, and none of it affects the fault-free timeline.
    /// Every send attempted this kernel, in enqueue order.
    sends: Vec<SendOp>,
    /// The GPU missed a wave deadline and is considered permanently gone
    /// with no failover target: the survivors finish the range alone.
    gpu_lost: bool,
    /// Ownership epoch: 0 under the primary owner, incremented at every
    /// promotion. Sends are stamped with the epoch that enqueued them.
    epoch: u32,
    /// Acting owner after failover: index into `eps` of the promoted peer
    /// (`None` while the primary GPU owns the kernel).
    owner_ep: Option<usize>,
    /// Device model of the acting owner's card — the primary GPU's until
    /// a promotion swaps in the promoted peer's.
    owner_gpu: GpuModel,
    /// Device-to-host link of the acting owner.
    owner_d2h: LinkModel,
}

impl<'a> Coexec<'a> {
    pub(crate) fn new(input: CoexecInput<'a>) -> ClResult<Self> {
        let total = input.launch.ndrange.num_groups();
        let items = input.launch.ndrange.items_per_group();
        let out_ids = input.launch.output_buffers()?;
        let mut out_bytes = 0u64;
        let mut orig_snapshots = Vec::with_capacity(out_ids.len());
        for id in &out_ids {
            let mut data = input.snapshots.acquire();
            input.gpu_mem.copy_into(*id, &mut data)?;
            out_bytes += data.len() as u64 * 4;
            orig_snapshots.push((*id, data));
        }
        let out_lens: Vec<usize> = orig_snapshots.iter().map(|(_, d)| d.len()).collect();
        let min_chunk = u64::from(input.machine.cpu.threads());
        let chunk = ChunkController::new(
            total,
            input.config.initial_chunk_pct,
            input.config.step_pct,
            min_chunk,
            input.config.chunk_growth_tolerance,
        );
        let versions = input.launch.kernel.versions().len();
        let trial_versions = if input.config.online_profiling && versions > 1 {
            versions
        } else {
            0
        };
        let dirty_enabled = input.config.dirty_range_transfers;
        let fresh_trackers = |snaps: &[(BufferId, Vec<f32>)]| -> Vec<DirtyTracker> {
            snaps
                .iter()
                .map(|(_, orig)| DirtyTracker::new(orig.len()))
                .collect()
        };
        // Every buffer the launch touches, deduplicated: what a peer needs
        // resident before its first claim, and what its begin broadcast is
        // charged for.
        let plan = input.launch.plan()?;
        let mut all_ids: Vec<BufferId> = plan.ins.iter().chain(plan.outs.iter()).copied().collect();
        all_ids.sort_unstable_by_key(|id| id.0);
        all_ids.dedup();
        let mut launch_bytes = 0u64;
        for id in &all_ids {
            launch_bytes += input.cpu_mem.bytes_of(*id)?;
        }
        let mut eps = Vec::with_capacity(1 + input.peers.len());
        eps.push(EpState {
            dev: 0,
            model: Box::new(CpuEndpoint::new(input.machine)),
            chunk,
            launch: input.launch.clone(),
            mem: None,
            cum_dirty: fresh_trackers(&orig_snapshots),
            busy: false,
            unshipped: 0,
            free_at: None,
            hd_free: input.hd_free,
            pending_batch: Vec::new(),
            lost: input.dead_cpu,
            promoted: false,
            link_wedged: false,
            link_dead: false,
            holes: 0,
            buffered_statuses: Vec::new(),
            wgs_executed: 0,
        });
        for slot in &input.peers {
            // The peer's address space, seeded from the coherent CPU copy:
            // only what this launch touches is broadcast and resident.
            let mut mem = Memory::new();
            for id in &all_ids {
                mem.install(*id, input.cpu_mem.get(*id)?.to_vec());
            }
            let model = PeerGpuEndpoint::new(&slot.peer);
            let peer_chunk = ChunkController::new(
                total,
                input.config.initial_chunk_pct,
                input.config.step_pct,
                model.min_chunk(),
                input.config.chunk_growth_tolerance,
            );
            eps.push(EpState {
                dev: slot.dev,
                model: Box::new(model),
                chunk: peer_chunk,
                launch: input.launch.clone(),
                mem: Some(mem),
                cum_dirty: fresh_trackers(&orig_snapshots),
                busy: false,
                unshipped: 0,
                free_at: None,
                // Peer link clocks are kernel-local (the link belongs to
                // this kernel's shipping alone); the CPU's hd clock above
                // is the one the runtime threads across kernels.
                hd_free: SimTime::ZERO,
                pending_batch: Vec::new(),
                lost: false,
                promoted: false,
                link_wedged: false,
                link_dead: false,
                holes: 0,
                buffered_statuses: Vec::new(),
                wgs_executed: 0,
            });
        }
        let multi = eps.len() > 1;
        let staging = ChannelBank::new(eps.len(), SimTime::ZERO);
        let dh_free = input.dh_free;
        Ok(Coexec {
            eps,
            multi,
            staging,
            total,
            items,
            out_bytes,
            out_ids,
            out_lens,
            launch_bytes,
            orig_snapshots,
            dirty_enabled,
            shipped_dirty_bytes: 0,
            gpu_next: 0,
            watermark: total,
            coverage: Coverage::new(total),
            wave: None,
            wave_gen: 0,
            gpu_exited_at: None,
            merge_done_at: None,
            gpu_wgs_executed: 0,
            frontier: Frontier::new(total),
            subkernels: Vec::new(),
            cpu_finished_at: None,
            ep0_subkernels: 0,
            depth: input.config.pipeline_depth.max(1),
            trial_versions,
            trial_results: Vec::new(),
            selected_version: 0,
            dh_free,
            hd_bytes: 0,
            dh_bytes: 0,
            subkernel_log: Vec::new(),
            trace: Vec::new(),
            sends: Vec::new(),
            gpu_lost: false,
            epoch: 0,
            owner_ep: None,
            owner_gpu: input.machine.gpu.clone(),
            owner_d2h: input.machine.d2h.clone(),
            input,
        })
    }

    // ---- Fault plumbing -------------------------------------------------

    /// Whether fault injection (and therefore the watchdog machinery) is on.
    fn faulty(&self) -> bool {
        self.input.injector.is_some()
    }

    fn deadline(&self, expected: SimDuration) -> SimDuration {
        self.input.config.recovery.deadline(expected)
    }

    fn kill_gpu_wave(&mut self) -> bool {
        // The injected fault targets the primary card; a promoted peer's
        // waves are its own device's, which the sticky gpu-kill latch must
        // not reach (the failover would otherwise cascade unconditionally).
        if self.owner_ep.is_some() {
            return false;
        }
        self.input
            .injector
            .as_deref_mut()
            .is_some_and(FaultInjector::kill_gpu_wave)
    }

    fn kill_subkernel(&mut self) -> bool {
        self.input
            .injector
            .as_deref_mut()
            .is_some_and(FaultInjector::kill_cpu_subkernel)
    }

    fn transfer_fate(&mut self, attempt: u32) -> TransferFate {
        match self.input.injector.as_deref_mut() {
            Some(inj) => inj.transfer_fate(attempt),
            None => TransferFate::Deliver,
        }
    }

    /// Runs the co-execution to completion.
    pub(crate) fn run(mut self) -> ClResult<CoexecOutcome> {
        let start = self.input.enqueue_at;
        // Launch geometry first, so the trace is self-describing and the
        // protocol linter can check every later event against `total_wgs`.
        self.record(
            start,
            TraceKind::Enqueued {
                total_wgs: self.total,
                pipeline_depth: self.depth,
            },
        );
        let mut sim = Simulation::starting_at(start);
        // GPU: scratch buffers are acquired, then the kernel is launched.
        let gpu_begin = self.input.gpu_start.max(start)
            + self.input.scratch_setup
            + self.input.machine.gpu.launch_overhead();
        sim.schedule_at(gpu_begin, Ev::GpuBegin);
        // Non-owners: each scheduler thread begins once its data is ready —
        // the CPU as soon as the host copy is current, peers after their
        // launch-buffer broadcast and launch overhead.
        let ep_start = self.input.cpu_start.max(start);
        if !self.eps[0].lost {
            sim.schedule_at(ep_start, Ev::EpBegin { dev: 0 });
        }
        for e in 1..self.eps.len() {
            let delay = self.eps[e].model.begin_delay(self.launch_bytes);
            sim.schedule_at(ep_start + delay, Ev::EpBegin { dev: e as u32 });
        }

        let mut exec_err: Option<fluidicl_vcl::ClError> = None;
        while let Some((t, ev)) = sim.pop() {
            let r = self.dispatch(&mut sim, t, ev);
            if let Err(e) = r {
                exec_err = Some(e);
                break;
            }
        }
        if let Some(e) = exec_err {
            // The kernel is being abandoned mid-flight: the snapshot
            // allocations must still return to their pool (their content is
            // garbage now, but the accounting stays balanced).
            self.release_snapshots();
            return Err(e);
        }
        self.finish()
    }

    fn release_snapshots(&mut self) {
        for (_, v) in self.orig_snapshots.drain(..) {
            self.input.snapshots.release(v);
        }
    }

    fn dispatch(&mut self, sim: &mut Simulation<Ev>, t: SimTime, ev: Ev) -> ClResult<()> {
        match ev {
            Ev::GpuBegin => {
                self.record(t, TraceKind::GpuLaunch);
                self.start_wave(sim, t)?;
            }
            Ev::GpuWaveDone { gen } => self.on_wave_done(sim, t, gen)?,
            Ev::GpuWaveAbort { gen } => self.on_wave_abort(sim, t, gen)?,
            Ev::GpuMergeDone => self.on_merge_done(t),
            Ev::EpBegin { dev } => self.maybe_launch_subkernel(sim, t, dev as usize),
            Ev::SubkernelDone { idx } => self.on_subkernel_done(sim, t, idx)?,
            Ev::CopyDone { idx } => self.on_copy_done(sim, t, idx),
            Ev::HdFlush { dev } => self.on_hd_flush(sim, t, dev as usize),
            Ev::StatusArrived { seq } => self.on_status_arrived(sim, t, seq)?,
            Ev::WaveWatchdog { gen } => self.on_wave_watchdog(sim, t, gen)?,
            Ev::SubkernelWatchdog { idx } => self.on_subkernel_watchdog(sim, t, idx)?,
            Ev::TransferWatchdog { seq } => self.on_transfer_watchdog(t, seq),
            Ev::TransferNack { seq } => self.on_transfer_nack(sim, t, seq)?,
            Ev::TransferRetry { seq, attempt } => {
                let subs = self.sends[seq as usize].subs.clone();
                self.send_batch(sim, t, subs, attempt);
            }
            Ev::TransferCorrupt { seq } => self.on_transfer_corrupt(sim, t, seq)?,
        }
        Ok(())
    }

    fn record(&mut self, at: SimTime, kind: TraceKind) {
        self.trace.push(TraceEvent { at, kind });
    }

    // ---- GPU side -------------------------------------------------------

    fn gpu_profile(&self) -> &fluidicl_hetsim::KernelProfile {
        // The owner GPU (and any peer GPU) always runs the default kernel
        // version; alternates are CPU-oriented (paper §6.6 profiles CPU
        // kernels).
        &self.input.launch.kernel.default_version().profile
    }

    fn start_wave(&mut self, sim: &mut Simulation<Ev>, t: SimTime) -> ClResult<()> {
        let limit = self.watermark.min(self.total);
        if self.gpu_next >= limit {
            return self.gpu_exit(sim, t);
        }
        let width = self.owner_gpu.wave_width();
        let start = self.gpu_next;
        let end = (start + width).min(limit);
        let dur = self.owner_gpu.range_time(
            self.gpu_profile(),
            self.items,
            end - start,
            self.input.config.abort_mode,
        );
        self.wave_gen += 1;
        let gen = self.wave_gen;
        self.record(
            t,
            TraceKind::GpuWaveStart {
                from: start,
                to: end,
            },
        );
        // A killed wave starts but never completes: its completion event is
        // simply never scheduled, and only the watchdog below notices.
        let token = if self.kill_gpu_wave() {
            None
        } else {
            Some(sim.schedule_at(t + dur, Ev::GpuWaveDone { gen }))
        };
        if self.faulty() {
            sim.schedule_at(t + self.deadline(dur), Ev::WaveWatchdog { gen });
        }
        self.wave = Some(Wave {
            start,
            end,
            started_at: t,
            gen,
            token,
        });
        Ok(())
    }

    fn on_wave_watchdog(&mut self, sim: &mut Simulation<Ev>, t: SimTime, gen: u32) -> ClResult<()> {
        let Some(wave) = self.wave.take() else {
            return Ok(());
        };
        if wave.gen != gen {
            self.wave = Some(wave);
            return Ok(());
        }
        // The wave is still open past its deadline: the acting owner is
        // gone, and its executed prefix died with its memory.
        if let Some(token) = wave.token {
            sim.cancel(token);
        }
        if let Some(p) = self.owner_ep.take() {
            // A promoted owner died in turn. Its pre-promotion results were
            // already rolled back when it was promoted, and its dirty
            // accounting cleared, so the merge folds nothing from it; its
            // post-promotion wave writes die with its memory and the next
            // acting owner's walk re-covers them.
            self.eps[p].lost = true;
        }
        self.record(
            t,
            TraceKind::DeviceLost {
                device: DeviceKind::Gpu,
            },
        );
        // Owner failover (epoch-fenced): promote the lowest surviving peer
        // to owner instead of abandoning the run to survivor-finishes.
        if self.input.config.recovery.promote_on_owner_loss {
            let candidate = self
                .eps
                .iter()
                .position(|e| e.dev > 0 && !e.lost && !e.promoted);
            if let Some(p) = candidate {
                return self.promote_owner(sim, t, p);
            }
        }
        // No failover target: the non-owner schedulers keep claiming
        // (their gpu-exit guard never fires, since a dead GPU never
        // exits) and the run completes on the survivors.
        self.gpu_lost = true;
        if self.eps.iter().all(|e| e.lost || e.promoted) {
            return Err(ClError::DeviceLost {
                device: DeviceKind::Gpu,
                detail: "GPU wave missed its watchdog deadline after the CPU was already lost"
                    .into(),
            });
        }
        Ok(())
    }

    /// Epoch-fenced ownership migration (owner failover): endpoint `p`
    /// becomes the acting owner. It inherits the surviving endpoints'
    /// arrival [`Coverage`] — with its *own* prior contributions rolled
    /// back — returns its claimed and delivered ranges to the [`Frontier`]
    /// for the surviving non-owners, and resumes the owner's wave walk
    /// from 0 against the rebuilt watermark — the old owner's executed
    /// prefix died with its memory. Every send is stamped with the epoch
    /// that enqueued it; a delivery from a previous epoch is rejected at
    /// acceptance (its data landed on a dead device), which is sound
    /// because an unaccepted range is never part of the covered suffix,
    /// so the new owner's walk re-executes it.
    fn promote_owner(&mut self, sim: &mut Simulation<Ev>, t: SimTime, p: usize) -> ClResult<()> {
        self.epoch += 1;
        self.eps[p].promoted = true;
        let dev = self.eps[p].dev;
        self.record(
            t,
            TraceKind::OwnerPromoted {
                dev,
                epoch: self.epoch,
            },
        );
        // The promoted endpoint stops being a claimant: its in-flight
        // subkernel is abandoned (the result is discarded — the owner's
        // walk covers the range) and its claimed-but-undelivered ranges go
        // back to the frontier for the survivors.
        for sk in self.subkernels.iter_mut() {
            if sk.dev == dev && !sk.done {
                sk.abandoned = true;
            }
        }
        self.return_lost_ranges(p);
        // Un-credit the promoted endpoint's own delivered results. Its
        // memory already holds every subkernel it completed, and the owner
        // wave walk re-executes everything below the watermark in that
        // same memory — for a read-modify-write kernel a second pass
        // double-applies the update, so re-execution is only
        // value-identical against pristine inputs. Roll the endpoint back
        // to a pristine owner instead: its delivered ranges leave coverage
        // and return to the frontier, its output buffers are restored from
        // the original snapshot, and its dirty accounting is cleared.
        // Everything it ever computed is then recomputed exactly once — by
        // its own wave walk below the rebuilt watermark, or by a surviving
        // claimant whose results fold in at the merge.
        let mut credited: Vec<u32> = Vec::new();
        for s in self.sends.iter_mut().filter(|s| s.applied && s.dev == dev) {
            s.applied = false;
            credited.extend_from_slice(&s.subs);
        }
        credited.sort_unstable();
        credited.dedup();
        let mut coverage = Coverage::new(self.total);
        for s in self.sends.iter().filter(|s| s.applied) {
            for &sub in &s.subs {
                let sk = &self.subkernels[sub as usize];
                coverage.add(sk.from, sk.to);
            }
        }
        self.coverage = coverage;
        self.watermark = self.coverage.suffix_start();
        for sub in credited {
            let sk = &self.subkernels[sub as usize];
            self.frontier.return_range(sk.from, sk.to);
        }
        let mem = self.eps[p]
            .mem
            .as_mut()
            .expect("a promoted peer has its own address space");
        for (id, orig) in &self.orig_snapshots {
            mem.get_mut(*id)?.copy_from_slice(orig);
        }
        self.eps[p].cum_dirty = self
            .orig_snapshots
            .iter()
            .map(|(_, orig)| DirtyTracker::new(orig.len()))
            .collect();
        // Fresh in-order view per epoch: open holes and buffered statuses
        // described the dead owner's receive queue. Stale deliveries are
        // rejected by the epoch fence instead, and retries re-enqueue
        // under the current epoch and are accepted normally.
        for e in self.eps.iter_mut() {
            e.holes = 0;
            e.buffered_statuses.clear();
        }
        let slot = self
            .input
            .peers
            .iter()
            .find(|s| s.dev == dev)
            .expect("promoted endpoint is a configured peer");
        self.owner_gpu = slot.peer.gpu.clone();
        self.owner_d2h = slot.peer.d2h.clone();
        self.owner_ep = Some(p);
        self.gpu_next = 0;
        sim.schedule_at(t + self.owner_gpu.launch_overhead(), Ev::GpuBegin);
        // Survivors take over the returned work immediately.
        for e in 0..self.eps.len() {
            self.maybe_launch_subkernel(sim, t, e);
        }
        Ok(())
    }

    fn on_wave_done(&mut self, sim: &mut Simulation<Ev>, t: SimTime, gen: u32) -> ClResult<()> {
        let Some(wave) = self.wave.take() else {
            return Ok(());
        };
        if wave.gen != gen {
            self.wave = Some(wave);
            return Ok(());
        }
        // Work-groups covered by non-owner results that arrived *mid-wave*
        // abort at an in-loop check and never write; the rest complete.
        // Without in-loop checks everything that started runs to
        // completion.
        let exec_end = if self.input.config.abort_mode.allows_early_abort() {
            wave.end.min(self.watermark.max(wave.start))
        } else {
            wave.end
        };
        if exec_end > wave.start {
            let launch = self.input.launch;
            let jobs = self.input.config.intra_launch_jobs;
            // Waves execute in the acting owner's address space: the
            // primary GPU's, or a promoted peer's own memory.
            let mem: &mut Memory = match self.owner_ep {
                Some(p) => self.eps[p]
                    .mem
                    .as_mut()
                    .expect("promoted owner is a peer with its own memory"),
                None => self.input.gpu_mem,
            };
            execute_groups_par(launch, mem, wave.start, exec_end, jobs)?;
            self.gpu_wgs_executed += exec_end - wave.start;
        }
        self.record(
            t,
            TraceKind::GpuWaveDone {
                from: wave.start,
                to: wave.end,
                executed_to: exec_end.max(wave.start),
            },
        );
        self.gpu_next = wave.end;
        self.start_wave(sim, t)
    }

    fn on_wave_abort(&mut self, sim: &mut Simulation<Ev>, t: SimTime, gen: u32) -> ClResult<()> {
        let Some(wave) = self.wave.take() else {
            return Ok(());
        };
        if wave.gen != gen {
            self.wave = Some(wave);
            return Ok(());
        }
        // The whole wave was covered by the non-owners: nothing is written,
        // the GPU kernel proceeds to its exit check with `gpu_next`
        // unchanged.
        debug_assert!(self.watermark <= wave.start);
        self.record(
            t,
            TraceKind::GpuWaveAborted {
                from: wave.start,
                to: wave.end,
            },
        );
        self.start_wave(sim, t)
    }

    fn gpu_exit(&mut self, sim: &mut Simulation<Ev>, t: SimTime) -> ClResult<()> {
        self.gpu_exited_at = Some(t);
        self.record(t, TraceKind::GpuExit);
        if self.watermark < self.total {
            // Non-owner data arrived: run the diff-merge kernel (paper
            // §4.3). Under dirty-range transfers the merge only walks the
            // bytes that were actually shipped, not whole output buffers.
            let merge_bytes = if self.dirty_enabled {
                self.shipped_dirty_bytes
            } else {
                self.out_bytes
            };
            let dur = self.owner_gpu.merge_time(merge_bytes);
            sim.schedule_at(t + dur, Ev::GpuMergeDone);
        } else {
            // GPU executed the entire NDRange; the merge is skipped.
            self.merge_results()?;
            self.on_merge_done(t);
        }
        Ok(())
    }

    fn on_merge_done(&mut self, t: SimTime) {
        if self.merge_done_at.is_none() {
            self.merge_done_at = Some(t);
            self.record(t, TraceKind::MergeDone);
        }
    }

    /// Folds every endpoint's computed data into the GPU buffers exactly as
    /// the merge kernel of paper Figure 9 does — element-wise, wherever an
    /// endpoint's copy differs from the pristine original. With several
    /// endpoints this is the merge tree: a sequential fold, CPU first, then
    /// each peer; claimed ranges are disjoint, so the fold order never
    /// changes the result.
    fn merge_results(&mut self) -> ClResult<()> {
        // Destination: the acting owner's address space — a promoted
        // peer's own memory after failover, the primary GPU's otherwise.
        // The promoted owner's copy is taken out for the fold and put back
        // afterwards, so the source loop can still borrow `eps` freely.
        // (On the error paths the kernel is abandoned and the copy stays
        // out — harmless, nothing reads it again.)
        let owner = self.owner_ep;
        let mut promoted_mem = owner.and_then(|p| self.eps[p].mem.take());
        for e in 0..self.eps.len() {
            if owner == Some(e) {
                continue;
            }
            // The endpoint's address space and the owner's are separate
            // fields, so the source copy is borrowed in place — no
            // temporary clone per buffer.
            let ep = &self.eps[e];
            let src_mem: &Memory = match ep.mem.as_ref() {
                Some(m) => m,
                None => self.input.cpu_mem,
            };
            let gpu_mem: &mut Memory = match promoted_mem.as_mut() {
                Some(m) => m,
                None => self.input.gpu_mem,
            };
            for (j, (id, orig)) in self.orig_snapshots.iter().enumerate() {
                let src = src_mem.get(*id)?;
                let dst = gpu_mem.get_mut(*id)?;
                if dst.len() != src.len() || src.len() != orig.len() {
                    // A mis-sized buffer mid-simulation is a protocol breach,
                    // not a programming error in the merge itself: surface it
                    // through the runtime's error path instead of panicking.
                    return Err(ClError::ProtocolViolation {
                        kernel: self.input.launch.kernel.name().to_string(),
                        detail: format!(
                            "diff-merge size mismatch on buffer {}: gpu {} vs cpu {} vs original {} elements",
                            id.0,
                            dst.len(),
                            src.len(),
                            orig.len()
                        ),
                    });
                }
                // With dirty tracking the merge walks only what the
                // endpoint actually changed; `cum_dirty` covers every
                // element where its copy differs from `orig` (exactly, or
                // rounded to pages on huge buffers — the extra elements are
                // bitwise clean), so this is functionally identical to the
                // full-buffer merge.
                if self.dirty_enabled {
                    diff_merge_tracked(dst, src, orig, &ep.cum_dirty[j])?;
                } else {
                    fluidicl_vcl::diff_merge(dst, src, orig);
                }
            }
        }
        if let Some(p) = owner {
            self.eps[p].mem = promoted_mem;
        }
        Ok(())
    }

    // ---- Non-owner side -------------------------------------------------

    fn cpu_profile(&self, version: usize) -> &fluidicl_hetsim::KernelProfile {
        &self.input.launch.kernel.versions()[version].profile
    }

    fn maybe_launch_subkernel(&mut self, sim: &mut Simulation<Ev>, t: SimTime, d: usize) {
        // The scheduler stops once the GPU kernel has exited (paper §5),
        // when the frontier is drained, when this endpoint was declared
        // lost, or when its link was abandoned (further results could never
        // reach the GPU, so the GPU covers the rest).
        {
            let ep = &self.eps[d];
            if self.gpu_exited_at.is_some()
                || self.frontier.is_empty()
                || ep.lost
                || ep.promoted
                || ep.link_dead
                || ep.busy
            {
                return;
            }
            // Bounded in-flight window: with `depth` subkernels already
            // computed but not yet staged, the scheduler waits for a copy
            // to complete before taking more work. Depth 1 is the serial
            // protocol — every subkernel waits for the previous one's
            // staging copy.
            if ep.unshipped >= self.depth {
                return;
            }
        }
        let exposed = self.eps[d]
            .free_at
            .take()
            .map_or(SimDuration::ZERO, |f| t.saturating_since(f));
        let idx = self.subkernels.len();
        let trial = d == 0 && self.ep0_subkernels < self.trial_versions;
        let version = if d == 0 {
            if trial {
                self.ep0_subkernels
            } else {
                self.selected_version
            }
        } else {
            0
        };
        let want = if trial {
            // Profiling trials run a small fixed allocation (paper §6.6).
            self.eps[d].model.min_chunk()
        } else {
            let avail = self.frontier.available();
            self.eps[d].chunk.next_chunk(avail)
        };
        let Some((from, to)) = self.frontier.claim(want) else {
            return;
        };
        let wgs = to - from;
        let duration = {
            let profile = if d == 0 {
                self.cpu_profile(version)
            } else {
                self.gpu_profile()
            };
            self.eps[d]
                .model
                .compute_time(profile, self.items, wgs, self.input.config.wg_split)
        };
        let dev = self.eps[d].dev;
        if self.multi {
            self.record(
                t,
                TraceKind::EpSubkernelStart {
                    dev,
                    from,
                    to,
                    version,
                },
            );
        } else {
            self.record(t, TraceKind::CpuSubkernelStart { from, to, version });
        }
        self.subkernels.push(Subkernel {
            dev,
            from,
            to,
            version,
            duration,
            dirty_bytes: 0,
            done: false,
            abandoned: false,
            trial,
            exposed,
        });
        if d == 0 {
            self.ep0_subkernels += 1;
        }
        self.eps[d].busy = true;
        // A killed subkernel launches but never reports completion (and
        // never executes, so no partial writes are published); only its
        // watchdog notices.
        if !self.kill_subkernel() {
            sim.schedule_at(t + duration, Ev::SubkernelDone { idx: idx as u32 });
        }
        if self.faulty() {
            sim.schedule_at(
                t + self.deadline(duration),
                Ev::SubkernelWatchdog { idx: idx as u32 },
            );
        }
    }

    /// Index into `eps` of the endpoint that owns subkernel `idx`.
    fn ep_of(&self, idx: u32) -> usize {
        let dev = self.subkernels[idx as usize].dev;
        self.eps
            .iter()
            .position(|e| e.dev == dev)
            .expect("subkernel dev indexes a live endpoint")
    }

    fn on_subkernel_watchdog(
        &mut self,
        sim: &mut Simulation<Ev>,
        t: SimTime,
        idx: u32,
    ) -> ClResult<()> {
        let d = self.ep_of(idx);
        if self.subkernels[idx as usize].done
            || self.subkernels[idx as usize].abandoned
            || self.eps[d].lost
            || self.eps[d].promoted
        {
            return Ok(());
        }
        // The subkernel is still open past its deadline: the endpoint is
        // gone. Its claimed-but-unexecuted range (and any completed ranges
        // that never made it into a send) return to the frontier, where the
        // surviving endpoints — or the owner's descent of everything below
        // the watermark — pick them up.
        self.eps[d].lost = true;
        let dev = self.eps[d].dev;
        if self.multi {
            self.record(t, TraceKind::NonOwnerLost { dev });
        } else {
            self.record(
                t,
                TraceKind::DeviceLost {
                    device: DeviceKind::Cpu,
                },
            );
        }
        self.return_lost_ranges(d);
        if self.gpu_lost && self.eps.iter().all(|e| e.lost || e.promoted) {
            // Name the device that actually missed the deadline: the CPU
            // endpoint or a peer GPU (previously this always blamed the
            // CPU, even when the last survivor was a peer card).
            return Err(ClError::DeviceLost {
                device: if dev == 0 {
                    DeviceKind::Cpu
                } else {
                    DeviceKind::Gpu
                },
                detail: if dev == 0 {
                    "CPU subkernel missed its watchdog deadline after the GPU was already lost"
                        .into()
                } else {
                    format!(
                        "peer GPU ep{dev} subkernel missed its watchdog deadline after the GPU was already lost"
                    )
                },
            });
        }
        // Survivors take over the returned work immediately.
        for e in 0..self.eps.len() {
            self.maybe_launch_subkernel(sim, t, e);
        }
        Ok(())
    }

    /// Returns a lost endpoint's claimed-but-undelivered ranges to the
    /// frontier: the killed in-flight subkernel, plus every completed
    /// subkernel that never entered a send (in-flight sends still deliver
    /// and count — their data reaches the owner regardless of the device's
    /// fate, exactly like the paper's in-order queue semantics).
    fn return_lost_ranges(&mut self, d: usize) {
        let dev = self.eps[d].dev;
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for (i, sk) in self.subkernels.iter().enumerate() {
            if sk.dev != dev {
                continue;
            }
            if !sk.done {
                ranges.push((sk.from, sk.to));
                continue;
            }
            let sent = self.sends.iter().any(|s| s.subs.contains(&(i as u32)));
            if !sent {
                ranges.push((sk.from, sk.to));
            }
        }
        // In multi-endpoint mode the dead endpoint's unsent results must
        // never ship (another endpoint re-claims those ranges); the legacy
        // two-device protocol lets a last in-flight copy ship as usual —
        // the returned range is unreachable there anyway.
        if self.multi {
            self.eps[d].pending_batch.clear();
        }
        for (f, t) in ranges {
            self.frontier.return_range(f, t);
        }
    }

    fn on_subkernel_done(
        &mut self,
        sim: &mut Simulation<Ev>,
        t: SimTime,
        idx: u32,
    ) -> ClResult<()> {
        let d = self.ep_of(idx);
        if self.subkernels[idx as usize].abandoned {
            // The endpoint was promoted to owner while this subkernel was
            // in flight: its claim went back to the frontier at promotion
            // and the result is discarded without executing — the owner's
            // wave walk (or a surviving claimant) covers the range.
            self.eps[d].busy = false;
            return Ok(());
        }
        let (dev, from, to, version, duration, exposed, trial) = {
            let sk = &mut self.subkernels[idx as usize];
            sk.done = true;
            (
                sk.dev,
                sk.from,
                sk.to,
                sk.version,
                sk.duration,
                sk.exposed,
                sk.trial,
            )
        };
        let jobs = self.input.config.intra_launch_jobs;
        {
            let ep = &mut self.eps[d];
            ep.busy = false;
            ep.free_at = Some(t);
            // The subkernel really computes its work-groups on the
            // endpoint's copy, using the selected kernel version's body.
            ep.launch.version = version;
            let mem: &mut Memory = match ep.mem.as_mut() {
                Some(m) => m,
                None => self.input.cpu_mem,
            };
            execute_groups_par(&ep.launch, mem, from, to, jobs)?;
        }
        // Dirty-range capture: diff the endpoint's copy against the
        // pristine original to learn exactly which elements this subkernel
        // wrote (the same write evidence the shadowed sanitizer run
        // produces, obtained blockwise). The diff is cumulative across the
        // endpoint's subkernels, so this subkernel's payload is the newly
        // dirtied delta.
        let mut dirty_delta = 0u64;
        if self.dirty_enabled {
            let snaps = &self.orig_snapshots;
            let ep = &mut self.eps[d];
            let mem: &Memory = match ep.mem.as_ref() {
                Some(m) => m,
                None => self.input.cpu_mem,
            };
            for (j, (id, orig)) in snaps.iter().enumerate() {
                let cur = DirtyTracker::from_diff(mem.get(*id)?, orig);
                let prev = ep.cum_dirty[j].element_count();
                dirty_delta += 4 * cur.element_count().saturating_sub(prev) as u64;
                ep.cum_dirty[j] = cur;
            }
            self.subkernels[idx as usize].dirty_bytes = dirty_delta;
        }
        let wgs = to - from;
        self.eps[d].wgs_executed += wgs;
        self.subkernel_log.push((wgs, duration));
        if self.multi {
            self.record(t, TraceKind::EpSubkernelDone { dev, from, to });
        } else {
            self.record(t, TraceKind::CpuSubkernelDone { from, to });
        }
        if trial {
            self.trial_results.push((version, duration.div_count(wgs)));
            if self.trial_results.len() == self.trial_versions {
                self.selected_version = self
                    .trial_results
                    .iter()
                    .min_by_key(|(_, per_wg)| *per_wg)
                    .map(|(v, _)| *v)
                    .unwrap_or(0);
            }
        } else {
            self.eps[d].chunk.observe(wgs, duration, exposed);
        }
        if self.cpu_finished_at.is_none()
            && self.frontier.is_empty()
            && self.eps.iter().all(|e| !e.busy || e.lost)
        {
            // The non-owners computed the entire NDRange: with a single
            // endpoint the final data lives on the CPU (paper §4.2) and
            // the GPU execution's results are ignored.
            self.cpu_finished_at = Some(t);
        }
        if self.gpu_lost {
            // No owner to ship to: skip the host copy and the transfer and
            // keep claiming — the survivors are finishing the range alone.
            self.maybe_launch_subkernel(sim, t, d);
            return Ok(());
        }
        if self.gpu_exited_at.is_some() {
            // The kernel already completed on the GPU; the scheduler exits
            // without copying or transferring this late result.
            return Ok(());
        }
        // Intermediate staging copy so the next subkernel can proceed while
        // the data is in flight (paper §5.5); with dirty tracking only the
        // newly dirtied ranges are staged. Each endpoint's staging engine
        // copies one subkernel at a time, in completion order.
        let copy_bytes = if self.dirty_enabled {
            dirty_delta
        } else {
            self.out_bytes
        };
        let copy = self.eps[d].model.stage_time(copy_bytes);
        self.eps[d].unshipped += 1;
        let copy_done = self.staging.get_mut(d).enqueue(t, copy);
        sim.schedule_at(copy_done, Ev::CopyDone { idx });
        // Pipelined launch: with depth ≥ 2 the next subkernel starts now,
        // while this one's data+status is still in flight. At depth 1 the
        // window is full (`unshipped == 1`) and this is a no-op — the
        // launch happens at copy completion, exactly the serial protocol.
        self.maybe_launch_subkernel(sim, t, d);
        Ok(())
    }

    fn on_copy_done(&mut self, sim: &mut Simulation<Ev>, t: SimTime, idx: u32) {
        let d = self.ep_of(idx);
        self.eps[d].unshipped = self.eps[d].unshipped.saturating_sub(1);
        if self.multi && (self.eps[d].lost || self.eps[d].promoted) {
            // The endpoint died (or was promoted to owner) after this copy
            // was enqueued; its range already returned to the frontier, so
            // the result must not ship (a survivor owns the range now).
            return;
        }
        if self.depth <= 1 {
            // Serial protocol: each subkernel ships alone, immediately.
            self.send_batch(sim, t, vec![idx], 1);
        } else if !self.eps[d].pending_batch.is_empty() {
            // A flush is already scheduled for the link-free instant; this
            // subkernel's results join the batch.
            self.eps[d].pending_batch.push(idx);
        } else if self.eps[d].hd_free <= t {
            // The link is idle: nothing to coalesce with, ship now.
            self.send_batch(sim, t, vec![idx], 1);
        } else {
            // The link is busy: open a batch and flush it the moment the
            // queue frees up, coalescing any copies that complete until
            // then into one data payload + one status message.
            let flush_at = self.eps[d].hd_free;
            self.eps[d].pending_batch.push(idx);
            sim.schedule_at(flush_at, Ev::HdFlush { dev: d as u32 });
        }
        self.maybe_launch_subkernel(sim, t, d);
    }

    /// Ships an endpoint's pending coalesced batch. Scheduled for the
    /// instant its link was expected to free up when the batch was opened;
    /// the gates in [`Coexec::send_batch`] drop it if the world changed
    /// since (GPU exited or lost, link wedged or abandoned).
    fn on_hd_flush(&mut self, sim: &mut Simulation<Ev>, t: SimTime, d: usize) {
        let batch = std::mem::take(&mut self.eps[d].pending_batch);
        if !batch.is_empty() {
            self.send_batch(sim, t, batch, 1);
        }
    }

    /// Batch payload bytes (excluding the status message): the dirty sum
    /// across the batch, or one whole-buffer image in legacy mode (a batch
    /// ships the buffers once, regardless of how many subkernels it
    /// carries — later results overwrite earlier ones in the same image).
    fn batch_payload(&self, subs: &[u32]) -> u64 {
        if self.dirty_enabled {
            subs.iter()
                .map(|&i| self.subkernels[i as usize].dirty_bytes)
                .sum()
        } else {
            self.out_bytes
        }
    }

    /// Ship accounting shared by the healthy delivery path and the
    /// recovery path that accepts a corrupted-in-vain delivery: the bytes
    /// that actually landed on the GPU are what the merge kernel is
    /// charged for.
    fn note_shipped(&mut self, seq: u32) {
        if self.dirty_enabled {
            self.shipped_dirty_bytes += self.sends[seq as usize].payload;
        }
    }

    /// Enqueues a batch of completed subkernels as one data + status send
    /// on the owning endpoint's in-order queue (attempt 1), or re-enqueues
    /// a batch after a transient failure or a checksum rejection
    /// (attempt > 1). The attached injector decides the send's fate;
    /// without one every send simply delivers.
    fn send_batch(&mut self, sim: &mut Simulation<Ev>, t: SimTime, subs: Vec<u32>, attempt: u32) {
        let d = self.ep_of(subs[0]);
        if self.gpu_exited_at.is_some()
            || self.gpu_lost
            || self.eps[d].link_wedged
            || self.eps[d].link_dead
            || (self.multi && (self.eps[d].lost || self.eps[d].promoted))
        {
            // Nobody is listening (or the queue is blocked, or the range
            // went back to the frontier): the send is dropped; the GPU
            // covers the range below the watermark itself.
            return;
        }
        // The status message carries the lowest completion boundary in the
        // batch — coverage only ever holds data that is on the GPU.
        let boundary = subs
            .iter()
            .map(|&i| self.subkernels[i as usize].from)
            .min()
            .expect("a send carries at least one subkernel");
        // In-order queue per endpoint: computed data first, then the status
        // message, so a work-group only counts as complete when its results
        // are already on the GPU (paper §4.2). With dirty tracking the data
        // message carries only the batch's coalesced dirty ranges.
        let payload = self.batch_payload(&subs);
        let dirty_bytes = self.dirty_enabled.then_some(payload);
        let fate = self.transfer_fate(attempt);
        let data_arrival = self.eps[d].hd_free.max(t) + self.eps[d].model.ship_time(payload);
        let status_arrival = data_arrival + self.eps[d].model.ship_time(STATUS_MSG_BYTES);
        self.hd_bytes += payload + STATUS_MSG_BYTES;
        let bytes = payload + STATUS_MSG_BYTES;
        let dev = self.eps[d].dev;
        if self.multi {
            self.record(
                t,
                TraceKind::EpSend {
                    dev,
                    boundary,
                    bytes,
                    dirty_bytes,
                    subkernels: subs.len() as u32,
                },
            );
        } else if subs.len() == 1 {
            self.record(
                t,
                TraceKind::HdEnqueued {
                    boundary,
                    bytes,
                    dirty_bytes,
                },
            );
        } else {
            self.record(
                t,
                TraceKind::CoalescedSend {
                    boundary,
                    bytes,
                    dirty_bytes,
                    subkernels: subs.len() as u32,
                },
            );
        }
        let seq = self.sends.len() as u32;
        self.sends.push(SendOp {
            dev,
            subs,
            boundary,
            payload,
            attempt,
            epoch: self.epoch,
            resolved: false,
            applied: false,
        });
        match fate {
            TransferFate::Deliver => {
                self.eps[d].hd_free = status_arrival;
                self.note_shipped(seq);
                sim.schedule_at(status_arrival, Ev::StatusArrived { seq });
                if self.faulty() {
                    let deadline = self.deadline(status_arrival.saturating_since(t));
                    sim.schedule_at(t + deadline, Ev::TransferWatchdog { seq });
                }
            }
            TransferFate::Stall => {
                // The op never completes and the in-order queue is blocked
                // behind it; only the watchdog gets the link unstuck (by
                // abandoning it).
                self.eps[d].link_wedged = true;
                let deadline = self.deadline(status_arrival.saturating_since(t));
                sim.schedule_at(t + deadline, Ev::TransferWatchdog { seq });
            }
            TransferFate::TransientFail => {
                // The link time is spent, but the payload is lost; the
                // failure is detected when the completion should have come.
                self.eps[d].hd_free = status_arrival;
                sim.schedule_at(status_arrival, Ev::TransferNack { seq });
            }
            TransferFate::CorruptPayload => {
                // Delivered on time, but the payload arrives damaged; the
                // checksum check at data arrival catches it.
                self.eps[d].hd_free = status_arrival;
                sim.schedule_at(data_arrival, Ev::TransferCorrupt { seq });
            }
            TransferFate::CorruptStatus => {
                // The status word itself is damaged; caught when the status
                // message arrives.
                self.eps[d].hd_free = status_arrival;
                sim.schedule_at(status_arrival, Ev::TransferCorrupt { seq });
            }
        }
    }

    /// Index into `eps` of the endpoint that owns send `seq`.
    fn ep_of_send(&self, seq: u32) -> usize {
        let dev = self.sends[seq as usize].dev;
        self.eps
            .iter()
            .position(|e| e.dev == dev)
            .expect("send dev indexes a live endpoint")
    }

    fn on_status_arrived(
        &mut self,
        sim: &mut Simulation<Ev>,
        t: SimTime,
        seq: u32,
    ) -> ClResult<()> {
        self.sends[seq as usize].resolved = true;
        if self.gpu_exited_at.is_some() || self.gpu_lost {
            // Late message: discarded via buffer versions (paper §5.3).
            return Ok(());
        }
        self.accept_status(sim, t, seq)
    }

    /// Receiver-side acceptance of a delivered send. While an earlier send
    /// from the same endpoint awaits re-delivery (an open *hole*), later
    /// statuses from that endpoint are buffered: applying them early would
    /// cover data that is not on the GPU yet. The successful re-delivery
    /// closes the hole and applies everything buffered behind it.
    fn accept_status(&mut self, sim: &mut Simulation<Ev>, t: SimTime, seq: u32) -> ClResult<()> {
        let d = self.ep_of_send(seq);
        // Epoch fence (owner failover): a delivery enqueued under a
        // previous owner landed on a dead device. It is rejected here —
        // never folded into coverage — which keeps the range below the
        // watermark, where the acting owner's wave walk re-executes it.
        // Retries of the same batch re-enqueue under the current epoch and
        // are accepted normally.
        if self.sends[seq as usize].epoch != self.epoch {
            let (dev, boundary) = {
                let s = &self.sends[seq as usize];
                (s.dev, s.boundary)
            };
            self.record(t, TraceKind::EpochRejected { dev, boundary });
            return Ok(());
        }
        let attempt = self.sends[seq as usize].attempt;
        if attempt > 1 {
            self.eps[d].holes = self.eps[d].holes.saturating_sub(1);
        }
        if self.eps[d].holes > 0 {
            self.eps[d].buffered_statuses.push(seq);
            return Ok(());
        }
        let mut seqs = vec![seq];
        seqs.append(&mut self.eps[d].buffered_statuses);
        for s in seqs {
            self.apply_arrival(sim, t, s)?;
        }
        Ok(())
    }

    /// Folds an accepted send's ranges into coverage, moves the watermark
    /// to the new contiguous-suffix start, and aborts a fully covered
    /// running wave.
    fn apply_arrival(&mut self, sim: &mut Simulation<Ev>, t: SimTime, seq: u32) -> ClResult<()> {
        let (dev, boundary) = {
            let s = &self.sends[seq as usize];
            (s.dev, s.boundary)
        };
        self.sends[seq as usize].applied = true;
        for i in 0..self.sends[seq as usize].subs.len() {
            let sub = self.sends[seq as usize].subs[i];
            let sk = &self.subkernels[sub as usize];
            self.coverage.add(sk.from, sk.to);
        }
        self.watermark = self.coverage.suffix_start();
        if self.multi {
            self.record(
                t,
                TraceKind::EpStatus {
                    dev,
                    boundary,
                    watermark: self.watermark,
                },
            );
        } else {
            self.record(t, TraceKind::StatusArrived { boundary });
        }
        // A running wave fully covered by the non-owners aborts at its next
        // in-loop check (paper §6.4).
        if !self.input.config.abort_mode.allows_early_abort() {
            return Ok(());
        }
        let Some(wave) = &self.wave else {
            return Ok(());
        };
        if self.watermark > wave.start {
            return Ok(());
        }
        let Some(quantum) = self.owner_gpu.abort_quantum(
            self.gpu_profile(),
            self.items,
            self.input.config.abort_mode,
        ) else {
            // An abort mode that allows early abort always defines a check
            // quantum; a machine model violating that is a configuration
            // breach, not a reason to crash the host program.
            return Err(ClError::ProtocolViolation {
                kernel: self.input.launch.kernel.name().to_string(),
                detail: format!(
                    "abort mode {:?} allows early abort but defines no check quantum",
                    self.input.config.abort_mode
                ),
            });
        };
        let elapsed = t.saturating_since(wave.started_at).as_nanos();
        let q = quantum.as_nanos().max(1);
        let checks = elapsed.div_ceil(q).max(1);
        let abort_at = wave.started_at + SimDuration::from_nanos(checks * q);
        let natural_done = wave.started_at
            + self.owner_gpu.range_time(
                self.gpu_profile(),
                self.items,
                wave.end - wave.start,
                self.input.config.abort_mode,
            );
        if abort_at < natural_done {
            let gen = wave.gen;
            // A killed wave has no completion event to cancel; its watchdog
            // will declare the GPU lost instead of an abort racing it.
            if let Some(token) = wave.token {
                sim.cancel(token);
                sim.schedule_at(abort_at, Ev::GpuWaveAbort { gen });
            }
        }
        Ok(())
    }

    fn on_transfer_watchdog(&mut self, t: SimTime, seq: u32) {
        let d = self.ep_of_send(seq);
        if self.sends[seq as usize].resolved
            || self.gpu_exited_at.is_some()
            || self.gpu_lost
            || self.eps[d].link_dead
        {
            return;
        }
        // The send never completed: abandon this endpoint's link. The
        // endpoint stops taking work and the GPU executes everything still
        // above the watermark (the stalled subkernel's range is below it,
        // so nothing is lost — only re-executed).
        let (dev, boundary) = {
            let s = &self.sends[seq as usize];
            (s.dev, s.boundary)
        };
        self.sends[seq as usize].resolved = true;
        if self.multi {
            self.record(t, TraceKind::EpTransferTimeout { dev, boundary });
        } else {
            self.record(t, TraceKind::TransferTimeout { boundary });
        }
        self.eps[d].link_wedged = false;
        self.eps[d].link_dead = true;
        self.eps[d].hd_free = self.eps[d].hd_free.max(t);
    }

    /// Fault-aware chunk shrink: a transfer retry is evidence of a flaky
    /// link, so the endpoint's next subkernel is halved — smaller batches
    /// produce more frequent statuses, keeping more work acknowledged (and
    /// mergeable) before a watchdog abandons the link.
    fn shrink_on_retry(&mut self, d: usize) {
        if self.input.config.recovery.shrink_chunk_on_retry {
            self.eps[d].chunk.on_transfer_retry();
        }
    }

    fn on_transfer_nack(&mut self, sim: &mut Simulation<Ev>, t: SimTime, seq: u32) -> ClResult<()> {
        self.sends[seq as usize].resolved = true;
        if self.gpu_exited_at.is_some() || self.gpu_lost {
            return Ok(());
        }
        let d = self.ep_of_send(seq);
        let (dev, boundary, attempt) = {
            let s = &self.sends[seq as usize];
            (s.dev, s.boundary, s.attempt)
        };
        if self.multi {
            self.record(
                t,
                TraceKind::EpTransferFault {
                    dev,
                    boundary,
                    attempt,
                },
            );
        } else {
            self.record(t, TraceKind::TransferFault { boundary, attempt });
        }
        if attempt > self.input.config.recovery.max_transfer_retries {
            return Err(ClError::Timeout {
                op: "h2d transfer".into(),
                detail: format!(
                    "transfer for boundary {boundary} still failing after {attempt} attempts"
                ),
            });
        }
        if attempt == 1 {
            self.eps[d].holes += 1;
        }
        self.shrink_on_retry(d);
        let backoff = self.input.config.recovery.backoff(attempt);
        sim.schedule_at(
            t + backoff,
            Ev::TransferRetry {
                seq,
                attempt: attempt + 1,
            },
        );
        Ok(())
    }

    fn on_transfer_corrupt(
        &mut self,
        sim: &mut Simulation<Ev>,
        t: SimTime,
        seq: u32,
    ) -> ClResult<()> {
        self.sends[seq as usize].resolved = true;
        if self.gpu_exited_at.is_some() || self.gpu_lost {
            return Ok(());
        }
        let d = self.ep_of_send(seq);
        let (dev, boundary, attempt) = {
            let s = &self.sends[seq as usize];
            (s.dev, s.boundary, s.attempt)
        };
        if self.checksum_rejects(d)? {
            // Reject-and-resend: the damaged delivery is discarded and the
            // batch's results are re-enqueued immediately (the payload is
            // still staged host-side from the intermediate copies).
            if self.multi {
                self.record(t, TraceKind::EpTransferRejected { dev, boundary });
            } else {
                self.record(t, TraceKind::TransferRejected { boundary });
            }
            if attempt == 1 {
                self.eps[d].holes += 1;
            }
            self.shrink_on_retry(d);
            let subs = self.sends[seq as usize].subs.clone();
            self.send_batch(sim, t, subs, attempt + 1);
            return Ok(());
        }
        // The injected flip collided with the checksum (or there was
        // nothing to corrupt): the delivery is accepted as-is.
        self.note_shipped(seq);
        self.accept_status(sim, t, seq)
    }

    /// Verifies the per-transfer checksum the way the receiving device
    /// would: computes the checksum of the staged payload, applies the
    /// injector's single-word corruption to a copy, and compares. Returns
    /// whether the delivery must be rejected.
    fn checksum_rejects(&self, d: usize) -> ClResult<bool> {
        let Some(inj) = self.input.injector.as_deref() else {
            return Ok(false);
        };
        let Some(id) = self.out_ids.first() else {
            return Ok(false);
        };
        let mem: &Memory = match self.eps[d].mem.as_ref() {
            Some(m) => m,
            None => self.input.cpu_mem,
        };
        let data = mem.get(*id)?;
        if data.is_empty() {
            return Ok(false);
        }
        let clean = payload_checksum(data);
        let mut wire = data.to_vec();
        let i = inj.corrupt_index(wire.len());
        wire[i] = f32::from_bits(wire[i].to_bits() ^ inj.flip_mask());
        Ok(payload_checksum(&wire) != clean)
    }

    // ---- Completion -----------------------------------------------------

    fn finish(mut self) -> ClResult<CoexecOutcome> {
        if self.gpu_lost {
            return self.finish_after_gpu_loss();
        }
        let Some(merge_done) = self.merge_done_at else {
            // With a healthy GPU the wave loop always reaches the exit and
            // the merge; an empty event queue without one is an engine
            // defect — surfaced as a typed error, never a panic.
            self.release_snapshots();
            return Err(ClError::ProtocolViolation {
                kernel: self.input.launch.kernel.name().to_string(),
                detail: "co-execution drained its event queue without reaching merge completion"
                    .into(),
            });
        };
        // Merge the functional results now if the timed merge ran (the
        // no-arrivals path already merged inside `gpu_exit`).
        if self.watermark < self.total {
            self.merge_results()?;
        }
        let gpu_results_at = merge_done;
        // With a single endpoint the paper's shortcut applies: a CPU that
        // computed the whole NDRange holds the authoritative data and the
        // host call returns at that instant. With several endpoints the
        // final data only ever exists assembled on the owner, so the
        // kernel always completes through the merge.
        let (complete_at, finished_by) = match self.cpu_finished_at {
            Some(tc) if !self.multi && tc < merge_done => (tc, Finisher::Cpu),
            _ => (merge_done, Finisher::Gpu),
        };
        // Host-stale ranges: where the merged GPU content differs from the
        // CPU copy — i.e. everything the host does not already hold. The
        // D2H return and the functional mirror only need these ranges.
        // Empty when the CPU finished the whole range.
        let stales: Vec<DirtyTracker> = if self.dirty_enabled {
            let owner_mem: &Memory = match self.owner_ep {
                Some(p) => self.eps[p]
                    .mem
                    .as_ref()
                    .expect("promoted owner is a peer with its own memory"),
                None => self.input.gpu_mem,
            };
            let cpu_mem: &Memory = self.input.cpu_mem;
            self.out_ids
                .iter()
                .map(|id| DirtyTracker::try_from_diff(owner_mem.get(*id)?, cpu_mem.get(*id)?))
                .collect::<ClResult<_>>()?
        } else {
            Vec::new()
        };
        // Device-to-host transfers of modified buffers (paper §4.4, §5.6),
        // skipped when the CPU already holds the final data (paper §6.2).
        let (cpu_results_at, dh_free) = if finished_by == Finisher::Cpu {
            (complete_at, self.dh_free)
        } else {
            let mut t = self.dh_free.max(merge_done);
            for (i, id) in self.out_ids.iter().enumerate() {
                let bytes = if self.dirty_enabled {
                    stales[i].byte_count()
                } else {
                    let owner_mem: &Memory = match self.owner_ep {
                        Some(p) => self.eps[p]
                            .mem
                            .as_ref()
                            .expect("promoted owner is a peer with its own memory"),
                        None => self.input.gpu_mem,
                    };
                    owner_mem.get(*id)?.len() as u64 * 4
                };
                t += self.owner_d2h.transfer_time(bytes);
                self.dh_bytes += bytes;
            }
            (t, t)
        };
        // After the merge the GPU copies the out buffers into their
        // "original" scratch buffers so the next kernel can start while the
        // device-to-host transfer proceeds (paper §5.5). With dirty
        // tracking only the ranges this kernel actually changed (vs the
        // still-valid snapshot) are refreshed.
        let orig_copy_bytes = if self.dirty_enabled {
            let mut bytes = 0u64;
            let owner_mem: &Memory = match self.owner_ep {
                Some(p) => self.eps[p]
                    .mem
                    .as_ref()
                    .expect("promoted owner is a peer with its own memory"),
                None => self.input.gpu_mem,
            };
            for (id, orig) in &self.orig_snapshots {
                bytes += DirtyTracker::try_from_diff(owner_mem.get(*id)?, orig)?.byte_count();
            }
            bytes
        } else {
            self.out_bytes
        };
        let orig_copy = SimDuration::from_nanos(
            (2.0 * orig_copy_bytes as f64 / self.owner_gpu.peak_mem_bytes_per_ns()) as u64,
        );
        let gpu_busy_until = merge_done + orig_copy;
        // Functional epilogue: the merged GPU content is the authoritative
        // final value (identical to each endpoint's copy wherever both
        // computed); mirror it into the CPU address space as the DH thread
        // does — ranged when the stale set is known, whole-buffer
        // otherwise.
        {
            let owner_mem: &Memory = match self.owner_ep {
                Some(p) => self.eps[p]
                    .mem
                    .as_ref()
                    .expect("promoted owner is a peer with its own memory"),
                None => self.input.gpu_mem,
            };
            let cpu_mem: &mut Memory = self.input.cpu_mem;
            for (i, id) in self.out_ids.iter().enumerate() {
                if self.dirty_enabled {
                    stales[i].copy_ranges(owner_mem.get(*id)?, cpu_mem.get_mut(*id)?)?;
                } else {
                    cpu_mem.write(*id, owner_mem.get(*id)?)?;
                }
            }
        }
        // The snapshots served their purpose; recycle their allocations for
        // the next kernel of this runtime.
        self.release_snapshots();
        self.record(
            complete_at,
            TraceKind::KernelComplete {
                finisher: finished_by,
            },
        );
        // The trace is recorded in handler order; sort by timestamp so the
        // rendered timeline is chronological even across the final events.
        self.trace.sort_by_key(|e| e.at);
        let cpu_merged_wgs = self.coverage.covered_count();
        let report = KernelReport {
            kernel: self.input.launch.kernel.name().to_string(),
            kernel_id: self.input.kernel_id,
            enqueued_at: self.input.enqueue_at,
            complete_at,
            total_wgs: self.total,
            gpu_executed_wgs: self.gpu_wgs_executed,
            cpu_executed_wgs: self.eps[0].wgs_executed,
            cpu_merged_wgs,
            subkernels: self.subkernels.len() as u64,
            subkernel_log: self.subkernel_log,
            hd_bytes: self.hd_bytes,
            dh_bytes: self.dh_bytes,
            cpu_version_used: self.selected_version,
            peer_executed_wgs: self.eps[1..].iter().map(|e| e.wgs_executed).collect(),
            finished_by,
            duration: complete_at.saturating_since(self.input.enqueue_at),
            trace: self.trace,
            launch_meta: Some(LaunchMeta {
                ndrange: self.input.launch.ndrange,
                scalars: self.input.launch.plan()?.scalars.clone(),
                out_lens: self.out_lens,
            }),
        };
        Ok(CoexecOutcome {
            complete_at,
            gpu_busy_until,
            hd_free: self.eps[0].hd_free,
            dh_free,
            cpu_results_at,
            gpu_results_at,
            report,
            // A lost CPU still reaches this path: the owner finished the
            // kernel normally (the un-delivered ranges stayed above the
            // watermark), but the runtime must stop scheduling CPU work.
            // A nonzero epoch means the primary card died and a promoted
            // peer finished the kernel — the primary leaves the roster,
            // while the healthy promoted peer stays available.
            lost_cpu: self.eps[0].lost,
            lost_gpu: self.gpu_lost || self.epoch > 0,
            lost_peers: self.eps[1..]
                .iter()
                .filter(|e| e.lost)
                .map(|e| e.dev)
                .collect(),
        })
    }

    /// Graceful degradation after a permanent GPU loss: the non-owner
    /// schedulers kept claiming (their gpu-exit guard never fired) and
    /// computed the whole NDRange, so their assembled copy is
    /// authoritative exactly as in the paper's CPU-finishes-first case
    /// (§4.2) — no owner merge, no D2H transfer. With peers, their results
    /// fold into the CPU copy first (the host is the assembly point when
    /// the owner is gone).
    fn finish_after_gpu_loss(mut self) -> ClResult<CoexecOutcome> {
        let finished = self.cpu_finished_at;
        if finished.is_some() && self.multi {
            // Merge tree rooted at the host: each peer's results fold into
            // the CPU copy, wherever the peer's copy differs from the
            // pristine original. A lost peer's memory is safe to fold —
            // killed subkernels never executed, so its copy only differs
            // where completed subkernels really wrote.
            for e in 1..self.eps.len() {
                let ep = &self.eps[e];
                let Some(src_mem) = ep.mem.as_ref() else {
                    continue;
                };
                for (j, (id, orig)) in self.orig_snapshots.iter().enumerate() {
                    let src = src_mem.get(*id)?;
                    let dst = self.input.cpu_mem.get_mut(*id)?;
                    if dst.len() != src.len() || src.len() != orig.len() {
                        return Err(ClError::ProtocolViolation {
                            kernel: self.input.launch.kernel.name().to_string(),
                            detail: format!(
                                "host-side diff-merge size mismatch on buffer {}: cpu {} vs peer {} vs original {} elements",
                                id.0,
                                dst.len(),
                                src.len(),
                                orig.len()
                            ),
                        });
                    }
                    if self.dirty_enabled {
                        diff_merge_tracked(dst, src, orig, &ep.cum_dirty[j])?;
                    } else {
                        fluidicl_vcl::diff_merge(dst, src, orig);
                    }
                }
            }
        }
        self.release_snapshots();
        let Some(complete_at) = finished else {
            // Neither the owner nor the non-owners produced the full
            // range; nothing can finish this kernel.
            return Err(ClError::DeviceLost {
                device: DeviceKind::Gpu,
                detail: "GPU lost and the CPU did not complete the NDRange".into(),
            });
        };
        self.record(
            complete_at,
            TraceKind::KernelComplete {
                finisher: Finisher::Cpu,
            },
        );
        self.trace.sort_by_key(|e| e.at);
        let report = KernelReport {
            kernel: self.input.launch.kernel.name().to_string(),
            kernel_id: self.input.kernel_id,
            enqueued_at: self.input.enqueue_at,
            complete_at,
            total_wgs: self.total,
            gpu_executed_wgs: self.gpu_wgs_executed,
            cpu_executed_wgs: self.eps[0].wgs_executed,
            cpu_merged_wgs: 0,
            subkernels: self.subkernels.len() as u64,
            subkernel_log: self.subkernel_log,
            hd_bytes: self.hd_bytes,
            dh_bytes: self.dh_bytes,
            cpu_version_used: self.selected_version,
            peer_executed_wgs: self.eps[1..].iter().map(|e| e.wgs_executed).collect(),
            finished_by: Finisher::Cpu,
            duration: complete_at.saturating_since(self.input.enqueue_at),
            trace: self.trace,
            launch_meta: Some(LaunchMeta {
                ndrange: self.input.launch.ndrange,
                scalars: self.input.launch.plan()?.scalars.clone(),
                out_lens: self.out_lens,
            }),
        };
        Ok(CoexecOutcome {
            complete_at,
            gpu_busy_until: complete_at,
            hd_free: self.eps[0].hd_free,
            dh_free: self.dh_free,
            cpu_results_at: complete_at,
            gpu_results_at: complete_at,
            report,
            lost_cpu: self.eps[0].lost,
            lost_gpu: true,
            lost_peers: self.eps[1..]
                .iter()
                .filter(|e| e.lost)
                .map(|e| e.dev)
                .collect(),
        })
    }
}
