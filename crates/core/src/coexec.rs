//! The co-execution engine: one kernel, two devices, one virtual timeline.
//!
//! This module is the paper's Section 4 and 5 made executable. For a single
//! kernel launch it simulates — and functionally performs — the FluidiCL
//! protocol:
//!
//! * the **GPU** executes flattened work-groups from 0 upward in waves,
//!   checking an arrived-status watermark and aborting work already covered
//!   by the CPU (Figures 6 and 8);
//! * the **CPU** executes *subkernels* from the top flattened IDs downward
//!   (Figure 7), each followed by an intermediate host copy, an in-order
//!   data + status transfer to the GPU, and an adaptive chunk-size update
//!   (§5.1);
//! * a work-group only counts as CPU-complete once its *data has arrived at
//!   the GPU* — the in-order queue makes transfer overhead part of the
//!   work-distribution decision (§4.2);
//! * when the GPU reaches the watermark it exits, a **diff-merge** kernel
//!   folds the CPU results into the GPU buffer (§4.3), and a device-to-host
//!   thread returns the final data (§4.4, §5.6);
//! * if the CPU finishes the whole NDRange first, its copy is authoritative
//!   and no device-to-host transfer is needed (§4.2, §6.2).
//!
//! Work-groups are *really executed* against device memory at the moments
//! the protocol decides, so a scheduling bug produces wrong numbers, not
//! just wrong timings.

use fluidicl_des::{SimDuration, SimTime, Simulation};
use fluidicl_hetsim::MachineConfig;
use fluidicl_vcl::exec::{execute_groups_par, Launch};
use fluidicl_vcl::{diff_merge_ranged, BufferId, ClError, ClResult, DirtyRanges, Memory};

use crate::buffers::SnapshotPool;
use crate::chunk::ChunkController;
use crate::config::FluidiclConfig;
use crate::stats::{Finisher, KernelReport};
use crate::trace::{TraceEvent, TraceKind, STATUS_MSG_BYTES};

/// Inputs to one co-executed kernel launch, carrying the global timeline
/// state the runtime threads across kernels.
#[derive(Debug)]
pub(crate) struct CoexecInput<'a> {
    pub machine: &'a MachineConfig,
    pub config: &'a FluidiclConfig,
    pub launch: &'a Launch,
    pub kernel_id: u64,
    /// Host time of the blocking enqueue call.
    pub enqueue_at: SimTime,
    /// Earliest time the GPU can begin (device free + its data ready).
    pub gpu_start: SimTime,
    /// Earliest time the CPU scheduler can begin (its input data ready).
    pub cpu_start: SimTime,
    /// Scratch-buffer acquisition cost paid on the GPU timeline (paper §6.1).
    pub scratch_setup: SimDuration,
    /// Host-to-device channel availability.
    pub hd_free: SimTime,
    /// Device-to-host channel availability.
    pub dh_free: SimTime,
    pub cpu_mem: &'a mut Memory,
    pub gpu_mem: &'a mut Memory,
    /// Reusable allocations for the per-kernel original snapshots.
    pub snapshots: &'a mut SnapshotPool,
}

/// Timeline outcome of one co-executed kernel.
#[derive(Clone, Debug)]
pub(crate) struct CoexecOutcome {
    /// When the blocking host call returns.
    pub complete_at: SimTime,
    /// When the GPU device becomes free for the next kernel.
    pub gpu_busy_until: SimTime,
    /// Updated channel availability.
    pub hd_free: SimTime,
    /// Updated channel availability.
    pub dh_free: SimTime,
    /// When the final output content is usable on the CPU side.
    pub cpu_results_at: SimTime,
    /// When the merged output content is usable on the GPU side.
    pub gpu_results_at: SimTime,
    /// Per-kernel statistics.
    pub report: KernelReport,
}

#[derive(Debug)]
enum Ev {
    GpuBegin,
    GpuWaveDone { gen: u32 },
    GpuWaveAbort { gen: u32 },
    GpuMergeDone,
    CpuBegin,
    CpuSubkernelDone { idx: u32 },
    CpuCopyDone { idx: u32 },
    StatusArrived { boundary: u64 },
}

struct Wave {
    start: u64,
    end: u64,
    started_at: SimTime,
    gen: u32,
    token: fluidicl_des::EventToken,
}

struct Subkernel {
    from: u64,
    to: u64,
    version: usize,
    duration: SimDuration,
    /// Bytes this subkernel newly dirtied (coalesced, across all output
    /// buffers) — its partial-transfer payload. Zero until the subkernel
    /// completes; only maintained when dirty-range transfers are on.
    dirty_bytes: u64,
}

pub(crate) struct Coexec<'a> {
    input: CoexecInput<'a>,
    /// Clone of the launch used for CPU subkernels: its `version` field is
    /// rewritten per subkernel instead of cloning the whole launch (the
    /// cached argument plan is shared with the original through an `Arc`).
    cpu_launch: Launch,
    // Geometry.
    total: u64,
    items: u64,
    out_bytes: u64,
    out_ids: Vec<BufferId>,
    orig_snapshots: Vec<(BufferId, Vec<f32>)>,
    // Dirty-range transfer modelling (config.dirty_range_transfers).
    /// Whether subkernels ship only their dirty ranges (paper §4.2's data
    /// message shrunk to what was actually written).
    dirty_enabled: bool,
    /// Cumulative dirty ranges of the CPU copy vs the original snapshot,
    /// one entry per `orig_snapshots` slot; what the ranged merge walks.
    cum_dirty: Vec<DirtyRanges>,
    /// Total dirty payload bytes actually shipped through the hd queue —
    /// what the merge kernel is charged for.
    shipped_dirty_bytes: u64,
    // GPU state.
    gpu_next: u64,
    watermark: u64,
    wave: Option<Wave>,
    wave_gen: u32,
    gpu_exited_at: Option<SimTime>,
    merge_done_at: Option<SimTime>,
    gpu_wgs_executed: u64,
    // CPU state.
    cpu_top: u64,
    chunk: ChunkController,
    subkernels: Vec<Subkernel>,
    cpu_finished_at: Option<SimTime>,
    cpu_wgs_executed: u64,
    // Online profiling (paper §6.6).
    trial_versions: usize,
    trial_results: Vec<(usize, SimDuration)>,
    selected_version: usize,
    // Channels.
    hd_free: SimTime,
    dh_free: SimTime,
    hd_bytes: u64,
    dh_bytes: u64,
    subkernel_log: Vec<(u64, SimDuration)>,
    trace: Vec<TraceEvent>,
}

impl<'a> Coexec<'a> {
    pub(crate) fn new(input: CoexecInput<'a>) -> ClResult<Self> {
        let total = input.launch.ndrange.num_groups();
        let items = input.launch.ndrange.items_per_group();
        let out_ids = input.launch.output_buffers()?;
        let mut out_bytes = 0u64;
        let mut orig_snapshots = Vec::with_capacity(out_ids.len());
        for id in &out_ids {
            let mut data = input.snapshots.acquire();
            input.gpu_mem.copy_into(*id, &mut data)?;
            out_bytes += data.len() as u64 * 4;
            orig_snapshots.push((*id, data));
        }
        let min_chunk = u64::from(input.machine.cpu.threads());
        let chunk = ChunkController::new(
            total,
            input.config.initial_chunk_pct,
            input.config.step_pct,
            min_chunk,
            input.config.chunk_growth_tolerance,
        );
        let versions = input.launch.kernel.versions().len();
        let trial_versions = if input.config.online_profiling && versions > 1 {
            versions
        } else {
            0
        };
        let (hd_free, dh_free) = (input.hd_free, input.dh_free);
        let cpu_launch = input.launch.clone();
        let dirty_enabled = input.config.dirty_range_transfers;
        let cum_dirty = vec![DirtyRanges::empty(); orig_snapshots.len()];
        Ok(Coexec {
            cpu_launch,
            total,
            items,
            out_bytes,
            out_ids,
            orig_snapshots,
            dirty_enabled,
            cum_dirty,
            shipped_dirty_bytes: 0,
            gpu_next: 0,
            watermark: total,
            wave: None,
            wave_gen: 0,
            gpu_exited_at: None,
            merge_done_at: None,
            gpu_wgs_executed: 0,
            cpu_top: total,
            chunk,
            subkernels: Vec::new(),
            cpu_finished_at: None,
            cpu_wgs_executed: 0,
            trial_versions,
            trial_results: Vec::new(),
            selected_version: 0,
            hd_free,
            dh_free,
            hd_bytes: 0,
            dh_bytes: 0,
            subkernel_log: Vec::new(),
            trace: Vec::new(),
            input,
        })
    }

    /// Runs the co-execution to completion.
    pub(crate) fn run(mut self) -> ClResult<CoexecOutcome> {
        let start = self.input.enqueue_at;
        // Launch geometry first, so the trace is self-describing and the
        // protocol linter can check every later event against `total_wgs`.
        self.record(
            start,
            TraceKind::Enqueued {
                total_wgs: self.total,
            },
        );
        let mut sim = Simulation::starting_at(start);
        // GPU: scratch buffers are acquired, then the kernel is launched.
        let gpu_begin = self.input.gpu_start.max(start)
            + self.input.scratch_setup
            + self.input.machine.gpu.launch_overhead();
        sim.schedule_at(gpu_begin, Ev::GpuBegin);
        // CPU: the scheduler thread begins once its input data is current.
        sim.schedule_at(self.input.cpu_start.max(start), Ev::CpuBegin);

        let mut exec_err: Option<fluidicl_vcl::ClError> = None;
        while let Some((t, ev)) = sim.pop() {
            let r = self.dispatch(&mut sim, t, ev);
            if let Err(e) = r {
                exec_err = Some(e);
                break;
            }
        }
        if let Some(e) = exec_err {
            return Err(e);
        }
        self.finish()
    }

    fn dispatch(&mut self, sim: &mut Simulation<Ev>, t: SimTime, ev: Ev) -> ClResult<()> {
        match ev {
            Ev::GpuBegin => {
                self.record(t, TraceKind::GpuLaunch);
                self.start_wave(sim, t)?;
            }
            Ev::GpuWaveDone { gen } => self.on_wave_done(sim, t, gen)?,
            Ev::GpuWaveAbort { gen } => self.on_wave_abort(sim, t, gen)?,
            Ev::GpuMergeDone => self.on_merge_done(t),
            Ev::CpuBegin => self.maybe_launch_subkernel(sim, t),
            Ev::CpuSubkernelDone { idx } => self.on_subkernel_done(sim, t, idx)?,
            Ev::CpuCopyDone { idx } => self.on_copy_done(sim, t, idx),
            Ev::StatusArrived { boundary } => self.on_status_arrived(sim, t, boundary),
        }
        Ok(())
    }

    fn record(&mut self, at: SimTime, kind: TraceKind) {
        self.trace.push(TraceEvent { at, kind });
    }

    // ---- GPU side -------------------------------------------------------

    fn gpu_profile(&self) -> &fluidicl_hetsim::KernelProfile {
        // The GPU always runs the default kernel version; alternates are
        // CPU-oriented (paper §6.6 profiles CPU kernels).
        &self.input.launch.kernel.default_version().profile
    }

    fn start_wave(&mut self, sim: &mut Simulation<Ev>, t: SimTime) -> ClResult<()> {
        let limit = self.watermark.min(self.total);
        if self.gpu_next >= limit {
            return self.gpu_exit(sim, t);
        }
        let width = self.input.machine.gpu.wave_width();
        let start = self.gpu_next;
        let end = (start + width).min(limit);
        let dur = self.input.machine.gpu.range_time(
            self.gpu_profile(),
            self.items,
            end - start,
            self.input.config.abort_mode,
        );
        self.wave_gen += 1;
        let gen = self.wave_gen;
        self.record(
            t,
            TraceKind::GpuWaveStart {
                from: start,
                to: end,
            },
        );
        let token = sim.schedule_at(t + dur, Ev::GpuWaveDone { gen });
        self.wave = Some(Wave {
            start,
            end,
            started_at: t,
            gen,
            token,
        });
        Ok(())
    }

    fn on_wave_done(&mut self, sim: &mut Simulation<Ev>, t: SimTime, gen: u32) -> ClResult<()> {
        let Some(wave) = self.wave.take() else {
            return Ok(());
        };
        if wave.gen != gen {
            self.wave = Some(wave);
            return Ok(());
        }
        // Work-groups covered by CPU results that arrived *mid-wave* abort
        // at an in-loop check and never write; the rest complete. Without
        // in-loop checks everything that started runs to completion.
        let exec_end = if self.input.config.abort_mode.allows_early_abort() {
            wave.end.min(self.watermark.max(wave.start))
        } else {
            wave.end
        };
        if exec_end > wave.start {
            execute_groups_par(
                self.input.launch,
                self.input.gpu_mem,
                wave.start,
                exec_end,
                self.input.config.intra_launch_jobs,
            )?;
            self.gpu_wgs_executed += exec_end - wave.start;
        }
        self.record(
            t,
            TraceKind::GpuWaveDone {
                from: wave.start,
                to: wave.end,
                executed_to: exec_end.max(wave.start),
            },
        );
        self.gpu_next = wave.end;
        self.start_wave(sim, t)
    }

    fn on_wave_abort(&mut self, sim: &mut Simulation<Ev>, t: SimTime, gen: u32) -> ClResult<()> {
        let Some(wave) = self.wave.take() else {
            return Ok(());
        };
        if wave.gen != gen {
            self.wave = Some(wave);
            return Ok(());
        }
        // The whole wave was covered by the CPU: nothing is written, the
        // GPU kernel proceeds to its exit check with `gpu_next` unchanged.
        debug_assert!(self.watermark <= wave.start);
        self.record(
            t,
            TraceKind::GpuWaveAborted {
                from: wave.start,
                to: wave.end,
            },
        );
        self.start_wave(sim, t)
    }

    fn gpu_exit(&mut self, sim: &mut Simulation<Ev>, t: SimTime) -> ClResult<()> {
        self.gpu_exited_at = Some(t);
        self.record(t, TraceKind::GpuExit);
        if self.watermark < self.total {
            // CPU data arrived: run the diff-merge kernel (paper §4.3).
            // Under dirty-range transfers the merge only walks the bytes
            // that were actually shipped, not whole output buffers.
            let merge_bytes = if self.dirty_enabled {
                self.shipped_dirty_bytes
            } else {
                self.out_bytes
            };
            let dur = self.input.machine.gpu.merge_time(merge_bytes);
            sim.schedule_at(t + dur, Ev::GpuMergeDone);
        } else {
            // GPU executed the entire NDRange; the merge is skipped.
            self.merge_results()?;
            self.on_merge_done(t);
        }
        Ok(())
    }

    fn on_merge_done(&mut self, t: SimTime) {
        if self.merge_done_at.is_none() {
            self.merge_done_at = Some(t);
            self.record(t, TraceKind::MergeDone);
        }
    }

    /// Folds CPU-computed data into the GPU buffers exactly as the merge
    /// kernel of paper Figure 9 does: element-wise, wherever the CPU copy
    /// differs from the pristine original.
    fn merge_results(&mut self) -> ClResult<()> {
        // The CPU and GPU address spaces are separate fields, so the CPU
        // copy is borrowed in place — no temporary clone per buffer.
        let cpu_mem: &Memory = self.input.cpu_mem;
        let gpu_mem: &mut Memory = self.input.gpu_mem;
        for (j, (id, orig)) in self.orig_snapshots.iter().enumerate() {
            let cpu = cpu_mem.get(*id)?;
            let dst = gpu_mem.get_mut(*id)?;
            if dst.len() != cpu.len() || cpu.len() != orig.len() {
                // A mis-sized buffer mid-simulation is a protocol breach,
                // not a programming error in the merge itself: surface it
                // through the runtime's error path instead of panicking.
                return Err(ClError::ProtocolViolation {
                    kernel: self.input.launch.kernel.name().to_string(),
                    detail: format!(
                        "diff-merge size mismatch on buffer {}: gpu {} vs cpu {} vs original {} elements",
                        id.0,
                        dst.len(),
                        cpu.len(),
                        orig.len()
                    ),
                });
            }
            // With dirty tracking the merge walks only the ranges the CPU
            // actually changed; `cum_dirty` is by construction exactly the
            // set of elements where `cpu` differs from `orig`, so this is
            // functionally identical to the full-buffer merge.
            if self.dirty_enabled {
                diff_merge_ranged(dst, cpu, orig, &self.cum_dirty[j])?;
            } else {
                fluidicl_vcl::diff_merge(dst, cpu, orig);
            }
        }
        Ok(())
    }

    // ---- CPU side -------------------------------------------------------

    fn version_for(&self, idx: usize) -> usize {
        if idx < self.trial_versions {
            idx
        } else {
            self.selected_version
        }
    }

    fn cpu_profile(&self, version: usize) -> &fluidicl_hetsim::KernelProfile {
        &self.input.launch.kernel.versions()[version].profile
    }

    fn maybe_launch_subkernel(&mut self, sim: &mut Simulation<Ev>, t: SimTime) {
        // The scheduler stops once the GPU kernel has exited (paper §5) or
        // when the CPU has taken the whole NDRange.
        if self.gpu_exited_at.is_some() || self.cpu_top == 0 {
            return;
        }
        let idx = self.subkernels.len();
        let version = self.version_for(idx);
        let min_chunk = u64::from(self.input.machine.cpu.threads());
        let k = if idx < self.trial_versions {
            // Profiling trials run a small fixed allocation (paper §6.6).
            min_chunk.min(self.cpu_top)
        } else {
            self.chunk.next_chunk(self.cpu_top)
        };
        let duration = self.input.machine.cpu.subkernel_time(
            self.cpu_profile(version),
            self.items,
            k,
            self.input.config.wg_split,
        );
        self.record(
            t,
            TraceKind::CpuSubkernelStart {
                from: self.cpu_top - k,
                to: self.cpu_top,
                version,
            },
        );
        self.subkernels.push(Subkernel {
            from: self.cpu_top - k,
            to: self.cpu_top,
            version,
            duration,
            dirty_bytes: 0,
        });
        self.cpu_top -= k;
        sim.schedule_at(t + duration, Ev::CpuSubkernelDone { idx: idx as u32 });
    }

    fn on_subkernel_done(
        &mut self,
        sim: &mut Simulation<Ev>,
        t: SimTime,
        idx: u32,
    ) -> ClResult<()> {
        let (from, to, version, duration) = {
            let sk = &self.subkernels[idx as usize];
            (sk.from, sk.to, sk.version, sk.duration)
        };
        // The subkernel really computes its work-groups on the CPU copy,
        // using the selected kernel version's body.
        self.cpu_launch.version = version;
        execute_groups_par(
            &self.cpu_launch,
            self.input.cpu_mem,
            from,
            to,
            self.input.config.intra_launch_jobs,
        )?;
        // Dirty-range capture: diff the CPU copy against the pristine
        // original to learn exactly which elements this subkernel wrote
        // (the same write evidence the shadowed sanitizer run produces,
        // obtained blockwise). The diff is cumulative across subkernels,
        // so this subkernel's payload is the newly dirtied delta.
        let mut dirty_delta = 0u64;
        if self.dirty_enabled {
            for (j, (id, orig)) in self.orig_snapshots.iter().enumerate() {
                let cur = DirtyRanges::from_diff(self.input.cpu_mem.get(*id)?, orig);
                let prev = self.cum_dirty[j].element_count();
                dirty_delta += 4 * cur.element_count().saturating_sub(prev) as u64;
                self.cum_dirty[j] = cur;
            }
            self.subkernels[idx as usize].dirty_bytes = dirty_delta;
        }
        let wgs = to - from;
        self.cpu_wgs_executed += wgs;
        self.subkernel_log.push((wgs, duration));
        self.record(t, TraceKind::CpuSubkernelDone { from, to });
        if (idx as usize) < self.trial_versions {
            self.trial_results.push((version, duration.div_count(wgs)));
            if self.trial_results.len() == self.trial_versions {
                self.selected_version = self
                    .trial_results
                    .iter()
                    .min_by_key(|(_, per_wg)| *per_wg)
                    .map(|(v, _)| *v)
                    .unwrap_or(0);
            }
        } else {
            self.chunk.observe(wgs, duration);
        }
        if from == 0 {
            // The CPU computed the entire NDRange: final data lives on the
            // CPU (paper §4.2); the results of the GPU execution are
            // ignored.
            self.cpu_finished_at = Some(t);
        }
        if self.gpu_exited_at.is_some() {
            // The kernel already completed on the GPU; the scheduler exits
            // without copying or transferring this late result.
            return Ok(());
        }
        // Intermediate host copy so the next subkernel can proceed while
        // the data is in flight (paper §5.5); with dirty tracking only the
        // newly dirtied ranges are staged.
        let copy_bytes = if self.dirty_enabled {
            dirty_delta
        } else {
            self.out_bytes
        };
        let copy = self.input.machine.host.copy_time(copy_bytes);
        sim.schedule_at(t + copy, Ev::CpuCopyDone { idx });
        Ok(())
    }

    fn on_copy_done(&mut self, sim: &mut Simulation<Ev>, t: SimTime, idx: u32) {
        let (boundary, dirty_bytes) = {
            let sk = &self.subkernels[idx as usize];
            (sk.from, sk.dirty_bytes)
        };
        if self.gpu_exited_at.is_none() {
            // In-order hd queue: computed data first, then the status
            // message, so a work-group only counts as complete when its
            // results are already on the GPU (paper §4.2). With dirty
            // tracking the data message carries only the subkernel's
            // coalesced dirty ranges.
            let payload = if self.dirty_enabled {
                dirty_bytes
            } else {
                self.out_bytes
            };
            let data_arrival = self.hd_free.max(t) + self.input.machine.h2d.transfer_time(payload);
            let status_arrival =
                data_arrival + self.input.machine.h2d.transfer_time(STATUS_MSG_BYTES);
            self.hd_free = status_arrival;
            self.hd_bytes += payload + STATUS_MSG_BYTES;
            if self.dirty_enabled {
                self.shipped_dirty_bytes += payload;
            }
            self.record(
                t,
                TraceKind::HdEnqueued {
                    boundary,
                    bytes: payload + STATUS_MSG_BYTES,
                    dirty_bytes: self.dirty_enabled.then_some(dirty_bytes),
                },
            );
            sim.schedule_at(status_arrival, Ev::StatusArrived { boundary });
        }
        self.maybe_launch_subkernel(sim, t);
    }

    fn on_status_arrived(&mut self, sim: &mut Simulation<Ev>, t: SimTime, boundary: u64) {
        if self.gpu_exited_at.is_some() {
            // Late message: discarded via buffer versions (paper §5.3).
            return;
        }
        self.watermark = self.watermark.min(boundary);
        self.record(t, TraceKind::StatusArrived { boundary });
        // A running wave fully covered by the CPU aborts at its next
        // in-loop check (paper §6.4).
        if !self.input.config.abort_mode.allows_early_abort() {
            return;
        }
        let Some(wave) = &self.wave else { return };
        if self.watermark > wave.start {
            return;
        }
        let quantum = self
            .input
            .machine
            .gpu
            .abort_quantum(self.gpu_profile(), self.items, self.input.config.abort_mode)
            .expect("early-abort mode has a quantum");
        let elapsed = t.saturating_since(wave.started_at).as_nanos();
        let q = quantum.as_nanos().max(1);
        let checks = elapsed.div_ceil(q).max(1);
        let abort_at = wave.started_at + SimDuration::from_nanos(checks * q);
        let natural_done = wave.started_at
            + self.input.machine.gpu.range_time(
                self.gpu_profile(),
                self.items,
                wave.end - wave.start,
                self.input.config.abort_mode,
            );
        if abort_at < natural_done {
            let gen = wave.gen;
            let token = wave.token;
            sim.cancel(token);
            sim.schedule_at(abort_at, Ev::GpuWaveAbort { gen });
        }
    }

    // ---- Completion -----------------------------------------------------

    fn finish(mut self) -> ClResult<CoexecOutcome> {
        let merge_done = self
            .merge_done_at
            .expect("GPU path always reaches merge completion");
        // Merge the functional results now if the timed merge ran (the
        // no-CPU-data path already merged inside `gpu_exit`).
        if self.watermark < self.total {
            self.merge_results()?;
        }
        let gpu_results_at = merge_done;
        let (complete_at, finished_by) = match self.cpu_finished_at {
            Some(tc) if tc < merge_done => (tc, Finisher::Cpu),
            _ => (merge_done, Finisher::Gpu),
        };
        // Host-stale ranges: where the merged GPU content differs from the
        // CPU copy — i.e. everything the GPU computed that the host does
        // not already hold. The D2H return and the functional mirror only
        // need these ranges. Empty when the CPU finished the whole range.
        let stales: Vec<DirtyRanges> = if self.dirty_enabled {
            let gpu_mem: &Memory = self.input.gpu_mem;
            let cpu_mem: &Memory = self.input.cpu_mem;
            self.out_ids
                .iter()
                .map(|id| Ok(DirtyRanges::from_diff(gpu_mem.get(*id)?, cpu_mem.get(*id)?)))
                .collect::<ClResult<_>>()?
        } else {
            Vec::new()
        };
        // Device-to-host transfers of modified buffers (paper §4.4, §5.6),
        // skipped when the CPU already holds the final data (paper §6.2).
        let (cpu_results_at, dh_free) = if finished_by == Finisher::Cpu {
            (complete_at, self.dh_free)
        } else {
            let mut t = self.dh_free.max(merge_done);
            for (i, id) in self.out_ids.iter().enumerate() {
                let bytes = if self.dirty_enabled {
                    stales[i].byte_count()
                } else {
                    self.input.gpu_mem.get(*id)?.len() as u64 * 4
                };
                t += self.input.machine.d2h.transfer_time(bytes);
                self.dh_bytes += bytes;
            }
            (t, t)
        };
        // After the merge the GPU copies the out buffers into their
        // "original" scratch buffers so the next kernel can start while the
        // device-to-host transfer proceeds (paper §5.5). With dirty
        // tracking only the ranges this kernel actually changed (vs the
        // still-valid snapshot) are refreshed.
        let orig_copy_bytes = if self.dirty_enabled {
            let mut bytes = 0u64;
            for (id, orig) in &self.orig_snapshots {
                bytes += DirtyRanges::from_diff(self.input.gpu_mem.get(*id)?, orig).byte_count();
            }
            bytes
        } else {
            self.out_bytes
        };
        let orig_copy = SimDuration::from_nanos(
            (2.0 * orig_copy_bytes as f64 / self.input.machine.gpu.peak_mem_bytes_per_ns()) as u64,
        );
        let gpu_busy_until = merge_done + orig_copy;
        // Functional epilogue: the merged GPU content is the authoritative
        // final value (identical to the CPU copy wherever both computed);
        // mirror it into the CPU address space as the DH thread does —
        // ranged when the stale set is known, whole-buffer otherwise.
        {
            let gpu_mem: &Memory = self.input.gpu_mem;
            let cpu_mem: &mut Memory = self.input.cpu_mem;
            for (i, id) in self.out_ids.iter().enumerate() {
                if self.dirty_enabled {
                    stales[i].copy_ranges(gpu_mem.get(*id)?, cpu_mem.get_mut(*id)?);
                } else {
                    cpu_mem.write(*id, gpu_mem.get(*id)?)?;
                }
            }
        }
        // The snapshots served their purpose; recycle their allocations for
        // the next kernel of this runtime.
        for (_, v) in self.orig_snapshots.drain(..) {
            self.input.snapshots.release(v);
        }
        self.record(
            complete_at,
            TraceKind::KernelComplete {
                finisher: finished_by,
            },
        );
        // The trace is recorded in handler order; sort by timestamp so the
        // rendered timeline is chronological even across the final events.
        self.trace.sort_by_key(|e| e.at);
        let cpu_merged_wgs = self.total - self.watermark;
        let report = KernelReport {
            kernel: self.input.launch.kernel.name().to_string(),
            kernel_id: self.input.kernel_id,
            enqueued_at: self.input.enqueue_at,
            complete_at,
            total_wgs: self.total,
            gpu_executed_wgs: self.gpu_wgs_executed,
            cpu_executed_wgs: self.cpu_wgs_executed,
            cpu_merged_wgs,
            subkernels: self.subkernels.len() as u64,
            subkernel_log: self.subkernel_log,
            hd_bytes: self.hd_bytes,
            dh_bytes: self.dh_bytes,
            cpu_version_used: self.selected_version,
            finished_by,
            duration: complete_at.saturating_since(self.input.enqueue_at),
            trace: self.trace,
        };
        Ok(CoexecOutcome {
            complete_at,
            gpu_busy_until,
            hd_free: self.hd_free,
            dh_free,
            cpu_results_at,
            gpu_results_at,
            report,
        })
    }
}
