//! Per-kernel execution reports and runtime-level statistics.

use fluidicl_des::{SimDuration, SimTime};
use fluidicl_vcl::{NdRange, Scalars};

use crate::trace::TraceEvent;

/// Static launch metadata recorded alongside a [`KernelReport`]: the
/// geometry, scalar arguments and output-buffer lengths a trace checker
/// needs to turn work-group ranges into element footprints (via
/// [`KernelDef::write_footprints`](fluidicl_vcl::KernelDef::write_footprints))
/// without access to the original [`Launch`](fluidicl_vcl::Launch).
#[derive(Clone, Debug)]
pub struct LaunchMeta {
    /// Index space of the launch.
    pub ndrange: NdRange,
    /// Scalar arguments of the launch.
    pub scalars: Scalars,
    /// Length of each output buffer, in signature order among `Out`/`InOut`
    /// arguments.
    pub out_lens: Vec<usize>,
}

/// Which side established the final data of a kernel (paper §4.2: the
/// faster device always does more work; either can finish the NDRange).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Finisher {
    /// The GPU reached the CPU watermark; results were merged on the GPU.
    Gpu,
    /// The CPU computed the entire NDRange first; the GPU results were
    /// ignored and no device-to-host transfer was needed.
    Cpu,
}

/// Statistics of one co-executed kernel launch.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel name.
    pub kernel: String,
    /// Monotonic kernel id (also the buffer version number, paper §5.3).
    pub kernel_id: u64,
    /// Host time of the blocking enqueue call.
    pub enqueued_at: SimTime,
    /// Host time the call returned.
    pub complete_at: SimTime,
    /// Total work-groups in the NDRange.
    pub total_wgs: u64,
    /// Work-groups the GPU executed (may overlap CPU work).
    pub gpu_executed_wgs: u64,
    /// Work-groups the CPU executed (may overlap GPU work).
    pub cpu_executed_wgs: u64,
    /// Work-groups whose results came from the CPU at merge time
    /// (`total_wgs − final watermark`).
    pub cpu_merged_wgs: u64,
    /// Number of CPU subkernels launched.
    pub subkernels: u64,
    /// Per-subkernel (work-groups, duration) log, in launch order.
    pub subkernel_log: Vec<(u64, SimDuration)>,
    /// Bytes moved host→device for this kernel (CPU results + statuses).
    pub hd_bytes: u64,
    /// Bytes moved device→host (final results).
    pub dh_bytes: u64,
    /// Kernel version the CPU settled on (index 0 unless online profiling
    /// selected an alternate, paper §6.6). Degraded runs report the version
    /// the last co-executed kernel selected — selection survives a device
    /// loss.
    pub cpu_version_used: usize,
    /// Work-groups each peer-GPU endpoint executed, in endpoint order
    /// (empty on the paper's two-device testbed).
    pub peer_executed_wgs: Vec<u64>,
    /// Which device finished the kernel.
    pub finished_by: Finisher,
    /// `complete_at − enqueued_at`.
    pub duration: SimDuration,
    /// Chronological protocol trace (see [`crate::render_timeline`]).
    pub trace: Vec<TraceEvent>,
    /// Launch geometry and arguments for footprint-based trace checkers;
    /// `None` only for hand-constructed reports.
    pub launch_meta: Option<LaunchMeta>,
}

impl KernelReport {
    /// Fraction of merged work contributed by the CPU, in `[0, 1]`.
    pub fn cpu_share(&self) -> f64 {
        if self.total_wgs == 0 {
            0.0
        } else {
            self.cpu_merged_wgs as f64 / self.total_wgs as f64
        }
    }

    /// Work-groups computed on both devices (wasted duplicated work; the
    /// price of the paper's decentralised protocol).
    pub fn duplicated_wgs(&self) -> u64 {
        (self.gpu_executed_wgs + self.cpu_executed_wgs).saturating_sub(self.total_wgs)
    }
}

/// Aggregate statistics across every kernel a runtime executed.
#[derive(Clone, Debug, Default)]
pub struct RuntimeSummary {
    /// Number of kernel launches.
    pub kernels: u64,
    /// Sum of kernel durations.
    pub total_kernel_time: SimDuration,
    /// Total host→device traffic.
    pub hd_bytes: u64,
    /// Total device→host traffic.
    pub dh_bytes: u64,
    /// Total work-groups merged from the CPU.
    pub cpu_merged_wgs: u64,
    /// Total work-groups in all NDRanges.
    pub total_wgs: u64,
    /// Kernels finished by the CPU.
    pub cpu_finished_kernels: u64,
}

impl RuntimeSummary {
    /// Builds a summary from individual reports.
    pub fn from_reports(reports: &[KernelReport]) -> Self {
        let mut s = RuntimeSummary::default();
        for r in reports {
            s.kernels += 1;
            s.total_kernel_time += r.duration;
            s.hd_bytes += r.hd_bytes;
            s.dh_bytes += r.dh_bytes;
            s.cpu_merged_wgs += r.cpu_merged_wgs;
            s.total_wgs += r.total_wgs;
            if r.finished_by == Finisher::Cpu {
                s.cpu_finished_kernels += 1;
            }
        }
        s
    }

    /// Overall CPU share of merged work.
    pub fn cpu_share(&self) -> f64 {
        if self.total_wgs == 0 {
            0.0
        } else {
            self.cpu_merged_wgs as f64 / self.total_wgs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total: u64, gpu: u64, cpu_exec: u64, cpu_merged: u64) -> KernelReport {
        KernelReport {
            kernel: "k".into(),
            kernel_id: 0,
            enqueued_at: SimTime::ZERO,
            complete_at: SimTime::from_nanos(100),
            total_wgs: total,
            gpu_executed_wgs: gpu,
            cpu_executed_wgs: cpu_exec,
            cpu_merged_wgs: cpu_merged,
            subkernels: 1,
            subkernel_log: vec![(cpu_exec, SimDuration::from_nanos(10))],
            hd_bytes: 64,
            dh_bytes: 32,
            cpu_version_used: 0,
            peer_executed_wgs: Vec::new(),
            finished_by: Finisher::Gpu,
            duration: SimDuration::from_nanos(100),
            trace: Vec::new(),
            launch_meta: None,
        }
    }

    #[test]
    fn cpu_share_and_duplication() {
        let r = report(100, 80, 30, 20);
        assert!((r.cpu_share() - 0.2).abs() < 1e-12);
        assert_eq!(r.duplicated_wgs(), 10);
        let exact = report(100, 80, 20, 20);
        assert_eq!(exact.duplicated_wgs(), 0);
    }

    #[test]
    fn summary_accumulates() {
        let reports = vec![report(100, 80, 30, 20), report(50, 10, 45, 40)];
        let s = RuntimeSummary::from_reports(&reports);
        assert_eq!(s.kernels, 2);
        assert_eq!(s.total_wgs, 150);
        assert_eq!(s.cpu_merged_wgs, 60);
        assert_eq!(s.hd_bytes, 128);
        assert_eq!(s.total_kernel_time, SimDuration::from_nanos(200));
        assert!((s.cpu_share() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = RuntimeSummary::from_reports(&[]);
        assert_eq!(s.kernels, 0);
        assert_eq!(s.cpu_share(), 0.0);
    }
}
